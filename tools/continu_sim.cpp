// continu_sim — command-line driver for the ContinuStreaming simulator.
//
// Runs full sessions on a synthetic clip2-style trace (or a trace file,
// or a named scenario from the shared matrix) and reports the paper's
// metrics. Designed for scripted sweeps: every knob of SystemConfig
// that the evaluation varies is a flag, --replications fans a
// Monte-Carlo sweep out across --jobs worker threads through the
// ExperimentRunner, and --csv dumps the per-round series for plotting.
//
// Examples:
//   continu_sim --nodes 1000 --duration 45
//   continu_sim --nodes 1000 --churn 0.05 --system cool --seed 3
//   continu_sim --scenario dynamic_1k --replications 20 --jobs 8
//   continu_sim --trace snapshot.trace --system gridmedia --csv run.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "obs/obs_config.hpp"
#include "obs/report.hpp"
#include "runner/cli.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "trace/generator.hpp"
#include "trace/trace.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 1000;
  double duration = 45.0;
  double stable_from = 20.0;
  double churn = 0.0;
  std::uint64_t seed = 42;
  std::uint64_t trace_seed = 1;
  std::size_t neighbors = 5;
  unsigned replicas = 4;
  unsigned prefetch_limit = 5;
  bool homogeneous = false;
  std::string system = "continu";
  std::string scenario;
  std::string trace_path;
  std::string csv_path;
  std::string csv_mode = "first";  // first | per-rep | long
  bool vary_trace_seed = false;
  unsigned jobs = 0;     // 0 = hardware concurrency (flag demands >= 1)
  unsigned threads = 1;  // intra-session fork/join width
  bool sharded_queue = false;  // sharded event-queue engine (bit-identical)
  unsigned queue_skew = 0;     // lax-mode skew window in grid buckets
  std::size_t replications = 1;
  bool list_scenarios = false;
  bool quiet = false;
  bool profile = false;
  std::string trace_out;
  std::string stats_json;
  long long trace_node = -1;  // -1 = all nodes
  /// Workload-shaping flags the user actually typed (even at their
  /// default values) — incompatible with --scenario.
  std::vector<std::string> workload_flags_seen;
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N          overlay size for the synthetic trace (default 1000)\n"
      "  --trace FILE       load a trace snapshot instead of generating one\n"
      "  --scenario NAME    use a named scenario from the shared matrix\n"
      "  --list-scenarios   print the scenario matrix and exit\n"
      "  --duration SEC     virtual seconds to simulate (default 45)\n"
      "  --stable-from SEC  start of the stable measurement window (default 20)\n"
      "  --system NAME      continu | cool | gridmedia (default continu)\n"
      "  --churn F          per-round leave AND join fraction (default 0 = static)\n"
      "  --neighbors M      connected-neighbor target (default 5)\n"
      "  --replicas K       DHT backups per segment (default 4)\n"
      "  --prefetch-limit L max pre-fetches per invocation (default 5)\n"
      "  --homogeneous      give every node the mean bandwidth\n"
      "  --seed S           simulation seed (default 42)\n"
      "  --trace-seed S     trace generator seed (default 1)\n"
      "  --replications R   independent replications, seeds derived from --seed\n"
      "                     (default 1)\n"
      "  --vary-trace-seed  also derive a fresh trace seed per replication, so\n"
      "                     each one runs on its own topology\n"
      "  --jobs N           worker threads for the replication sweep, N >= 1\n"
      "                     (default: all hardware threads)\n"
      "  --threads N        intra-session fork/join threads, N >= 1 (default 1;\n"
      "                     results are identical for every value). With\n"
      "                     replications the runner clamps jobs so\n"
      "                     jobs x threads fits the machine\n"
      "  --sharded-queue    run on the sharded event-queue engine (per-shard\n"
      "                     heaps + meta-heap frontier; results are bit-identical\n"
      "                     to the default single-queue engine)\n"
      "  --queue-skew K     lax mode: shards drain up to K latency-grid buckets\n"
      "                     ahead of the global frontier, concurrently. Needs\n"
      "                     --sharded-queue and a quantized (q*_) scenario; 0 is\n"
      "                     strict mode. Deterministic and thread-invariant per\n"
      "                     K, but each K >= 1 is a different universe from\n"
      "                     strict (see docs/DETERMINISM.md contract 7)\n"
      "  --csv FILE         dump per-round series as CSV\n"
      "  --csv-mode MODE    what --csv writes for multi-replication runs:\n"
      "                       first   series of replication 0 only (default)\n"
      "                       per-rep one file per replication: <out>.rep<k>.csv\n"
      "                       long    one merged long-format file with a\n"
      "                               leading 'replication' column\n"
      "  --profile          print the phase-profiler breakdown (serial vs forked\n"
      "                     wall time, shard imbalance, Amdahl serial fraction)\n"
      "  --trace-out FILE   export protocol events + phase spans as Chrome\n"
      "                     trace-event JSON (open in about://tracing or Perfetto)\n"
      "  --trace-node N     restrict --trace-out protocol events to node index N\n"
      "  --stats-json FILE  dump settled counters + profile totals as JSON\n"
      "                     (observability runs on replication 0 only and never\n"
      "                     changes simulation results)\n"
      "  --quiet            print only the final summary line\n"
      "  --help             this text\n",
      argv0);
}

[[nodiscard]] std::optional<CliOptions> parse(int argc, char** argv) {
  static const std::set<std::string> kWorkloadFlags = {
      "--nodes",    "--trace",          "--trace-seed",  "--system",
      "--churn",    "--neighbors",      "--replicas",    "--prefetch-limit",
      "--homogeneous", "--duration",    "--stable-from",
  };
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (kWorkloadFlags.count(arg) != 0) opt.workload_flags_seen.push_back(arg);
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return std::nullopt;
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.nodes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_path = v;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.scenario = v;
    } else if (arg == "--list-scenarios") {
      opt.list_scenarios = true;
    } else if (arg == "--duration") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.duration = std::strtod(v, nullptr);
    } else if (arg == "--stable-from") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.stable_from = std::strtod(v, nullptr);
    } else if (arg == "--system") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.system = v;
    } else if (arg == "--churn") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.churn = std::strtod(v, nullptr);
    } else if (arg == "--neighbors") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.neighbors = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--replicas") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.replicas = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--prefetch-limit") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.prefetch_limit = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--homogeneous") {
      opt.homogeneous = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--replications") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto parsed = continu::runner::cli::parse_positive(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--replications expects a positive integer, got '%s'\n", v);
        return std::nullopt;
      }
      opt.replications = static_cast<std::size_t>(*parsed);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto parsed = continu::runner::cli::parse_positive_u32(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--jobs expects a positive integer, got '%s'\n", v);
        return std::nullopt;
      }
      opt.jobs = *parsed;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto parsed = continu::runner::cli::parse_positive_u32(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--threads expects a positive integer, got '%s'\n", v);
        return std::nullopt;
      }
      opt.threads = *parsed;
    } else if (arg == "--sharded-queue") {
      opt.sharded_queue = true;
    } else if (arg == "--queue-skew") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto parsed = continu::runner::cli::parse_uint(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--queue-skew expects an integer >= 0, got '%s'\n", v);
        return std::nullopt;
      }
      opt.queue_skew = static_cast<unsigned>(*parsed);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.csv_path = v;
    } else if (arg == "--csv-mode") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.csv_mode = v;
      if (opt.csv_mode != "first" && opt.csv_mode != "per-rep" &&
          opt.csv_mode != "long") {
        std::fprintf(stderr, "unknown --csv-mode '%s' (first|per-rep|long)\n", v);
        return std::nullopt;
      }
    } else if (arg == "--vary-trace-seed") {
      opt.vary_trace_seed = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_out = v;
    } else if (arg == "--trace-node") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_node = std::strtoll(v, nullptr, 10);
      if (opt.trace_node < 0) {
        std::fprintf(stderr, "--trace-node expects a node index >= 0, got '%s'\n", v);
        return std::nullopt;
      }
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.stats_json = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      print_usage(argv[0]);
      return std::nullopt;
    }
  }
  return opt;
}

// --scenario fixes the whole workload; a CLI flag that also shapes it
// would be silently ignored, so reject the combination outright.
void reject_scenario_conflicts(const CliOptions& opt) {
  if (opt.workload_flags_seen.empty()) return;
  std::fprintf(stderr,
               "%s conflicts with --scenario '%s' (the scenario fixes the "
               "workload); drop one of them\n",
               opt.workload_flags_seen.front().c_str(), opt.scenario.c_str());
  std::exit(1);
}

[[nodiscard]] continu::runner::ReplicationSpec base_spec(const CliOptions& opt) {
  using namespace continu;

  if (!opt.scenario.empty()) {
    const auto scenario = runner::find_scenario(opt.scenario);
    if (!scenario.has_value()) {
      std::fprintf(stderr, "%s\n",
                   runner::cli::unknown_scenario_message(opt.scenario).c_str());
      std::exit(1);
    }
    reject_scenario_conflicts(opt);
    return runner::spec_for(*scenario, opt.seed);
  }

  core::SystemConfig config;
  config.seed = opt.seed;
  config.connected_neighbors = opt.neighbors;
  config.backup_replicas = opt.replicas;
  config.prefetch_limit = opt.prefetch_limit;
  config.heterogeneous_bandwidth = !opt.homogeneous;
  if (opt.churn > 0.0) {
    config.churn_enabled = true;
    config.churn.leave_fraction = opt.churn;
    config.churn.join_fraction = opt.churn;
  }
  if (opt.system == "cool") {
    config.scheduler = core::SchedulerKind::kCoolStreaming;
  } else if (opt.system == "gridmedia") {
    config.scheduler = core::SchedulerKind::kGridMediaPushPull;
  } else if (opt.system != "continu") {
    std::fprintf(stderr, "unknown system '%s' (continu|cool|gridmedia)\n",
                 opt.system.c_str());
    std::exit(1);
  }

  runner::ReplicationSpec spec;
  spec.config = config;
  if (!opt.trace_path.empty()) {
    try {
      spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
          trace::TraceSnapshot::load_file(opt.trace_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
    spec.config.expected_nodes = static_cast<double>(spec.snapshot->node_count());
  } else {
    spec.trace.node_count = opt.nodes;
    spec.trace.seed = opt.trace_seed;
    spec.config.expected_nodes = static_cast<double>(opt.nodes);
  }
  spec.duration = opt.duration;
  spec.stable_from = opt.stable_from;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) return 1;
  const CliOptions& opt = *parsed;
  if (opt.quiet) util::set_log_level(util::LogLevel::kError);

  if (opt.list_scenarios) {
    std::printf("%-20s %-6s %-6s %s\n", "name", "nodes", "churn", "description");
    for (const auto& s : runner::scenario_matrix()) {
      std::printf("%-20s %-6zu %-6s %s\n", s.name.c_str(), s.node_count,
                  s.churn ? "yes" : "no", s.description.c_str());
    }
    std::printf("\nparameterized families (grouped by name prefix):\n");
    for (const auto& group : runner::scenario_family_groups()) {
      std::printf("\n  %s_*: %s\n", group.prefix.c_str(),
                  group.description.c_str());
      for (const auto& name : group.members) {
        const auto s = runner::find_scenario(name);
        std::printf("    %-22s %-6zu %-6s %s\n", name.c_str(),
                    s ? s->node_count : 0, (s && s->churn) ? "yes" : "no",
                    s ? s->description.c_str() : "");
      }
    }
    return 0;
  }

  // When scenario-driven, the scenario fixes workload shape AND horizons;
  // the CLI's --seed still picks the replication seed stream.
  runner::ReplicationSpec spec = base_spec(opt);
  // Engine selection is orthogonal to the workload: --sharded-queue is
  // legal with --scenario because it cannot change any result.
  // --queue-skew >= 1 is different: lax mode DOES change results (a
  // deterministic, thread-invariant universe per skew setting), which
  // is why it is opt-in and gated by its own drift budget in CI.
  spec.config.sharded_queue = opt.sharded_queue;
  spec.config.queue_skew_buckets = opt.queue_skew;
  if (opt.vary_trace_seed) {
    if (opt.replications <= 1) {
      std::fprintf(stderr, "--vary-trace-seed needs --replications > 1\n");
      return 1;
    }
    if (spec.snapshot) {
      std::fprintf(stderr,
                   "--vary-trace-seed conflicts with --trace (the loaded "
                   "snapshot pins the topology)\n");
      return 1;
    }
  } else if (opt.replications > 1 && !spec.snapshot) {
    // With a fixed trace seed the topology is shared: build the snapshot
    // once instead of regenerating it in every worker.
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
        trace::generate_snapshot(spec.trace));
  }
  const std::size_t nodes =
      spec.snapshot ? spec.snapshot->node_count() : spec.trace.node_count;

  // Observability is per-session opt-in and guaranteed side-effect-free
  // (obs-owned state only), so enabling it here cannot change any metric.
  spec.config.obs.profile = opt.profile;
  spec.config.obs.trace = !opt.trace_out.empty();
  spec.config.obs.counters = !opt.stats_json.empty();
  if (opt.trace_node >= 0) {
    spec.config.obs.trace_node = static_cast<std::uint32_t>(opt.trace_node);
  }

  const runner::ExperimentRunner pool(opt.jobs, opt.threads);
  runner::ReplicateOptions rep_options;
  rep_options.vary_trace_seed = opt.vary_trace_seed;
  auto specs = opt.replications == 1
                   ? std::vector<runner::ReplicationSpec>{spec}
                   : runner::replicate(spec, opt.replications, rep_options);
  // A sweep only instruments replication 0: one representative profile
  // instead of R interleaved ones, and no obs memory cost on the rest.
  for (std::size_t k = 1; k < specs.size(); ++k) specs[k].config.obs = {};
  const auto experiment = pool.run_experiment(specs);
  const auto& first = experiment.runs.front();

  const char* system_name = "continu";
  if (spec.config.scheduler == core::SchedulerKind::kCoolStreaming) {
    system_name = "cool";
  } else if (spec.config.scheduler == core::SchedulerKind::kGridMediaPushPull) {
    system_name = "gridmedia";
  }

  if (!opt.quiet) {
    std::printf("system            : %s%s\n", system_name,
                opt.scenario.empty() ? "" : (" (scenario " + opt.scenario + ")").c_str());
    std::printf("nodes             : %zu (alive at end: %zu)\n", nodes,
                first.alive_at_end);
    std::printf("duration          : %.0f s (stable window from %.0f s)\n",
                spec.duration, spec.stable_from);
    if (opt.replications > 1) {
      std::printf("replications      : %zu across %u jobs\n", opt.replications,
                  pool.jobs());
      std::printf("playback continuity: %.4f +/- %.4f (min %.4f, max %.4f)\n",
                  experiment.continuity.mean(), experiment.continuity.stddev(),
                  experiment.continuity.min(), experiment.continuity.max());
      std::printf("continuity index  : %.4f +/- %.4f\n",
                  experiment.continuity_index.mean(),
                  experiment.continuity_index.stddev());
      std::printf("control overhead  : %.5f +/- %.5f\n",
                  experiment.control_overhead.mean(),
                  experiment.control_overhead.stddev());
      std::printf("prefetch overhead : %.5f +/- %.5f\n",
                  experiment.prefetch_overhead.mean(),
                  experiment.prefetch_overhead.stddev());
    } else {
      std::printf("playback continuity: %.4f\n", first.stable_continuity);
      std::printf("continuity index  : %.4f\n", first.continuity_index);
      std::printf("control overhead  : %.5f\n", first.control_overhead);
      std::printf("prefetch overhead : %.5f (stable-phase %.5f)\n",
                  first.prefetch_overhead,
                  first.collector.has("prefetch_overhead_round")
                      ? first.collector.mean_from("prefetch_overhead_round",
                                                  spec.stable_from)
                      : 0.0);
    }
    const auto& stats = experiment.total;
    std::printf("emitted/delivered : %llu / %llu (duplicates %llu, pushed %llu)\n",
                static_cast<unsigned long long>(stats.segments_emitted),
                static_cast<unsigned long long>(stats.segments_delivered),
                static_cast<unsigned long long>(stats.duplicate_deliveries),
                static_cast<unsigned long long>(stats.segments_pushed));
    std::printf("prefetch launched : %llu (ok %llu, no-replica %llu)\n",
                static_cast<unsigned long long>(stats.prefetch_launched),
                static_cast<unsigned long long>(stats.prefetch_succeeded),
                static_cast<unsigned long long>(stats.prefetch_no_replica));
    std::printf("churn             : joins %llu, leaves %llu (graceful %llu)\n",
                static_cast<unsigned long long>(stats.joins),
                static_cast<unsigned long long>(stats.graceful_leaves +
                                                stats.abrupt_leaves),
                static_cast<unsigned long long>(stats.graceful_leaves));
  } else {
    const double churn =
        spec.config.churn_enabled ? spec.config.churn.leave_fraction : 0.0;
    std::printf("%s n=%zu churn=%.3f reps=%zu continuity=%.4f index=%.4f "
                "prefetch_oh=%.5f\n",
                opt.scenario.empty() ? system_name : opt.scenario.c_str(),
                nodes, churn, opt.replications, experiment.continuity.mean(),
                experiment.continuity_index.mean(),
                experiment.prefetch_overhead.mean());
  }

  if (!opt.csv_path.empty()) {
    if (opt.csv_mode == "per-rep" && opt.replications > 1) {
      // One file per replication: <out>.rep<k>.csv (a trailing .csv on
      // the given path becomes the stem).
      std::string stem = opt.csv_path;
      if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, ".csv") == 0) {
        stem.erase(stem.size() - 4);
      }
      for (std::size_t k = 0; k < experiment.runs.size(); ++k) {
        const std::string path = stem + ".rep" + std::to_string(k) + ".csv";
        experiment.runs[k].collector.write_csv(path);
        if (!opt.quiet) std::printf("series CSV        : %s\n", path.c_str());
      }
    } else if (opt.csv_mode == "long" && opt.replications > 1) {
      // Merged long format: replication,series,time,value. CsvWriter
      // RFC-4180-quotes hostile series names (commas, newlines) instead
      // of letting them shear the column grid.
      util::CsvWriter csv(opt.csv_path, {"replication", "series", "time", "value"});
      if (!csv.ok()) {
        std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
        return 1;
      }
      for (std::size_t k = 0; k < experiment.runs.size(); ++k) {
        const auto& collector = experiment.runs[k].collector;
        for (const auto& name : collector.names()) {
          for (const auto& sample : collector.series(name)) {
            csv.add_row({std::to_string(k), name, util::Table::num(sample.time, 6),
                         util::Table::num(sample.value, 10)});
          }
        }
      }
      if (!opt.quiet) {
        std::printf("series CSV        : %s (long format, %zu replications)\n",
                    opt.csv_path.c_str(), experiment.runs.size());
      }
    } else {
      first.collector.write_csv(opt.csv_path);
      if (!opt.quiet) std::printf("series CSV        : %s\n", opt.csv_path.c_str());
    }
  }

  if (first.obs) {
    const obs::ObsReport& report = *first.obs;
    if (report.profile && !opt.quiet) obs::print_profile(report, stdout);
    if (!opt.trace_out.empty()) {
      if (!obs::write_chrome_trace(report, opt.trace_out)) {
        std::fprintf(stderr, "cannot write %s\n", opt.trace_out.c_str());
        return 1;
      }
      if (!opt.quiet) {
        std::printf("trace JSON        : %s (%zu events, %zu spans)\n",
                    opt.trace_out.c_str(), report.events.size(),
                    report.spans.size());
      }
    }
    if (!opt.stats_json.empty()) {
      const std::vector<std::pair<std::string, double>> headline = {
          {"stable_continuity", first.stable_continuity},
          {"continuity_index", first.continuity_index},
          {"control_overhead", first.control_overhead},
          {"prefetch_overhead", first.prefetch_overhead},
      };
      const std::string label =
          opt.scenario.empty() ? std::string(system_name) : opt.scenario;
      if (!obs::write_stats_json(report, opt.stats_json, label, first.seed,
                                 headline)) {
        std::fprintf(stderr, "cannot write %s\n", opt.stats_json.c_str());
        return 1;
      }
      if (!opt.quiet) {
        std::printf("stats JSON        : %s\n", opt.stats_json.c_str());
      }
    }
  }
  return 0;
}
