// continu_sim — command-line driver for the ContinuStreaming simulator.
//
// Runs one full session on a synthetic clip2-style trace (or a trace
// file) and reports the paper's metrics. Designed for scripted sweeps:
// every knob of SystemConfig that the evaluation varies is a flag, and
// --csv dumps the per-round series for plotting.
//
// Examples:
//   continu_sim --nodes 1000 --duration 45
//   continu_sim --nodes 1000 --churn 0.05 --system cool --seed 3
//   continu_sim --trace snapshot.trace --system gridmedia --csv run.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"
#include "trace/trace.hpp"

namespace {

struct CliOptions {
  std::size_t nodes = 1000;
  double duration = 45.0;
  double stable_from = 20.0;
  double churn = 0.0;
  std::uint64_t seed = 42;
  std::uint64_t trace_seed = 1;
  std::size_t neighbors = 5;
  unsigned replicas = 4;
  unsigned prefetch_limit = 5;
  bool homogeneous = false;
  std::string system = "continu";
  std::string trace_path;
  std::string csv_path;
  bool quiet = false;
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --nodes N          overlay size for the synthetic trace (default 1000)\n"
      "  --trace FILE       load a trace snapshot instead of generating one\n"
      "  --duration SEC     virtual seconds to simulate (default 45)\n"
      "  --stable-from SEC  start of the stable measurement window (default 20)\n"
      "  --system NAME      continu | cool | gridmedia (default continu)\n"
      "  --churn F          per-round leave AND join fraction (default 0 = static)\n"
      "  --neighbors M      connected-neighbor target (default 5)\n"
      "  --replicas K       DHT backups per segment (default 4)\n"
      "  --prefetch-limit L max pre-fetches per invocation (default 5)\n"
      "  --homogeneous      give every node the mean bandwidth\n"
      "  --seed S           simulation seed (default 42)\n"
      "  --trace-seed S     trace generator seed (default 1)\n"
      "  --csv FILE         dump per-round series as CSV\n"
      "  --quiet            print only the final summary line\n"
      "  --help             this text\n",
      argv0);
}

[[nodiscard]] std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return std::nullopt;
    } else if (arg == "--nodes") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.nodes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_path = v;
    } else if (arg == "--duration") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.duration = std::strtod(v, nullptr);
    } else if (arg == "--stable-from") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.stable_from = std::strtod(v, nullptr);
    } else if (arg == "--system") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.system = v;
    } else if (arg == "--churn") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.churn = std::strtod(v, nullptr);
    } else if (arg == "--neighbors") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.neighbors = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--replicas") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.replicas = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--prefetch-limit") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.prefetch_limit = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--homogeneous") {
      opt.homogeneous = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-seed") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.trace_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.csv_path = v;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      print_usage(argv[0]);
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) return 1;
  const CliOptions& opt = *parsed;

  core::SystemConfig config;
  config.seed = opt.seed;
  config.connected_neighbors = opt.neighbors;
  config.backup_replicas = opt.replicas;
  config.prefetch_limit = opt.prefetch_limit;
  config.heterogeneous_bandwidth = !opt.homogeneous;
  if (opt.churn > 0.0) {
    config.churn_enabled = true;
    config.churn.leave_fraction = opt.churn;
    config.churn.join_fraction = opt.churn;
  }
  if (opt.system == "cool") {
    config.scheduler = core::SchedulerKind::kCoolStreaming;
  } else if (opt.system == "gridmedia") {
    config.scheduler = core::SchedulerKind::kGridMediaPushPull;
  } else if (opt.system != "continu") {
    std::fprintf(stderr, "unknown system '%s' (continu|cool|gridmedia)\n",
                 opt.system.c_str());
    return 1;
  }

  trace::TraceSnapshot snapshot = [&] {
    if (!opt.trace_path.empty()) {
      return trace::TraceSnapshot::load_file(opt.trace_path);
    }
    trace::GeneratorConfig tc;
    tc.node_count = opt.nodes;
    tc.seed = opt.trace_seed;
    return trace::generate_snapshot(tc);
  }();
  config.expected_nodes = static_cast<double>(snapshot.node_count());

  core::Session session(config, snapshot);
  session.run(opt.duration);

  const double continuity = session.continuity().stable_mean(opt.stable_from);
  const double index =
      session.collector().mean_from("continuity_index", opt.stable_from);
  const auto& stats = session.stats();

  if (!opt.quiet) {
    std::printf("system            : %s\n", opt.system.c_str());
    std::printf("nodes             : %zu (alive at end: %zu)\n",
                snapshot.node_count(), session.alive_count());
    std::printf("duration          : %.0f s (stable window from %.0f s)\n",
                opt.duration, opt.stable_from);
    std::printf("playback continuity: %.4f\n", continuity);
    std::printf("continuity index  : %.4f\n", index);
    std::printf("control overhead  : %.5f\n", session.traffic().control_overhead());
    std::printf("prefetch overhead : %.5f (stable-phase %.5f)\n",
                session.traffic().prefetch_overhead(),
                session.collector().mean_from("prefetch_overhead_round",
                                              opt.stable_from));
    std::printf("emitted/delivered : %lld / %llu (duplicates %llu, pushed %llu)\n",
                static_cast<long long>(session.emitted()),
                static_cast<unsigned long long>(stats.segments_delivered),
                static_cast<unsigned long long>(stats.duplicate_deliveries),
                static_cast<unsigned long long>(stats.segments_pushed));
    std::printf("prefetch launched : %llu (ok %llu, no-replica %llu)\n",
                static_cast<unsigned long long>(stats.prefetch_launched),
                static_cast<unsigned long long>(stats.prefetch_succeeded),
                static_cast<unsigned long long>(stats.prefetch_no_replica));
    std::printf("churn             : joins %llu, leaves %llu (graceful %llu)\n",
                static_cast<unsigned long long>(stats.joins),
                static_cast<unsigned long long>(stats.graceful_leaves +
                                                stats.abrupt_leaves),
                static_cast<unsigned long long>(stats.graceful_leaves));
  } else {
    std::printf("%s n=%zu churn=%.3f continuity=%.4f index=%.4f prefetch_oh=%.5f\n",
                opt.system.c_str(), snapshot.node_count(), opt.churn, continuity,
                index, session.traffic().prefetch_overhead());
  }

  if (!opt.csv_path.empty()) {
    session.collector().write_csv(opt.csv_path);
    if (!opt.quiet) std::printf("series CSV        : %s\n", opt.csv_path.c_str());
  }
  return 0;
}
