#!/usr/bin/env python3
"""Dead-link gate for the markdown docs.

Scans README.md and every .md file under docs/ for relative markdown
links and FAILS (exit 1) when a target does not exist on disk — so a
renamed file or a typo'd path breaks the push, not the next reader.

    check_docs_links.py [--root REPO_ROOT]

What counts as a link: inline markdown links ``[text](target)`` and
reference definitions ``[label]: target``. External schemes
(http/https/mailto) and pure in-page anchors (``#section``) are
skipped; a ``path#fragment`` target is checked for the path's
existence (fragments themselves are not resolved — headings move too
often for that to gate usefully). Links inside fenced code blocks are
ignored: they are examples, not navigation.

Exit codes: 0 all links resolve, 1 dead link(s), 2 usage error.
"""

import argparse
import pathlib
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_links(text: str):
    """Yields (line_number, target) for every checkable link."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE_LINK.finditer(line):
            yield number, match.group(1)
        ref = REF_DEF.match(line)
        if ref:
            yield number, ref.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for line_number, target in iter_links(text):
        if target.startswith(SKIP_PREFIXES):
            continue
        # Strip an in-page fragment; an empty remainder was anchor-only.
        target_path = target.split("#", 1)[0]
        if not target_path:
            continue
        if target_path.startswith("/"):
            # Site-absolute paths have no meaning in a git checkout.
            errors.append(
                f"{path.relative_to(root)}:{line_number}: absolute link "
                f"'{target}' — use a relative path"
            )
            continue
        resolved = (path.parent / target_path).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}:{line_number}: dead link "
                f"'{target}' (resolved to {resolved})"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"link gate: not a directory: {root}", file=sys.stderr)
        return 2

    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    if not files:
        print("link gate: no markdown files found — wrong --root?",
              file=sys.stderr)
        return 2

    errors = []
    checked = 0
    for path in files:
        checked += 1
        errors.extend(check_file(path, root))

    if errors:
        for error in errors:
            print(f"link gate: {error}", file=sys.stderr)
        print(
            f"link gate: FAIL — {len(errors)} dead link(s) across "
            f"{checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"link gate: OK — all relative links resolve in {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
