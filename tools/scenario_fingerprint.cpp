// scenario_fingerprint — determinism oracle for the simulation engine.
//
// Runs every named scenario from the shared matrix at a fixed
// (seed, config, trace) and prints one line per scenario containing
// every SessionStats counter, the headline metrics at full precision,
// and an FNV-1a hash folded over the raw bits of every per-round
// series sample. Two builds produce identical output iff their
// engines execute bit-identical sessions — diff the output across an
// engine change to prove nothing drifted.
//
// --threads N runs every session through the intra-session parallel
// executor at that width. The output is REQUIRED to be byte-identical
// for every N — diffing --threads 1 against --threads 4 is the CI
// determinism gate for the fork/join engine.
//
// The default sweep covers the matrix MINUS scenarios above 10k nodes
// (static_100k alone takes ~15 minutes per thread setting); pass
// --include-large to sweep those too, or name them via --only.
//
// --obs runs every session with the full observability layer enabled
// (profiler + trace + counters) while printing the SAME output — the
// obs-on vs obs-off diff is the CI gate proving observability never
// perturbs the engine.
//
// --sharded-queue runs every session on the sharded event-queue
// engine (per-shard heaps + meta-heap frontier) while printing the
// SAME output — the on-vs-off diff is the CI gate proving the sharded
// engine is byte-identical to the single-queue oracle.
//
// --queue-skew K (with --sharded-queue) selects the lax bounded-skew
// drain. K = 0 must print bytes identical to strict mode; each K >= 1
// prints a DIFFERENT but deterministic baseline that must be identical
// at every --threads value — both properties are CI diff gates.
//
// --only accepts exact scenario names AND family prefixes: "--only
// q1_" expands to every q1_* scenario (matrix + families, registry
// order). A selector matching nothing is still a hard error.
//
//   scenario_fingerprint [--seed S] [--only NAME[,NAME...]] [--threads N]
//                        [--include-large] [--obs] [--sharded-queue] [--quiet]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "runner/cli.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  using namespace continu;

  std::uint64_t seed = 42;
  unsigned threads = 1;
  bool include_large = false;
  bool obs = false;
  bool sharded_queue = false;
  unsigned queue_skew = 0;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        // A silently-mangled seed would shift the baseline being
        // diffed — worse than an error for a determinism oracle.
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      seed = *parsed;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_positive_u32(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--threads expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      threads = *parsed;
    } else if (std::strcmp(argv[i], "--include-large") == 0) {
      include_large = true;
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs = true;
    } else if (std::strcmp(argv[i], "--sharded-queue") == 0) {
      sharded_queue = true;
    } else if (std::strcmp(argv[i], "--queue-skew") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--queue-skew expects an integer >= 0\n");
        return 1;
      }
      queue_skew = static_cast<unsigned>(*parsed);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) only.push_back(std::move(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed S] [--only NAME[,NAME...]] [--threads N] "
                   "[--include-large] [--obs] [--sharded-queue] "
                   "[--queue-skew K] [--quiet]\n",
                   argv[0]);
      return 1;
    }
  }

  // Resolve --only selectors up front: exact names take one scenario,
  // family prefixes ("q1_") expand to every member. A selector that
  // matches NOTHING is an error, not a silent skip: a renamed scenario
  // must fail the CI fingerprint step, not vacuously pass it.
  std::vector<runner::Scenario> selected;
  for (const auto& name : only) {
    auto expanded = runner::expand_scenario_selector(name);
    if (expanded.empty()) {
      std::fprintf(stderr, "%s\n",
                   runner::cli::unknown_scenario_message(name).c_str());
      return 1;
    }
    for (auto& scenario : expanded) selected.push_back(std::move(scenario));
  }

  // Default sweep: the core matrix, MINUS production-scale scenarios
  // (minutes each — they would make the everyday oracle unusable and
  // developers would stop running it). --include-large or --only adds
  // them back; the skip is announced so it can never pass silently as
  // "full coverage". With --only, run exactly the named scenarios —
  // matrix or family members — in the order given, so a family name
  // can never produce a vacuously-empty (and trivially diff-clean)
  // output.
  constexpr std::size_t kLargeNodeThreshold = 10000;
  std::vector<runner::Scenario> scenarios;
  if (only.empty()) {
    for (const auto& scenario : runner::scenario_matrix()) {
      if (!include_large && scenario.node_count > kLargeNodeThreshold) {
        util::Log(util::LogLevel::kWarn)
            << "skipping " << scenario.name << " (" << scenario.node_count
            << " nodes > " << kLargeNodeThreshold << "; pass --include-large or "
            << "--only " << scenario.name << " to run it)";
        continue;
      }
      scenarios.push_back(scenario);
    }
  } else {
    scenarios = std::move(selected);
  }

  for (const auto& scenario : scenarios) {
    auto spec = runner::spec_for(scenario, seed);
    spec.config.threads = threads;
    spec.config.sharded_queue = sharded_queue;
    spec.config.queue_skew_buckets = queue_skew;
    if (obs) {
      spec.config.obs.profile = true;
      spec.config.obs.trace = true;
      spec.config.obs.counters = true;
    }
    const auto run = runner::ExperimentRunner::run_one(spec);
    const auto& s = run.stats;
    std::printf(
        "%s seed=%" PRIu64
        " emitted=%" PRIu64 " delivered=%" PRIu64 " dup=%" PRIu64 " req=%" PRIu64
        " booked=%" PRIu64 " refused=%" PRIu64 " cand=%" PRIu64 " unassigned=%" PRIu64
        " pf_launch=%" PRIu64 " pf_ok=%" PRIu64 " pf_norep=%" PRIu64 " pf_supp=%" PRIu64
        " pushed=%" PRIu64 " dht_msg=%" PRIu64 " dht_fail=%" PRIu64
        " joins=%" PRIu64 " leave_g=%" PRIu64 " leave_a=%" PRIu64
        " repl=%" PRIu64 " timeouts=%" PRIu64 " mixedfb=%" PRIu64 " dropped=%" PRIu64
        " lost=%" PRIu64 " part=%" PRIu64 " crash=%" PRIu64
        " retrybo=%" PRIu64 " blkl=%" PRIu64 " stallep=%" PRIu64 " stallrd=%" PRIu64
        " continuity=%.17g index=%.17g ctrl=%.17g pf_oh=%.17g alive=%zu hash=%016" PRIx64
        "\n",
        scenario.name.c_str(), seed, s.segments_emitted, s.segments_delivered,
        s.duplicate_deliveries, s.requests_sent, s.segments_booked, s.segments_refused,
        s.candidates_seen, s.candidates_unassigned, s.prefetch_launched,
        s.prefetch_succeeded, s.prefetch_no_replica, s.prefetch_suppressed,
        s.segments_pushed, s.dht_route_messages, s.dht_route_failures, s.joins,
        s.graceful_leaves, s.abrupt_leaves, s.neighbor_replacements, s.transfer_timeouts,
        s.mixed_batch_fallbacks, s.deliveries_dropped,
        s.deliveries_lost, s.deliveries_partitioned, s.fault_crashes,
        s.retry_backoffs, s.suppliers_blacklisted, s.stall_episodes, s.stall_rounds,
        run.stable_continuity, run.continuity_index, run.control_overhead,
        run.prefetch_overhead, run.alive_at_end, runner::result_fingerprint(run));
    std::fflush(stdout);
  }
  return 0;
}
