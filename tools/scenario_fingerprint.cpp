// scenario_fingerprint — determinism oracle for the simulation engine.
//
// Runs every named scenario from the shared matrix at a fixed
// (seed, config, trace) and prints one line per scenario containing
// every SessionStats counter, the headline metrics at full precision,
// and an FNV-1a hash folded over the raw bits of every per-round
// series sample. Two builds produce identical output iff their
// engines execute bit-identical sessions — diff the output across an
// engine change to prove nothing drifted.
//
//   scenario_fingerprint [--seed S] [--only NAME[,NAME...]]

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
}

[[nodiscard]] std::uint64_t series_hash(const continu::runner::ReplicationResult& run) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& round : run.continuity.rounds()) {
    fnv_mix(hash, &round.time, sizeof(round.time));
    fnv_mix(hash, &round.continuous_nodes, sizeof(round.continuous_nodes));
    fnv_mix(hash, &round.counted_nodes, sizeof(round.counted_nodes));
  }
  for (const auto& name : run.collector.names()) {
    fnv_mix(hash, name.data(), name.size());
    for (const auto& sample : run.collector.series(name)) {
      fnv_mix(hash, &sample.time, sizeof(sample.time));
      fnv_mix(hash, &sample.value, sizeof(sample.value));
    }
  }
  return hash;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  std::uint64_t seed = 42;
  std::vector<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        std::string name =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!name.empty()) only.push_back(std::move(name));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--seed S] [--only NAME[,NAME...]]\n", argv[0]);
      return 1;
    }
  }

  // Unknown --only names are an error, not a silent skip: a renamed
  // scenario must fail the CI fingerprint step, not vacuously pass it.
  for (const auto& name : only) {
    if (!runner::find_scenario(name).has_value()) {
      std::fprintf(stderr, "unknown scenario '%s' in --only\n", name.c_str());
      return 1;
    }
  }

  for (const auto& scenario : runner::scenario_matrix()) {
    if (!only.empty()) {
      bool wanted = false;
      for (const auto& name : only) wanted = wanted || name == scenario.name;
      if (!wanted) continue;
    }
    const auto spec = runner::spec_for(scenario, seed);
    const auto run = runner::ExperimentRunner::run_one(spec);
    const auto& s = run.stats;
    std::printf(
        "%s seed=%" PRIu64
        " emitted=%" PRIu64 " delivered=%" PRIu64 " dup=%" PRIu64 " req=%" PRIu64
        " booked=%" PRIu64 " refused=%" PRIu64 " cand=%" PRIu64 " unassigned=%" PRIu64
        " pf_launch=%" PRIu64 " pf_ok=%" PRIu64 " pf_norep=%" PRIu64 " pf_supp=%" PRIu64
        " pushed=%" PRIu64 " dht_msg=%" PRIu64 " dht_fail=%" PRIu64
        " joins=%" PRIu64 " leave_g=%" PRIu64 " leave_a=%" PRIu64
        " repl=%" PRIu64 " timeouts=%" PRIu64
        " continuity=%.17g index=%.17g ctrl=%.17g pf_oh=%.17g alive=%zu hash=%016" PRIx64
        "\n",
        scenario.name.c_str(), seed, s.segments_emitted, s.segments_delivered,
        s.duplicate_deliveries, s.requests_sent, s.segments_booked, s.segments_refused,
        s.candidates_seen, s.candidates_unassigned, s.prefetch_launched,
        s.prefetch_succeeded, s.prefetch_no_replica, s.prefetch_suppressed,
        s.segments_pushed, s.dht_route_messages, s.dht_route_failures, s.joins,
        s.graceful_leaves, s.abrupt_leaves, s.neighbor_replacements, s.transfer_timeouts,
        run.stable_continuity, run.continuity_index, run.control_overhead,
        run.prefetch_overhead, run.alive_at_end, series_hash(run));
    std::fflush(stdout);
  }
  return 0;
}
