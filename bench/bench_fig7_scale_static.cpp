// Figure 7 reproduction: stable-phase playback continuity vs overlay
// size {100, 500, 1000, 2000, 4000, 8000}, static environment, M = 5.
// The paper reports both systems degrading as n grows while the
// improvement delta = PC_new - PC_old widens — larger networks benefit
// more from ContinuStreaming.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 7",
                      "stable continuity vs overlay size, static environment");

  // Build the whole sweep up front — (6 sizes x 2 systems) — and let the
  // runner shard it across cores. The size grid lives in the scenario
  // matrix as the fig7 family; each size's snapshot is built once and
  // shared by the continu/cool pair.
  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000, 8000};
  std::vector<runner::ReplicationSpec> specs;
  for (const std::size_t n : sizes) {
    const auto scenario =
        bench::require_scenario("fig7_static_" + std::to_string(n));
    const auto config = scenario.make_config(11);
    const auto snapshot = std::make_shared<const continu::trace::TraceSnapshot>(
        trace::generate_snapshot(scenario.make_trace()));
    specs.push_back(bench::snapshot_spec(config, snapshot, "continu"));
    specs.push_back(bench::snapshot_spec(config.as_coolstreaming(), snapshot, "cool"));
  }
  const auto results = bench::run_batch(specs);

  util::Table table({"nodes", "CoolStreaming", "ContinuStreaming", "delta"});
  util::CsvWriter csv("fig7_scale_static.csv",
                      {"nodes", "coolstreaming", "continustreaming", "delta"});

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& cont = results[2 * i];
    const auto& cool = results[2 * i + 1];
    const double delta = cont.stable_continuity - cool.stable_continuity;
    table.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity, 3),
                   util::Table::num(delta, 3)});
    csv.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 4),
                 util::Table::num(cont.stable_continuity, 4),
                 util::Table::num(delta, 4)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: both curves decline with n; ContinuStreaming stays\n"
              "near 1.0 while the delta grows — larger networks benefit more.\n"
              "CSV: fig7_scale_static.csv\n");
  return 0;
}
