// Figure 7 reproduction: stable-phase playback continuity vs overlay
// size {100, 500, 1000, 2000, 4000, 8000}, static environment, M = 5.
// The paper reports both systems degrading as n grows while the
// improvement delta = PC_new - PC_old widens — larger networks benefit
// more from ContinuStreaming.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 7",
                      "stable continuity vs overlay size, static environment");

  util::Table table({"nodes", "CoolStreaming", "ContinuStreaming", "delta"});
  util::CsvWriter csv("fig7_scale_static.csv",
                      {"nodes", "coolstreaming", "continustreaming", "delta"});

  for (const std::size_t n : {100u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const auto snapshot = bench::standard_trace(n, 300 + n);
    const auto config = bench::standard_config(n, 11, /*churn=*/false);
    const auto cont = bench::run_summary(config, snapshot);
    const auto cool = bench::run_summary(config.as_coolstreaming(), snapshot);
    const double delta = cont.stable_continuity - cool.stable_continuity;
    table.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity, 3),
                   util::Table::num(delta, 3)});
    csv.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 4),
                 util::Table::num(cont.stable_continuity, 4),
                 util::Table::num(delta, 4)});
    std::printf("  n=%zu done\n", n);
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: both curves decline with n; ContinuStreaming stays\n"
              "near 1.0 while the delta grows — larger networks benefit more.\n"
              "CSV: fig7_scale_static.csv\n");
  return 0;
}
