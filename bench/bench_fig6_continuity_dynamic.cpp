// Figure 6 reproduction: per-round playback continuity track in a
// dynamic environment (5% leaves + 5% joins per scheduling period),
// 1000 nodes. The paper reports CoolStreaming around 0.78 and
// ContinuStreaming around 0.95, i.e. a LARGER improvement than the
// static case — ContinuStreaming helps more when churn bites.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 6",
                      "playback continuity track, dynamic environment, 1000 nodes");

  const auto continu_scn = bench::require_scenario("dynamic_1k");
  const auto cool_scn = bench::require_scenario("cool_dynamic_1k");
  const auto results = bench::run_batch({runner::spec_for(continu_scn, 9),
                                         runner::spec_for(cool_scn, 9)});
  const auto& continu_run = results[0];
  const auto& cool_run = results[1];

  util::Table table({"time (s)", "CoolStreaming", "ContinuStreaming"});
  util::CsvWriter csv("fig6_continuity_dynamic.csv",
                      {"time", "coolstreaming", "continustreaming"});
  const auto& cool = cool_run.continuity.rounds();
  const auto& cont = continu_run.continuity.rounds();
  for (std::size_t i = 0; i < cool.size() && i < cont.size(); ++i) {
    table.add_row({util::Table::num(cool[i].time, 0), util::Table::num(cool[i].ratio(), 3),
                   util::Table::num(cont[i].ratio(), 3)});
    csv.add_row({util::Table::num(cool[i].time, 1), util::Table::num(cool[i].ratio(), 4),
                 util::Table::num(cont[i].ratio(), 4)});
  }
  std::printf("%s", table.render().c_str());

  const double cool_stable = cool_run.stable_continuity;
  const double cont_stable = continu_run.stable_continuity;
  std::printf("\nStable phase (t >= 20 s): CoolStreaming %.3f, ContinuStreaming %.3f, "
              "delta %.3f\n", cool_stable, cont_stable, cont_stable - cool_stable);
  std::printf("Paper expectation: ~0.78 vs ~0.95; the dynamic delta exceeds the\n"
              "static one. CSV: fig6_continuity_dynamic.csv\n");
  return 0;
}
