// Figure 6 reproduction: per-round playback continuity track in a
// dynamic environment (5% leaves + 5% joins per scheduling period),
// 1000 nodes. The paper reports CoolStreaming around 0.78 and
// ContinuStreaming around 0.95, i.e. a LARGER improvement than the
// static case — ContinuStreaming helps more when churn bites.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 6",
                      "playback continuity track, dynamic environment, 1000 nodes");

  const auto snapshot = bench::standard_trace(1000, 56);
  const auto config = bench::standard_config(1000, 9, /*churn=*/true);

  core::Session continu_session(config, snapshot);
  continu_session.run(45.0);
  core::Session cool_session(config.as_coolstreaming(), snapshot);
  cool_session.run(45.0);

  util::Table table({"time (s)", "CoolStreaming", "ContinuStreaming"});
  util::CsvWriter csv("fig6_continuity_dynamic.csv",
                      {"time", "coolstreaming", "continustreaming"});
  const auto& cool = cool_session.continuity().rounds();
  const auto& cont = continu_session.continuity().rounds();
  for (std::size_t i = 0; i < cool.size() && i < cont.size(); ++i) {
    table.add_row({util::Table::num(cool[i].time, 0), util::Table::num(cool[i].ratio(), 3),
                   util::Table::num(cont[i].ratio(), 3)});
    csv.add_row({util::Table::num(cool[i].time, 1), util::Table::num(cool[i].ratio(), 4),
                 util::Table::num(cont[i].ratio(), 4)});
  }
  std::printf("%s", table.render().c_str());

  const double cool_stable = cool_session.continuity().stable_mean(20.0);
  const double cont_stable = continu_session.continuity().stable_mean(20.0);
  std::printf("\nStable phase (t >= 20 s): CoolStreaming %.3f, ContinuStreaming %.3f, "
              "delta %.3f\n", cool_stable, cont_stable, cont_stable - cool_stable);
  std::printf("Paper expectation: ~0.78 vs ~0.95; the dynamic delta exceeds the\n"
              "static one. CSV: fig6_continuity_dynamic.csv\n");
  return 0;
}
