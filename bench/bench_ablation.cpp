// Ablation benches for the design choices DESIGN.md calls out:
//   (a) backup replication factor k in {1, 2, 4, 6};
//   (b) per-invocation pre-fetch cap l in {0, 2, 5, 10};
//   (c) graceful vs abrupt departures under churn;
//   (d) connected-neighbor target M in {3, 5, 8} (paper: larger M does
//       not notably help — the inbound rate is the constraint);
//   (e) pull vs push-pull vs DHT-assisted system comparison.
// Each table reports stable continuity and pre-fetch overhead.
//
// All 17 sessions share one 500-node snapshot and run as a single
// ExperimentRunner batch, so the whole ablation grid fills the machine.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kNodes = 500;

}  // namespace

int main() {
  using namespace continu;

  const auto snapshot = std::make_shared<const trace::TraceSnapshot>(
      bench::standard_trace(kNodes, 700));
  util::CsvWriter csv("ablations.csv", {"ablation", "setting", "continuity", "prefetch_overhead"});

  // Build the full grid of specs, then run it as one parallel batch.
  const std::vector<unsigned> replicas = {1, 2, 4, 6};
  const std::vector<unsigned> prefetch_caps = {0, 2, 5, 10};
  const std::vector<double> graceful = {0.0, 0.5, 1.0};
  const std::vector<std::size_t> neighbor_targets = {3, 5, 8};
  struct SystemRow { const char* name; core::SchedulerKind kind; };
  const std::vector<SystemRow> systems = {
      {"CoolStreaming (pull)", core::SchedulerKind::kCoolStreaming},
      {"GridMedia (push-pull)", core::SchedulerKind::kGridMediaPushPull},
      {"ContinuStreaming (pull+DHT)", core::SchedulerKind::kContinuStreaming},
  };

  std::vector<runner::ReplicationSpec> specs;
  for (const unsigned k : replicas) {
    auto config = bench::standard_config(kNodes, 29, false);
    config.backup_replicas = k;
    specs.push_back(bench::snapshot_spec(config, snapshot, "replicas_k"));
  }
  for (const unsigned l : prefetch_caps) {
    auto config = bench::standard_config(kNodes, 31, false);
    config.prefetch_limit = l;
    specs.push_back(bench::snapshot_spec(config, snapshot, "prefetch_l"));
  }
  for (const double g : graceful) {
    auto config = bench::standard_config(kNodes, 37, true);
    config.churn.graceful_fraction = g;
    specs.push_back(bench::snapshot_spec(config, snapshot, "graceful_fraction"));
  }
  for (const std::size_t m : neighbor_targets) {
    auto config = bench::standard_config(kNodes, 41, false);
    config.connected_neighbors = m;
    specs.push_back(bench::snapshot_spec(config, snapshot, "neighbors_m"));
  }
  for (const auto& row : systems) {
    auto config = bench::standard_config(kNodes, 43, false);
    config.scheduler = row.kind;
    specs.push_back(bench::snapshot_spec(config, snapshot, "system"));
  }

  const auto results = bench::run_batch(specs);
  std::size_t next = 0;

  // (a) replication factor k ---------------------------------------------
  bench::print_header("Ablation A", "backup replication factor k (static, 500 nodes)");
  {
    util::Table table({"k", "continuity", "prefetch overhead", "prefetch ok", "no replica"});
    for (const unsigned k : replicas) {
      const auto& run = results[next++];
      table.add_row({std::to_string(k), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4),
                     std::to_string(run.stats.prefetch_succeeded),
                     std::to_string(run.stats.prefetch_no_replica)});
      csv.add_row({"replicas_k", std::to_string(k),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: no-replica failures drop as k grows (model: 2^-k);\n"
                "k = 4 (the paper's choice) is near the knee.\n");
  }

  // (b) pre-fetch cap l -----------------------------------------------------
  bench::print_header("Ablation B", "per-invocation pre-fetch cap l (static, 500 nodes)");
  {
    util::Table table({"l", "continuity", "prefetch overhead", "launched"});
    for (const unsigned l : prefetch_caps) {
      const auto& run = results[next++];
      table.add_row({std::to_string(l), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4),
                     std::to_string(run.stats.prefetch_launched)});
      csv.add_row({"prefetch_l", std::to_string(l),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: l = 0 disables pre-fetch (gossip-only continuity);\n"
                "overhead grows with l while the continuity gain saturates.\n");
  }

  // (c) graceful vs abrupt churn -------------------------------------------
  bench::print_header("Ablation C", "graceful vs abrupt departures (dynamic, 500 nodes)");
  {
    util::Table table({"graceful fraction", "continuity", "prefetch overhead"});
    for (const double g : graceful) {
      const auto& run = results[next++];
      table.add_row({util::Table::num(g, 1), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4)});
      csv.add_row({"graceful_fraction", util::Table::num(g, 1),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: graceful handover preserves VoD backups, so higher\n"
                "graceful fractions keep pre-fetch more effective under churn.\n");
  }

  // (d) connected-neighbor target M ------------------------------------------
  bench::print_header("Ablation D", "connected-neighbor target M (static, 500 nodes)");
  {
    util::Table table({"M", "continuity", "control overhead"});
    for (const std::size_t m : neighbor_targets) {
      const auto& run = results[next++];
      table.add_row({std::to_string(m), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.control_overhead, 5)});
      csv.add_row({"neighbors_m", std::to_string(m),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.control_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation (paper Section 5.4.1): larger M brings no notable\n"
                "continuity gain — the inbound rate is the constraint — while the\n"
                "control overhead grows ~ M/495.\n");
  }

  // (e) three-system comparison --------------------------------------------
  bench::print_header("Ablation E",
                      "system comparison: pull vs push-pull vs DHT-assisted (500 nodes)");
  {
    util::Table table({"system", "continuity", "duplicates/delivered", "prefetch oh"});
    for (const auto& row : systems) {
      const auto& run = results[next++];
      const double dup_ratio =
          static_cast<double>(run.stats.duplicate_deliveries) /
          static_cast<double>(std::max<std::uint64_t>(run.stats.segments_delivered, 1));
      table.add_row({row.name, util::Table::num(run.stable_continuity, 3),
                     util::Table::num(dup_ratio, 3),
                     util::Table::num(run.prefetch_overhead, 4)});
      csv.add_row({"system", row.name, util::Table::num(run.stable_continuity, 4),
                   util::Table::num(dup_ratio, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation (paper Section 2): push-pull improves on pure pull but\n"
                "carries redundant transmissions; the DHT-assisted system reaches the\n"
                "highest continuity with bounded, targeted extra traffic.\n");
  }

  std::printf("\nCSV: ablations.csv\n");
  return 0;
}
