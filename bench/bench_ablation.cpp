// Ablation benches for the design choices DESIGN.md calls out:
//   (a) backup replication factor k in {1, 2, 4, 6};
//   (b) per-invocation pre-fetch cap l in {0, 2, 5, 10};
//   (c) the rarest-first pipeline weight w in {0, 0.5, 0.9}
//       (w = 0 is the paper's literal eq. 3 priority);
//   (d) graceful vs abrupt departures under churn;
//   (e) connected-neighbor target M in {3, 5, 8} (paper: larger M does
//       not notably help — the inbound rate is the constraint).
// Each table reports stable continuity and pre-fetch overhead.
//
// Note: the rarest weight is a compile-time config of the priority
// model inputs used by the session, exposed here through the config.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kNodes = 500;

}  // namespace

int main() {
  using namespace continu;

  const auto snapshot = bench::standard_trace(kNodes, 700);
  util::CsvWriter csv("ablations.csv", {"ablation", "setting", "continuity", "prefetch_overhead"});

  // (a) replication factor k ---------------------------------------------
  bench::print_header("Ablation A", "backup replication factor k (static, 500 nodes)");
  {
    util::Table table({"k", "continuity", "prefetch overhead", "prefetch ok", "no replica"});
    for (const unsigned k : {1u, 2u, 4u, 6u}) {
      auto config = bench::standard_config(kNodes, 29, false);
      config.backup_replicas = k;
      const auto run = bench::run_summary(config, snapshot);
      table.add_row({std::to_string(k), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4),
                     std::to_string(run.stats.prefetch_succeeded),
                     std::to_string(run.stats.prefetch_no_replica)});
      csv.add_row({"replicas_k", std::to_string(k),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: no-replica failures drop as k grows (model: 2^-k);\n"
                "k = 4 (the paper's choice) is near the knee.\n");
  }

  // (b) pre-fetch cap l -----------------------------------------------------
  bench::print_header("Ablation B", "per-invocation pre-fetch cap l (static, 500 nodes)");
  {
    util::Table table({"l", "continuity", "prefetch overhead", "launched"});
    for (const unsigned l : {0u, 2u, 5u, 10u}) {
      auto config = bench::standard_config(kNodes, 31, false);
      config.prefetch_limit = l;
      const auto run = bench::run_summary(config, snapshot);
      table.add_row({std::to_string(l), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4),
                     std::to_string(run.stats.prefetch_launched)});
      csv.add_row({"prefetch_l", std::to_string(l),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: l = 0 disables pre-fetch (gossip-only continuity);\n"
                "overhead grows with l while the continuity gain saturates.\n");
  }

  // (c) graceful vs abrupt churn -------------------------------------------
  bench::print_header("Ablation C", "graceful vs abrupt departures (dynamic, 500 nodes)");
  {
    util::Table table({"graceful fraction", "continuity", "prefetch overhead"});
    for (const double g : {0.0, 0.5, 1.0}) {
      auto config = bench::standard_config(kNodes, 37, true);
      config.churn.graceful_fraction = g;
      const auto run = bench::run_summary(config, snapshot);
      table.add_row({util::Table::num(g, 1), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.prefetch_overhead, 4)});
      csv.add_row({"graceful_fraction", util::Table::num(g, 1),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.prefetch_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation: graceful handover preserves VoD backups, so higher\n"
                "graceful fractions keep pre-fetch more effective under churn.\n");
  }

  // (d) connected-neighbor target M ------------------------------------------
  bench::print_header("Ablation D", "connected-neighbor target M (static, 500 nodes)");
  {
    util::Table table({"M", "continuity", "control overhead"});
    for (const std::size_t m : {3u, 5u, 8u}) {
      auto config = bench::standard_config(kNodes, 41, false);
      config.connected_neighbors = m;
      const auto run = bench::run_summary(config, snapshot);
      table.add_row({std::to_string(m), util::Table::num(run.stable_continuity, 3),
                     util::Table::num(run.control_overhead, 5)});
      csv.add_row({"neighbors_m", std::to_string(m),
                   util::Table::num(run.stable_continuity, 4),
                   util::Table::num(run.control_overhead, 5)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation (paper Section 5.4.1): larger M brings no notable\n"
                "continuity gain — the inbound rate is the constraint — while the\n"
                "control overhead grows ~ M/495.\n");
  }

  // (e) three-system comparison --------------------------------------------
  bench::print_header("Ablation E",
                      "system comparison: pull vs push-pull vs DHT-assisted (500 nodes)");
  {
    util::Table table({"system", "continuity", "duplicates/delivered", "prefetch oh"});
    struct Row { const char* name; core::SchedulerKind kind; };
    const Row rows[] = {
        {"CoolStreaming (pull)", core::SchedulerKind::kCoolStreaming},
        {"GridMedia (push-pull)", core::SchedulerKind::kGridMediaPushPull},
        {"ContinuStreaming (pull+DHT)", core::SchedulerKind::kContinuStreaming},
    };
    for (const auto& row : rows) {
      auto config = bench::standard_config(kNodes, 43, false);
      config.scheduler = row.kind;
      const auto run = bench::run_summary(config, snapshot);
      const double dup_ratio =
          static_cast<double>(run.stats.duplicate_deliveries) /
          static_cast<double>(std::max<std::uint64_t>(run.stats.segments_delivered, 1));
      table.add_row({row.name, util::Table::num(run.stable_continuity, 3),
                     util::Table::num(dup_ratio, 3),
                     util::Table::num(run.prefetch_overhead, 4)});
      csv.add_row({"system", row.name, util::Table::num(run.stable_continuity, 4),
                   util::Table::num(dup_ratio, 4)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("Expectation (paper Section 2): push-pull improves on pure pull but\n"
                "carries redundant transmissions; the DHT-assisted system reaches the\n"
                "highest continuity with bounded, targeted extra traffic.\n");
  }

  std::printf("\nCSV: ablations.csv\n");
  return 0;
}
