#!/usr/bin/env python3
"""Lax-drain drift-budget gate.

Reads a bench_lax_divergence JSON record and FAILS (exit 1) when the
lax sharded drain's mean-continuity drift versus strict mode exceeds
the committed budget:

    check_drift.py --budget bench/budgets/drift_q1_static_1k.json <bench_json>

The budget file pins (scenario, skew, max_abs_continuity_delta): the
record must contain that scenario, its strict baseline, and a point at
that skew, all measured live in the same CI run — the gate never
compares against committed measurements, per the BENCHMARKS.md
philosophy. Deltas are mean-vs-mean over matched replication seeds
(the bench's protocol); ``min_reps`` in the budget rejects records
sampled too thinly to mean anything.

Two invariants ride along whenever the record carries them:

* a skew-0 point must show EXACTLY zero drift — skew 0 is defined as
  strict, so any nonzero delta there means the lax path leaked into
  the strict engine (that is a regression, not noise);
* the strict baseline must be present and well-formed.

Exit codes: 0 gate passed, 1 drift over budget (or a skew-0 leak),
2 usage / malformed input.
"""

import argparse
import json
import sys


def load_budget(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        budget = json.load(fh)
    for key in ("scenario", "skew", "max_abs_continuity_delta"):
        if key not in budget:
            raise ValueError(f"budget {path} is missing '{key}'")
    return budget


def check_record(path: str, budget: dict) -> bool:
    """Returns True when the record passes the budget."""
    with open(path, encoding="utf-8") as fh:
        record = json.load(fh)

    scenario_name = str(budget["scenario"])
    skew = int(budget["skew"])
    ceiling = float(budget["max_abs_continuity_delta"])
    min_reps = int(budget.get("min_reps", 1))

    reps = record.get("reps")
    if not isinstance(reps, int) or reps < min_reps:
        raise ValueError(
            f"{path} was sampled with reps={reps!r}, budget requires >= "
            f"{min_reps} — a thin sample measures noise, not drift"
        )

    scenarios = record.get("scenarios")
    if not isinstance(scenarios, list) or not all(
        isinstance(s, dict) for s in scenarios
    ):
        raise ValueError(f"'scenarios' is not a list of objects in {path}")
    scenario = next(
        (s for s in scenarios if s.get("scenario") == scenario_name), None
    )
    if scenario is None:
        raise ValueError(f"no scenario '{scenario_name}' in {path}")

    strict = scenario.get("strict")
    if not isinstance(strict, dict) or not isinstance(
        strict.get("continuity"), (int, float)
    ):
        raise ValueError(
            f"scenario '{scenario_name}' in {path} has no strict baseline"
        )

    points = scenario.get("points")
    if not isinstance(points, list) or not all(
        isinstance(p, dict) for p in points
    ):
        raise ValueError(
            f"'points' is not a list of objects for '{scenario_name}' in {path}"
        )

    ok = True

    # Skew-0 leak check: skew 0 IS strict, so its delta is zero by
    # definition — a nonzero value can only come from an engine bug.
    zero = next((p for p in points if p.get("skew") == 0), None)
    if zero is not None:
        delta0 = zero.get("continuity_delta")
        if not isinstance(delta0, (int, float)):
            raise ValueError(
                f"skew=0 point for '{scenario_name}' in {path} has no "
                f"numeric 'continuity_delta'"
            )
        if delta0 != 0.0:
            print(
                f"drift gate [{scenario_name}]: FAIL — skew 0 drifted "
                f"{delta0:+.6f} from strict; skew 0 is strict by "
                f"definition, so the lax path leaked into the strict engine",
                file=sys.stderr,
            )
            ok = False

    target = next((p for p in points if p.get("skew") == skew), None)
    if target is None:
        raise ValueError(f"no skew={skew} point for '{scenario_name}' in {path}")
    delta = target.get("continuity_delta")
    if not isinstance(delta, (int, float)):
        raise ValueError(
            f"skew={skew} point for '{scenario_name}' in {path} has no "
            f"numeric 'continuity_delta' (got {delta!r})"
        )

    print(
        f"drift gate [{scenario_name} skew={skew}, reps={reps}]: mean "
        f"continuity {target.get('continuity')} vs strict "
        f"{strict['continuity']}, drift {delta:+.6f}, budget "
        f"|delta| <= {ceiling:.6f}"
    )
    if abs(float(delta)) > ceiling:
        print(
            f"drift gate [{scenario_name} skew={skew}]: FAIL — mean "
            f"continuity drifted {delta:+.6f}, over the {ceiling:.6f} "
            f"budget. Either the lax window grew a reordering bug or the "
            f"approximation genuinely coarsened; re-measure locally with "
            f"bench_lax_divergence and either fix the drain or justify a "
            f"budget change in the same PR.",
            file=sys.stderr,
        )
        ok = False
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("bench", help="bench_lax_divergence JSON file")
    parser.add_argument(
        "--budget", required=True, help="drift budget JSON file"
    )
    args = parser.parse_args()

    try:
        budget = load_budget(args.budget)
        passed = check_record(args.bench, budget)
    except (OSError, ValueError, KeyError, TypeError, AttributeError) as error:
        # Broad on purpose: any shape surprise (truncated bench run,
        # nulled field, wrong type) must print a diagnosis and exit 2,
        # never a raw traceback.
        print(f"drift gate: cannot evaluate: {error}", file=sys.stderr)
        return 2
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
