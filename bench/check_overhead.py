#!/usr/bin/env python3
"""Observability overhead gate.

Fails when enabling the observability layer at runtime costs more than
the allowed throughput fraction on the same binary and host.

    check_overhead.py --off A.json [B.json ...] --on C.json [D.json ...]
                      [--max-overhead-pct 3.0] [--budget budget.json]

The off/on files are bench_large_session JSON records from the SAME
build: --off runs without --obs, --on runs with --obs (profiler +
trace + counters all enabled). The gate compares the best
events-per-second of each group — best-of-N filters scheduler noise the
way interleaved A/B medians would, with fewer runs.

Why enabled-vs-disabled rather than obs-compiled-out vs obs-compiled-in:
CI builds one binary, and observability is a runtime config whose
disabled hot path is a handful of null-pointer checks. The measurable
(and maintainable) contract is therefore "turning obs ON costs <= N%";
the absolute cost of the disabled checks is covered by the committed
min_events_per_sec floor, re-checkable here via --budget.

Exit codes: 0 within the allowance, 1 overhead regression, 2 usage /
malformed or unreadable input (matching check_budget.py).
"""

import argparse
import json
import sys


def load_group(paths: list[str], want_obs: bool) -> tuple[float, str]:
    """Best events/s of the group, with a scenario-consistency check."""
    best = 0.0
    scenario = None
    for path in paths:
        with open(path, encoding="utf-8") as fh:
            record = json.load(fh)
        if scenario is None:
            scenario = record["scenario"]
        elif record["scenario"] != scenario:
            raise ValueError(
                f"{path} ran scenario '{record['scenario']}' but the group "
                f"started with '{scenario}'"
            )
        obs_enabled = bool(record.get("obs_enabled", False))
        if obs_enabled != want_obs:
            raise ValueError(
                f"{path} has obs_enabled={obs_enabled}, expected {want_obs} "
                f"(check which group the file was passed to)"
            )
        best = max(best, float(record["events_per_sec"]))
    if scenario is None:
        raise ValueError("empty group")
    return best, scenario


def check(args: argparse.Namespace) -> int:
    off_best, off_scenario = load_group(args.off, want_obs=False)
    on_best, on_scenario = load_group(args.on, want_obs=True)
    if off_scenario != on_scenario:
        print(
            f"overhead gate: scenario mismatch — off group ran "
            f"'{off_scenario}', on group ran '{on_scenario}'",
            file=sys.stderr,
        )
        return 2

    overhead_pct = (1.0 - on_best / off_best) * 100.0 if off_best > 0 else 0.0
    print(
        f"overhead gate [{off_scenario}]: obs-off {off_best:,.0f} events/s, "
        f"obs-on {on_best:,.0f} events/s -> overhead {overhead_pct:+.2f}% "
        f"(allowance {args.max_overhead_pct:.2f}%)"
    )

    failed = False
    if overhead_pct > args.max_overhead_pct:
        print(
            f"overhead gate: FAIL — enabling observability costs "
            f"{overhead_pct:.2f}% throughput, above the {args.max_overhead_pct:.2f}% "
            f"allowance. Hot-path recording grew too expensive; move work to "
            f"drain/settle time or batch the records.",
            file=sys.stderr,
        )
        failed = True

    if args.budget:
        with open(args.budget, encoding="utf-8") as fh:
            budget = json.load(fh)
        floor = budget.get("min_events_per_sec")
        if budget.get("scenario") != off_scenario:
            print(
                f"overhead gate: budget file covers "
                f"'{budget.get('scenario')}', not '{off_scenario}'",
                file=sys.stderr,
            )
            return 2
        if floor is not None and off_best < float(floor):
            print(
                f"overhead gate: FAIL — obs-off throughput {off_best:,.0f} "
                f"events/s is below the committed floor of {float(floor):,.0f} "
                f"(the disabled-obs hot path itself regressed).",
                file=sys.stderr,
            )
            failed = True

    if failed:
        return 1
    print("overhead gate: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--off", nargs="+", required=True,
                        help="bench JSON records run WITHOUT --obs")
    parser.add_argument("--on", nargs="+", required=True,
                        help="bench JSON records run WITH --obs")
    parser.add_argument("--max-overhead-pct", type=float, default=3.0)
    parser.add_argument("--budget", default=None,
                        help="optional budget JSON re-enforcing its "
                             "min_events_per_sec floor on the obs-off runs")
    try:
        args = parser.parse_args()
    except SystemExit:
        return 2
    try:
        return check(args)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(
            f"overhead gate: cannot evaluate: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
