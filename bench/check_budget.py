#!/usr/bin/env python3
"""Memory-footprint regression gate.

Compares a bench_large_session JSON record against a checked-in budget
file and fails (exit 1) when bytes-per-node exceeds the budget — so a
container regression can never land silently.

    check_budget.py <bench_json> <budget_json>

The bench JSON is one bench_large_session stdout line; the budget file
holds {"scenario": ..., "max_per_node_bytes": ...}.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2

    with open(sys.argv[1], encoding="utf-8") as fh:
        bench = json.load(fh)
    with open(sys.argv[2], encoding="utf-8") as fh:
        budget = json.load(fh)

    if bench.get("scenario") != budget.get("scenario"):
        print(
            f"budget gate: scenario mismatch — bench ran "
            f"'{bench.get('scenario')}' but budget covers "
            f"'{budget.get('scenario')}'",
            file=sys.stderr,
        )
        return 2

    measured = float(bench["memory"]["per_node_bytes"])
    limit = float(budget["max_per_node_bytes"])
    sections = {
        key: bench["memory"].get(key, 0)
        for key in ("buffer_bytes", "neighbor_bytes", "dht_bytes", "inflight_bytes")
    }
    print(
        f"budget gate [{bench['scenario']}]: measured {measured:.1f} B/node, "
        f"budget {limit:.1f} B/node"
    )
    for key, value in sections.items():
        nodes = max(int(bench["memory"].get("measured_nodes", 1)), 1)
        print(f"  {key:>15}: {value / nodes:8.1f} B/node")

    if measured > limit:
        print(
            f"budget gate: FAIL — {measured:.1f} exceeds the checked-in "
            f"budget of {limit:.1f} B/node. If the growth is intentional, "
            f"raise {sys.argv[2]} in the same PR with a justification.",
            file=sys.stderr,
        )
        return 1
    print("budget gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
