#!/usr/bin/env python3
"""Memory-footprint and throughput regression gate.

Compares a bench_large_session JSON record against a checked-in budget
file and fails (exit 1) when bytes-per-node exceeds the budget OR
events-per-second falls below the floor — so neither a container
regression nor a wall-clock regression can land silently.

    check_budget.py <bench_json> <budget_json>

The bench JSON is one bench_large_session stdout line; the budget file
holds {"scenario": ..., "max_per_node_bytes": ..., and optionally
"min_events_per_sec": ...} (the throughput floor is skipped when the
budget file does not set one).

Exit codes: 0 within budget, 1 budget regression, 2 usage / malformed
or unreadable input.
"""

import json
import sys


def check(bench_path: str, budget_path: str) -> int:
    with open(bench_path, encoding="utf-8") as fh:
        bench = json.load(fh)
    with open(budget_path, encoding="utf-8") as fh:
        budget = json.load(fh)

    if bench.get("scenario") != budget.get("scenario"):
        print(
            f"budget gate: scenario mismatch — bench ran "
            f"'{bench.get('scenario')}' but budget covers "
            f"'{budget.get('scenario')}'",
            file=sys.stderr,
        )
        return 2

    measured = float(bench["memory"]["per_node_bytes"])
    limit = float(budget["max_per_node_bytes"])
    sections = {
        key: bench["memory"].get(key, 0)
        for key in ("buffer_bytes", "neighbor_bytes", "dht_bytes", "inflight_bytes")
    }
    print(
        f"budget gate [{bench['scenario']}]: measured {measured:.1f} B/node, "
        f"budget {limit:.1f} B/node"
    )
    for key, value in sections.items():
        nodes = max(int(bench["memory"].get("measured_nodes", 1)), 1)
        print(f"  {key:>15}: {value / nodes:8.1f} B/node")

    failed = False
    if measured > limit:
        print(
            f"budget gate: FAIL — {measured:.1f} exceeds the checked-in "
            f"budget of {limit:.1f} B/node. If the growth is intentional, "
            f"raise {budget_path} in the same PR with a justification.",
            file=sys.stderr,
        )
        failed = True

    floor = budget.get("min_events_per_sec")
    if floor is not None:
        throughput = float(bench["events_per_sec"])
        print(
            f"budget gate [{bench['scenario']}]: measured "
            f"{throughput:,.0f} events/s, floor {float(floor):,.0f} events/s"
        )
        if throughput < float(floor):
            print(
                f"budget gate: FAIL — {throughput:,.0f} events/s is below "
                f"the checked-in floor of {float(floor):,.0f}. If the "
                f"slowdown is intentional, lower {budget_path} in the same "
                f"PR with a justification.",
                file=sys.stderr,
            )
            failed = True

    if failed:
        return 1
    print("budget gate: OK")
    return 0


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        return check(sys.argv[1], sys.argv[2])
    except (OSError, ValueError, KeyError, TypeError, AttributeError) as error:
        # Unreadable file, malformed JSON, or a record missing/mistyping
        # a required field (memory.per_node_bytes, max_per_node_bytes,
        # events_per_sec, ...): the documented exit 2 with a pointer at
        # the culprit, never a raw traceback in the CI log.
        print(
            f"budget gate: cannot evaluate {sys.argv[1]} against "
            f"{sys.argv[2]}: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":
    sys.exit(main())
