// bench_lax_divergence — the committed lax-vs-strict drift study for
// the bounded-skew sharded drain. For each quantized scenario it runs
// the strict sharded engine, then the lax drain at each requested skew,
// all at the SAME (seed, config, trace), and reports how far the
// headline metrics move:
//
//   {"bench": "lax_divergence", "seed": 42, "reps": 8, "skews": [0, 1, 4],
//    "scenarios": [{"scenario": "q1_static_1k", "nodes": 1000,
//      "strict": {"continuity": 0.97, "stabilization_s": 8.1, ...},
//      "points": [{"skew": 1, "continuity": 0.969,
//                  "continuity_delta": -0.001, "continuity_rel": -0.0008,
//                  ...}, ...]}, ...]}
//
// Lax mode is an intentional approximation (shards drain up to
// skew x grid ahead of the global frontier so Phase A pops can fork);
// this study is the evidence the approximation is faithful, and the
// skew-0 row doubles as a zero-drift witness (skew 0 IS strict, so
// every delta there must print exactly 0). CI feeds the skew-1 means
// into bench/check_drift.py against the committed drift budget — the
// gate measures live, per BENCHMARKS.md, and this JSON is the archived
// evidence trail.
//
// Replication protocol matches bench_quantized_divergence: means over
// --reps matched replication_seed streams, with the continuity spread
// reported so deltas can be read against run-to-run noise.
//
// Default sweep: the q1_ and f5_q1_ families (lax needs a latency
// grid; a continuous scenario is a hard error, not a silent
// strict-equals-strict row).
//
//   bench_lax_divergence [--scenarios A,B,...] [--skews K,K,...]
//                        [--seed S] [--reps N] [--duration SEC]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/cli.hpp"

namespace {

[[nodiscard]] std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::move(item));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return out;
}

struct MetricSet {
  double continuity = 0.0;
  double continuity_index = 0.0;
  double stabilization_s = 0.0;
  double control_overhead = 0.0;
  double prefetch_overhead = 0.0;
};

[[nodiscard]] MetricSet metrics_of(const continu::runner::ReplicationResult& run) {
  MetricSet m;
  m.continuity = run.stable_continuity;
  m.continuity_index = run.continuity_index;
  m.stabilization_s = run.stabilization_time;
  m.control_overhead = run.control_overhead;
  m.prefetch_overhead = run.prefetch_overhead;
  return m;
}

struct Sampled {
  MetricSet mean;
  double continuity_min = 1.0;
  double continuity_max = 0.0;
};

[[nodiscard]] Sampled sample_config(continu::runner::ReplicationSpec spec,
                                    std::uint64_t base_seed, std::size_t reps) {
  using namespace continu;
  Sampled out;
  for (std::size_t r = 0; r < reps; ++r) {
    spec.config.seed = runner::replication_seed(base_seed, r);
    const MetricSet m = metrics_of(runner::ExperimentRunner::run_one(spec));
    out.mean.continuity += m.continuity;
    out.mean.continuity_index += m.continuity_index;
    out.mean.stabilization_s += m.stabilization_s;
    out.mean.control_overhead += m.control_overhead;
    out.mean.prefetch_overhead += m.prefetch_overhead;
    out.continuity_min = std::min(out.continuity_min, m.continuity);
    out.continuity_max = std::max(out.continuity_max, m.continuity);
  }
  const double n = static_cast<double>(reps);
  out.mean.continuity /= n;
  out.mean.continuity_index /= n;
  out.mean.stabilization_s /= n;
  out.mean.control_overhead /= n;
  out.mean.prefetch_overhead /= n;
  return out;
}

void print_metrics_json(const MetricSet& m) {
  std::printf("\"continuity\": %.6f, \"continuity_index\": %.6f, "
              "\"stabilization_s\": %.3f, \"control_overhead\": %.6f, "
              "\"prefetch_overhead\": %.6f",
              m.continuity, m.continuity_index, m.stabilization_s,
              m.control_overhead, m.prefetch_overhead);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  std::vector<std::string> names;
  std::vector<unsigned> skews = {0, 1, 4};
  std::uint64_t seed = 42;
  std::size_t reps = 8;
  double duration = 0.0;  // 0 = scenario default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      names = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--skews") == 0 && i + 1 < argc) {
      skews.clear();
      for (const auto& k : split_csv(argv[++i])) {
        const auto parsed = runner::cli::parse_uint(k.c_str());
        if (!parsed.has_value()) {
          std::fprintf(stderr, "--skews expects integers >= 0, got '%s'\n",
                       k.c_str());
          return 1;
        }
        skews.push_back(static_cast<unsigned>(*parsed));
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      seed = *parsed;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_positive_u32(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--reps expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      reps = *parsed;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenarios A,B,...] [--skews K,K,...] "
                   "[--seed S] [--reps N] [--duration SEC]\n",
                   argv[0]);
      return 1;
    }
  }
  if (skews.empty()) {
    std::fprintf(stderr, "--skews must name at least one skew\n");
    return 1;
  }

  // Default sweep: every quantized family member lax can run on.
  std::vector<runner::Scenario> scenarios;
  if (names.empty()) {
    for (const char* family : {"q1_", "f5_q1_"}) {
      for (auto& s : runner::expand_scenario_selector(family)) {
        scenarios.push_back(std::move(s));
      }
    }
  } else {
    for (const auto& name : names) scenarios.push_back(bench::require_scenario(name));
  }
  for (const auto& scenario : scenarios) {
    if (runner::spec_for(scenario, seed).config.latency_grid_ms <= 0.0) {
      // Lax never engages without a grid; a continuous scenario here
      // would print a vacuous zero-drift row and poison the study.
      std::fprintf(stderr,
                   "scenario '%s' has no latency grid — lax mode needs a "
                   "quantized scenario (q1_*, f5_q1_*, ...)\n",
                   scenario.name.c_str());
      return 1;
    }
  }

  // Human-readable table on stderr, pure JSON record on stdout — the CI
  // artifact step redirects stdout to the archived file.
  std::fprintf(stderr,
               "lax divergence — strict vs bounded-skew sharded drain, same "
               "trace/seed\n%-20s %6s %12s %12s %10s %10s\n",
               "scenario", "skew", "continuity", "delta", "rel", "stab_ds");

  std::printf("{\"bench\": \"lax_divergence\", \"seed\": %" PRIu64
              ", \"reps\": %zu, \"skews\": [",
              seed, reps);
  for (std::size_t i = 0; i < skews.size(); ++i) {
    std::printf("%s%u", i == 0 ? "" : ", ", skews[i]);
  }
  std::printf("], \"scenarios\": [");

  bool first_scenario = true;
  for (const auto& scenario : scenarios) {
    auto spec = runner::spec_for(scenario, seed);
    if (duration > 0.0) spec.duration = duration;
    spec.config.sharded_queue = true;
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
        trace::generate_snapshot(spec.trace));

    spec.config.queue_skew_buckets = 0;
    const Sampled base = sample_config(spec, seed, reps);
    std::fprintf(stderr, "%-20s %6s %12.6f %12s %10s %10s  [%0.4f, %0.4f]\n",
                 scenario.name.c_str(), "strict", base.mean.continuity, "-",
                 "-", "-", base.continuity_min, base.continuity_max);

    std::printf("%s{\"scenario\": \"%s\", \"nodes\": %zu, \"strict\": {",
                first_scenario ? "" : ", ", scenario.name.c_str(),
                scenario.node_count);
    first_scenario = false;
    print_metrics_json(base.mean);
    std::printf(", \"continuity_min\": %.6f, \"continuity_max\": %.6f}, "
                "\"points\": [",
                base.continuity_min, base.continuity_max);

    for (std::size_t k = 0; k < skews.size(); ++k) {
      spec.config.queue_skew_buckets = skews[k];
      const Sampled lax = sample_config(spec, seed, reps);
      const double delta = lax.mean.continuity - base.mean.continuity;
      const double rel =
          base.mean.continuity > 0.0 ? delta / base.mean.continuity : 0.0;
      const double stab_ds =
          lax.mean.stabilization_s - base.mean.stabilization_s;
      std::fprintf(stderr,
                   "%-20s %6u %12.6f %+12.6f %+9.4f%% %+9.3fs  [%0.4f, %0.4f]\n",
                   scenario.name.c_str(), skews[k], lax.mean.continuity, delta,
                   rel * 100.0, stab_ds, lax.continuity_min,
                   lax.continuity_max);

      std::printf("%s{\"skew\": %u, ", k == 0 ? "" : ", ", skews[k]);
      print_metrics_json(lax.mean);
      std::printf(", \"continuity_min\": %.6f, \"continuity_max\": %.6f"
                  ", \"continuity_delta\": %.6f, \"continuity_rel\": %.6f, "
                  "\"stabilization_delta_s\": %.3f}",
                  lax.continuity_min, lax.continuity_max, delta, rel, stab_ds);
      std::fflush(stdout);
    }
    std::printf("]}");
  }
  std::printf("]}\n");
  return 0;
}
