// Corpus robustness: the paper evaluates on 30 real-trace snapshots
// (clip2 crawls of different sizes/degrees). This bench sweeps a
// generated corpus of snapshots and verifies the headline comparison —
// ContinuStreaming above the CoolStreaming baseline — holds across
// trace shapes, not just one lucky topology. All (snapshot x system)
// pairs run as one ExperimentRunner batch.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "trace/generator.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Corpus robustness",
                      "headline comparison across generated trace snapshots");

  auto corpus = trace::generate_corpus(/*count=*/8, /*min_nodes=*/200,
                                       /*max_nodes=*/1200, /*seed=*/2026);

  std::vector<std::shared_ptr<const trace::TraceSnapshot>> snapshots;
  snapshots.reserve(corpus.size());
  for (auto& snapshot : corpus) {
    snapshots.push_back(std::make_shared<const trace::TraceSnapshot>(std::move(snapshot)));
  }

  std::vector<runner::ReplicationSpec> specs;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto config =
        bench::standard_config(snapshots[i]->node_count(), 90 + i, /*churn=*/false);
    specs.push_back(bench::snapshot_spec(config, snapshots[i], "continu"));
    specs.push_back(bench::snapshot_spec(config.as_coolstreaming(), snapshots[i], "cool"));
  }
  const auto results = bench::run_batch(specs);

  util::Table table({"nodes", "avg crawl degree", "CoolStreaming", "ContinuStreaming",
                     "delta"});
  util::CsvWriter csv("corpus_robustness.csv",
                      {"nodes", "degree", "coolstreaming", "continustreaming"});

  std::size_t wins = 0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto& snapshot = *snapshots[i];
    const auto& cont = results[2 * i];
    const auto& cool = results[2 * i + 1];
    if (cont.stable_continuity > cool.stable_continuity) ++wins;
    table.add_row({std::to_string(snapshot.node_count()),
                   util::Table::num(snapshot.average_degree(), 2),
                   util::Table::num(cool.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity - cool.stable_continuity, 3)});
    csv.add_row({std::to_string(snapshot.node_count()),
                 util::Table::num(snapshot.average_degree(), 3),
                 util::Table::num(cool.stable_continuity, 4),
                 util::Table::num(cont.stable_continuity, 4)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nContinuStreaming won %zu of %zu snapshots.\n", wins, snapshots.size());
  std::printf("Paper context: results were consistent across its 30 crawled\n"
              "topologies; the comparison should not hinge on one trace.\n"
              "CSV: corpus_robustness.csv\n");
  return 0;
}
