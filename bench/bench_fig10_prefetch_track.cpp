// Figure 10 reproduction: per-round pre-fetch overhead track for a
// 1000-node overlay, static and dynamic. The paper reports near-zero
// overhead at startup (most nodes have not discovered the source, and
// N_miss > l suppresses pre-fetching), a bump as the system fills, and
// stable-phase overhead of roughly 0.023 (static) / 0.03 (dynamic).

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 10", "pre-fetch overhead track, 1000 nodes");

  const auto snapshot = std::make_shared<const trace::TraceSnapshot>(
      bench::standard_trace(1000, 57));
  const auto results = bench::run_batch(
      {bench::snapshot_spec(bench::standard_config(1000, 19, false), snapshot, "static"),
       bench::snapshot_spec(bench::standard_config(1000, 19, true), snapshot, "dynamic")});
  const auto& static_run = results[0];
  const auto& dynamic_run = results[1];

  util::Table table({"time (s)", "static", "dynamic"});
  util::CsvWriter csv("fig10_prefetch_track.csv", {"time", "static", "dynamic"});
  const auto& s = static_run.collector.series("prefetch_overhead_round");
  const auto& d = dynamic_run.collector.series("prefetch_overhead_round");
  for (std::size_t i = 0; i < s.size() && i < d.size(); ++i) {
    table.add_row({util::Table::num(s[i].time, 0), util::Table::num(s[i].value, 4),
                   util::Table::num(d[i].value, 4)});
    csv.add_row({util::Table::num(s[i].time, 1), util::Table::num(s[i].value, 5),
                 util::Table::num(d[i].value, 5)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nStable phase (t >= 20 s): static %.4f, dynamic %.4f (cumulative: "
              "%.4f / %.4f)\n",
              static_run.collector.mean_from("prefetch_overhead_round", 20.0),
              dynamic_run.collector.mean_from("prefetch_overhead_round", 20.0),
              static_run.prefetch_overhead, dynamic_run.prefetch_overhead);
  std::printf("Paper expectation: tiny at startup, stable-phase ~0.023 static /\n"
              "~0.03 dynamic. CSV: fig10_prefetch_track.csv\n");
  return 0;
}
