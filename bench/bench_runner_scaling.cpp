// ExperimentRunner scaling micro-bench: replications/second at jobs =
// 1, 2, 4, 8 over a fixed batch of small sessions, emitted as JSON so
// future PRs can track parallel speedup across commits.
//
//   {"bench": "runner_scaling", "replications": 16, "nodes": 150,
//    "points": [{"jobs": 1, "seconds": 3.21, "reps_per_sec": 4.98,
//                "speedup": 1.0}, ...]}
//
// The batch is identical at every jobs count (same specs, same seeds),
// so the run also cross-checks jobs-invariance of the results: any
// continuity mismatch across jobs counts fails the bench.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

constexpr std::size_t kNodes = 150;
constexpr std::size_t kReplications = 16;

[[nodiscard]] std::vector<continu::runner::ReplicationSpec> fixed_batch() {
  using namespace continu;
  runner::ReplicationSpec base;
  base.label = "scaling";
  base.config = bench::standard_config(kNodes, 4242, /*churn=*/false);
  base.trace = bench::standard_trace_config(kNodes, 77);
  base.duration = 30.0;
  base.stable_from = 15.0;
  return runner::replicate(base, kReplications);
}

}  // namespace

int main() {
  using namespace continu;
  using Clock = std::chrono::steady_clock;

  const auto specs = fixed_batch();

  struct Point {
    unsigned jobs = 0;
    double seconds = 0.0;
    double reps_per_sec = 0.0;
  };
  std::vector<Point> points;
  std::vector<double> reference;  // continuity per replication at jobs=1

  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const runner::ExperimentRunner pool(jobs);
    const auto start = Clock::now();
    const auto results = pool.run_all(specs);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> continuities;
    continuities.reserve(results.size());
    for (const auto& r : results) continuities.push_back(r.stable_continuity);
    if (reference.empty()) {
      reference = continuities;
    } else if (continuities != reference) {
      std::fprintf(stderr,
                   "FAIL: results at jobs=%u differ from jobs=1 — runner is "
                   "not jobs-invariant\n",
                   jobs);
      return 1;
    }

    Point p;
    p.jobs = jobs;
    p.seconds = seconds;
    p.reps_per_sec = static_cast<double>(specs.size()) / seconds;
    points.push_back(p);
    std::fprintf(stderr, "  jobs=%u: %.2fs (%.2f reps/s)\n", jobs, seconds,
                 p.reps_per_sec);
  }

  // hardware_concurrency makes the record interpretable across hosts:
  // a ~1.0x curve on a 1-core CI box is expected, on 8 cores it is a
  // bug (the ROADMAP "verify speedup on 4+ cores" item keys off this).
  std::printf("{\"bench\": \"runner_scaling\", \"replications\": %zu, "
              "\"nodes\": %zu, \"hardware_concurrency\": %u, \"points\": [",
              kReplications, kNodes, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::printf("%s{\"jobs\": %u, \"seconds\": %.3f, \"reps_per_sec\": %.3f, "
                "\"speedup\": %.3f}",
                i == 0 ? "" : ", ", p.jobs, p.seconds, p.reps_per_sec,
                points[0].seconds / p.seconds);
  }
  std::printf("]}\n");
  return 0;
}
