// ExperimentRunner scaling micro-bench: replications/second at jobs =
// 1, 2, 4, 8 over a fixed batch of small sessions, emitted as JSON so
// future PRs can track parallel speedup across commits.
//
//   bench_runner_scaling [--nodes N] [--replications R]
//
//   {"bench": "runner_scaling", "replications": 16, "nodes": 150,
//    "points": [{"jobs": 1, "seconds": 3.21, "reps_per_sec": 4.98,
//                "speedup": 1.0}, ...]}
//
// The batch is identical at every jobs count (same specs, same seeds),
// so the run also cross-checks jobs-invariance of the results: any
// continuity mismatch across jobs counts fails the bench. The defaults
// are a fast smoke; a run whose speedup feeds a GATE (CI's
// check_scaling.py) should use a heavier batch (e.g. --nodes 500
// --replications 24) so per-point wall time is seconds, not hundreds
// of milliseconds — short measurements on shared runners are noisy
// enough to flake a 1.5x floor.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runner/cli.hpp"

namespace {

[[nodiscard]] std::vector<continu::runner::ReplicationSpec> fixed_batch(
    std::size_t nodes, std::size_t replications) {
  using namespace continu;
  runner::ReplicationSpec base;
  base.label = "scaling";
  base.config = bench::standard_config(nodes, 4242, /*churn=*/false);
  base.trace = bench::standard_trace_config(nodes, 77);
  base.duration = 30.0;
  base.stable_from = 15.0;
  return runner::replicate(base, replications);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;
  using Clock = std::chrono::steady_clock;

  std::size_t nodes = 150;
  std::size_t replications = 16;
  for (int i = 1; i < argc; ++i) {
    const bool is_nodes = std::strcmp(argv[i], "--nodes") == 0;
    const bool is_reps = std::strcmp(argv[i], "--replications") == 0;
    if ((is_nodes || is_reps) && i + 1 < argc) {
      const auto parsed = runner::cli::parse_positive(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s expects a positive integer, got '%s'\n",
                     argv[i - 1], argv[i]);
        return 1;
      }
      (is_nodes ? nodes : replications) = *parsed;
    } else {
      std::fprintf(stderr, "usage: %s [--nodes N] [--replications R]\n",
                   argv[0]);
      return 1;
    }
  }

  const auto specs = fixed_batch(nodes, replications);

  struct Point {
    unsigned jobs = 0;
    double seconds = 0.0;
    double reps_per_sec = 0.0;
  };
  std::vector<Point> points;
  std::vector<double> reference;  // continuity per replication at jobs=1

  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const runner::ExperimentRunner pool(jobs);
    const auto start = Clock::now();
    const auto results = pool.run_all(specs);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> continuities;
    continuities.reserve(results.size());
    for (const auto& r : results) continuities.push_back(r.stable_continuity);
    if (reference.empty()) {
      reference = continuities;
    } else if (continuities != reference) {
      std::fprintf(stderr,
                   "FAIL: results at jobs=%u differ from jobs=1 — runner is "
                   "not jobs-invariant\n",
                   jobs);
      return 1;
    }

    Point p;
    p.jobs = jobs;
    p.seconds = seconds;
    p.reps_per_sec = static_cast<double>(specs.size()) / seconds;
    points.push_back(p);
    std::fprintf(stderr, "  jobs=%u: %.2fs (%.2f reps/s)\n", jobs, seconds,
                 p.reps_per_sec);
  }

  // hardware_concurrency makes the record interpretable across hosts:
  // a ~1.0x curve on a 1-core CI box is expected, on 8 cores it is a
  // bug (the ROADMAP "verify speedup on 4+ cores" item keys off this).
  std::printf("{\"bench\": \"runner_scaling\", \"replications\": %zu, "
              "\"nodes\": %zu, \"hardware_concurrency\": %u, \"points\": [",
              replications, nodes, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::printf("%s{\"jobs\": %u, \"seconds\": %.3f, \"reps_per_sec\": %.3f, "
                "\"speedup\": %.3f}",
                i == 0 ? "" : ", ", p.jobs, p.seconds, p.reps_per_sec,
                points[0].seconds / p.seconds);
  }
  std::printf("]}\n");
  return 0;
}
