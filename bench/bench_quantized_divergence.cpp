// bench_quantized_divergence — the committed quantized-vs-continuous
// divergence study. For each scenario it runs the continuous network
// model and the quantized mode at each requested grid, all at the SAME
// (seed, config, trace), and reports how far the headline metrics move:
//
//   {"bench": "quantized_divergence", "seed": 42, "grids_ms": [1, 2, 5],
//    "scenarios": [{"scenario": "static_1k", "nodes": 1000,
//      "continuous": {"continuity": 0.97, "stabilization_s": 8.1, ...},
//      "points": [{"grid_ms": 1.0, "continuity": 0.969,
//                  "continuity_delta": -0.001, "continuity_rel": -0.0008,
//                  ...}, ...]}, ...]}
//
// The quantized mode is an intentional approximation (delivery instants
// snap UP to the grid so batches can fork by receiver); this study is
// the evidence that the approximation is faithful — CI archives the
// JSON so the deltas are inspectable per push, and the README points
// here instead of asserting faithfulness by fiat.
//
// Default sweep: the scenario matrix minus production-scale entries
// (same 10k-node cutoff as the fingerprint oracle). Grids accept
// fractional ms, so the tool doubles as a dose-response probe
// (e.g. --grids 0.01,0.1,1 to separate snapping physics from batching).
//
//   bench_quantized_divergence [--scenarios A,B,...] [--grids MS,MS,...]
//                              [--seed S] [--duration SEC]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/cli.hpp"

namespace {

[[nodiscard]] std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::move(item));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return out;
}

struct MetricSet {
  double continuity = 0.0;
  double continuity_index = 0.0;
  double stabilization_s = -1.0;
  double control_overhead = 0.0;
  double prefetch_overhead = 0.0;
};

[[nodiscard]] MetricSet metrics_of(const continu::runner::ReplicationResult& run) {
  MetricSet m;
  m.continuity = run.stable_continuity;
  m.continuity_index = run.continuity_index;
  m.stabilization_s = run.stabilization_time;
  m.control_overhead = run.control_overhead;
  m.prefetch_overhead = run.prefetch_overhead;
  return m;
}

/// Mean metrics over `reps` replications (replication_seed streams), plus
/// the continuity spread. One run of a gossip session is a single draw
/// from a chaotic system — single-seed continuous-vs-quantized deltas
/// mostly measure trajectory divergence, not model bias. The study
/// therefore compares MEANS at matched replication seeds; the spread is
/// reported so a delta can be read against the run-to-run noise.
struct Sampled {
  MetricSet mean;
  double continuity_min = 1.0;
  double continuity_max = 0.0;
};

[[nodiscard]] Sampled sample_config(continu::runner::ReplicationSpec spec,
                                    std::uint64_t base_seed, std::size_t reps) {
  using namespace continu;
  Sampled out;
  for (std::size_t r = 0; r < reps; ++r) {
    spec.config.seed = runner::replication_seed(base_seed, r);
    const MetricSet m = metrics_of(runner::ExperimentRunner::run_one(spec));
    out.mean.continuity += m.continuity;
    out.mean.continuity_index += m.continuity_index;
    out.mean.stabilization_s += m.stabilization_s;
    out.mean.control_overhead += m.control_overhead;
    out.mean.prefetch_overhead += m.prefetch_overhead;
    out.continuity_min = std::min(out.continuity_min, m.continuity);
    out.continuity_max = std::max(out.continuity_max, m.continuity);
  }
  const double n = static_cast<double>(reps);
  out.mean.continuity /= n;
  out.mean.continuity_index /= n;
  out.mean.stabilization_s /= n;
  out.mean.control_overhead /= n;
  out.mean.prefetch_overhead /= n;
  return out;
}

void print_metrics_json(const MetricSet& m) {
  std::printf("\"continuity\": %.6f, \"continuity_index\": %.6f, "
              "\"stabilization_s\": %.3f, \"control_overhead\": %.6f, "
              "\"prefetch_overhead\": %.6f",
              m.continuity, m.continuity_index, m.stabilization_s,
              m.control_overhead, m.prefetch_overhead);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  std::vector<std::string> names;
  std::vector<double> grids = {1.0, 2.0, 5.0};
  std::uint64_t seed = 42;
  std::size_t reps = 3;
  double duration = 0.0;  // 0 = scenario default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      names = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--grids") == 0 && i + 1 < argc) {
      grids.clear();
      for (const auto& g : split_csv(argv[++i])) {
        const double grid = std::strtod(g.c_str(), nullptr);
        if (grid <= 0.0) {
          std::fprintf(stderr, "--grids expects positive ms values, got '%s'\n",
                       g.c_str());
          return 1;
        }
        grids.push_back(grid);
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      seed = *parsed;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_positive_u32(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--reps expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      reps = *parsed;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenarios A,B,...] [--grids MS,MS,...] "
                   "[--seed S] [--reps N] [--duration SEC]\n",
                   argv[0]);
      return 1;
    }
  }
  if (grids.empty()) {
    std::fprintf(stderr, "--grids must name at least one grid\n");
    return 1;
  }

  // Default sweep: the matrix minus production-scale scenarios, the
  // same cutoff (and the same announce-the-skip policy) as the
  // fingerprint oracle's default sweep.
  constexpr std::size_t kLargeNodeThreshold = 10000;
  std::vector<runner::Scenario> scenarios;
  if (names.empty()) {
    for (const auto& scenario : runner::scenario_matrix()) {
      if (scenario.node_count > kLargeNodeThreshold) {
        util::Log(util::LogLevel::kWarn)
            << "skipping " << scenario.name << " (" << scenario.node_count
            << " nodes > " << kLargeNodeThreshold
            << "; name it via --scenarios to include it)";
        continue;
      }
      scenarios.push_back(scenario);
    }
  } else {
    for (const auto& name : names) scenarios.push_back(bench::require_scenario(name));
  }

  // Human-readable table on stderr, pure JSON record on stdout — the CI
  // artifact step redirects stdout to the archived file.
  std::fprintf(stderr,
               "quantized divergence — continuous vs latency-grid network "
               "mode, same trace/seed\n%-18s %8s %12s %12s %10s %10s\n",
               "scenario", "grid", "continuity", "delta", "rel", "stab_ds");

  std::printf("{\"bench\": \"quantized_divergence\", \"seed\": %" PRIu64
              ", \"reps\": %zu, \"grids_ms\": [",
              seed, reps);
  for (std::size_t i = 0; i < grids.size(); ++i) {
    std::printf("%s%g", i == 0 ? "" : ", ", grids[i]);
  }
  std::printf("], \"scenarios\": [");

  bool first_scenario = true;
  for (const auto& scenario : scenarios) {
    auto spec = runner::spec_for(scenario, seed);
    if (duration > 0.0) spec.duration = duration;
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
        trace::generate_snapshot(spec.trace));

    spec.config.latency_grid_ms = 0.0;
    const Sampled base = sample_config(spec, seed, reps);
    std::fprintf(stderr, "%-18s %8s %12.6f %12s %10s %10s  [%0.4f, %0.4f]\n",
                 scenario.name.c_str(), "cont", base.mean.continuity, "-", "-",
                 "-", base.continuity_min, base.continuity_max);

    std::printf("%s{\"scenario\": \"%s\", \"nodes\": %zu, \"continuous\": {",
                first_scenario ? "" : ", ", scenario.name.c_str(),
                scenario.node_count);
    first_scenario = false;
    print_metrics_json(base.mean);
    std::printf(", \"continuity_min\": %.6f, \"continuity_max\": %.6f}, "
                "\"points\": [",
                base.continuity_min, base.continuity_max);

    for (std::size_t g = 0; g < grids.size(); ++g) {
      spec.config.latency_grid_ms = grids[g];
      const Sampled q = sample_config(spec, seed, reps);
      const double delta = q.mean.continuity - base.mean.continuity;
      const double rel =
          base.mean.continuity > 0.0 ? delta / base.mean.continuity : 0.0;
      const double stab_ds = q.mean.stabilization_s - base.mean.stabilization_s;
      std::fprintf(stderr,
                   "%-18s %7.3gms %12.6f %+12.6f %+9.4f%% %+9.3fs  [%0.4f, %0.4f]\n",
                   scenario.name.c_str(), grids[g], q.mean.continuity, delta,
                   rel * 100.0, stab_ds, q.continuity_min, q.continuity_max);

      std::printf("%s{\"grid_ms\": %g, ", g == 0 ? "" : ", ", grids[g]);
      print_metrics_json(q.mean);
      std::printf(", \"continuity_min\": %.6f, \"continuity_max\": %.6f"
                  ", \"continuity_delta\": %.6f, \"continuity_rel\": %.6f, "
                  "\"stabilization_delta_s\": %.3f}",
                  q.continuity_min, q.continuity_max, delta, rel, stab_ds);
      std::fflush(stdout);
    }
    std::printf("]}");
  }
  std::printf("]}\n");
  return 0;
}
