// bench_large_session — end-to-end wall-clock benchmark of one large
// session (default: the static_8k scenario), emitted as a JSON record
// so engine changes can be compared across PRs:
//
//   {"bench": "large_session", "scenario": "static_8k", "nodes": 8000,
//    "duration": 45.0, "wall_seconds": 31.2, "events": 12345678,
//    "events_per_sec": 395694.2, "peak_queue_depth": 23456,
//    "hardware_concurrency": 8}
//
// Sessions are single-threaded by design (determinism), so this
// measures the event-engine hot path directly: scheduling, queue
// push/pop, action dispatch and round batching.
//
//   bench_large_session [--scenario NAME] [--duration SEC] [--seed S]
//                       [--obs] [--quiet]
//
// --obs compiles nothing extra — it flips the runtime observability
// config on (profiler + trace + counters) so check_overhead.py can
// measure the enabled-vs-disabled throughput delta on the same binary.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace continu;
  using Clock = std::chrono::steady_clock;

  std::string name = "static_8k";
  double duration = 0.0;  // 0 = scenario default
  std::uint64_t seed = 42;
  bool obs = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--obs") == 0) {
      obs = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario NAME] [--duration SEC] [--seed S] "
                   "[--obs] [--quiet]\n",
                   argv[0]);
      return 1;
    }
  }
  // Human-readable summaries go through the leveled logger: visible by
  // default, silenced wholesale by --quiet (the JSON record always
  // prints — it is the bench's contract).
  util::set_log_level(quiet ? util::LogLevel::kWarn : util::LogLevel::kInfo);

  const auto scenario = bench::require_scenario(name);
  auto spec = runner::spec_for(scenario, seed);
  if (duration > 0.0) spec.duration = duration;
  if (obs) {
    spec.config.obs.profile = true;
    spec.config.obs.trace = true;
    spec.config.obs.counters = true;
  }

  // Build the snapshot outside the timed region: trace generation is
  // not the engine under test.
  const auto snapshot = trace::generate_snapshot(spec.trace);

  const auto start = Clock::now();
  core::Session session(spec.config, snapshot);
  session.run(spec.duration);
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  const std::uint64_t events = session.simulator().executed();
  const std::size_t peak = session.simulator().peak_pending();
  // Per-node memory footprint, sampled at end of run — for static
  // scenarios that IS the steady-state peak (stream buffers saturate
  // within one capacity window and stay full). This is the record the
  // 100k-node sizing works from: which per-node container dominates.
  const auto memory = session.memory_footprint();
  {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s: %.2fs wall, %" PRIu64 " events (%.0f events/s), peak queue %zu",
                  name.c_str(), wall, events, static_cast<double>(events) / wall,
                  peak);
    util::Log(util::LogLevel::kInfo) << line;
    std::snprintf(line, sizeof line,
                  "memory: %.0f B/node (buffers %zu KiB, neighbors %zu KiB, "
                  "dht %zu KiB, inflight %zu KiB)",
                  memory.per_node_bytes(), memory.buffer_bytes >> 10,
                  memory.neighbor_bytes >> 10, memory.dht_bytes >> 10,
                  memory.inflight_bytes >> 10);
    util::Log(util::LogLevel::kInfo) << line;
  }
  std::printf(
      "{\"bench\": \"large_session\", \"scenario\": \"%s\", \"nodes\": %zu, "
      "\"duration\": %.1f, \"seed\": %" PRIu64 ", \"wall_seconds\": %.3f, "
      "\"events\": %" PRIu64 ", \"events_per_sec\": %.1f, "
      "\"peak_queue_depth\": %zu, \"hardware_concurrency\": %u, "
      "\"obs_enabled\": %s, "
      "\"memory\": {\"measured_at\": \"end_of_run\", \"measured_nodes\": %zu, "
      "\"per_node_bytes\": %.1f, \"buffer_bytes\": %zu, "
      "\"neighbor_bytes\": %zu, \"dht_bytes\": %zu, \"inflight_bytes\": %zu, "
      "\"total_bytes\": %zu, \"detail\": {\"neighbor_set_bytes\": %zu, "
      "\"overheard_bytes\": %zu, \"peer_table_bytes\": %zu, "
      "\"backup_bytes\": %zu, \"transfer_map_bytes\": %zu, "
      "\"prefetch_map_bytes\": %zu, \"tag_set_bytes\": %zu, "
      "\"rate_table_bytes\": %zu, \"retry_map_bytes\": %zu, "
      "\"blacklist_bytes\": %zu}}}\n",
      name.c_str(), scenario.node_count, spec.duration, seed, wall, events,
      static_cast<double>(events) / wall, peak,
      std::thread::hardware_concurrency(), obs ? "true" : "false", memory.nodes,
      memory.per_node_bytes(), memory.buffer_bytes, memory.neighbor_bytes,
      memory.dht_bytes, memory.inflight_bytes, memory.total_bytes(),
      memory.neighbor_set_bytes, memory.overheard_bytes,
      memory.peer_table_bytes, memory.backup_bytes, memory.transfer_map_bytes,
      memory.prefetch_map_bytes, memory.tag_set_bytes,
      memory.rate_table_bytes, memory.retry_map_bytes, memory.blacklist_bytes);
  return 0;
}
