// Figure 11 reproduction: pre-fetch overhead vs overlay size, static
// and dynamic environments, M = 5. The paper reports every size below
// 0.04, with dynamic consistently above static (more segments go
// missing under churn so the on-demand retrieval works harder).

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 11", "pre-fetch overhead vs overlay size");

  util::Table table({"nodes", "static", "dynamic"});
  util::CsvWriter csv("fig11_prefetch_scale.csv", {"nodes", "static", "dynamic"});

  for (const std::size_t n : {100u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const auto snapshot = bench::standard_trace(n, 600 + n);
    const auto static_run =
        bench::run_summary(bench::standard_config(n, 23, false), snapshot);
    const auto dynamic_run =
        bench::run_summary(bench::standard_config(n, 23, true), snapshot);
    table.add_row({std::to_string(n), util::Table::num(static_run.prefetch_overhead, 4),
                   util::Table::num(dynamic_run.prefetch_overhead, 4)});
    csv.add_row({std::to_string(n), util::Table::num(static_run.prefetch_overhead, 5),
                 util::Table::num(dynamic_run.prefetch_overhead, 5)});
    std::printf("  n=%zu done\n", n);
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: all below ~0.04, dynamic above static at every\n"
              "size — the extra cost of ContinuStreaming stays minor.\n"
              "CSV: fig11_prefetch_scale.csv\n");
  return 0;
}
