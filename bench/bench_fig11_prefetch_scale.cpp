// Figure 11 reproduction: pre-fetch overhead vs overlay size, static
// and dynamic environments, M = 5. The paper reports every size below
// 0.04, with dynamic consistently above static (more segments go
// missing under churn so the on-demand retrieval works harder).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 11", "pre-fetch overhead vs overlay size");

  // The static/dynamic pairs per size are the fig11 scenario family;
  // both members of a pair share one snapshot.
  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000, 8000};
  std::vector<runner::ReplicationSpec> specs;
  for (const std::size_t n : sizes) {
    const auto static_scenario =
        bench::require_scenario("fig11_static_" + std::to_string(n));
    const auto dynamic_scenario =
        bench::require_scenario("fig11_dynamic_" + std::to_string(n));
    const auto snapshot = std::make_shared<const continu::trace::TraceSnapshot>(
        trace::generate_snapshot(static_scenario.make_trace()));
    specs.push_back(bench::snapshot_spec(static_scenario.make_config(23), snapshot,
                                         "static"));
    specs.push_back(bench::snapshot_spec(dynamic_scenario.make_config(23), snapshot,
                                         "dynamic"));
  }
  const auto results = bench::run_batch(specs);

  util::Table table({"nodes", "static", "dynamic"});
  util::CsvWriter csv("fig11_prefetch_scale.csv", {"nodes", "static", "dynamic"});

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& static_run = results[2 * i];
    const auto& dynamic_run = results[2 * i + 1];
    table.add_row({std::to_string(n), util::Table::num(static_run.prefetch_overhead, 4),
                   util::Table::num(dynamic_run.prefetch_overhead, 4)});
    csv.add_row({std::to_string(n), util::Table::num(static_run.prefetch_overhead, 5),
                 util::Table::num(dynamic_run.prefetch_overhead, 5)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: all below ~0.04, dynamic above static at every\n"
              "size — the extra cost of ContinuStreaming stays minor.\n"
              "CSV: fig11_prefetch_scale.csv\n");
  return 0;
}
