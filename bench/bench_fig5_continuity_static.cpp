// Figure 5 reproduction: per-round playback continuity track, static
// environment, 1000 nodes, single source — CoolStreaming vs
// ContinuStreaming over the first 30+ seconds. The paper reports
// CoolStreaming stabilizing around 0.83 (by ~26 s) and ContinuStreaming
// around 0.97 (by ~18 s).

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 5",
                      "playback continuity track, static environment, 1000 nodes");

  // Both systems on the identical substrate (scenario matrix names this
  // workload "static_1k" / "cool_static_1k"); the runner executes the
  // pair in parallel.
  const auto continu_scn = bench::require_scenario("static_1k");
  const auto cool_scn = bench::require_scenario("cool_static_1k");
  const auto results = bench::run_batch({runner::spec_for(continu_scn, 7),
                                         runner::spec_for(cool_scn, 7)});
  const auto& continu_run = results[0];
  const auto& cool_run = results[1];

  util::Table table({"time (s)", "CoolStreaming", "ContinuStreaming"});
  util::CsvWriter csv("fig5_continuity_static.csv",
                      {"time", "coolstreaming", "continustreaming"});
  const auto& cool = cool_run.continuity.rounds();
  const auto& cont = continu_run.continuity.rounds();
  for (std::size_t i = 0; i < cool.size() && i < cont.size(); ++i) {
    table.add_row({util::Table::num(cool[i].time, 0), util::Table::num(cool[i].ratio(), 3),
                   util::Table::num(cont[i].ratio(), 3)});
    csv.add_row({util::Table::num(cool[i].time, 1), util::Table::num(cool[i].ratio(), 4),
                 util::Table::num(cont[i].ratio(), 4)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nContinuity INDEX (per-segment metric other papers use; always\n"
              ">= the strict node-level metric): Cool %.3f, Continu %.3f\n",
              cool_run.continuity_index, continu_run.continuity_index);
  std::printf("Stable phase (t >= 20 s): CoolStreaming %.3f, ContinuStreaming %.3f\n",
              cool_run.stable_continuity, continu_run.stable_continuity);
  std::printf("Paper expectation: ~0.83 vs ~0.97, with ContinuStreaming entering its\n"
              "stable phase several seconds earlier. CSV: fig5_continuity_static.csv\n");
  return 0;
}
