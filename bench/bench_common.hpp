#pragma once
// Shared plumbing for the figure/table reproduction harnesses: standard
// workload construction, full-session execution, and result records.
//
// Every bench prints the paper-style table to stdout and drops a CSV
// next to the working directory for replotting.

#include <cstdio>
#include <string>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

namespace continu::bench {

/// The paper's standard workload (Section 5.2) on a synthetic
/// clip2-style snapshot of `nodes` hosts.
[[nodiscard]] inline trace::TraceSnapshot standard_trace(std::size_t nodes,
                                                         std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.average_degree = 2.5;
  config.seed = seed;
  return trace::generate_snapshot(config);
}

/// Default run horizons: the paper tracks 0-30 s and reports stable-phase
/// values; we run a little longer and average the stable window.
struct Horizon {
  double duration = 45.0;
  double stable_from = 20.0;
};

struct RunSummary {
  double stable_continuity = 0.0;
  double stabilization_time = -1.0;   ///< first round reaching 90% of stable
  double control_overhead = 0.0;
  double prefetch_overhead = 0.0;
  core::SessionStats stats;
};

[[nodiscard]] inline RunSummary run_summary(const core::SystemConfig& config,
                                            const trace::TraceSnapshot& snapshot,
                                            Horizon horizon = {}) {
  core::Session session(config, snapshot);
  session.run(horizon.duration);
  RunSummary out;
  out.stable_continuity = session.continuity().stable_mean(horizon.stable_from);
  out.stabilization_time =
      session.continuity().stabilization_time(0.9 * out.stable_continuity);
  out.control_overhead = session.traffic().control_overhead();
  out.prefetch_overhead = session.traffic().prefetch_overhead();
  out.stats = session.stats();
  return out;
}

/// Paper-standard system configuration for a run over `nodes` hosts.
[[nodiscard]] inline core::SystemConfig standard_config(std::size_t nodes,
                                                        std::uint64_t seed,
                                                        bool churn) {
  core::SystemConfig config;
  config.seed = seed;
  config.expected_nodes = static_cast<double>(nodes);
  config.churn_enabled = churn;
  return config;
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

}  // namespace continu::bench
