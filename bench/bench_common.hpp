#pragma once
// Shared plumbing for the figure/table reproduction harnesses: standard
// workload construction, runner-backed execution, and result records.
//
// Every bench builds a batch of ReplicationSpecs and hands them to the
// ExperimentRunner, which shards the independent sessions across a
// thread pool (CONTINU_BENCH_JOBS env var overrides the job count; 0 or
// unset = all hardware threads). Results come back in spec order and
// are identical for any job count, so tables stay reproducible.
//
// Every bench prints the paper-style table to stdout and drops a CSV
// next to the working directory for replotting.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "trace/generator.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace continu::bench {

/// The paper's standard workload (Section 5.2) on a synthetic
/// clip2-style snapshot of `nodes` hosts.
[[nodiscard]] inline trace::GeneratorConfig standard_trace_config(std::size_t nodes,
                                                                  std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.average_degree = 2.5;
  config.seed = seed;
  return config;
}

[[nodiscard]] inline trace::TraceSnapshot standard_trace(std::size_t nodes,
                                                         std::uint64_t seed) {
  return trace::generate_snapshot(standard_trace_config(nodes, seed));
}

/// Default run horizons: the paper tracks 0-30 s and reports stable-phase
/// values; we run a little longer and average the stable window.
struct Horizon {
  double duration = 45.0;
  double stable_from = 20.0;
};

/// Paper-standard system configuration for a run over `nodes` hosts.
[[nodiscard]] inline core::SystemConfig standard_config(std::size_t nodes,
                                                        std::uint64_t seed,
                                                        bool churn) {
  core::SystemConfig config;
  config.seed = seed;
  config.expected_nodes = static_cast<double>(nodes);
  config.churn_enabled = churn;
  return config;
}

/// Spec over a generated standard trace (workers build the snapshot).
[[nodiscard]] inline runner::ReplicationSpec standard_spec(
    const core::SystemConfig& config, std::size_t nodes, std::uint64_t trace_seed,
    std::string label = "", Horizon horizon = {}) {
  runner::ReplicationSpec spec;
  spec.label = std::move(label);
  spec.config = config;
  spec.trace = standard_trace_config(nodes, trace_seed);
  spec.duration = horizon.duration;
  spec.stable_from = horizon.stable_from;
  return spec;
}

/// Spec over a pre-built snapshot (corpus sweeps, loaded trace files).
[[nodiscard]] inline runner::ReplicationSpec snapshot_spec(
    const core::SystemConfig& config,
    std::shared_ptr<const trace::TraceSnapshot> snapshot, std::string label = "",
    Horizon horizon = {}) {
  runner::ReplicationSpec spec;
  spec.label = std::move(label);
  spec.config = config;
  spec.snapshot = std::move(snapshot);
  spec.duration = horizon.duration;
  spec.stable_from = horizon.stable_from;
  return spec;
}

/// Bench job count: CONTINU_BENCH_JOBS env var, else 0 (= all cores).
[[nodiscard]] inline unsigned bench_jobs() {
  if (const char* env = std::getenv("CONTINU_BENCH_JOBS")) {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

/// Runs a batch of specs through the shared thread pool, spec order out.
[[nodiscard]] inline std::vector<runner::ReplicationResult> run_batch(
    const std::vector<runner::ReplicationSpec>& specs) {
  const runner::ExperimentRunner pool(bench_jobs());
  return pool.run_all(specs);
}

/// Named-scenario lookup that exits with a diagnostic instead of UB
/// when the matrix no longer has the name.
[[nodiscard]] inline runner::Scenario require_scenario(const std::string& name) {
  auto scenario = runner::find_scenario(name);
  if (!scenario.has_value()) {
    util::Log(util::LogLevel::kError) << "scenario matrix is missing '" << name << "'";
    std::exit(1);
  }
  return *std::move(scenario);
}

inline void print_header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

}  // namespace continu::bench
