// Section 5.1 table reproduction: theoretical PC_old / PC_new / delta
// for lambda = 14, 15 against full-simulation measurements with 1000
// nodes under homogeneous/heterogeneous bandwidth and static/dynamic
// churn — the exact grid of the paper's comparison table.

#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "analysis/continuity_model.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

struct SimRow {
  const char* label;
  bool heterogeneous;
  bool churn;
};

}  // namespace

int main() {
  using namespace continu;

  bench::print_header("Section 5.1 table",
                      "theoretical vs simulated playback continuity (n = 1000)");

  util::Table table({"Environment", "PC_old", "PC_new", "delta"});
  util::CsvWriter csv("table1_theory_vs_sim.csv",
                      {"environment", "pc_old", "pc_new", "delta"});

  // Theoretical rows (p = 10, tau = 1 s, k = 4).
  for (const double lambda : {15.0, 14.0}) {
    analysis::ContinuityInputs in;
    in.lambda = lambda;
    const auto out = analysis::predict_continuity(in);
    char label[64];
    std::snprintf(label, sizeof label, "Theoretical result with lambda=%.0f", lambda);
    table.add_row({label, util::Table::num(out.pc_old, 4), util::Table::num(out.pc_new, 4),
                   util::Table::num(out.delta, 4)});
    csv.add_row({label, util::Table::num(out.pc_old, 4), util::Table::num(out.pc_new, 4),
                 util::Table::num(out.delta, 4)});
  }

  // Simulation rows: PC_new from ContinuStreaming, PC_old from the
  // CoolStreaming baseline on the identical substrate. All 8 sessions
  // run as one parallel batch.
  const auto snapshot = std::make_shared<const continu::trace::TraceSnapshot>(
      bench::standard_trace(1000, 101));
  const SimRow rows[] = {
      {"Homogeneous and static environment", false, false},
      {"Homogeneous and dynamic environment", false, true},
      {"Heterogeneous and static environment", true, false},
      {"Heterogeneous and dynamic environment", true, true},
  };
  std::vector<runner::ReplicationSpec> specs;
  for (const auto& row : rows) {
    auto config = bench::standard_config(1000, 77, row.churn);
    config.heterogeneous_bandwidth = row.heterogeneous;
    specs.push_back(bench::snapshot_spec(config, snapshot, "continu"));
    specs.push_back(bench::snapshot_spec(config.as_coolstreaming(), snapshot, "cool"));
  }
  const auto results = bench::run_batch(specs);
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const auto& row = rows[i];
    const double pc_new = results[2 * i].stable_continuity;
    const double pc_old = results[2 * i + 1].stable_continuity;
    table.add_row({row.label, util::Table::num(pc_old, 4), util::Table::num(pc_new, 4),
                   util::Table::num(pc_new - pc_old, 4)});
    csv.add_row({row.label, util::Table::num(pc_old, 4), util::Table::num(pc_new, 4),
                 util::Table::num(pc_new - pc_old, 4)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: theory lambda=15 gives 0.8815 / 0.9989 / 0.1174;\n"
              "lambda=14 gives 0.8243 / 0.9975 / 0.1732. Simulated rows should\n"
              "bracket between/below the theory, with dynamic/heterogeneous rows a\n"
              "little lower. CSV: table1_theory_vs_sim.csv\n");
  return 0;
}
