// Figure 9 reproduction: control overhead (buffer-map bits over media
// bits) vs overlay size for M in {4, 5, 6}. The paper derives
// overhead ~ 620*M / (30*1024*p) = M/495 and reports all sizes staying
// below 0.02, slightly above the model because realized continuity is
// below 1.0.

#include <cstdio>
#include <vector>

#include "analysis/coverage.hpp"
#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 9", "control overhead vs overlay size, M in {4, 5, 6}");

  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000};
  const std::vector<std::size_t> fanouts = {4, 5, 6};

  // The (size x fan-out) grid is the fig9 scenario family.
  std::vector<runner::ReplicationSpec> specs;
  for (const std::size_t n : sizes) {
    for (const std::size_t m : fanouts) {
      const auto scenario = bench::require_scenario(
          "fig9_m" + std::to_string(m) + "_" + std::to_string(n));
      specs.push_back(runner::spec_for(scenario, 17));
    }
  }
  const auto results = bench::run_batch(specs);

  util::Table table({"nodes", "M=4", "M=5", "M=6", "model M=4", "model M=5", "model M=6"});
  util::CsvWriter csv("fig9_control_overhead.csv", {"nodes", "m", "overhead", "model"});

  std::size_t next = 0;
  for (const std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    std::vector<std::string> models;
    for (const std::size_t m : fanouts) {
      const double model = analysis::control_overhead_model(
          static_cast<unsigned>(m), specs[next].config.playback_rate);
      const auto& run = results[next++];
      row.push_back(util::Table::num(run.control_overhead, 5));
      models.push_back(util::Table::num(model, 5));
      csv.add_row({std::to_string(n), std::to_string(m),
                   util::Table::num(run.control_overhead, 6),
                   util::Table::num(model, 6)});
    }
    for (auto& m : models) row.push_back(std::move(m));
    table.add_row(std::move(row));
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: overhead ~ M/495 (0.0081 / 0.0101 / 0.0121),\n"
              "slightly above the model since continuity < 1.0 shrinks the media\n"
              "denominator; all below 0.02 and flat in n.\n"
              "CSV: fig9_control_overhead.csv\n");
  return 0;
}
