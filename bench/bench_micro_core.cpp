// Microbenchmarks (google-benchmark) for the hot paths of the
// reproduction: the event queue, the buffer-map codec, the priority
// model + Algorithm 1 inner loop, greedy DHT routing, and the bit
// window primitives that buffer-map processing leans on.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/buffer_map.hpp"
#include "core/priority.hpp"
#include "core/scheduler.hpp"
#include "dht/id_space.hpp"
#include "dht/routing_experiment.hpp"
#include "sim/round_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/bitwindow.hpp"
#include "util/rng.hpp"

namespace {

using namespace continu;

/// Representative protocol capture (~48 bytes: this*, indices, segment
/// ids, a rate) — the size every session/network/DHT action actually
/// schedules. std::function heap-allocated every one of these; the
/// EventAction slot pool stores them inline.
struct ActionPayload {
  void* self = nullptr;
  std::size_t requester = 1;
  std::size_t supplier = 2;
  std::uint64_t segment = 3;
  std::uint64_t node = 4;
  double rate = 5.0;
};

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  ActionPayload payload;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_in(rng.next_double(),
                      [payload, &sink] { sink += payload.segment; });
    }
    benchmark::DoNotOptimize(sim.run_all());
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000)->Arg(100000);

/// Floor variant: captureless actions (the cheapest possible schedule;
/// std::function kept these in its own small-buffer too, so this
/// isolates the queue data structure from action storage).
void BM_EventQueuePushPopEmpty(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_in(rng.next_double(), [] {});
    }
    benchmark::DoNotOptimize(sim.run_all());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPopEmpty)->Arg(1000)->Arg(10000)->Arg(100000);

/// Churn shape: half of the scheduled events are cancelled before they
/// fire. Cancels are O(1) slot writes; dead heap entries die lazily.
void BM_EventQueueCancelHeavy(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<sim::EventId> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    sim::Simulator sim;
    ids.clear();
    for (std::size_t i = 0; i < batch; ++i) {
      ids.push_back(sim.schedule_in(rng.next_double(), [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) {
      benchmark::DoNotOptimize(sim.cancel(ids[i]));
    }
    benchmark::DoNotOptimize(sim.run_all());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(100000);

/// A fleet of same-period participants behind one batched proxy event
/// (the per-node scheduling-round fleet of a session).
void BM_RoundSchedulerTicks(benchmark::State& state) {
  const auto participants = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  std::vector<double> phases;
  phases.reserve(participants);
  for (std::size_t i = 0; i < participants; ++i) {
    phases.push_back(rng.next_range(0.05, 0.90));
  }
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    sim::RoundScheduler rounds(sim, 1.0, [&ticks](std::size_t) { ++ticks; });
    for (std::size_t i = 0; i < participants; ++i) {
      (void)rounds.add(phases[i], i);
    }
    sim.run_until(10.0);
    benchmark::DoNotOptimize(ticks);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(participants) * 10);
}
BENCHMARK(BM_RoundSchedulerTicks)->Arg(1000)->Arg(8000);

void BM_BufferMapEncodeDecode(benchmark::State& state) {
  util::Rng rng(2);
  util::BitWindow window(600, 10000);
  for (int i = 0; i < 400; ++i) {
    window.set(10000 + static_cast<SegmentId>(rng.next_below(600)));
  }
  for (auto _ : state) {
    const auto image = core::encode_buffer_map(window);
    const auto decoded = core::decode_buffer_map(image, 600, 10000);
    benchmark::DoNotOptimize(decoded.count());
  }
}
BENCHMARK(BM_BufferMapEncodeDecode);

void BM_BitWindowMissingScan(benchmark::State& state) {
  util::Rng rng(3);
  util::BitWindow window(600, 0);
  for (int i = 0; i < 450; ++i) {
    window.set(static_cast<SegmentId>(rng.next_below(600)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.missing_in(0, 600));
  }
}
BENCHMARK(BM_BitWindowMissingScan);

[[nodiscard]] core::ScheduleRequest make_request(std::size_t candidates,
                                                 std::size_t suppliers) {
  util::Rng rng(4);
  core::ScheduleRequest request;
  request.priority_inputs.play_point = 100;
  request.inbound_budget = 15;
  request.rank_jitter = 0.4;
  request.jitter_seed = 99;
  for (std::size_t i = 0; i < candidates; ++i) {
    core::Candidate c;
    c.id = 110 + static_cast<SegmentId>(i);
    for (std::size_t s = 0; s < suppliers; ++s) {
      if (rng.next_bool(0.7)) {
        c.offers.push_back(core::SupplierOffer{static_cast<NodeId>(s + 1),
                                               rng.next_range(2.0, 30.0),
                                               1 + rng.next_below(600)});
      }
    }
    if (!c.offers.empty()) request.candidates.push_back(std::move(c));
  }
  return request;
}

void BM_ScheduleContinu(benchmark::State& state) {
  const auto request = make_request(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_continu(request));
  }
}
BENCHMARK(BM_ScheduleContinu)->Arg(20)->Arg(100)->Arg(400);

void BM_ScheduleCoolStreaming(benchmark::State& state) {
  const auto request = make_request(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::schedule_coolstreaming(request));
  }
}
BENCHMARK(BM_ScheduleCoolStreaming)->Arg(20)->Arg(100)->Arg(400);

void BM_DhtGreedyRoute(benchmark::State& state) {
  const dht::IdSpace space(8192);
  util::Rng build_rng(5);
  const dht::RoutingExperiment experiment(space, 4096, build_rng);
  util::Rng query_rng(6);
  const auto& ids = experiment.node_ids();
  for (auto _ : state) {
    const NodeId start = ids[query_rng.next_below(ids.size())];
    const auto target = static_cast<NodeId>(query_rng.next_below(space.size()));
    benchmark::DoNotOptimize(experiment.route(start, target));
  }
}
BENCHMARK(BM_DhtGreedyRoute);

}  // namespace
