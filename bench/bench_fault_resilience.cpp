// bench_fault_resilience — the committed resilience study behind the
// fault-injection subsystem. Two sweeps over the static_1k base, each
// a mean over `reps` replications at matched replication seeds:
//
//   1. LOSS SWEEP — iid link loss in {0, 1, 5}% with retry/backoff +
//      blacklist hardening on, crossed with the DHT-prefetch ablation
//      (gossip+CDP vs gossip-only via prefetch_limit = 0). The paper's
//      claim is that CDP keeps continuity high when the overlay is
//      degraded; this is the table that shows it (or doesn't) per push.
//
//   2. PARTITION SWEEP — a 2-region regional partition of length
//      {5, 10} s opening at t = 20 s, same ablation cross. Reported
//      per cell: pre-fault baseline continuity, the trough during the
//      partition, and RECOVERY TIME — seconds from heal until the
//      per-round continuity ratio first returns to >= 95% of the
//      pre-fault baseline and SUSTAINS it (5 consecutive rounds), so a
//      single lucky round cannot claim recovery. Replications that
//      never recover within the run are counted, not averaged in.
//
// Human-readable table on stderr, pure JSON on stdout — CI-style, the
// committed study under bench/results/pr7_fault_resilience/ is this
// tool's stdout.
//
//   bench_fault_resilience [--seed S] [--reps N] [--scenario NAME]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/cli.hpp"

namespace {

using continu::SimTime;

constexpr double kPartitionStart = 20.0;   // partitions open here
constexpr double kBaselineWindow = 5.0;    // baseline = mean over [start-5, start)
constexpr double kRecoveryFraction = 0.95; // "recovered" = 95% of baseline...
constexpr std::size_t kSustainRounds = 5;  // ...held for 5 consecutive rounds
constexpr double kPartitionDuration = 60.0; // run length for partition cells

struct LossCell {
  double continuity_mean = 0.0;
  double continuity_min = 1.0;
  double continuity_max = 0.0;
  double continuity_index = 0.0;
  double deliveries_lost = 0.0;
  double retry_backoffs = 0.0;
  double suppliers_blacklisted = 0.0;
  double stall_episodes = 0.0;
  double stall_rounds = 0.0;
};

struct PartitionCell {
  double baseline = 0.0;       ///< pre-fault continuity, mean over reps
  double trough = 0.0;         ///< min ratio while partitioned, mean over reps
  double recovery_s = 0.0;     ///< mean over reps THAT recovered
  std::size_t recovered = 0;   ///< reps whose ratio returned + sustained
  double final_continuity = 0.0;
  double deliveries_partitioned = 0.0;
};

/// Mean per-round continuity ratio over rounds with time in [from, to).
[[nodiscard]] double window_mean(const continu::metrics::ContinuityTracker& track,
                                 SimTime from, SimTime to) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& round : track.rounds()) {
    if (round.time >= from && round.time < to) {
      sum += round.ratio();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

[[nodiscard]] double window_min(const continu::metrics::ContinuityTracker& track,
                                SimTime from, SimTime to) {
  double lo = 1.0;
  for (const auto& round : track.rounds()) {
    if (round.time >= from && round.time < to) lo = std::min(lo, round.ratio());
  }
  return lo;
}

/// Seconds from `heal` until the ratio first reaches `target` and holds
/// it for kSustainRounds consecutive rounds (a shorter tail at end of
/// run still counts if every remaining round holds). -1 when never.
[[nodiscard]] double recovery_time(const continu::metrics::ContinuityTracker& track,
                                   SimTime heal, double target) {
  const auto& rounds = track.rounds();
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    if (rounds[i].time < heal || rounds[i].ratio() < target) continue;
    const std::size_t last = std::min(i + kSustainRounds, rounds.size());
    bool sustained = true;
    for (std::size_t j = i; j < last; ++j) {
      if (rounds[j].ratio() < target) { sustained = false; break; }
    }
    if (sustained) return rounds[i].time - heal;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace continu;

  std::string base_name = "static_1k";
  std::uint64_t seed = 42;
  std::size_t reps = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      seed = *parsed;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_positive_u32(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--reps expects a positive integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      reps = *parsed;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      base_name = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--seed S] [--reps N] [--scenario NAME]\n",
                   argv[0]);
      return 1;
    }
  }

  const auto scenario = bench::require_scenario(base_name);
  auto base_spec = runner::spec_for(scenario, seed);
  // One topology across every cell and rep: the sweeps isolate the
  // fault axis, not trace variance.
  base_spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
      trace::generate_snapshot(base_spec.trace));

  const double loss_rates[] = {0.0, 0.01, 0.05};
  const double partition_lengths[] = {5.0, 10.0};
  const struct { const char* key; bool cdp; } modes[] = {
      {"gossip_cdp", true}, {"gossip_only", false}};

  std::fprintf(stderr,
               "fault resilience — %s base, %zu reps, seed %" PRIu64 "\n",
               base_name.c_str(), reps, seed);

  std::printf("{\"bench\": \"fault_resilience\", \"scenario\": \"%s\", "
              "\"nodes\": %zu, \"seed\": %" PRIu64 ", \"reps\": %zu, "
              "\"recovery_fraction\": %.2f, \"sustain_rounds\": %zu, ",
              base_name.c_str(), scenario.node_count, seed, reps,
              kRecoveryFraction, kSustainRounds);

  // ---- sweep 1: iid loss x CDP ablation -------------------------------
  std::fprintf(stderr, "\n%-12s %6s %12s %12s %10s %10s %10s\n", "mode", "loss",
               "continuity", "cont_index", "retry_bo", "blkl", "stall_ep");
  std::printf("\"loss_sweep\": [");
  bool first = true;
  for (const auto& mode : modes) {
    for (const double loss : loss_rates) {
      auto spec = base_spec;
      spec.config.fault.loss_rate = loss;
      spec.config.retry.enabled = true;
      if (!mode.cdp) spec.config.prefetch_limit = 0;

      LossCell cell;
      for (std::size_t r = 0; r < reps; ++r) {
        spec.config.seed = runner::replication_seed(seed, r);
        const auto run = runner::ExperimentRunner::run_one(spec);
        cell.continuity_mean += run.stable_continuity;
        cell.continuity_min = std::min(cell.continuity_min, run.stable_continuity);
        cell.continuity_max = std::max(cell.continuity_max, run.stable_continuity);
        cell.continuity_index += run.continuity_index;
        cell.deliveries_lost += static_cast<double>(run.stats.deliveries_lost);
        cell.retry_backoffs += static_cast<double>(run.stats.retry_backoffs);
        cell.suppliers_blacklisted +=
            static_cast<double>(run.stats.suppliers_blacklisted);
        cell.stall_episodes += static_cast<double>(run.stats.stall_episodes);
        cell.stall_rounds += static_cast<double>(run.stats.stall_rounds);
      }
      const double n = static_cast<double>(reps);
      cell.continuity_mean /= n;
      cell.continuity_index /= n;
      cell.deliveries_lost /= n;
      cell.retry_backoffs /= n;
      cell.suppliers_blacklisted /= n;
      cell.stall_episodes /= n;
      cell.stall_rounds /= n;

      std::fprintf(stderr, "%-12s %5.1f%% %12.6f %12.6f %10.1f %10.1f %10.1f\n",
                   mode.key, loss * 100.0, cell.continuity_mean,
                   cell.continuity_index, cell.retry_backoffs,
                   cell.suppliers_blacklisted, cell.stall_episodes);

      std::printf("%s{\"mode\": \"%s\", \"loss_rate\": %g, "
                  "\"continuity\": %.6f, \"continuity_min\": %.6f, "
                  "\"continuity_max\": %.6f, \"continuity_index\": %.6f, "
                  "\"deliveries_lost_mean\": %.1f, \"retry_backoffs_mean\": %.1f, "
                  "\"suppliers_blacklisted_mean\": %.1f, "
                  "\"stall_episodes_mean\": %.1f, \"stall_rounds_mean\": %.1f}",
                  first ? "" : ", ", mode.key, loss, cell.continuity_mean,
                  cell.continuity_min, cell.continuity_max, cell.continuity_index,
                  cell.deliveries_lost, cell.retry_backoffs,
                  cell.suppliers_blacklisted, cell.stall_episodes,
                  cell.stall_rounds);
      first = false;
      std::fflush(stdout);
    }
  }
  std::printf("], ");

  // ---- sweep 2: regional partition x CDP ablation ---------------------
  std::fprintf(stderr, "\n%-12s %6s %10s %10s %12s %10s\n", "mode", "len",
               "baseline", "trough", "recovery_s", "recovered");
  std::printf("\"partition_sweep\": [");
  first = true;
  for (const auto& mode : modes) {
    for (const double length : partition_lengths) {
      const double heal = kPartitionStart + length;
      auto spec = base_spec;
      spec.duration = kPartitionDuration;
      spec.config.fault.partitions.push_back(
          {kPartitionStart, heal, /*regions=*/2});
      spec.config.retry.enabled = true;
      if (!mode.cdp) spec.config.prefetch_limit = 0;

      PartitionCell cell;
      double recovery_sum = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        spec.config.seed = runner::replication_seed(seed, r);
        const auto run = runner::ExperimentRunner::run_one(spec);
        const double baseline = window_mean(
            run.continuity, kPartitionStart - kBaselineWindow, kPartitionStart);
        cell.baseline += baseline;
        cell.trough += window_min(run.continuity, kPartitionStart, heal + 2.0);
        cell.final_continuity += run.stable_continuity;
        cell.deliveries_partitioned +=
            static_cast<double>(run.stats.deliveries_partitioned);
        const double rec =
            recovery_time(run.continuity, heal, kRecoveryFraction * baseline);
        if (rec >= 0.0) {
          recovery_sum += rec;
          ++cell.recovered;
        }
      }
      const double n = static_cast<double>(reps);
      cell.baseline /= n;
      cell.trough /= n;
      cell.final_continuity /= n;
      cell.deliveries_partitioned /= n;
      cell.recovery_s = cell.recovered == 0
                            ? -1.0
                            : recovery_sum / static_cast<double>(cell.recovered);

      std::fprintf(stderr, "%-12s %5.0fs %10.4f %10.4f %12.3f %7zu/%zu\n",
                   mode.key, length, cell.baseline, cell.trough, cell.recovery_s,
                   cell.recovered, reps);

      std::printf("%s{\"mode\": \"%s\", \"partition_s\": %g, \"heal_at\": %g, "
                  "\"baseline_continuity\": %.6f, \"trough_continuity\": %.6f, "
                  "\"recovery_s_mean\": %.3f, \"recovered\": %zu, "
                  "\"final_continuity\": %.6f, "
                  "\"deliveries_partitioned_mean\": %.1f}",
                  first ? "" : ", ", mode.key, length, heal, cell.baseline,
                  cell.trough, cell.recovery_s, cell.recovered,
                  cell.final_continuity, cell.deliveries_partitioned);
      first = false;
      std::fflush(stdout);
    }
  }
  std::printf("]}\n");
  return 0;
}
