#!/usr/bin/env python3
"""Multicore scaling-regression gate.

Reads one or more scaling-bench JSON records (bench_session_scaling's
``session_scaling`` format with ``threads`` points, and/or
bench_runner_scaling's ``runner_scaling`` format with ``jobs`` points)
and FAILS (exit 1) when the host actually has multiple cores but the
measured speedup at the target width falls short of the floor:

    check_scaling.py [--min-speedup 1.5] [--width 4] <bench_json>...

The gate only arms itself when the record's own ``hardware_concurrency``
is >= --width: dev containers exposing a single core report ~1.0x curves
by construction, and failing those would just teach people to delete the
gate. CI runners (ubuntu-latest: 4 vCPUs) are the hardware this gate is
written for — a push that accidentally serializes the prepare or plan
phase flattens the curve and fails the job.

Exit codes: 0 gate passed (or not armed), 1 scaling regression,
2 usage / malformed input.
"""

import argparse
import json
import sys


def check_record(path: str, width: int, floor: float) -> bool:
    """Returns True when the record passes (or the gate is not armed)."""
    with open(path, encoding="utf-8") as fh:
        record = json.load(fh)

    bench = record.get("bench", "?")
    hardware = int(record.get("hardware_concurrency", 0))
    points = record.get("points", [])
    # Shape-check before any lookup: a truncated bench run (killed mid
    # JSON, emitted "points": null, or a point without its speedup)
    # must produce the documented exit 2 diagnosis, not a traceback.
    if not isinstance(points, list) or not all(
        isinstance(p, dict) for p in points
    ):
        raise ValueError(f"'points' is not a list of objects in {path}")
    if not points:
        raise ValueError(
            f"'points' is empty in {path} — the bench produced no "
            f"measurements (truncated run?)"
        )
    # A record carries either a threads curve or a jobs curve.
    axis = "threads" if any("threads" in p for p in points) else "jobs"
    label = f"{bench} ({axis}={width}, hardware_concurrency={hardware})"

    # Arming comes BEFORE the point lookup: a single-core host is never
    # failed, whatever its curve looks like.
    if hardware < width:
        print(
            f"scaling gate [{label}]: NOT ARMED — host exposes {hardware} "
            f"core(s) < {width}"
        )
        return True

    target = next((p for p in points if int(p.get(axis, 0)) == width), None)
    if target is None:
        # Malformed/trimmed input on a multicore host is a usage error
        # (exit 2 via the caller), not a scaling regression.
        raise ValueError(f"no {axis}={width} point in {path}")

    if not isinstance(target.get("speedup"), (int, float)):
        raise ValueError(
            f"{axis}={width} point in {path} has no numeric 'speedup' "
            f"(got {target.get('speedup')!r})"
        )
    speedup = float(target["speedup"])

    print(f"scaling gate [{label}]: measured {speedup:.2f}x, floor {floor:.2f}x")
    if speedup < floor:
        print(
            f"scaling gate [{label}]: FAIL — {speedup:.2f}x is below the "
            f"{floor:.2f}x floor on a {hardware}-core host. The parallel "
            f"fraction regressed (a phase fell back to serial, a shared "
            f"lock appeared, or batches stopped forming).",
            file=sys.stderr,
        )
        return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("benches", nargs="+", help="scaling-bench JSON files")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--width", type=int, default=4)
    args = parser.parse_args()

    ok = True
    for path in args.benches:
        try:
            if not check_record(path, args.width, args.min_speedup):
                ok = False
        except (OSError, ValueError, KeyError, TypeError, AttributeError) as error:
            # TypeError/AttributeError cover shape surprises the explicit
            # checks miss (e.g. a field that is null or the wrong type):
            # still a malformed-input exit 2, never a raw traceback.
            print(f"scaling gate: cannot read {path}: {error}", file=sys.stderr)
            return 2
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
