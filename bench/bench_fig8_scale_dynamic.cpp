// Figure 8 reproduction: stable-phase playback continuity vs overlay
// size under churn (5% leaves + 5% joins per period), M = 5 — the
// dynamic twin of Figure 7.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 8",
                      "stable continuity vs overlay size, dynamic environment");

  // The size grid is the fig8 scenario family (5% churn per period).
  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000, 8000};
  std::vector<runner::ReplicationSpec> specs;
  for (const std::size_t n : sizes) {
    const auto scenario =
        bench::require_scenario("fig8_dynamic_" + std::to_string(n));
    const auto config = scenario.make_config(13);
    const auto snapshot = std::make_shared<const continu::trace::TraceSnapshot>(
        trace::generate_snapshot(scenario.make_trace()));
    specs.push_back(bench::snapshot_spec(config, snapshot, "continu"));
    specs.push_back(bench::snapshot_spec(config.as_coolstreaming(), snapshot, "cool"));
  }
  const auto results = bench::run_batch(specs);

  util::Table table({"nodes", "CoolStreaming", "ContinuStreaming", "delta"});
  util::CsvWriter csv("fig8_scale_dynamic.csv",
                      {"nodes", "coolstreaming", "continustreaming", "delta"});

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& cont = results[2 * i];
    const auto& cool = results[2 * i + 1];
    const double delta = cont.stable_continuity - cool.stable_continuity;
    table.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity, 3),
                   util::Table::num(delta, 3)});
    csv.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 4),
                 util::Table::num(cont.stable_continuity, 4),
                 util::Table::num(delta, 4)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: lower than Figure 7 across the board, with the\n"
              "delta larger than the static case at every size.\n"
              "CSV: fig8_scale_dynamic.csv\n");
  return 0;
}
