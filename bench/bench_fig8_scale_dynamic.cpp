// Figure 8 reproduction: stable-phase playback continuity vs overlay
// size under churn (5% leaves + 5% joins per period), M = 5 — the
// dynamic twin of Figure 7.

#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 8",
                      "stable continuity vs overlay size, dynamic environment");

  util::Table table({"nodes", "CoolStreaming", "ContinuStreaming", "delta"});
  util::CsvWriter csv("fig8_scale_dynamic.csv",
                      {"nodes", "coolstreaming", "continustreaming", "delta"});

  for (const std::size_t n : {100u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const auto snapshot = bench::standard_trace(n, 400 + n);
    const auto config = bench::standard_config(n, 13, /*churn=*/true);
    const auto cont = bench::run_summary(config, snapshot);
    const auto cool = bench::run_summary(config.as_coolstreaming(), snapshot);
    const double delta = cont.stable_continuity - cool.stable_continuity;
    table.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 3),
                   util::Table::num(cont.stable_continuity, 3),
                   util::Table::num(delta, 3)});
    csv.add_row({std::to_string(n), util::Table::num(cool.stable_continuity, 4),
                 util::Table::num(cont.stable_continuity, 4),
                 util::Table::num(delta, 4)});
    std::printf("  n=%zu done\n", n);
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: lower than Figure 7 across the board, with the\n"
              "delta larger than the static case at every size.\n"
              "CSV: fig8_scale_dynamic.csv\n");
  return 0;
}
