// bench_session_scaling — intra-session parallel speedup of ONE
// session at threads = 1, 2, 4, 8, emitted as JSON so the scaling curve
// is trackable from CI history:
//
//   {"bench": "session_scaling", "scenario": "static_1k", "nodes": 1000,
//    "duration": 45.0, "hardware_concurrency": 8,
//    "points": [{"threads": 1, "seconds": 9.31, "speedup": 1.0}, ...]}
//
// Every point runs the SAME (seed, config, trace); the bench fails hard
// if any thread count produces a different result fingerprint — wall
// clock is the only thing threads may change. On a 1-core host the
// curve is expected ~1.0x (hardware_concurrency records that); the
// ROADMAP "≥2x at 4 threads" target is judged on 4+ core hardware.
//
// --sharded-queue runs every point on the sharded event-queue engine;
// the fingerprint cross-check then ALSO proves the sharded engine
// reproduces the single-queue result at every width (the reference
// point at threads=1 still runs sharded — byte-identity to the
// single-queue engine is the fingerprint oracle's job).
//
// --queue-skew K (with --sharded-queue, quantized scenario) runs every
// point in lax mode at that skew. The cross-thread fingerprint check
// then enforces lax determinism: a fixed skew must produce identical
// results at every width, even though lax differs from strict.
//
//   bench_session_scaling [--scenario NAME] [--duration SEC] [--seed S]
//                         [--sharded-queue] [--queue-skew K]

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runner/cli.hpp"

int main(int argc, char** argv) {
  using namespace continu;
  using Clock = std::chrono::steady_clock;

  std::string name = "static_1k";
  double duration = 0.0;  // 0 = scenario default
  std::uint64_t seed = 42;
  bool sharded_queue = false;
  unsigned queue_skew = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 1;
      }
      seed = *parsed;
    } else if (std::strcmp(argv[i], "--sharded-queue") == 0) {
      sharded_queue = true;
    } else if (std::strcmp(argv[i], "--queue-skew") == 0 && i + 1 < argc) {
      const auto parsed = runner::cli::parse_uint(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "--queue-skew expects an integer >= 0, got '%s'\n",
                     argv[i]);
        return 1;
      }
      queue_skew = static_cast<unsigned>(*parsed);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario NAME] [--duration SEC] [--seed S] "
                   "[--sharded-queue] [--queue-skew K]\n",
                   argv[0]);
      return 1;
    }
  }

  const auto scenario = bench::require_scenario(name);
  auto spec = runner::spec_for(scenario, seed);
  if (duration > 0.0) spec.duration = duration;
  spec.config.sharded_queue = sharded_queue;
  spec.config.queue_skew_buckets = queue_skew;
  // Build the snapshot once, outside every timed region.
  spec.snapshot = std::make_shared<const trace::TraceSnapshot>(
      trace::generate_snapshot(spec.trace));

  struct Point {
    unsigned threads = 0;
    double seconds = 0.0;
  };
  std::vector<Point> points;
  std::uint64_t reference = 0;

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    spec.config.threads = threads;
    const auto start = Clock::now();
    const auto run = runner::ExperimentRunner::run_one(spec);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    const std::uint64_t fingerprint = runner::result_fingerprint(run);
    if (points.empty()) {
      reference = fingerprint;
    } else if (fingerprint != reference) {
      std::fprintf(stderr,
                   "FAIL: results at threads=%u differ from threads=1 — the "
                   "parallel executor is not deterministic\n",
                   threads);
      return 1;
    }
    points.push_back(Point{threads, seconds});
    std::fprintf(stderr, "  threads=%u: %.2fs (fingerprint %016" PRIx64 ")\n",
                 threads, seconds, fingerprint);
  }

  std::printf("{\"bench\": \"session_scaling\", \"scenario\": \"%s\", "
              "\"nodes\": %zu, \"duration\": %.1f, \"seed\": %" PRIu64 ", "
              "\"sharded_queue\": %s, \"queue_skew\": %u, "
              "\"hardware_concurrency\": %u, \"points\": [",
              name.c_str(), scenario.node_count, spec.duration, seed,
              sharded_queue ? "true" : "false", queue_skew,
              std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::printf("%s{\"threads\": %u, \"seconds\": %.3f, \"speedup\": %.3f}",
                i == 0 ? "" : ", ", points[i].threads, points[i].seconds,
                points[0].seconds / points[i].seconds);
  }
  std::printf("]}\n");
  return 0;
}
