// Figure 3 reproduction: average routing hops and query success rate of
// the loosely-organized DHT, for an ID space N = 8192 and occupancies n
// from a few hundred up to 8000. The paper reports avg hops ~ log2(n)/2
// and success very close to 1.0 even when the ring is sparse; the
// appendix bounds any route by log N / log(4/3) ~ 2.41 log2 N hops.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "dht/id_space.hpp"
#include "dht/routing_experiment.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace continu;

  bench::print_header("Figure 3", "DHT average routing hops & query success rate (N = 8192)");

  const dht::IdSpace space(8192);
  const std::size_t queries = 20000;

  util::Table table({"n (nodes)", "avg hops", "log2(n)/2", "success rate", "max hops",
                     "appendix bound"});
  util::CsvWriter csv("fig3_dht_routing.csv",
                      {"n", "avg_hops", "half_log2_n", "success_rate", "max_hops"});

  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 3000u, 4000u, 5000u, 6000u,
                              7000u, 8000u}) {
    util::Rng build_rng(1000 + n);
    const dht::RoutingExperiment experiment(space, n, build_rng);
    util::Rng query_rng(2000 + n);
    const auto stats = experiment.run(queries, query_rng);
    const double half_log = std::log2(static_cast<double>(n)) / 2.0;

    table.add_row({std::to_string(n), util::Table::num(stats.average_hops, 3),
                   util::Table::num(half_log, 3),
                   util::Table::num(stats.success_rate, 4),
                   std::to_string(stats.max_hops),
                   util::Table::num(space.hop_upper_bound(), 1)});
    csv.add_row({std::to_string(n), util::Table::num(stats.average_hops, 4),
                 util::Table::num(half_log, 4), util::Table::num(stats.success_rate, 4),
                 std::to_string(stats.max_hops)});
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nPaper expectation: avg hops tracks log2(n)/2; success ~ 1.0 even\n"
              "when the overlay is sparse (n << N); no route exceeds the appendix\n"
              "bound. CSV: fig3_dht_routing.csv\n");
  return 0;
}
