// Fault-injection subsystem + retry/backoff/failover hardening tests.
//
// Unit layer: the FaultInjector's loss/partition/spike semantics and
// the Node's retry-backoff + supplier-blacklist state machines.
// Session layer: the f*_ scenario families populate their cause-tagged
// counters, crash-stop events ride the abrupt-leave path, and graceful
// vs abrupt departures leave different CDP recovery footprints.

#include <gtest/gtest.h>

#include <vector>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/session.hpp"
#include "dht/id_space.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "trace/generator.hpp"

namespace continu {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::RetryPolicy;

// ---------------------------------------------------------------------------
// FaultInjector units
// ---------------------------------------------------------------------------

TEST(FaultInjector, InertPlanDeliversEverything) {
  FaultPlan plan;  // defaults: no loss, no events
  EXPECT_FALSE(plan.active());
  FaultInjector inj(plan, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.classify(0, 1 + i % 7, 0.1 * i), FaultInjector::Fate::kDeliver);
    EXPECT_DOUBLE_EQ(inj.extra_latency_s(0.1 * i), 0.0);
  }
}

TEST(FaultInjector, LossIsDeterministicInSeedAndCallSequence) {
  FaultPlan plan;
  plan.loss_rate = 0.5;
  ASSERT_TRUE(plan.active());

  const auto sequence = [&plan](std::uint64_t seed) {
    FaultInjector inj(plan, seed);
    std::vector<FaultInjector::Fate> fates;
    for (int i = 0; i < 400; ++i) {
      fates.push_back(inj.classify(i % 11, i % 7, 0.25 * (i / 4)));
    }
    return fates;
  };
  // Same seed, same call sequence: identical fates (this is what makes
  // send-time classification reproducible across runs).
  EXPECT_EQ(sequence(42), sequence(42));
  // A different seed reshuffles the loss pattern.
  EXPECT_NE(sequence(42), sequence(43));

  // Losses actually happen at roughly the configured rate.
  const auto fates = sequence(42);
  int lost = 0;
  for (const auto f : fates) lost += (f == FaultInjector::Fate::kLoss) ? 1 : 0;
  EXPECT_GT(lost, 100);
  EXPECT_LT(lost, 300);
}

TEST(FaultInjector, PartitionSeparatesRegionsUntilHeal) {
  FaultPlan plan;
  plan.partitions.push_back({/*start=*/10.0, /*heal=*/20.0, /*regions=*/2});
  ASSERT_TRUE(plan.active());
  FaultInjector inj(plan, 7);

  // Inside the window, cross-region links are cut; same-region links
  // (and the window edges) deliver. No RNG is involved.
  EXPECT_EQ(inj.classify(0, 1, 15.0), FaultInjector::Fate::kPartition);
  EXPECT_EQ(inj.classify(3, 6, 15.0), FaultInjector::Fate::kPartition);
  EXPECT_EQ(inj.classify(0, 2, 15.0), FaultInjector::Fate::kDeliver);
  EXPECT_EQ(inj.classify(1, 5, 15.0), FaultInjector::Fate::kDeliver);
  EXPECT_EQ(inj.classify(0, 1, 9.9), FaultInjector::Fate::kDeliver);
  EXPECT_EQ(inj.classify(0, 1, 20.0), FaultInjector::Fate::kDeliver);  // healed
  EXPECT_TRUE(inj.partitioned(0, 1, 10.0));  // [start, heal)
  EXPECT_FALSE(inj.partitioned(0, 1, 20.0));
}

TEST(FaultInjector, BurstEpisodesRaiseTheLossRate) {
  FaultPlan plan;
  plan.loss_rate = 0.01;
  plan.burst_rate = 0.8;
  plan.burst_period = 10.0;
  plan.burst_duration = 2.0;
  FaultInjector inj(plan, 9);
  // Phase within [0, burst_duration) of each period is the episode.
  EXPECT_DOUBLE_EQ(inj.loss_rate_at(0.5), 0.8);
  EXPECT_DOUBLE_EQ(inj.loss_rate_at(11.9), 0.8);
  EXPECT_DOUBLE_EQ(inj.loss_rate_at(5.0), 0.01);
  EXPECT_DOUBLE_EQ(inj.loss_rate_at(12.0), 0.01);
}

TEST(FaultInjector, LatencySpikesAddDelayOnlyInsideTheWindow) {
  FaultPlan plan;
  plan.loss_rate = 0.001;  // keep the plan active
  plan.spikes.push_back({/*start=*/5.0, /*duration=*/2.0, /*extra_ms=*/100.0});
  FaultInjector inj(plan, 11);
  EXPECT_DOUBLE_EQ(inj.extra_latency_s(6.0), 0.1);
  EXPECT_DOUBLE_EQ(inj.extra_latency_s(4.9), 0.0);
  EXPECT_DOUBLE_EQ(inj.extra_latency_s(7.0), 0.0);  // [start, start+duration)
}

// ---------------------------------------------------------------------------
// Node-level retry/backoff + blacklist state machines
// ---------------------------------------------------------------------------

core::Node test_node(NodeId id, const dht::IdSpace& space,
                     const core::SystemConfig& config) {
  return core::Node(id, /*session_index=*/0, config, space,
                    /*inbound_rate=*/15.0, /*outbound_rate=*/15.0,
                    /*ping_ms=*/50.0);
}

TEST(RetryHardening, BackoffDoublesAndSaturatesAtTheCap) {
  const dht::IdSpace space(8192);
  core::SystemConfig config;
  core::Node node = test_node(1, space, config);

  RetryPolicy policy;
  policy.enabled = true;
  policy.backoff_base = 0.5;
  policy.backoff_cap = 4.0;
  policy.max_attempts = 4;

  const SegmentId seg = 100;
  core::Node::SweepHardening hard;
  SimTime now = 0.0;
  // Drive repeated timeouts through the sweep (inflight entry each
  // time, then a cutoff in the future so it times out immediately).
  std::vector<double> windows;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    ASSERT_TRUE(node.begin_transfer(seg, core::TransferKind::kScheduled,
                                    /*supplier=*/2, now));
    const auto dropped = node.sweep_timeouts(
        /*cutoff=*/now + 1.0, [](NodeId) {}, &policy, now, &hard);
    ASSERT_EQ(dropped, 1u);
    // Probe the backoff window width by bisection against retry_blocked.
    double lo = 0.0, hi = 64.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (node.retry_blocked(seg, now + mid) ? lo : hi) = mid;
    }
    windows.push_back(lo);
  }
  EXPECT_EQ(hard.backoffs, 6u);
  // 0.5, 1, 2, then pinned at the 4-second cap: bounded, terminating.
  EXPECT_NEAR(windows[0], 0.5, 1e-3);
  EXPECT_NEAR(windows[1], 1.0, 1e-3);
  EXPECT_NEAR(windows[2], 2.0, 1e-3);
  EXPECT_NEAR(windows[3], 4.0, 1e-3);
  EXPECT_NEAR(windows[4], 4.0, 1e-3);  // attempts capped at max_attempts
  EXPECT_NEAR(windows[5], 4.0, 1e-3);

  // Success wipes the streak.
  node.clear_retry(seg);
  EXPECT_FALSE(node.retry_blocked(seg, now));
  EXPECT_EQ(node.retry_record_count(), 0u);
}

TEST(RetryHardening, SupplierBlacklistEngagesDecaysAndClears) {
  const dht::IdSpace space(8192);
  core::SystemConfig config;
  core::Node node = test_node(1, space, config);

  RetryPolicy policy;
  policy.enabled = true;
  policy.blacklist_strikes = 3;
  policy.blacklist_base = 2.0;
  policy.blacklist_cap = 8.0;

  const NodeId supplier = 77;
  SimTime now = 0.0;
  // Two strikes: below threshold, not blacklisted.
  EXPECT_FALSE(node.note_supplier_failure(supplier, now, policy));
  EXPECT_FALSE(node.note_supplier_failure(supplier, now, policy));
  EXPECT_FALSE(node.supplier_blacklisted(supplier, now, policy));
  // Third strike crosses the threshold: newly blacklisted (counted
  // once), for blacklist_base seconds.
  EXPECT_TRUE(node.note_supplier_failure(supplier, now, policy));
  EXPECT_TRUE(node.supplier_blacklisted(supplier, now, policy));
  // A strike while already blacklisted extends but does not re-count.
  EXPECT_FALSE(node.note_supplier_failure(supplier, now, policy));
  // The window doubles per extra strike, capped: 2*2^1 = 4 s here.
  EXPECT_TRUE(node.supplier_blacklisted(supplier, now + 3.9, policy));
  EXPECT_FALSE(node.supplier_blacklisted(supplier, now + 4.1, policy));

  // Decay: once the window passes, compaction sweeps the record.
  node.compact_bookkeeping(/*now=*/now + 10.0, /*horizon=*/0);
  EXPECT_EQ(node.strike_record_count(), 0u);

  // A successful delivery erases the record immediately.
  EXPECT_FALSE(node.note_supplier_failure(supplier, now, policy));
  node.note_supplier_success(supplier);
  EXPECT_EQ(node.strike_record_count(), 0u);
}

TEST(RetryHardening, CompactionSweepsStaleRetryRecords) {
  const dht::IdSpace space(8192);
  core::SystemConfig config;
  core::Node node = test_node(1, space, config);

  RetryPolicy policy;
  policy.enabled = true;
  policy.backoff_base = 0.5;
  policy.backoff_cap = 2.0;

  SimTime now = 100.0;
  for (SegmentId seg = 990; seg < 1000; ++seg) {
    ASSERT_TRUE(node.begin_transfer(seg, core::TransferKind::kScheduled, 2, now));
  }
  core::Node::SweepHardening hard;
  node.sweep_timeouts(now + 1.0, [](NodeId) {}, &policy, now, &hard);
  EXPECT_EQ(node.retry_record_count(), 10u);

  // Records behind the playback window go first...
  node.compact_bookkeeping(now, /*horizon=*/995);
  EXPECT_EQ(node.retry_record_count(), 5u);
  // ...and the rest expire once their streak linger passes.
  node.compact_bookkeeping(now + 60.0, /*horizon=*/995);
  EXPECT_EQ(node.retry_record_count(), 0u);
}

// ---------------------------------------------------------------------------
// Session-level fault behaviour
// ---------------------------------------------------------------------------

runner::ReplicationResult run_scenario(const char* name, double duration,
                                       double stable_from) {
  const auto scenario = runner::find_scenario(name);
  EXPECT_TRUE(scenario.has_value()) << name;
  auto spec = runner::spec_for(*scenario, /*seed=*/42);
  spec.duration = duration;
  spec.stable_from = stable_from;
  return runner::ExperimentRunner::run_one(spec);
}

TEST(FaultSession, HostileMixPopulatesCauseTaggedCounters) {
  // f5_static_small: 5% loss + bursts + a 10% crash at t=25 + a spike,
  // hardening on. Every new counter must light up, and the crash-stop
  // victims must ride the abrupt-leave path (no churn in the base, so
  // every abrupt leave IS a crash).
  const auto run = run_scenario("f5_static_small", 30.0, 20.0);
  const auto& s = run.stats;
  EXPECT_GT(s.deliveries_lost, 0u);
  EXPECT_EQ(s.deliveries_partitioned, 0u);
  EXPECT_GT(s.fault_crashes, 0u);
  EXPECT_EQ(s.abrupt_leaves, s.fault_crashes);
  EXPECT_EQ(s.graceful_leaves, 0u);
  EXPECT_GT(s.retry_backoffs, 0u);
  EXPECT_GT(s.suppliers_blacklisted, 0u);
  EXPECT_GT(s.stall_episodes, 0u);
  EXPECT_GE(s.stall_rounds, s.stall_episodes);
  // Liveness drops (dead receivers) are tagged separately from
  // injected loss.
  EXPECT_GT(s.deliveries_dropped, 0u);
}

TEST(FaultSession, PartitionTagsItsOwnCounter) {
  // fp_static_small cuts cross-region links over [20s, 30s) with no
  // link loss: only the partition counter may move.
  const auto run = run_scenario("fp_static_small", 35.0, 15.0);
  const auto& s = run.stats;
  EXPECT_GT(s.deliveries_partitioned, 0u);
  EXPECT_EQ(s.deliveries_lost, 0u);
  EXPECT_EQ(s.fault_crashes, 0u);
  EXPECT_GT(s.retry_backoffs, 0u);
}

TEST(FaultSession, LightLossKeepsTheOverlayHealthy) {
  // 1% iid loss with hardening: losses are tagged, continuity stays
  // in the same band as the fault-free base (recovery works).
  const auto run = run_scenario("f1_static_small", 45.0, 20.0);
  EXPECT_GT(run.stats.deliveries_lost, 0u);
  EXPECT_EQ(run.stats.fault_crashes, 0u);
  EXPECT_GT(run.stable_continuity, 0.75);
}

TEST(FaultSession, GracefulAndAbruptLeavesDifferInRecoveryCounters) {
  // Same churn process, same seeds — the ONLY difference is whether
  // departures hand their CDP backup over (graceful) or vanish
  // (abrupt). Abrupt departure destroys backups, so the on-demand
  // plane sees more "no replica found" outcomes; graceful hand-over
  // keeps them reachable. Thin replicas (k=1) magnify the effect.
  const auto run_with = [](double graceful_fraction) {
    trace::GeneratorConfig tc;
    tc.node_count = 200;
    tc.seed = 700;
    const auto snapshot = trace::generate_snapshot(tc);
    core::SystemConfig config;
    config.seed = 42;
    config.expected_nodes = 200.0;
    config.backup_replicas = 1;
    config.churn_enabled = true;
    config.churn.leave_fraction = 0.05;
    config.churn.join_fraction = 0.05;
    config.churn.graceful_fraction = graceful_fraction;
    core::Session session(config, snapshot);
    session.run(40.0);
    return session.stats();
  };
  const auto graceful = run_with(1.0);
  const auto abrupt = run_with(0.0);

  ASSERT_GT(graceful.graceful_leaves, 0u);
  EXPECT_EQ(graceful.abrupt_leaves, 0u);
  ASSERT_GT(abrupt.abrupt_leaves, 0u);
  EXPECT_EQ(abrupt.graceful_leaves, 0u);
  // The CDP recovery footprint: abrupt departures strand strictly more
  // pre-fetches without a reachable replica.
  EXPECT_GT(abrupt.prefetch_no_replica, graceful.prefetch_no_replica);
}

TEST(FaultSession, SteadyStateStaysAllocationLeanUnderFaults) {
  // The PR-4 allocation discipline must survive fault injection: with
  // sustained link loss and hardening on, the forked prepare phase
  // still serves every buffer-map window from the warm arena pool, and
  // the new retry/blacklist tables stay bounded by RECENT failures
  // (compaction sweeps stale records) instead of accreting history.
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);
  core::SystemConfig config;
  config.seed = 24;
  config.expected_nodes = 200.0;
  config.threads = 4;
  config.fault.loss_rate = 0.02;
  config.retry.enabled = true;
  core::Session session(config, snapshot);
  session.run(15.0);  // warm-up: pools fill, loss is already flowing

  const auto warm = session.window_arena_stats();
  EXPECT_GT(warm.checkouts, 0u);

  session.run(25.0);  // steady state under sustained loss
  const auto steady = session.window_arena_stats();
  EXPECT_GT(steady.checkouts, warm.checkouts + 10000u)
      << "exchange stopped running — the assertion below would be vacuous";
  EXPECT_EQ(steady.allocations, warm.allocations)
      << "fault-path bookkeeping broke the steady-state allocation freeze";

  // Hardening state is live (the test is not vacuous) yet bounded: a
  // handful of in-window records per node, nowhere near stream history
  // (~450 segments by t=40; unswept tables would dwarf this bound).
  const auto fp = session.memory_footprint();
  EXPECT_GT(session.stats().retry_backoffs, 0u);
  EXPECT_LE(
      static_cast<double>(fp.retry_map_bytes + fp.blacklist_bytes) /
          static_cast<double>(fp.nodes),
      256.0);
}

TEST(FaultSession, ZeroFaultConfigInstallsNoInjector) {
  // A default config must not route sends through the injector at all:
  // the fault counters stay zero and no fault series is recorded.
  const auto run = run_scenario("static_small", 25.0, 15.0);
  const auto& s = run.stats;
  EXPECT_EQ(s.deliveries_lost, 0u);
  EXPECT_EQ(s.deliveries_partitioned, 0u);
  EXPECT_EQ(s.fault_crashes, 0u);
  EXPECT_EQ(s.retry_backoffs, 0u);
  EXPECT_EQ(s.suppliers_blacklisted, 0u);
}

TEST(FaultSession, FaultRunsAreThreadCountInvariant) {
  // The engine's core contract extended to faults: classification
  // happens at (serial) send time, so the full f5 mix — loss draws,
  // crash victims, spike delays — is byte-identical at any width.
  const auto scenario = runner::find_scenario("f5_static_small");
  ASSERT_TRUE(scenario.has_value());
  auto spec = runner::spec_for(*scenario, 42);
  spec.duration = 30.0;
  spec.stable_from = 20.0;
  const auto serial = runner::ExperimentRunner::run_one(spec);
  spec.config.threads = 4;
  const auto forked = runner::ExperimentRunner::run_one(spec);
  EXPECT_EQ(runner::result_fingerprint(serial),
            runner::result_fingerprint(forked));
  EXPECT_EQ(serial.stats.deliveries_lost, forked.stats.deliveries_lost);
  EXPECT_EQ(serial.stats.fault_crashes, forked.stats.fault_crashes);
  EXPECT_EQ(serial.stats.retry_backoffs, forked.stats.retry_backoffs);
}

}  // namespace
}  // namespace continu
