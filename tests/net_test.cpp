// Unit tests for the network layer: message taxonomy, traffic
// accounting, the latency model and delivery semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace continu::net {
namespace {

TEST(Message, WireCostsMatchPaper) {
  // Section 5.4.2: 600 window bits + 20 head bits = 620.
  EXPECT_EQ(WireCosts::kBufferMapBits, 620u);
  // Section 5.4.3: routing message = 10 bytes = 80 bits.
  EXPECT_EQ(WireCosts::kDhtRouteBits, 80u);
  // One segment = 30 Kb (1024-based).
  EXPECT_EQ(WireCosts::kSegmentBits, 30u * 1024u);
}

TEST(Message, TrafficClassMapping) {
  EXPECT_EQ(traffic_class_of(MessageType::kBufferMap), TrafficClass::kControl);
  EXPECT_EQ(traffic_class_of(MessageType::kSegmentRequest), TrafficClass::kRequest);
  EXPECT_EQ(traffic_class_of(MessageType::kSegmentData), TrafficClass::kData);
  EXPECT_EQ(traffic_class_of(MessageType::kDhtRoute), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kDhtReply), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPrefetchRequest), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPrefetchData), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPing), TrafficClass::kMaintenance);
  EXPECT_EQ(traffic_class_of(MessageType::kHandover), TrafficClass::kMaintenance);
}

TEST(Message, NamesAreStable) {
  EXPECT_EQ(message_type_name(MessageType::kBufferMap), "buffer-map");
  EXPECT_EQ(traffic_class_name(TrafficClass::kPrefetch), "prefetch");
}

TEST(Message, DefaultBitsPositive) {
  for (const auto type :
       {MessageType::kBufferMap, MessageType::kSegmentRequest, MessageType::kSegmentData,
        MessageType::kDhtRoute, MessageType::kDhtReply, MessageType::kPrefetchRequest,
        MessageType::kPrefetchData, MessageType::kPing, MessageType::kPong,
        MessageType::kJoinNotify, MessageType::kHandover}) {
    EXPECT_GT(default_message_bits(type), 0u) << message_type_name(type);
  }
}

TEST(Traffic, ChargesByClass) {
  TrafficAccount account;
  account.charge(TrafficClass::kControl, 620);
  account.charge(TrafficClass::kControl, 620);
  account.charge(TrafficClass::kData, 30 * 1024);
  EXPECT_EQ(account.bits(TrafficClass::kControl), 1240u);
  EXPECT_EQ(account.messages(TrafficClass::kControl), 2u);
  EXPECT_EQ(account.bits(TrafficClass::kData), 30u * 1024u);
}

TEST(Traffic, ControlOverheadRatio) {
  TrafficAccount account;
  // M = 5 maps against p = 10 segments: 620*5 / (30720*10), which the
  // paper rounds to M/495.
  for (int i = 0; i < 5; ++i) account.charge(TrafficClass::kControl, 620);
  for (int i = 0; i < 10; ++i) account.charge(TrafficClass::kData, 30 * 1024);
  EXPECT_NEAR(account.control_overhead(), 620.0 * 5.0 / (30.0 * 1024.0 * 10.0), 1e-12);
  EXPECT_NEAR(account.control_overhead(), 5.0 / 495.0, 2e-4);
}

TEST(Traffic, OverheadZeroWithoutData) {
  TrafficAccount account;
  account.charge(TrafficClass::kControl, 620);
  EXPECT_DOUBLE_EQ(account.control_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(account.prefetch_overhead(), 0.0);
}

TEST(Traffic, SinceComputesDelta) {
  TrafficAccount account;
  account.charge(TrafficClass::kData, 100);
  const TrafficAccount snapshot = account;
  account.charge(TrafficClass::kData, 50);
  account.charge(TrafficClass::kPrefetch, 10);
  const auto delta = account.since(snapshot);
  EXPECT_EQ(delta.bits(TrafficClass::kData), 50u);
  EXPECT_EQ(delta.bits(TrafficClass::kPrefetch), 10u);
  EXPECT_EQ(delta.messages(TrafficClass::kData), 1u);
}

TEST(Traffic, ClearResets) {
  TrafficAccount account;
  account.charge(TrafficClass::kData, 100);
  account.clear();
  EXPECT_EQ(account.bits(TrafficClass::kData), 0u);
  EXPECT_EQ(account.messages(TrafficClass::kData), 0u);
}

TEST(LatencyModel, PairwiseDifferenceWithFloor) {
  const LatencyModel model({100.0, 160.0, 101.0}, 5.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 60.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(1, 0), 60.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 2), 5.0);  // floored
  EXPECT_DOUBLE_EQ(model.latency_s(0, 1), 0.060);
}

TEST(LatencyModel, RttIsTwiceOneWay) {
  const LatencyModel model({10.0, 60.0}, 5.0);
  EXPECT_DOUBLE_EQ(model.rtt_s(0, 1), 2.0 * model.latency_s(0, 1));
}

TEST(LatencyModel, FromTraceMatchesPings) {
  trace::GeneratorConfig config;
  config.node_count = 20;
  config.seed = 3;
  const auto snap = trace::generate_snapshot(config);
  const auto model = LatencyModel::from_trace(snap);
  EXPECT_EQ(model.node_count(), 20u);
  const double expected =
      std::max(std::abs(snap.nodes()[2].ping_ms - snap.nodes()[7].ping_ms), 5.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(2, 7), expected);
}

TEST(LatencyModel, AddNodeExtends) {
  LatencyModel model({10.0}, 5.0);
  const auto idx = model.add_node(70.0);
  EXPECT_EQ(idx, 1u);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 60.0);
}

TEST(LatencyModel, AverageLatencyPositive) {
  const LatencyModel model({10.0, 60.0, 200.0, 450.0}, 5.0);
  const double avg = model.average_latency_ms();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 450.0);
}

TEST(LatencyModel, RejectsEmptyAndNegativeFloor) {
  EXPECT_THROW(LatencyModel({}, 5.0), std::invalid_argument);
  EXPECT_THROW(LatencyModel({1.0}, -1.0), std::invalid_argument);
}

TEST(Network, DeliversAfterLatency) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  double delivered_at = -1.0;
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.050);
}

TEST(Network, ExtraDelayAddsToLatency) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  double delivered_at = -1.0;
  net.send(0, 1, MessageType::kSegmentData, 30720, [&] { delivered_at = sim.now(); },
           /*extra_delay=*/0.2);
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.250);
}

TEST(Network, ChargesTrafficAtSendTime) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  net.send(0, 1, MessageType::kSegmentData, 30720, [] {});
  // Charged immediately, before delivery.
  EXPECT_EQ(net.traffic().bits(TrafficClass::kData), 30720u);
}

TEST(Network, FilterDropsDeliveries) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  bool delivered = false;
  net.set_delivery_filter([](std::size_t) { return false; });
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered = true; });
  sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped(), 1u);
  // Bits still charged — they hit the wire.
  EXPECT_EQ(net.traffic().bits(TrafficClass::kMaintenance), 80u);
}

TEST(Network, FilterEvaluatedAtDeliveryTime) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  bool alive = true;
  bool delivered = false;
  net.set_delivery_filter([&](std::size_t) { return alive; });
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered = true; });
  // The destination dies while the packet is in flight.
  sim.schedule_in(0.01, [&] { alive = false; });
  sim.run_all();
  EXPECT_FALSE(delivered);
}

TEST(Network, ChargeOnlyCountsWithoutEvent) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  net.charge_only(MessageType::kBufferMap, 620);
  EXPECT_EQ(net.traffic().bits(TrafficClass::kControl), 620u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Network, OrderedDeliveriesBetweenSamePair) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  std::vector<int> order;
  net.send(0, 1, MessageType::kPing, 80, [&] { order.push_back(1); });
  net.send(0, 1, MessageType::kPing, 80, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Latency grid (quantized mode)
// ---------------------------------------------------------------------------

TEST(LatencyModel, GridSnapsUpNeverDown) {
  const LatencyModel model({0.0, 7.0}, 5.0, 2.0);
  // 7 ms is strictly between grid points: snaps UP to 8, never to 6.
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 8.0);
  // The floor itself quantizes: floored pairs land on ceil(5/2)*2 = 6.
  const LatencyModel floored({10.0, 10.0}, 5.0, 2.0);
  EXPECT_DOUBLE_EQ(floored.latency_ms(0, 1), 6.0);
}

TEST(LatencyModel, GridPointExactVsEpsilonBelow) {
  const LatencyModel model({0.0}, 5.0, 2.0);
  // A value exactly ON the grid stays put...
  EXPECT_DOUBLE_EQ(model.quantize_up_ms(6.0), 6.0);
  EXPECT_DOUBLE_EQ(model.quantize_up_ms(0.0), 0.0);
  // ...while epsilon below a grid point still snaps to that point, and
  // epsilon above snaps to the NEXT one — snapping is never downward.
  EXPECT_DOUBLE_EQ(model.quantize_up_ms(5.9999999), 6.0);
  EXPECT_DOUBLE_EQ(model.quantize_up_ms(6.0000001), 8.0);
  // Continuous mode (grid 0) is the identity.
  const LatencyModel continuous({0.0}, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(continuous.quantize_up_ms(7.3), 7.3);
}

TEST(LatencyModel, QuantizedRttIsSymmetricAndOnGrid) {
  const LatencyModel model({3.0, 17.5, 41.2}, 5.0, 2.0);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(model.rtt_s(a, b), model.rtt_s(b, a));
      EXPECT_DOUBLE_EQ(model.rtt_s(a, b), 2.0 * model.latency_s(a, b));
      // 2x an on-grid latency is still a whole number of grid steps.
      const double steps = model.rtt_s(a, b) * 1000.0 / model.grid_ms();
      EXPECT_NEAR(steps, std::round(steps), 1e-9) << a << "," << b;
    }
  }
}

TEST(LatencyModel, FloorZeroAllowsZeroLatency) {
  // floor_ms = 0 with identical pings: zero one-way latency is legal
  // (the model never goes negative) and quantization keeps 0 at 0 —
  // ceil(0/grid) is 0, so a zero latency never inflates to one grid.
  const LatencyModel model({25.0, 25.0}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(model.rtt_s(0, 1), 0.0);
  const LatencyModel continuous({25.0, 25.0}, 0.0);
  EXPECT_DOUBLE_EQ(continuous.latency_ms(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(continuous.average_latency_ms(), 0.0);
}

TEST(LatencyModel, AddNodeDuringChurnKeepsAverageSane) {
  // Grow a model across the exact/sampled boundary (n = 512) the way
  // churn joins do, and require the average to stay inside the hard
  // [floor, max-pairwise] envelope at every size — the old lattice
  // sweep could leave this envelope on adversarial vectors.
  LatencyModel model({0.0, 40.0}, 5.0);
  double max_ping = 40.0;
  for (std::size_t k = 2; k < 600; ++k) {
    const double ping = static_cast<double>((k * 37) % 200);
    max_ping = std::max(max_ping, ping);
    model.add_node(ping);
    if (k % 97 == 0 || k >= 510) {
      const double avg = model.average_latency_ms();
      EXPECT_GE(avg, model.floor_ms()) << "n=" << k + 1;
      EXPECT_LE(avg, max_ping) << "n=" << k + 1;
    }
  }
  // Deterministic: same model, same estimate, every call.
  EXPECT_DOUBLE_EQ(model.average_latency_ms(), model.average_latency_ms());
}

TEST(LatencyModel, AverageSamplerSurvivesAdversarialIndexCorrelation) {
  // Regression for the stride-lattice sampling bias. For 512 < n <=
  // 1024 the old sampler visited only pairs with i even and j odd; on
  // a ping vector where parity encodes the ping (even index -> 0 ms,
  // odd -> 100 ms) every sampled pair hit |0 - 100| = 100 ms and the
  // estimate came out ~2x the true mean. The fixed sampler draws pairs
  // uniformly, so index structure cannot bias it.
  const std::size_t n = 600;
  std::vector<double> pings(n);
  for (std::size_t i = 0; i < n; ++i) pings[i] = (i % 2 == 0) ? 0.0 : 100.0;
  const LatencyModel model(pings, 5.0);

  // Ground truth, exact O(n^2).
  double exact_total = 0.0;
  std::size_t exact_pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      exact_total += model.latency_ms(i, j);
      ++exact_pairs;
    }
  }
  const double exact = exact_total / static_cast<double>(exact_pairs);

  // The OLD estimator, reproduced verbatim: this is what the shipped
  // sampler used to compute. It MUST be badly off on this vector —
  // if this assertion ever fails, the vector stopped being adversarial
  // and the regression test lost its teeth.
  const std::size_t stride = n / 512 + 1;
  double old_total = 0.0;
  std::size_t old_pairs = 0;
  for (std::size_t i = 0; i < n; i += stride) {
    for (std::size_t j = i + 1; j < n; j += stride) {
      old_total += model.latency_ms(i, j);
      ++old_pairs;
    }
  }
  const double old_estimate = old_total / static_cast<double>(old_pairs);
  ASSERT_GT(std::abs(old_estimate - exact) / exact, 0.5)
      << "old lattice estimate " << old_estimate << " vs exact " << exact;

  // The fixed sampler lands within a few percent of the exact mean.
  const double estimate = model.average_latency_ms();
  EXPECT_LT(std::abs(estimate - exact) / exact, 0.05)
      << "sampled " << estimate << " vs exact " << exact;
}

// ---------------------------------------------------------------------------
// Quantized delivery batching
// ---------------------------------------------------------------------------

TEST(Network, QuantizedSendSnapsDeliveryInstantUp) {
  sim::Simulator sim;
  // Pings 10/17: one-way 7 ms -> 10 ms on the 5 ms grid.
  Network net(sim, LatencyModel({10.0, 17.0}, 5.0, 5.0));
  double delivered_at = -1.0;
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.010);

  // extra_delay lands off-grid (10 ms latency + 1.2 ms payload) and the
  // TOTAL instant snaps: 11.2 -> 15 ms after the send.
  delivered_at = -1.0;
  net.send(0, 1, MessageType::kSegmentData, 30720, [&] { delivered_at = sim.now(); },
           /*extra_delay=*/0.0012);
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.025);  // 0.010 (now) + 11.2 ms -> 25 ms
}

TEST(Network, QuantizedCoInstantDeliveriesFormOneBatch) {
  sim::Simulator sim;
  // All pairwise latencies floor to 5 ms -> one 5 ms grid bucket.
  Network net(sim, LatencyModel({10.0, 11.0, 12.0, 13.0}, 5.0, 5.0));
  std::vector<std::uint32_t> delivered;
  std::vector<double> instants;
  for (std::uint32_t to = 1; to < 4; ++to) {
    net.send_sharded(0, to, MessageType::kPing, 80,
                     [&delivered, &instants, &sim, to](DeliveryContext&) {
                       delivered.push_back(to);
                       instants.push_back(sim.now());
                     });
  }
  sim.run_all();
  EXPECT_EQ(net.delivery_batches(), 1u);
  EXPECT_EQ(net.batched_deliveries(), 3u);
  EXPECT_EQ(delivered, (std::vector<std::uint32_t>{1, 2, 3}));
  for (const double t : instants) EXPECT_DOUBLE_EQ(t, 0.005);
}

TEST(Network, QuantizedSamePairKeepsFifoWithinBucket) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 11.0}, 5.0, 5.0));
  std::vector<int> order;
  net.send_sharded(0, 1, MessageType::kPing, 80,
                   [&order](DeliveryContext&) { order.push_back(1); });
  net.send_sharded(0, 1, MessageType::kPing, 80,
                   [&order](DeliveryContext&) { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(net.delivery_batches(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, QuantizedFilterDropsAreCounted) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 11.0, 12.0}, 5.0, 5.0));
  net.set_delivery_filter([](std::size_t to) { return to != 1; });
  int ran = 0;
  net.send_sharded(0, 1, MessageType::kPing, 80,
                   [&ran](DeliveryContext&) { ++ran; });
  net.send_sharded(0, 2, MessageType::kPing, 80,
                   [&ran](DeliveryContext&) { ++ran; });
  sim.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(net.dropped(), 1u);
  // Both messages hit the wire regardless.
  EXPECT_EQ(net.traffic().messages(TrafficClass::kMaintenance), 2u);
}

TEST(Network, PostShardedSkipsChargeAndFilter) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 11.0}, 5.0, 5.0));
  net.set_delivery_filter([](std::size_t) { return false; });
  double ran_at = -1.0;
  net.post_sharded(1, 0.0042, [&](DeliveryContext&) { ran_at = sim.now(); });
  sim.run_all();
  // Local continuation: no wire traffic, immune to the liveness filter,
  // snapped onto the grid like any quantized delivery.
  EXPECT_DOUBLE_EQ(ran_at, 0.005);
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.traffic().messages(TrafficClass::kMaintenance), 0u);
}

TEST(Network, ContinuousShardedPathsKeepExactTiming) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));  // continuous
  double delivered_at = -1.0;
  double forwarded_at = -1.0;
  bool deferred_ran_inline = false;
  net.send_sharded(0, 1, MessageType::kPing, 80, [&](DeliveryContext& ctx) {
    delivered_at = sim.now();
    EXPECT_FALSE(ctx.parallel());
    EXPECT_EQ(ctx.shard(), 0u);
    // Immediate mode: defer() runs its argument right here...
    ctx.defer([&] { deferred_ran_inline = true; });
    EXPECT_TRUE(deferred_ran_inline);
    // ...and forward() schedules an exact (unquantized) continuation.
    ctx.forward(1, sim.now() + 0.0013,
                [&](DeliveryContext&) { forwarded_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.050);
  EXPECT_DOUBLE_EQ(forwarded_at, 0.0513);
  EXPECT_EQ(net.delivery_batches(), 0u);  // no buckets in continuous mode
}

TEST(Network, QuantizedForwardChainsAcrossBuckets) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 11.0}, 5.0, 5.0));
  std::vector<double> hops;
  net.send_sharded(0, 1, MessageType::kPing, 80, [&](DeliveryContext& ctx) {
    hops.push_back(sim.now());
    ctx.forward(1, sim.now() + 0.0021, [&](DeliveryContext& inner) {
      hops.push_back(sim.now());
      inner.forward(1, sim.now() + 0.0021,
                    [&](DeliveryContext&) { hops.push_back(sim.now()); });
    });
  });
  sim.run_all();
  // 5 ms arrival, then each 2.1 ms continuation snaps to the next grid
  // point: 10 ms, 15 ms.
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_DOUBLE_EQ(hops[0], 0.005);
  EXPECT_DOUBLE_EQ(hops[1], 0.010);
  EXPECT_DOUBLE_EQ(hops[2], 0.015);
  EXPECT_EQ(net.delivery_batches(), 3u);
}

TEST(Network, QuantizedDeferSettlesAfterWholeBucket) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 11.0, 12.0}, 5.0, 5.0));
  std::vector<std::string> log;
  for (std::uint32_t to = 1; to < 3; ++to) {
    net.send_sharded(0, to, MessageType::kPing, 80, [&log, to](DeliveryContext& ctx) {
      log.push_back("handler" + std::to_string(to));
      ctx.defer([&log, to] { log.push_back("defer" + std::to_string(to)); });
    });
  }
  sim.run_all();
  // Every handler of the bucket runs before ANY deferred op: the join
  // replays buffers only after the fork completes.
  EXPECT_EQ(log, (std::vector<std::string>{"handler1", "handler2", "defer1",
                                           "defer2"}));
}

}  // namespace
}  // namespace continu::net
