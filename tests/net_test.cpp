// Unit tests for the network layer: message taxonomy, traffic
// accounting, the latency model and delivery semantics.

#include <gtest/gtest.h>

#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace continu::net {
namespace {

TEST(Message, WireCostsMatchPaper) {
  // Section 5.4.2: 600 window bits + 20 head bits = 620.
  EXPECT_EQ(WireCosts::kBufferMapBits, 620u);
  // Section 5.4.3: routing message = 10 bytes = 80 bits.
  EXPECT_EQ(WireCosts::kDhtRouteBits, 80u);
  // One segment = 30 Kb (1024-based).
  EXPECT_EQ(WireCosts::kSegmentBits, 30u * 1024u);
}

TEST(Message, TrafficClassMapping) {
  EXPECT_EQ(traffic_class_of(MessageType::kBufferMap), TrafficClass::kControl);
  EXPECT_EQ(traffic_class_of(MessageType::kSegmentRequest), TrafficClass::kRequest);
  EXPECT_EQ(traffic_class_of(MessageType::kSegmentData), TrafficClass::kData);
  EXPECT_EQ(traffic_class_of(MessageType::kDhtRoute), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kDhtReply), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPrefetchRequest), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPrefetchData), TrafficClass::kPrefetch);
  EXPECT_EQ(traffic_class_of(MessageType::kPing), TrafficClass::kMaintenance);
  EXPECT_EQ(traffic_class_of(MessageType::kHandover), TrafficClass::kMaintenance);
}

TEST(Message, NamesAreStable) {
  EXPECT_EQ(message_type_name(MessageType::kBufferMap), "buffer-map");
  EXPECT_EQ(traffic_class_name(TrafficClass::kPrefetch), "prefetch");
}

TEST(Message, DefaultBitsPositive) {
  for (const auto type :
       {MessageType::kBufferMap, MessageType::kSegmentRequest, MessageType::kSegmentData,
        MessageType::kDhtRoute, MessageType::kDhtReply, MessageType::kPrefetchRequest,
        MessageType::kPrefetchData, MessageType::kPing, MessageType::kPong,
        MessageType::kJoinNotify, MessageType::kHandover}) {
    EXPECT_GT(default_message_bits(type), 0u) << message_type_name(type);
  }
}

TEST(Traffic, ChargesByClass) {
  TrafficAccount account;
  account.charge(TrafficClass::kControl, 620);
  account.charge(TrafficClass::kControl, 620);
  account.charge(TrafficClass::kData, 30 * 1024);
  EXPECT_EQ(account.bits(TrafficClass::kControl), 1240u);
  EXPECT_EQ(account.messages(TrafficClass::kControl), 2u);
  EXPECT_EQ(account.bits(TrafficClass::kData), 30u * 1024u);
}

TEST(Traffic, ControlOverheadRatio) {
  TrafficAccount account;
  // M = 5 maps against p = 10 segments: 620*5 / (30720*10), which the
  // paper rounds to M/495.
  for (int i = 0; i < 5; ++i) account.charge(TrafficClass::kControl, 620);
  for (int i = 0; i < 10; ++i) account.charge(TrafficClass::kData, 30 * 1024);
  EXPECT_NEAR(account.control_overhead(), 620.0 * 5.0 / (30.0 * 1024.0 * 10.0), 1e-12);
  EXPECT_NEAR(account.control_overhead(), 5.0 / 495.0, 2e-4);
}

TEST(Traffic, OverheadZeroWithoutData) {
  TrafficAccount account;
  account.charge(TrafficClass::kControl, 620);
  EXPECT_DOUBLE_EQ(account.control_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(account.prefetch_overhead(), 0.0);
}

TEST(Traffic, SinceComputesDelta) {
  TrafficAccount account;
  account.charge(TrafficClass::kData, 100);
  const TrafficAccount snapshot = account;
  account.charge(TrafficClass::kData, 50);
  account.charge(TrafficClass::kPrefetch, 10);
  const auto delta = account.since(snapshot);
  EXPECT_EQ(delta.bits(TrafficClass::kData), 50u);
  EXPECT_EQ(delta.bits(TrafficClass::kPrefetch), 10u);
  EXPECT_EQ(delta.messages(TrafficClass::kData), 1u);
}

TEST(Traffic, ClearResets) {
  TrafficAccount account;
  account.charge(TrafficClass::kData, 100);
  account.clear();
  EXPECT_EQ(account.bits(TrafficClass::kData), 0u);
  EXPECT_EQ(account.messages(TrafficClass::kData), 0u);
}

TEST(LatencyModel, PairwiseDifferenceWithFloor) {
  const LatencyModel model({100.0, 160.0, 101.0}, 5.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 60.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(1, 0), 60.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 2), 5.0);  // floored
  EXPECT_DOUBLE_EQ(model.latency_s(0, 1), 0.060);
}

TEST(LatencyModel, RttIsTwiceOneWay) {
  const LatencyModel model({10.0, 60.0}, 5.0);
  EXPECT_DOUBLE_EQ(model.rtt_s(0, 1), 2.0 * model.latency_s(0, 1));
}

TEST(LatencyModel, FromTraceMatchesPings) {
  trace::GeneratorConfig config;
  config.node_count = 20;
  config.seed = 3;
  const auto snap = trace::generate_snapshot(config);
  const auto model = LatencyModel::from_trace(snap);
  EXPECT_EQ(model.node_count(), 20u);
  const double expected =
      std::max(std::abs(snap.nodes()[2].ping_ms - snap.nodes()[7].ping_ms), 5.0);
  EXPECT_DOUBLE_EQ(model.latency_ms(2, 7), expected);
}

TEST(LatencyModel, AddNodeExtends) {
  LatencyModel model({10.0}, 5.0);
  const auto idx = model.add_node(70.0);
  EXPECT_EQ(idx, 1u);
  EXPECT_DOUBLE_EQ(model.latency_ms(0, 1), 60.0);
}

TEST(LatencyModel, AverageLatencyPositive) {
  const LatencyModel model({10.0, 60.0, 200.0, 450.0}, 5.0);
  const double avg = model.average_latency_ms();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 450.0);
}

TEST(LatencyModel, RejectsEmptyAndNegativeFloor) {
  EXPECT_THROW(LatencyModel({}, 5.0), std::invalid_argument);
  EXPECT_THROW(LatencyModel({1.0}, -1.0), std::invalid_argument);
}

TEST(Network, DeliversAfterLatency) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  double delivered_at = -1.0;
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered_at = sim.now(); });
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.050);
}

TEST(Network, ExtraDelayAddsToLatency) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  double delivered_at = -1.0;
  net.send(0, 1, MessageType::kSegmentData, 30720, [&] { delivered_at = sim.now(); },
           /*extra_delay=*/0.2);
  sim.run_all();
  EXPECT_DOUBLE_EQ(delivered_at, 0.250);
}

TEST(Network, ChargesTrafficAtSendTime) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  net.send(0, 1, MessageType::kSegmentData, 30720, [] {});
  // Charged immediately, before delivery.
  EXPECT_EQ(net.traffic().bits(TrafficClass::kData), 30720u);
}

TEST(Network, FilterDropsDeliveries) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  bool delivered = false;
  net.set_delivery_filter([](std::size_t) { return false; });
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered = true; });
  sim.run_all();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped(), 1u);
  // Bits still charged — they hit the wire.
  EXPECT_EQ(net.traffic().bits(TrafficClass::kMaintenance), 80u);
}

TEST(Network, FilterEvaluatedAtDeliveryTime) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  bool alive = true;
  bool delivered = false;
  net.set_delivery_filter([&](std::size_t) { return alive; });
  net.send(0, 1, MessageType::kPing, 80, [&] { delivered = true; });
  // The destination dies while the packet is in flight.
  sim.schedule_in(0.01, [&] { alive = false; });
  sim.run_all();
  EXPECT_FALSE(delivered);
}

TEST(Network, ChargeOnlyCountsWithoutEvent) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  net.charge_only(MessageType::kBufferMap, 620);
  EXPECT_EQ(net.traffic().bits(TrafficClass::kControl), 620u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Network, OrderedDeliveriesBetweenSamePair) {
  sim::Simulator sim;
  Network net(sim, LatencyModel({10.0, 60.0}, 5.0));
  std::vector<int> order;
  net.send(0, 1, MessageType::kPing, 80, [&] { order.push_back(1); });
  net.send(0, 1, MessageType::kPing, 80, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace continu::net
