// Tests for the deterministic intra-session parallel executor: per-tick
// RNG stream derivation, fork/join shard coverage, ordered reductions,
// the deferred-emission API, RoundScheduler batch dispatch, session
// threads-invariance, runner core arbitration, CLI validation and the
// parameterized scenario families.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "runner/cli.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "sim/parallel/deferred.hpp"
#include "sim/parallel/executor.hpp"
#include "sim/round_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace continu {
namespace {

using sim::parallel::EmissionBuffer;
using sim::parallel::ParallelExecutor;

// ---------------------------------------------------------------------------
// Per-tick RNG streams
// ---------------------------------------------------------------------------

TEST(TickRng, MappingIsStable) {
  // Golden lock-in: the (seed, time, node) -> stream mapping is part of
  // the engine's determinism contract. Changing it invalidates every
  // recorded fingerprint, so it must fail a test, not slip through.
  auto rng = util::Rng::for_tick(42, 1.25, 7);
  EXPECT_EQ(rng.next_u64(), 1666953718805957629ULL);
  EXPECT_EQ(rng.next_u64(), 3657286095254846338ULL);
  EXPECT_EQ(util::Rng::for_tick(0, 0.0, 0).next_u64(), 15465756844587741606ULL);
}

TEST(TickRng, SameTripleSameStream) {
  auto a = util::Rng::for_tick(99, 3.75, 1234);
  auto b = util::Rng::for_tick(99, 3.75, 1234);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(TickRng, AnyComponentChangesStream) {
  const std::uint64_t base = util::Rng::for_tick(7, 2.5, 11).next_u64();
  EXPECT_NE(util::Rng::for_tick(8, 2.5, 11).next_u64(), base);
  EXPECT_NE(util::Rng::for_tick(7, 2.5000000001, 11).next_u64(), base);
  EXPECT_NE(util::Rng::for_tick(7, 2.5, 12).next_u64(), base);
}

TEST(TickRng, NoCrossTickCorrelationSmoke) {
  // Streams of ADJACENT node ids at the same tick, and of the same node
  // at adjacent ticks, must look unrelated: correlate the first 256
  // uniforms of each pair and expect |r| well below noise thresholds.
  const auto correlation = [](util::Rng x, util::Rng y) {
    constexpr int kN = 256;
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int i = 0; i < kN; ++i) {
      const double a = x.next_double();
      const double b = y.next_double();
      sx += a; sy += b; sxx += a * a; syy += b * b; sxy += a * b;
    }
    const double n = kN;
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  for (std::uint64_t node = 0; node < 16; ++node) {
    EXPECT_LT(std::fabs(correlation(util::Rng::for_tick(42, 5.0, node),
                                    util::Rng::for_tick(42, 5.0, node + 1))),
              0.25)
        << "adjacent nodes, node " << node;
    EXPECT_LT(std::fabs(correlation(util::Rng::for_tick(42, 5.0, node),
                                    util::Rng::for_tick(42, 6.0, node))),
              0.25)
        << "adjacent ticks, node " << node;
  }
}

// ---------------------------------------------------------------------------
// ParallelExecutor
// ---------------------------------------------------------------------------

TEST(ParallelExecutor, ShardCountIsPure) {
  EXPECT_EQ(ParallelExecutor::shard_count(0, 32), 0u);
  EXPECT_EQ(ParallelExecutor::shard_count(1, 32), 1u);
  EXPECT_EQ(ParallelExecutor::shard_count(32, 32), 1u);
  EXPECT_EQ(ParallelExecutor::shard_count(33, 32), 2u);
  EXPECT_EQ(ParallelExecutor::shard_count(100, 1), 100u);
  EXPECT_EQ(ParallelExecutor::shard_count(100, 0), 100u);  // grain 0 -> 1
}

TEST(ParallelExecutor, EveryItemRunsExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ParallelExecutor exec(threads);
    constexpr std::size_t kCount = 1013;  // not a multiple of the grain
    std::vector<std::atomic<int>> hits(kCount);
    exec.for_shards(kCount, 16, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i << " at threads " << threads;
    }
  }
}

TEST(ParallelExecutor, RepeatedJobsOnOnePool) {
  // The pool persists across jobs; stale workers from earlier jobs must
  // never double-claim shards of later ones.
  ParallelExecutor exec(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t count = 64 + static_cast<std::size_t>(round) * 7;
    std::vector<std::atomic<int>> hits(count);
    exec.for_shards(count, 8, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " item " << i;
    }
  }
}

TEST(ParallelExecutor, OrderedReductionIsThreadCountInvariant) {
  // The determinism keystone: a floating-point sum accumulated per
  // shard and merged in shard order is BIT-identical for every thread
  // count, because the shard structure is fixed by (count, grain).
  constexpr std::size_t kCount = 2500;
  constexpr std::size_t kGrain = 64;
  std::vector<double> values(kCount);
  util::Rng rng(7);
  for (auto& v : values) v = rng.next_range(-1.0, 1.0);

  const auto sharded_sum = [&](unsigned threads) {
    ParallelExecutor exec(threads);
    std::vector<double> partials(ParallelExecutor::shard_count(kCount, kGrain), 0.0);
    exec.for_shards(kCount, kGrain,
                    [&](std::size_t s, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        partials[s] += values[i];
                      }
                    });
    double total = 0.0;
    sim::parallel::reduce_in_order(partials, total);
    return total;
  };

  const double reference = sharded_sum(1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const double total = sharded_sum(threads);
    EXPECT_EQ(std::memcmp(&total, &reference, sizeof(total)), 0)
        << "threads " << threads;
  }
  // And it agrees with the plain serial chain up to reassociation only.
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(reference, serial, 1e-9);
}

TEST(ParallelExecutor, ExceptionPropagatesLowestShardFirst) {
  ParallelExecutor exec(4);
  try {
    exec.for_shards(100, 10, [](std::size_t s, std::size_t, std::size_t) {
      if (s == 3 || s == 7) {
        throw std::runtime_error("shard " + std::to_string(s));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 3");
  }
  // The pool must survive a throwing job.
  std::atomic<int> ran{0};
  exec.for_shards(10, 1, [&](std::size_t, std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

// ---------------------------------------------------------------------------
// Deferred-emission API
// ---------------------------------------------------------------------------

TEST(DeferredEmissions, MergedBuffersReproduceSerialSequence) {
  // Two shard buffers merged in shard order must execute in exactly the
  // order a serial loop over (shard 0 entries, shard 1 entries) would —
  // including FIFO among equal times, which is what sequence numbers
  // encode.
  sim::Simulator sim;
  std::vector<int> order;
  EmissionBuffer shard0;
  EmissionBuffer shard1;
  shard0.defer_at(1.0, [&order] { order.push_back(0); });
  shard0.defer_at(2.0, [&order] { order.push_back(1); });
  shard1.defer_at(1.0, [&order] { order.push_back(2); });  // ties with #0
  shard1.defer_at(0.5, [&order] { order.push_back(3); });
  EXPECT_EQ(shard0.size(), 2u);
  shard0.flush_into(sim);
  shard1.flush_into(sim);
  EXPECT_TRUE(shard0.empty());
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{3, 0, 2, 1}));
}

TEST(DeferredEmissions, PastTimesClampToNow) {
  sim::Simulator sim;
  sim.schedule_in(5.0, [] {});
  sim.run_all();
  ASSERT_DOUBLE_EQ(sim.now(), 5.0);
  EmissionBuffer buffer;
  bool ran = false;
  buffer.defer_at(1.0, [&ran] { ran = true; });  // in the past
  buffer.flush_into(sim);
  sim.run_all();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

// ---------------------------------------------------------------------------
// RoundScheduler batch dispatch
// ---------------------------------------------------------------------------

TEST(RoundSchedulerBatch, SameInstantTicksArriveAsOneBatch) {
  sim::Simulator sim;
  std::vector<std::vector<std::size_t>> batches;
  sim::RoundScheduler rounds(sim, 1.0, [](std::size_t) { FAIL() << "per-tick"; });
  rounds.set_batch_tick([&batches](const std::vector<std::size_t>& users) {
    batches.push_back(users);
  });
  rounds.add(0.5, 10);
  rounds.add(0.5, 20);
  rounds.add(0.5, 30);
  rounds.add(0.75, 40);
  sim.run_until(2.0);
  // t=0.5: {10,20,30} in add order; t=0.75: {40}; then the same again
  // one period later.
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0], (std::vector<std::size_t>{10, 20, 30}));
  EXPECT_EQ(batches[1], (std::vector<std::size_t>{40}));
  EXPECT_EQ(batches[2], (std::vector<std::size_t>{10, 20, 30}));
  EXPECT_EQ(batches[3], (std::vector<std::size_t>{40}));
}

TEST(RoundSchedulerBatch, RemovalDuringBatchStopsRescheduling) {
  sim::Simulator sim;
  sim::RoundScheduler rounds(sim, 1.0, [](std::size_t) {});
  std::vector<sim::RoundScheduler::Handle> handles;
  std::vector<std::size_t> seen;
  rounds.set_batch_tick([&](const std::vector<std::size_t>& users) {
    for (const std::size_t user : users) {
      seen.push_back(user);
      if (user == 1) rounds.remove(handles[2]);  // kill participant 2
    }
  });
  handles.push_back(rounds.add(0.5, 0));
  handles.push_back(rounds.add(0.5, 1));
  handles.push_back(rounds.add(0.5, 2));
  sim.run_until(1.0);
  // First batch reports all three (removal mid-batch does not retract
  // an already-collected tick)...
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  seen.clear();
  sim.run_until(2.0);
  // ...but participant 2 is gone from the next round.
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(rounds.active(), 2u);
}

TEST(RoundSchedulerBatch, AddAtMergesLateJoinerIntoCohortBatch) {
  // A participant added mid-run at a cohort's recurring tick instant
  // (computed with the cohort's own accumulation arithmetic) must land
  // in the SAME batch — this is what keeps round batches at ~N/buckets
  // under churn instead of fragmenting into per-join singletons.
  sim::Simulator sim;
  std::vector<std::vector<std::size_t>> batches;
  sim::RoundScheduler rounds(sim, 1.0, [](std::size_t) {});
  rounds.set_batch_tick([&batches](const std::vector<std::size_t>& users) {
    batches.push_back(users);
  });
  const double phase = 0.3;
  rounds.add(phase, 1);
  sim.run_until(5.5);  // cohort ticked at 0.3, 1.3, ..., 5.3
  // Next cohort instant, by the same next = fired + period accumulation.
  double tick = phase;
  while (tick <= sim.now()) tick += 1.0;
  rounds.add_at(tick, 2);
  batches.clear();
  sim.run_until(6.5);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], (std::vector<std::size_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// Session-level threads invariance
// ---------------------------------------------------------------------------

TEST(SessionThreads, ResultsBitIdenticalAcrossThreadCounts) {
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);

  const auto fingerprint_at = [&snapshot](unsigned threads, bool churn) {
    core::SystemConfig config;
    config.seed = 42;
    config.expected_nodes = 200;
    config.threads = threads;
    config.churn_enabled = churn;
    runner::ReplicationSpec spec;
    spec.config = config;
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(snapshot);
    spec.duration = 25.0;
    spec.stable_from = 15.0;
    return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
  };

  for (const bool churn : {false, true}) {
    const std::uint64_t reference = fingerprint_at(1, churn);
    for (const unsigned threads : {2u, 4u, 8u}) {
      EXPECT_EQ(fingerprint_at(threads, churn), reference)
          << "threads " << threads << " churn " << churn;
    }
  }
}

// ---------------------------------------------------------------------------
// Quantized delivery batches (receiver-sharded network mode)
// ---------------------------------------------------------------------------

TEST(QuantizedDelivery, SessionsBitIdenticalAcrossThreadCounts) {
  // The delivery-batch twin of the SessionThreads gate: with a latency
  // grid installed, every segment request / arrival / completion runs
  // through receiver-sharded bucket dispatches, and the fingerprint
  // must STILL be a pure function of (seed, config, trace). Covers
  // static and churn (drops exercise the per-shard drop buffers) at
  // two grid sizes.
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);

  const auto fingerprint_at = [&snapshot](unsigned threads, bool churn,
                                          double grid_ms) {
    core::SystemConfig config;
    config.seed = 42;
    config.expected_nodes = 200;
    config.threads = threads;
    config.churn_enabled = churn;
    config.latency_grid_ms = grid_ms;
    runner::ReplicationSpec spec;
    spec.config = config;
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(snapshot);
    spec.duration = 25.0;
    spec.stable_from = 15.0;
    return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
  };

  for (const double grid_ms : {1.0, 5.0}) {
    for (const bool churn : {false, true}) {
      const std::uint64_t reference = fingerprint_at(1, churn, grid_ms);
      for (const unsigned threads : {2u, 4u, 8u}) {
        EXPECT_EQ(fingerprint_at(threads, churn, grid_ms), reference)
            << "threads " << threads << " churn " << churn << " grid "
            << grid_ms;
      }
    }
  }
}

TEST(QuantizedDelivery, ForkedBucketMatchesInlineFallback) {
  // Network-level equivalence: the same delivery schedule dispatched
  // with a real worker pool and with NO executor (the inline fallback)
  // must produce identical per-receiver handler sequences, identical
  // join-replay order, and identical drop counts — the fallback
  // replicates the executor's exact shard decomposition.
  const auto run_with =
      [](sim::parallel::ParallelExecutor* exec) {
        sim::Simulator sim;
        // 40 nodes, all pairwise latencies floored -> one big bucket
        // of 39 receiver groups across several shards (grain 8).
        std::vector<double> pings(40);
        for (std::size_t i = 0; i < pings.size(); ++i) {
          pings[i] = 10.0 + 0.001 * static_cast<double>(i);
        }
        net::Network net(sim, net::LatencyModel(std::move(pings), 5.0, 5.0));
        if (exec != nullptr) net.set_executor(exec);
        // Drop every 7th receiver, as churn would.
        net.set_delivery_filter([](std::size_t to) { return to % 7 != 0; });

        // Handlers write ONLY receiver-own state (their slot) plus what
        // they defer; the deferred ops replay serially at the join, so
        // `joined` is the thread-count-invariant sequence to compare.
        struct Log {
          std::vector<std::uint32_t> joined;
        } log;
        std::vector<std::uint32_t> hits(40, 0);
        for (std::uint32_t to = 1; to < 40; ++to) {
          net.send_sharded(0, to, net::MessageType::kPing, 80,
                           [&hits, &log, to](net::DeliveryContext& ctx) {
                             ++hits[to];  // receiver-own slot
                             ctx.defer([&log, to] { log.joined.push_back(to); });
                           });
        }
        sim.run_all();
        struct Result {
          std::vector<std::uint32_t> hits;
          std::vector<std::uint32_t> joined;
          std::uint64_t dropped;
          std::uint64_t batches;
        };
        return Result{std::move(hits), std::move(log.joined), net.dropped(),
                      net.delivery_batches()};
      };

  sim::parallel::ParallelExecutor pool(4);
  const auto forked = run_with(&pool);
  const auto inline_run = run_with(nullptr);

  EXPECT_EQ(forked.hits, inline_run.hits);
  EXPECT_EQ(forked.joined, inline_run.joined);
  EXPECT_EQ(forked.dropped, inline_run.dropped);
  EXPECT_EQ(forked.batches, inline_run.batches);
  EXPECT_EQ(forked.dropped, 5u);  // receivers 7, 14, 21, 28, 35
  // Join replay is shard-major, schedule-ordered within a shard — and
  // identical whether or not a pool ran the shards.
  ASSERT_EQ(forked.joined.size(), 34u);
}

// ---------------------------------------------------------------------------
// Prepare split (prepare-local forked / prepare-link serial)
// ---------------------------------------------------------------------------

TEST(PrepareSplit, TimeoutSweepDropsStaleEntriesAndReportsSuppliersOnce) {
  core::SystemConfig config;
  config.expected_nodes = 100.0;
  const dht::IdSpace space(1024);
  core::Node node(/*id=*/7, /*session_index=*/1, config, space,
                  /*inbound=*/10.0, /*outbound=*/10.0, /*ping_ms=*/50.0);

  ASSERT_TRUE(node.begin_transfer(1, core::TransferKind::kScheduled, 11, 0.0));
  ASSERT_TRUE(node.begin_transfer(2, core::TransferKind::kScheduled, 12, 1.0));
  ASSERT_TRUE(node.begin_transfer(3, core::TransferKind::kScheduled, 11, 5.0));
  // A record with no known supplier must be dropped WITHOUT a decay.
  ASSERT_TRUE(node.begin_transfer(4, core::TransferKind::kScheduled,
                                  kInvalidNode, 2.0));
  ASSERT_TRUE(node.begin_prefetch(10, 0.5));
  ASSERT_TRUE(node.begin_prefetch(11, 6.0));

  std::vector<NodeId> decayed;
  const std::size_t dropped = node.sweep_timeouts(
      /*cutoff=*/4.0, [&decayed](NodeId supplier) { decayed.push_back(supplier); });

  // Dropped: transfers 1, 2, 4 and prefetch 10. Kept: 3 and 11.
  EXPECT_EQ(dropped, 4u);
  EXPECT_FALSE(node.transfer_pending(1));
  EXPECT_FALSE(node.transfer_pending(2));
  EXPECT_TRUE(node.transfer_pending(3));
  EXPECT_FALSE(node.transfer_pending(4));
  EXPECT_FALSE(node.prefetch_pending(10));
  EXPECT_TRUE(node.prefetch_pending(11));
  // Exactly one decay per dropped scheduled transfer with a known
  // supplier — the kInvalidNode record contributes none.
  std::sort(decayed.begin(), decayed.end());
  EXPECT_EQ(decayed, (std::vector<NodeId>{11, 12}));

  // Idempotence: re-sweeping at the same cutoff drops nothing more.
  EXPECT_EQ(node.sweep_timeouts(4.0, [](NodeId) { FAIL(); }), 0u);
}

TEST(PrepareSplit, ThreadsInvarianceExercisesTimeoutsAndChurnStarts) {
  // Fingerprint equality across thread counts, on runs VERIFIED to
  // exercise the relocated prepare-local paths: the timeout sweep with
  // its deferred rate decays (transfer_timeouts > 0) and, under churn,
  // the deferred playback starts of joiners (joins > 0).
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 33;
  const auto snapshot = trace::generate_snapshot(tc);

  for (const bool churn : {false, true}) {
    runner::ReplicationResult reference;
    for (const unsigned threads : {1u, 4u}) {
      core::SystemConfig config;
      config.seed = 44;
      config.expected_nodes = 200.0;
      config.threads = threads;
      config.churn_enabled = churn;
      runner::ReplicationSpec spec;
      spec.config = config;
      spec.snapshot = std::make_shared<const trace::TraceSnapshot>(snapshot);
      spec.duration = 30.0;
      spec.stable_from = 15.0;
      auto run = runner::ExperimentRunner::run_one(spec);
      EXPECT_GT(run.stats.transfer_timeouts, 0u) << "churn " << churn;
      if (churn) {
        EXPECT_GT(run.stats.joins, 0u);
      }
      EXPECT_EQ(run.stats.mixed_batch_fallbacks, 0u);
      if (threads == 1u) {
        reference = std::move(run);
      } else {
        EXPECT_EQ(runner::result_fingerprint(run),
                  runner::result_fingerprint(reference))
            << "threads " << threads << " churn " << churn;
      }
    }
  }
}

TEST(PrepareSplit, DeferredRateDecayLeavesIdenticalEstimatesAtAnyThreadCount) {
  // The deferred rate-decay list applies in shard order after the
  // prepare-local join; shard structure is thread-count independent, so
  // every node's EWMA table must come out BIT-identical. Checked
  // directly (not just via the run fingerprint, which only sees rates
  // through scheduling outcomes) on a churny run where timeouts and
  // decays demonstrably occurred.
  trace::GeneratorConfig tc;
  tc.node_count = 150;
  tc.seed = 91;
  const auto snapshot = trace::generate_snapshot(tc);

  const auto run_session = [&snapshot](unsigned threads) {
    core::SystemConfig config;
    config.seed = 17;
    config.expected_nodes = 150.0;
    config.threads = threads;
    config.churn_enabled = true;
    auto session = std::make_unique<core::Session>(config, snapshot);
    session->run(25.0);
    return session;
  };
  const auto serial = run_session(1);
  const auto parallel = run_session(4);

  ASSERT_GT(serial->stats().transfer_timeouts, 0u);
  EXPECT_EQ(serial->stats().transfer_timeouts,
            parallel->stats().transfer_timeouts);
  ASSERT_EQ(serial->node_count(), parallel->node_count());
  for (std::size_t i = 0; i < serial->node_count(); ++i) {
    const auto& a = serial->node(i);
    const auto& b = parallel->node(i);
    for (const auto& neighbor : a.neighbors().all()) {
      const double ea = a.rates().estimate(neighbor.id);
      const double eb = b.rates().estimate(neighbor.id);
      EXPECT_EQ(std::memcmp(&ea, &eb, sizeof(ea)), 0)
          << "node " << i << " supplier " << neighbor.id;
    }
  }
}

TEST(PrepareSplit, WindowMaterializationStaysAllocationFreeWhenForked) {
  // The buffer-map materialization moved into the forked prepare-local
  // phase with per-shard arenas: after warm-up, tens of thousands of
  // further checkouts must allocate NOTHING at thread counts above 1,
  // and the aggregate checkout tally must match serial execution
  // (arena traffic is part of the determinism contract).
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 55;
  const auto snapshot = trace::generate_snapshot(tc);

  core::SystemConfig config;
  config.seed = 26;
  config.expected_nodes = 200.0;
  config.threads = 4;
  core::Session session(config, snapshot);
  session.run(10.0);  // warm-up: shard pools fill, buffers saturate

  const auto warm = session.window_arena_stats();
  EXPECT_GT(warm.checkouts, 0u);

  session.run(35.0);  // steady state
  const auto steady = session.window_arena_stats();
  EXPECT_GT(steady.checkouts, warm.checkouts + 10000u)
      << "exchange stopped running — the assertion below would be vacuous";
  EXPECT_EQ(steady.allocations, warm.allocations)
      << "forked buffer-map materialization allocated at steady state";

  config.threads = 1;
  core::Session serial(config, snapshot);
  serial.run(35.0);
  EXPECT_EQ(serial.window_arena_stats().checkouts, steady.checkouts);
}

TEST(PrepareSplit, MixedBatchFallbacksStayZeroAcrossMatrix) {
  // Reserved ticks (sampler, churn) ride phases of their own, so no
  // batch should ever mix them with node rounds and fall back to
  // serial dispatch. A phase-layout change that breaks this would
  // silently forfeit BOTH forked phases — pin the counter at zero
  // across the named matrix (large scenarios trimmed/skipped to keep
  // the suite fast; their phase construction is identical).
  for (const auto& scenario : runner::scenario_matrix()) {
    if (scenario.node_count > 2000) continue;
    auto spec = runner::spec_for(scenario, 42);
    spec.duration = std::min(spec.duration, 10.0);
    spec.stable_from = std::min(spec.stable_from, 5.0);
    const auto run = runner::ExperimentRunner::run_one(spec);
    EXPECT_EQ(run.stats.mixed_batch_fallbacks, 0u) << scenario.name;
  }
}

// ---------------------------------------------------------------------------
// Runner core arbitration
// ---------------------------------------------------------------------------

TEST(RunnerThreads, ArbitratesCoreBudget) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // Legacy behaviour untouched when intra-session parallelism is off.
  EXPECT_EQ(runner::ExperimentRunner(0).jobs(), hw);
  EXPECT_EQ(runner::ExperimentRunner(8).jobs(), 8u);
  EXPECT_EQ(runner::ExperimentRunner(8, 1).jobs(), 8u);
  // With threads > 1, jobs x threads never exceeds the machine (and the
  // intra-session width keeps what it asked for).
  for (const unsigned threads : {2u, 4u}) {
    for (const unsigned jobs : {0u, 2u, 8u}) {
      const runner::ExperimentRunner runner(jobs, threads);
      EXPECT_LE(static_cast<std::uint64_t>(runner.jobs()) * threads,
                std::max(hw, threads))
          << "jobs " << jobs << " threads " << threads;
      EXPECT_GE(runner.jobs(), 1u);
    }
  }
}

TEST(RunnerThreads, ThreadsOverrideDoesNotChangeResults) {
  runner::ReplicationSpec base;
  base.config.seed = 5;
  base.config.expected_nodes = 150;
  base.trace.node_count = 150;
  base.trace.seed = 77;
  base.duration = 20.0;
  base.stable_from = 10.0;
  const auto specs = runner::replicate(base, 3);

  const auto results_serial = runner::ExperimentRunner(1, 1).run_all(specs);
  const auto results_parallel = runner::ExperimentRunner(2, 4).run_all(specs);
  ASSERT_EQ(results_serial.size(), results_parallel.size());
  for (std::size_t i = 0; i < results_serial.size(); ++i) {
    EXPECT_EQ(runner::result_fingerprint(results_serial[i]),
              runner::result_fingerprint(results_parallel[i]))
        << "replication " << i;
  }
}

// ---------------------------------------------------------------------------
// CLI validation
// ---------------------------------------------------------------------------

TEST(CliValidation, ParsePositiveRejectsNonPositive) {
  using runner::cli::parse_positive;
  EXPECT_EQ(parse_positive("1").value(), 1u);
  EXPECT_EQ(parse_positive("8").value(), 8u);
  EXPECT_EQ(parse_positive("123456789").value(), 123456789u);
  EXPECT_FALSE(parse_positive("0").has_value());
  EXPECT_FALSE(parse_positive("-1").has_value());
  EXPECT_FALSE(parse_positive("+2").has_value());
  EXPECT_FALSE(parse_positive("4x").has_value());
  EXPECT_FALSE(parse_positive("x4").has_value());
  EXPECT_FALSE(parse_positive("").has_value());
  EXPECT_FALSE(parse_positive(" 3").has_value());
  EXPECT_FALSE(parse_positive("3.5").has_value());
  EXPECT_FALSE(parse_positive("99999999999999999999999").has_value());
  EXPECT_FALSE(parse_positive(nullptr).has_value());
}

TEST(CliValidation, ParseUintAllowsZeroButNotGarbage) {
  using runner::cli::parse_uint;
  EXPECT_EQ(parse_uint("0").value(), 0u);  // seeds may be zero
  EXPECT_EQ(parse_uint("42").value(), 42u);
  EXPECT_FALSE(parse_uint("x42").has_value());
  EXPECT_FALSE(parse_uint("42x").has_value());
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("").has_value());
}

TEST(CliValidation, UnknownScenarioMessageListsValidNames) {
  const std::string message = runner::cli::unknown_scenario_message("bogus");
  EXPECT_NE(message.find("bogus"), std::string::npos);
  // Every matrix scenario and at least one family member is listed.
  for (const auto& name : runner::scenario_names()) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
  EXPECT_NE(message.find("fig7_static_1000"), std::string::npos);
  // Fault-family members are listed too — an f*_ typo must still show
  // the full catalogue.
  EXPECT_NE(message.find("f5_static_1k"), std::string::npos);
  EXPECT_NE(message.find("fp_static_small"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario parameterization
// ---------------------------------------------------------------------------

TEST(ScenarioFamilies, OverridesApply) {
  const auto base = runner::find_scenario("static_1k");
  ASSERT_TRUE(base.has_value());
  runner::ScenarioOverrides o;
  o.node_count = 777;
  o.churn_fraction = 0.10;
  o.playback_rate = 20;  // stream rate
  o.trace_seed = 9;
  const auto derived = base->with(o, "derived");
  EXPECT_EQ(derived.name, "derived");
  EXPECT_EQ(derived.node_count, 777u);
  EXPECT_TRUE(derived.churn);  // a positive rate implies the toggle
  EXPECT_DOUBLE_EQ(derived.churn_fraction, 0.10);
  EXPECT_EQ(derived.playback_rate, 20u);
  EXPECT_EQ(derived.trace_seed, 9u);
  // Untouched fields keep base values.
  EXPECT_EQ(derived.connected_neighbors, base->connected_neighbors);

  const auto config = derived.make_config(3);
  EXPECT_EQ(config.playback_rate, 20u);
  EXPECT_TRUE(config.churn_enabled);
  EXPECT_DOUBLE_EQ(config.churn.leave_fraction, 0.10);
  EXPECT_EQ(derived.make_trace().node_count, 777u);
}

TEST(ScenarioFamilies, FigGridsAreNamedScenarios) {
  // The fig7/8/9/11 sweep grids resolve by name with the workloads the
  // benches used to build inline.
  const auto fig7 = runner::find_scenario("fig7_static_2000");
  ASSERT_TRUE(fig7.has_value());
  EXPECT_EQ(fig7->node_count, 2000u);
  EXPECT_FALSE(fig7->churn);
  EXPECT_EQ(fig7->trace_seed, 2300u);  // 300 + n

  const auto fig8 = runner::find_scenario("fig8_dynamic_500");
  ASSERT_TRUE(fig8.has_value());
  EXPECT_TRUE(fig8->churn);
  EXPECT_EQ(fig8->trace_seed, 900u);  // 400 + n

  const auto fig9 = runner::find_scenario("fig9_m6_1000");
  ASSERT_TRUE(fig9.has_value());
  EXPECT_EQ(fig9->connected_neighbors, 6u);
  EXPECT_EQ(fig9->trace_seed, 1506u);  // 500 + n + m

  const auto fig11 = runner::find_scenario("fig11_dynamic_4000");
  ASSERT_TRUE(fig11.has_value());
  EXPECT_TRUE(fig11->churn);
  EXPECT_EQ(fig11->trace_seed, 4600u);  // 600 + n

  EXPECT_FALSE(runner::find_scenario("fig7_static_123").has_value());

  // The core matrix keeps its names (append-only: static_100k joined
  // in PR 4), still resolvable, and family names do not shadow them.
  EXPECT_EQ(runner::scenario_names().size(), 13u);
  EXPECT_EQ(runner::all_scenario_names().size(),
            13u + runner::scenario_families().size());
}

TEST(ScenarioFamilies, FaultFamiliesAndGroupsResolve) {
  // The f*_ families run the same trace/seeds as their matrix base,
  // plus a fault plan and the hardening toggle.
  const auto base = runner::find_scenario("static_1k");
  const auto f5 = runner::find_scenario("f5_static_1k");
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(f5.has_value());
  EXPECT_EQ(f5->node_count, base->node_count);
  EXPECT_EQ(f5->trace_seed, base->trace_seed);
  EXPECT_TRUE(f5->harden);
  EXPECT_TRUE(f5->fault.active());
  EXPECT_DOUBLE_EQ(f5->fault.loss_rate, 0.05);
  ASSERT_EQ(f5->fault.crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(f5->fault.crashes[0].fraction, 0.10);

  const auto config = f5->make_config(7);
  EXPECT_TRUE(config.retry.enabled);
  EXPECT_TRUE(config.fault.active());

  // The quantized variant carries the same plan over the grid mode.
  const auto f5q = runner::find_scenario("f5_q1_static_1k");
  ASSERT_TRUE(f5q.has_value());
  EXPECT_DOUBLE_EQ(f5q->latency_grid_ms, 1.0);
  EXPECT_TRUE(f5q->fault.active());

  const auto fp = runner::find_scenario("fp_static_small");
  ASSERT_TRUE(fp.has_value());
  ASSERT_EQ(fp->fault.partitions.size(), 1u);
  EXPECT_DOUBLE_EQ(fp->fault.partitions[0].heal, 30.0);
  EXPECT_DOUBLE_EQ(fp->fault.loss_rate, 0.0);

  // Matrix scenarios stay fault-free: the zero-fault hot path is the
  // default everywhere outside the f*_ families.
  for (const auto& s : runner::scenario_matrix()) {
    EXPECT_FALSE(s.fault.active()) << s.name;
    EXPECT_FALSE(s.harden) << s.name;
  }

  // Prefix groups cover every family member exactly once, first
  // appearance order, and the fault groups are present.
  const auto& groups = runner::scenario_family_groups();
  std::size_t grouped = 0;
  bool saw_f1 = false, saw_f5 = false, saw_fp = false;
  for (const auto& g : groups) {
    EXPECT_FALSE(g.description.empty()) << g.prefix;
    grouped += g.members.size();
    if (g.prefix == "f1") saw_f1 = true;
    if (g.prefix == "f5") saw_f5 = true;
    if (g.prefix == "fp") saw_fp = true;
    for (const auto& name : g.members) {
      EXPECT_TRUE(runner::find_scenario(name).has_value()) << name;
    }
  }
  EXPECT_EQ(grouped, runner::scenario_families().size());
  EXPECT_TRUE(saw_f1);
  EXPECT_TRUE(saw_f5);
  EXPECT_TRUE(saw_fp);
}

}  // namespace
}  // namespace continu
