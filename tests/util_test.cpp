// Unit and property tests for continu::util.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/bitwindow.hpp"
#include "util/bitwindow_arena.hpp"
#include "util/csv.hpp"
#include "util/hash.hpp"
#include "util/ring_math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace continu::util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.next_pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(25);
  const auto picks = rng.sample_indices(100, 10);
  ASSERT_EQ(picks.size(), 10u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const auto p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleIndicesAllWhenKTooLarge) {
  Rng rng(27);
  const auto picks = rng.sample_indices(5, 50);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(Rng, ForkIndependence) {
  Rng a(31);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

// ---------------------------------------------------------------------------
// Ring math
// ---------------------------------------------------------------------------

TEST(RingMath, ClockwiseDistanceBasics) {
  EXPECT_EQ(clockwise_distance(0, 5, 16), 5u);
  EXPECT_EQ(clockwise_distance(5, 0, 16), 11u);
  EXPECT_EQ(clockwise_distance(7, 7, 16), 0u);
}

TEST(RingMath, DistanceSumsToRing) {
  // cw(a,b) + cw(b,a) == n for a != b.
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      if (a == b) continue;
      EXPECT_EQ(clockwise_distance(a, b, 16) + clockwise_distance(b, a, 16), 16u);
    }
  }
}

TEST(RingMath, CounterClockwiseMirrorsClockwise) {
  EXPECT_EQ(counter_clockwise_distance(3, 10, 16), clockwise_distance(10, 3, 16));
}

TEST(RingMath, ArcMembership) {
  EXPECT_TRUE(in_clockwise_arc(5, 3, 8, 16));
  EXPECT_FALSE(in_clockwise_arc(8, 3, 8, 16));  // hi is exclusive
  EXPECT_TRUE(in_clockwise_arc(3, 3, 8, 16));   // lo is inclusive
  EXPECT_FALSE(in_clockwise_arc(9, 3, 8, 16));
}

TEST(RingMath, ArcMembershipWrapping) {
  // Arc [14, 2) on a 16-ring covers 14, 15, 0, 1.
  EXPECT_TRUE(in_clockwise_arc(14, 14, 2, 16));
  EXPECT_TRUE(in_clockwise_arc(15, 14, 2, 16));
  EXPECT_TRUE(in_clockwise_arc(0, 14, 2, 16));
  EXPECT_TRUE(in_clockwise_arc(1, 14, 2, 16));
  EXPECT_FALSE(in_clockwise_arc(2, 14, 2, 16));
  EXPECT_FALSE(in_clockwise_arc(13, 14, 2, 16));
}

TEST(RingMath, DegenerateArcIsFullRing) {
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_TRUE(in_clockwise_arc(x, 6, 6, 16));
  }
}

TEST(RingMath, RingAddSub) {
  EXPECT_EQ(ring_add(15, 3, 16), 2u);
  EXPECT_EQ(ring_sub(2, 3, 16), 15u);
  EXPECT_EQ(ring_add(0, 0, 16), 0u);
  EXPECT_EQ(ring_sub(0, 0, 16), 0u);
}

TEST(RingMath, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(8), 3u);
  EXPECT_EQ(floor_log2(8192), 13u);
}

TEST(RingMath, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(8192));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

// Property sweep: every x on small rings is in exactly one of the two
// complementary arcs [lo, hi) and [hi, lo).
class RingArcPartition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingArcPartition, ComplementaryArcsPartitionRing) {
  const std::uint64_t n = GetParam();
  for (std::uint64_t lo = 0; lo < n; ++lo) {
    const std::uint64_t hi = (lo + n / 3 + 1) % n;
    if (lo == hi) continue;
    for (std::uint64_t x = 0; x < n; ++x) {
      const bool in_first = in_clockwise_arc(x, lo, hi, n);
      const bool in_second = in_clockwise_arc(x, hi, lo, n);
      EXPECT_NE(in_first, in_second) << "x=" << x << " lo=" << lo << " hi=" << hi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, RingArcPartition, ::testing::Values(4u, 8u, 16u, 32u, 64u));

// ---------------------------------------------------------------------------
// Hash
// ---------------------------------------------------------------------------

TEST(Hash, Deterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
}

TEST(Hash, AvalancheOnLowBit) {
  int differing_bits = 0;
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t d = mix64(x) ^ mix64(x ^ 1);
    differing_bits += __builtin_popcountll(d);
  }
  // Average should be near 32 bits flipped per 1-bit input change.
  EXPECT_GT(differing_bits / 64, 24);
}

TEST(Hash, BackupTargetsWithinSpace) {
  for (SegmentId id = 0; id < 100; ++id) {
    for (unsigned r = 1; r <= 4; ++r) {
      EXPECT_LT(backup_target(id, r, 8192), 8192u);
    }
  }
}

TEST(Hash, ReplicasDisperse) {
  // The k replica targets of a single segment should rarely collide.
  int collisions = 0;
  for (SegmentId id = 0; id < 500; ++id) {
    std::set<std::uint64_t> targets;
    for (unsigned r = 1; r <= 4; ++r) {
      targets.insert(backup_target(id, r, 8192));
    }
    if (targets.size() < 4) ++collisions;
  }
  EXPECT_LT(collisions, 10);
}

TEST(Hash, ConsecutiveSegmentsDisperse) {
  // Consecutive ids must not aggregate on the same node — this is the
  // paper's reason for hashing id*i rather than id+i.
  std::set<std::uint64_t> targets;
  for (SegmentId id = 1000; id < 1100; ++id) {
    targets.insert(backup_target(id, 1, 8192));
  }
  EXPECT_GT(targets.size(), 90u);
}

TEST(Hash, TargetsRoughlyUniform) {
  // Chi-square-ish check over 16 coarse bins.
  constexpr int kBins = 16;
  std::array<int, kBins> bins{};
  const int n = 16000;
  for (SegmentId id = 0; id < n / 4; ++id) {
    for (unsigned r = 1; r <= 4; ++r) {
      const auto t = backup_target(id, r, 8192);
      ++bins[t * kBins / 8192];
    }
  }
  for (const int count : bins) {
    EXPECT_NEAR(count, n / kBins, n / kBins * 0.25);
  }
}

// ---------------------------------------------------------------------------
// BitWindow
// ---------------------------------------------------------------------------

TEST(BitWindow, StartsEmpty) {
  BitWindow w(600, 0);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.head(), 0);
  EXPECT_EQ(w.end(), 600);
}

TEST(BitWindow, RejectsZeroCapacity) {
  EXPECT_THROW(BitWindow(0), std::invalid_argument);
}

TEST(BitWindow, SetTestReset) {
  BitWindow w(128, 100);
  EXPECT_TRUE(w.set(150));
  EXPECT_TRUE(w.test(150));
  w.reset(150);
  EXPECT_FALSE(w.test(150));
}

TEST(BitWindow, OutOfRangeSetFails) {
  BitWindow w(128, 100);
  EXPECT_FALSE(w.set(99));
  EXPECT_FALSE(w.set(228));
  EXPECT_TRUE(w.set(227));
}

TEST(BitWindow, OutOfRangeReadsAbsent) {
  BitWindow w(64, 10);
  EXPECT_FALSE(w.test(9));
  EXPECT_FALSE(w.test(74));
}

TEST(BitWindow, SlidePreservesSurvivors) {
  BitWindow w(64, 0);
  for (SegmentId id = 0; id < 64; id += 3) w.set(id);
  w.slide_to(10);
  EXPECT_EQ(w.head(), 10);
  for (SegmentId id = 10; id < 64; ++id) {
    EXPECT_EQ(w.test(id), id % 3 == 0) << id;
  }
  for (SegmentId id = 64; id < 74; ++id) {
    EXPECT_FALSE(w.test(id));
  }
}

TEST(BitWindow, SlidePastEverythingClears) {
  BitWindow w(64, 0);
  w.set(5);
  w.slide_to(200);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.head(), 200);
}

TEST(BitWindow, SlideBackwardIsNoOp) {
  BitWindow w(64, 50);
  w.set(60);
  w.slide_to(40);
  EXPECT_EQ(w.head(), 50);
  EXPECT_TRUE(w.test(60));
}

TEST(BitWindow, CountBelow) {
  BitWindow w(64, 0);
  w.set(1);
  w.set(5);
  w.set(40);
  EXPECT_EQ(w.count_below(0), 0u);
  EXPECT_EQ(w.count_below(2), 1u);
  EXPECT_EQ(w.count_below(6), 2u);
  EXPECT_EQ(w.count_below(64), 3u);
  EXPECT_EQ(w.count_below(1000), 3u);
}

TEST(BitWindow, MissingIn) {
  BitWindow w(16, 0);
  w.set(0);
  w.set(2);
  w.set(3);
  const auto missing = w.missing_in(0, 6);
  EXPECT_EQ(missing, (std::vector<SegmentId>{1, 4, 5}));
}

TEST(BitWindow, MissingInClipsToWindow) {
  BitWindow w(8, 10);
  const auto missing = w.missing_in(0, 100);
  ASSERT_EQ(missing.size(), 8u);
  EXPECT_EQ(missing.front(), 10);
  EXPECT_EQ(missing.back(), 17);
}

TEST(BitWindow, PresentListsAscending) {
  BitWindow w(128, 5);
  w.set(7);
  w.set(70);
  w.set(130);
  EXPECT_EQ(w.present(), (std::vector<SegmentId>{7, 70, 130}));
}

TEST(BitWindow, LowestHighest) {
  BitWindow w(128, 5);
  EXPECT_FALSE(w.lowest().has_value());
  EXPECT_FALSE(w.highest().has_value());
  w.set(100);
  w.set(20);
  w.set(64);
  EXPECT_EQ(w.lowest().value(), 20);
  EXPECT_EQ(w.highest().value(), 100);
}

TEST(BitWindow, FromWordsRoundtrip) {
  BitWindow w(100, 42);
  for (SegmentId id = 42; id < 142; id += 7) w.set(id);
  const auto rebuilt = BitWindow::from_words(100, 42, w.words());
  for (SegmentId id = 42; id < 142; ++id) {
    EXPECT_EQ(rebuilt.test(id), w.test(id));
  }
}

TEST(BitWindow, FromWordsValidatesSize) {
  EXPECT_THROW(BitWindow::from_words(100, 0, {}), std::invalid_argument);
}

TEST(BitWindow, CopyFromMatchesSourceWithoutReallocation) {
  BitWindow src(600, 1000);
  for (SegmentId id = 1000; id < 1600; id += 13) src.set(id);
  BitWindow dst(600, 0);
  const auto* words_before = dst.words().data();
  dst.copy_from(src);
  EXPECT_EQ(dst.words().data(), words_before) << "equal-size copy must reuse storage";
  EXPECT_EQ(dst.head(), src.head());
  EXPECT_EQ(dst.count(), src.count());
  for (SegmentId id = 1000; id < 1600; ++id) EXPECT_EQ(dst.test(id), src.test(id));
}

// ---------------------------------------------------------------------------
// BitWindowArena
// ---------------------------------------------------------------------------

TEST(BitWindowArena, CheckoutGivesClearedWindowAtRequestedHead) {
  BitWindowArena arena;
  auto lease = arena.checkout(600, 77);
  EXPECT_EQ(lease.window().capacity(), 600u);
  EXPECT_EQ(lease.window().head(), 77);
  EXPECT_EQ(lease.window().count(), 0u);
  EXPECT_EQ(arena.stats().checkouts, 1u);
  EXPECT_EQ(arena.stats().allocations, 1u);
}

TEST(BitWindowArena, ReusesReturnedStorageWithoutAllocatingOrLeakingBits) {
  BitWindowArena arena;
  {
    auto lease = arena.checkout(600, 0);
    for (SegmentId id = 0; id < 600; ++id) lease.window().set(id);
  }
  EXPECT_EQ(arena.pooled(), 1u);
  // Reset semantics: the recycled window comes back EMPTY even though
  // the previous tenant filled every bit.
  auto lease = arena.checkout(600, 500);
  EXPECT_EQ(lease.window().count(), 0u);
  EXPECT_EQ(lease.window().head(), 500);
  EXPECT_EQ(arena.stats().checkouts, 2u);
  EXPECT_EQ(arena.stats().allocations, 1u) << "second checkout must reuse the pool";
}

TEST(BitWindowArena, SteadyStateChurnNeverAllocatesAgain) {
  BitWindowArena arena;
  { auto warmup = arena.checkout(600, 0); }
  const auto allocations = arena.stats().allocations;
  for (int round = 0; round < 1000; ++round) {
    auto lease = arena.checkout(600, round);
    lease.window().set(round);
  }
  EXPECT_EQ(arena.stats().allocations, allocations);
  EXPECT_EQ(arena.stats().checkouts, 1001u);
}

TEST(BitWindowArena, ConcurrentLeasesDoNotAlias) {
  BitWindowArena arena;
  auto a = arena.checkout(600, 0);
  auto b = arena.checkout(600, 0);
  a.window().set(5);
  EXPECT_FALSE(b.window().test(5)) << "outstanding leases must hold disjoint buffers";
  b.window().set(9);
  EXPECT_FALSE(a.window().test(9));
  EXPECT_NE(a.window().words().data(), b.window().words().data());
}

TEST(BitWindowArena, CheckoutCopyMaterializesExactImage) {
  BitWindowArena arena;
  BitWindow source(600, 4321);
  for (SegmentId id = 4321; id < 4921; id += 5) source.set(id);
  { auto warmup = arena.checkout(600, 0); }  // pool one buffer
  const auto allocations = arena.stats().allocations;
  auto copy = arena.checkout_copy(source);
  EXPECT_EQ(arena.stats().allocations, allocations) << "pooled copy must not allocate";
  EXPECT_EQ(copy.window().head(), source.head());
  EXPECT_EQ(copy.window().count(), source.count());
  for (SegmentId id = 4321; id < 4921; ++id) {
    EXPECT_EQ(copy.window().test(id), source.test(id));
  }
  // And mutating the copy never touches the source.
  copy.window().reset(4321 + 5);
  EXPECT_TRUE(source.test(4321 + 5));
}

TEST(BitWindowArena, MoveOnlyLeaseReleasesOnce) {
  BitWindowArena arena;
  {
    auto lease = arena.checkout(128, 0);
    auto moved = std::move(lease);
    EXPECT_EQ(moved.window().capacity(), 128u);
    EXPECT_EQ(arena.pooled(), 0u);
  }
  EXPECT_EQ(arena.pooled(), 1u) << "exactly one buffer returns from the moved chain";
}

// Property sweep: random fill then slide, invariants hold.
class BitWindowSlideProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitWindowSlideProperty, RandomSlidesKeepConsistentCounts) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  BitWindow w(600, 0);
  std::set<SegmentId> model;
  SegmentId head = 0;
  for (int step = 0; step < 200; ++step) {
    const auto id = head + static_cast<SegmentId>(rng.next_below(600));
    if (w.set(id)) model.insert(id);
    model.insert(id);
    if (rng.next_bool(0.2)) {
      head += static_cast<SegmentId>(rng.next_below(50));
      w.slide_to(head);
      for (auto it = model.begin(); it != model.end();) {
        it = (*it < head) ? model.erase(it) : std::next(it);
      }
    }
    ASSERT_EQ(w.count(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitWindowSlideProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  Rng rng(99);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_range(-5, 20);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first
  h.add(100.0);   // clamps to last
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BucketMid) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_mid(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bucket_mid(9), 9.5);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Table / CSV
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1.0, 4), "1.0000");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/continu_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "2"});
    csv.add_row({"va,lue", "qu\"ote"});
    EXPECT_EQ(csv.rows(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"va,lue\",\"qu\"\"ote\"");
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = ::testing::TempDir() + "/continu_csv_arity.csv";
  CsvWriter csv(path, {"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), std::invalid_argument);
}

}  // namespace
}  // namespace continu::util
