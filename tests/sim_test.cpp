// Unit tests for the discrete-event engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace continu::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<double> popped;
  q.push(Event{3.0, 1, [] {}});
  q.push(Event{1.0, 2, [] {}});
  q.push(Event{2.0, 3, [] {}});
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<EventId> order;
  q.push(Event{1.0, 10, [] {}});
  q.push(Event{1.0, 11, [] {}});
  q.push(Event{1.0, 12, [] {}});
  while (!q.empty()) order.push_back(q.pop().id);
  EXPECT_EQ(order, (std::vector<EventId>{10, 11, 12}));
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{2.0, 2, [] {}});
  EXPECT_TRUE(q.cancel(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 2u);
}

TEST(EventQueue, CancelUnknownIsNoOp) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  EXPECT_FALSE(q.cancel(99));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredIsNoOp) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(1));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{2.0, 2, [] {}});
  EXPECT_TRUE(q.cancel(1));
  EXPECT_FALSE(q.cancel(1));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  q.push(Event{1.0, 1, [] {}});
  q.push(Event{5.0, 2, [] {}});
  q.cancel(1);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double observed = -1.0;
  sim.schedule_in(2.5, [&] { observed = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  sim.run_until(1.0);
  bool fired = false;
  sim.schedule_in(-5.0, [&] { fired = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, ScheduledActionsCanSchedule) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EmptyActionRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DeterministicTieBreaking) {
  // Two events at the same instant run in scheduling order.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PeriodicProcess, TicksAtPeriod) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 1.0, [&] { ticks.push_back(sim.now()); });
  p.start(0.5);
  sim.run_until(4.0);
  EXPECT_EQ(ticks, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(PeriodicProcess, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  sim.run_until(2.5);
  p.stop();
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(p.running());
}

TEST(PeriodicProcess, StopFromWithinTick) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] {
    ++count;
    if (count == 3) p.stop();
  });
  p.start(1.0);
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicProcess, RestartAfterStop) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  sim.run_until(1.5);
  p.stop();
  p.start(1.0);
  sim.run_until(3.0);
  EXPECT_EQ(count, 2);  // one before stop, one after restart (t=2.5)
}

TEST(PeriodicProcess, DoubleStartIsNoOp) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  p.start(0.1);  // ignored
  sim.run_until(1.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicProcess, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(sim, 1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(PeriodicProcess, DestructorCancelsPendingTick) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess p(sim, 1.0, [&] { ++count; });
    p.start(1.0);
  }
  sim.run_until(10.0);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace continu::sim
