// Unit tests for the discrete-event engine: slot-pool event queue,
// inline event actions, simulator semantics, periodic processes and
// the batched RoundScheduler.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/round_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace continu::sim {
namespace {

TEST(EventAction, InlineForSmallCaptures) {
  int hits = 0;
  // 48-byte payload + pointer capture: the size of the largest
  // protocol capture (DHT route hop + delivery wrapper). Must never
  // allocate.
  std::array<std::uint64_t, 6> payload{};
  EventAction small([&hits] { ++hits; });
  EventAction big([&hits, payload] { hits += static_cast<int>(payload[0]) + 1; });
  EXPECT_TRUE(small.stored_inline());
  EXPECT_TRUE(big.stored_inline());
  small();
  big();
  EXPECT_EQ(hits, 2);
}

TEST(EventAction, HeapFallbackForOversizedCaptures) {
  int hits = 0;
  std::array<std::uint64_t, 32> payload{};  // 256 bytes: exceeds inline
  payload[31] = 41;
  EventAction action([&hits, payload] { hits = static_cast<int>(payload[31]) + 1; });
  EXPECT_TRUE(static_cast<bool>(action));
  EXPECT_FALSE(action.stored_inline());
  action();
  EXPECT_EQ(hits, 42);
}

TEST(EventAction, MoveTransfersOwnership) {
  std::vector<int> order;
  EventAction a([&order] { order.push_back(1); });
  EventAction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  b();  // repeat invocation is allowed
  EXPECT_EQ(order, (std::vector<int>{1, 1}));

  EventAction c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventAction, NonTrivialCapturesDestructRight) {
  auto counter = std::make_shared<int>(0);
  {
    EventAction action([counter] { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    action();
    EventAction moved(std::move(action));
    EXPECT_EQ(counter.use_count(), 2);
    moved();
  }
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_EQ(*counter, 2);
}

TEST(EventAction, EmptyStdFunctionStaysEmpty) {
  EventAction action{std::function<void()>{}};
  EXPECT_FALSE(static_cast<bool>(action));
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<double> popped;
  q.push(3.0, [] {});
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  while (!q.empty()) popped.push_back(q.pop().time);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(1.0, [] {});
  const EventId c = q.push(1.0, [] {});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  std::vector<EventId> order;
  while (!q.empty()) order.push_back(q.pop().id);
  EXPECT_EQ(order, (std::vector<EventId>{a, b, c}));
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  const EventId b = q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, b);
}

TEST(EventQueue, CancelUnknownIsNoOp) {
  EventQueue q;
  q.push(1.0, [] {});
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(0xFFFFFF000000ULL));  // never-issued id
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredIsNoOp) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  (void)q.pop();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelCountsOnce) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, EmptyActionRejectedConsistently) {
  EventQueue q;
  EXPECT_THROW((void)q.emplace(1.0, std::function<void()>{}), std::invalid_argument);
  EXPECT_THROW((void)q.push(1.0, EventAction{}), std::invalid_argument);
  EXPECT_TRUE(q.empty());
  // The queue stays usable: the reaped heap entry must not disturb
  // later scheduling.
  bool fired = false;
  (void)q.emplace(2.0, [&fired] { fired = true; });
  Event e = q.pop();
  e.action();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ThrowingActionLeavesQueueConsistent) {
  Simulator sim;
  int after = 0;
  sim.schedule_in(1.0, [] { throw std::runtime_error("boom"); });
  sim.schedule_in(2.0, [&after] { ++after; });
  EXPECT_THROW(sim.run_until(5.0), std::runtime_error);
  // The throwing event's slot was released; the rest of the queue
  // still runs.
  sim.run_until(5.0);
  EXPECT_EQ(after, 1);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EventQueue, PopUntilRespectsHorizon) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(3.0, [] {});
  Event e;
  EXPECT_TRUE(q.pop_until(2.0, e));
  EXPECT_DOUBLE_EQ(e.time, 1.0);
  EXPECT_FALSE(q.pop_until(2.0, e));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.pop_until(3.0, e));
  EXPECT_FALSE(q.pop_until(100.0, e));
}

// Generation stamping: a slot freed by pop or cancel and reused by a
// later push must reject the stale id — the regression the slot-pool
// design exists to prevent.
TEST(EventQueue, StaleCancelCannotKillSlotReuser) {
  EventQueue q;
  const EventId old_id = q.push(1.0, [] {});
  (void)q.pop();  // frees the slot
  bool fired = false;
  const EventId new_id = q.push(2.0, [&fired] { fired = true; });
  EXPECT_EQ(old_id & EventQueue::kSlotMask, new_id & EventQueue::kSlotMask)
      << "test premise: the slot must be reused";
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id)) << "stale cancel must be a no-op";
  EXPECT_EQ(q.size(), 1u);
  Event e = q.pop();
  EXPECT_EQ(e.id, new_id);
  e.action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleCancelAfterCancelAndReuse) {
  EventQueue q;
  const EventId old_id = q.push(5.0, [] {});
  EXPECT_TRUE(q.cancel(old_id));
  const EventId new_id = q.push(7.0, [] {});
  EXPECT_EQ(old_id & EventQueue::kSlotMask, new_id & EventQueue::kSlotMask);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.pop().id, new_id);
}

TEST(EventQueue, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.push(i, [] {}));
  for (int i = 0; i < 4; ++i) (void)q.pop();
  q.push(99.0, [] {});
  EXPECT_EQ(q.peak_size(), 8u);
  EXPECT_EQ(q.size(), 5u);
}

// Property test: N randomized schedule/cancel/pop interleavings must
// produce exactly the execution order of a reference model (stable
// sort by (time, schedule order), minus cancelled entries).
TEST(EventQueue, RandomizedInterleavingsMatchReferenceModel) {
  struct ModelEntry {
    double time;
    EventId id;
    bool cancelled = false;
  };
  util::Rng rng(0xE7E77u);
  for (int trial = 0; trial < 100; ++trial) {
    EventQueue q;
    std::vector<ModelEntry> model;   // schedule order
    std::vector<EventId> executed;   // ids popped from the queue
    std::vector<EventId> live;       // candidates for cancellation

    const int ops = 120;
    for (int op = 0; op < ops; ++op) {
      const double roll = rng.next_double();
      if (roll < 0.55) {
        // Schedule at a coarse-grained time so equal-time ties are common.
        const double time = static_cast<double>(rng.next_below(16));
        const EventId id = q.push(time, [] {});
        model.push_back(ModelEntry{time, id});
        live.push_back(id);
      } else if (roll < 0.75 && !live.empty()) {
        // Cancel a random outstanding id (may already be popped).
        const std::size_t pick = rng.next_below(live.size());
        const EventId id = live[pick];
        const bool was_pending = q.cancel(id);
        for (auto& entry : model) {
          if (entry.id != id) continue;
          const bool already_done =
              std::find(executed.begin(), executed.end(), id) != executed.end();
          EXPECT_EQ(was_pending, !already_done && !entry.cancelled);
          if (was_pending) entry.cancelled = true;
        }
      } else if (!q.empty()) {
        executed.push_back(q.pop().id);
      }
    }
    while (!q.empty()) executed.push_back(q.pop().id);

    // Reference order: stable sort by time (ids are schedule order),
    // skipping cancelled entries. Pops interleaved with pushes only ever
    // remove the current minimum, so the global pop sequence must still
    // respect (time, id) order among the events each pop could see —
    // and the FULL drain at the end makes the total sets comparable.
    std::vector<ModelEntry> expected(model);
    std::stable_sort(expected.begin(), expected.end(),
                     [](const ModelEntry& a, const ModelEntry& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.id < b.id;
                     });
    std::vector<EventId> expected_ids;
    for (const auto& entry : expected) {
      if (!entry.cancelled) expected_ids.push_back(entry.id);
    }
    // Interleaved pops always remove the pending minimum, so the full
    // run must execute exactly the non-cancelled multiset...
    std::vector<EventId> sorted_exec(executed);
    std::sort(sorted_exec.begin(), sorted_exec.end());
    std::vector<EventId> sorted_expect(expected_ids);
    std::sort(sorted_expect.begin(), sorted_expect.end());
    ASSERT_EQ(sorted_exec, sorted_expect) << "trial " << trial;

    // ...and replaying the same schedule/cancel sequence with no
    // interleaved pops must drain in exactly the reference order.
    EventQueue q2;
    std::vector<std::pair<EventId, EventId>> idmap;  // original -> new
    for (const auto& entry : model) {
      const EventId nid = q2.push(entry.time, [] {});
      idmap.emplace_back(entry.id, nid);
    }
    for (std::size_t i = 0; i < model.size(); ++i) {
      if (model[i].cancelled) q2.cancel(idmap[i].second);
    }
    std::vector<EventId> drained;
    while (!q2.empty()) drained.push_back(q2.pop().id);
    std::vector<EventId> expected_new;
    for (const auto& entry : expected) {
      if (entry.cancelled) continue;
      for (const auto& [orig, nid] : idmap) {
        if (orig == entry.id) expected_new.push_back(nid);
      }
    }
    ASSERT_EQ(drained, expected_new) << "trial " << trial;
  }
}

// Slot reuse under heavy churn: the pool stays compact and ids never
// collide even when most pushes land on recycled slots.
TEST(EventQueue, HeavySlotRecyclingKeepsIdsUnique) {
  EventQueue q;
  util::Rng rng(99);
  std::vector<EventId> pending;
  std::vector<EventId> all_ids;
  for (int round = 0; round < 2000; ++round) {
    const EventId id = q.push(rng.next_double() * 100.0, [] {});
    all_ids.push_back(id);
    pending.push_back(id);
    if (pending.size() > 32) {
      const std::size_t pick = rng.next_below(pending.size());
      q.cancel(pending[pick]);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 3 == 0 && !q.empty()) (void)q.pop();
  }
  std::sort(all_ids.begin(), all_ids.end());
  EXPECT_TRUE(std::adjacent_find(all_ids.begin(), all_ids.end()) == all_ids.end())
      << "EventIds must be globally unique across slot reuse";
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  double observed = -1.0;
  sim.schedule_in(2.5, [&] { observed = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule_in(1.0, [] {});
  sim.run_until(1.0);
  bool fired = false;
  sim.schedule_in(-5.0, [&] { fired = true; });
  sim.run_until(1.0);
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Simulator, ScheduledActionsCanSchedule) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_in(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EmptyActionRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulator, PeakPendingHighWaterMark) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.peak_pending(), 7u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, StepRunsOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1.0, [&] { ++fired; });
  sim.schedule_in(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, DeterministicTieBreaking) {
  // Two events at the same instant run in scheduling order.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PeriodicProcess, TicksAtPeriod) {
  Simulator sim;
  std::vector<double> ticks;
  PeriodicProcess p(sim, 1.0, [&] { ticks.push_back(sim.now()); });
  p.start(0.5);
  sim.run_until(4.0);
  EXPECT_EQ(ticks, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(PeriodicProcess, StopHaltsTicks) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  sim.run_until(2.5);
  p.stop();
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(p.running());
}

TEST(PeriodicProcess, StopFromWithinTick) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] {
    ++count;
    if (count == 3) p.stop();
  });
  p.start(1.0);
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicProcess, RestartAfterStop) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  sim.run_until(1.5);
  p.stop();
  p.start(1.0);
  sim.run_until(3.0);
  EXPECT_EQ(count, 2);  // one before stop, one after restart (t=2.5)
}

TEST(PeriodicProcess, DoubleStartIsNoOp) {
  Simulator sim;
  int count = 0;
  PeriodicProcess p(sim, 1.0, [&] { ++count; });
  p.start(1.0);
  p.start(0.1);  // ignored
  sim.run_until(1.0);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicProcess, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicProcess(sim, 1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(PeriodicProcess, DestructorCancelsPendingTick) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess p(sim, 1.0, [&] { ++count; });
    p.start(1.0);
  }
  sim.run_until(10.0);
  EXPECT_EQ(count, 0);
}

// --- RoundScheduler --------------------------------------------------------

TEST(RoundScheduler, TicksMatchEquivalentPeriodicProcesses) {
  // The determinism contract: a RoundScheduler fleet fires at exactly
  // the times (and in exactly the order) the per-participant
  // PeriodicProcess fleet it replaces would.
  Simulator ref_sim;
  std::vector<std::pair<double, std::size_t>> ref_ticks;
  std::vector<std::unique_ptr<PeriodicProcess>> procs;
  const std::array<double, 3> phases = {0.31, 0.07, 0.83};
  for (std::size_t i = 0; i < phases.size(); ++i) {
    procs.push_back(std::make_unique<PeriodicProcess>(
        ref_sim, 1.0, [&ref_ticks, &ref_sim, i] {
          ref_ticks.emplace_back(ref_sim.now(), i);
        }));
    procs[i]->start(phases[i]);
  }
  ref_sim.run_until(5.0);

  Simulator sim;
  std::vector<std::pair<double, std::size_t>> ticks;
  RoundScheduler rounds(sim, 1.0, [&ticks, &sim](std::size_t user) {
    ticks.emplace_back(sim.now(), user);
  });
  for (std::size_t i = 0; i < phases.size(); ++i) (void)rounds.add(phases[i], i);
  sim.run_until(5.0);

  EXPECT_EQ(ticks, ref_ticks);
  // And it does so with a single pending proxy event instead of three.
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(RoundScheduler, EqualPhasesBatchInAddOrder) {
  Simulator sim;
  std::vector<std::size_t> order;
  RoundScheduler rounds(sim, 2.0, [&order](std::size_t user) {
    order.push_back(user);
  });
  (void)rounds.add(0.5, 7);
  (void)rounds.add(0.5, 3);
  (void)rounds.add(0.5, 9);
  sim.run_until(3.0);  // two full rounds (t = 0.5 and t = 2.5)
  EXPECT_EQ(order, (std::vector<std::size_t>{7, 3, 9, 7, 3, 9}));
  // Batched: both rounds were driven by one proxy event per round.
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(RoundScheduler, RemoveStopsTicks) {
  Simulator sim;
  int a_count = 0;
  int b_count = 0;
  RoundScheduler rounds(sim, 1.0, [&](std::size_t user) {
    if (user == 0) ++a_count;
    if (user == 1) ++b_count;
  });
  const auto a = rounds.add(0.25, 0);
  (void)rounds.add(0.5, 1);
  sim.run_until(2.0);
  EXPECT_EQ(a_count, 2);
  EXPECT_TRUE(rounds.remove(a));
  EXPECT_FALSE(rounds.remove(a)) << "double remove must be a no-op";
  EXPECT_EQ(rounds.active(), 1u);
  sim.run_until(5.0);
  EXPECT_EQ(a_count, 2);
  EXPECT_EQ(b_count, 5);
}

TEST(RoundScheduler, StaleHandleCannotRemoveSlotReuser) {
  Simulator sim;
  std::vector<std::size_t> ticked;
  RoundScheduler rounds(sim, 1.0, [&](std::size_t user) { ticked.push_back(user); });
  const auto first = rounds.add(0.5, 100);
  EXPECT_TRUE(rounds.remove(first));
  const auto second = rounds.add(0.5, 200);  // reuses the freed slot
  EXPECT_EQ(first.slot, second.slot) << "test premise: slot must be reused";
  EXPECT_FALSE(rounds.remove(first)) << "stale handle must not hit the reuser";
  EXPECT_TRUE(rounds.contains(second));
  EXPECT_FALSE(rounds.contains(first));
  sim.run_until(0.6);
  EXPECT_EQ(ticked, (std::vector<std::size_t>{200}));
}

TEST(RoundScheduler, AddAndRemoveFromWithinTick) {
  // Models a churn tick: user 0's first tick joins a new participant
  // (user 5, first fire at 0.2 + 0.4 = 0.6) and removes itself.
  Simulator sim;
  std::vector<std::size_t> ticked;
  RoundScheduler* rptr = nullptr;
  RoundScheduler::Handle h0;
  RoundScheduler rounds(sim, 1.0, [&](std::size_t user) {
    ticked.push_back(user);
    if (user == 0) {
      (void)rptr->add(0.4, 5);
      rptr->remove(h0);
    }
  });
  rptr = &rounds;
  h0 = rounds.add(0.2, 0);
  (void)rounds.add(0.6, 1);
  sim.run_until(3.0);
  // t=0.2: user 0 (once, then gone). t=0.6: user 1 before user 5 at the
  // equal instant (added earlier); both repeat at 1.6 and 2.6.
  EXPECT_EQ(ticked,
            (std::vector<std::size_t>{0, 1, 5, 1, 5, 1, 5}));
  EXPECT_EQ(rounds.active(), 2u);
}

TEST(RoundScheduler, RemoveOutsideTickNeverTicksSurvivorsEarly) {
  // Regression: removing the participant the proxy is armed for (from
  // an unrelated event, not from within a tick) must not make the
  // proxy fire the NEXT participant ahead of its time.
  Simulator sim;
  std::vector<std::pair<double, std::size_t>> ticks;
  RoundScheduler rounds(sim, 10.0, [&](std::size_t user) {
    ticks.emplace_back(sim.now(), user);
  });
  const auto a = rounds.add(1.0, 0);  // proxy armed for t=1.0
  (void)rounds.add(2.0, 1);
  sim.schedule_at(0.5, [&] { rounds.remove(a); });
  sim.run_until(5.0);
  EXPECT_EQ(ticks, (std::vector<std::pair<double, std::size_t>>{{2.0, 1}}));
}

TEST(RoundScheduler, SelfRemovalFromOwnTickStopsRearm) {
  Simulator sim;
  int count = 0;
  RoundScheduler* rptr = nullptr;
  RoundScheduler::Handle self;
  RoundScheduler rounds(sim, 1.0, [&](std::size_t) {
    ++count;
    if (count == 2) rptr->remove(self);
  });
  rptr = &rounds;
  self = rounds.add(0.5, 0);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(rounds.active(), 0u);
}

TEST(RoundScheduler, DestructionCancelsArmedProxy) {
  Simulator sim;
  int ticks = 0;
  {
    RoundScheduler rounds(sim, 1.0, [&](std::size_t) { ++ticks; });
    (void)rounds.add(0.5, 0);
  }
  sim.run_until(10.0);  // must not fire into the destroyed scheduler
  EXPECT_EQ(ticks, 0);
}

TEST(RoundScheduler, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(RoundScheduler(sim, 0.0, [](std::size_t) {}), std::invalid_argument);
  EXPECT_THROW(RoundScheduler(sim, 1.0, std::function<void(std::size_t)>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace continu::sim
