// Session construction, bookkeeping and determinism tests.

#include <gtest/gtest.h>

#include <set>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"

namespace continu::core {
namespace {

trace::TraceSnapshot small_trace(std::size_t n, std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = n;
  config.seed = seed;
  return trace::generate_snapshot(config);
}

SystemConfig small_config(std::uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.expected_nodes = 100.0;
  return config;
}

TEST(Session, FitIdSpaceKeepsOccupancyLow) {
  EXPECT_EQ(fit_id_space(8192, 1000), 8192u);
  EXPECT_EQ(fit_id_space(8192, 8000), 16384u);   // 8000 > 0.85*8192
  EXPECT_EQ(fit_id_space(8192, 20000), 32768u);
}

TEST(Session, NodesGetUniqueIds) {
  const auto snapshot = small_trace(200, 1);
  Session session(small_config(5), snapshot);
  std::set<NodeId> ids;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    EXPECT_TRUE(ids.insert(session.node(i).id()).second);
    EXPECT_LT(session.node(i).id(), session.space().size());
  }
  EXPECT_EQ(session.directory().size(), 200u);
}

TEST(Session, PartnerDegreeWithinBand) {
  // Partnerships are bidirectional overlay edges: every node holds at
  // least ~M = 5 partners (the augmentation guarantee) and at most 2M
  // (the acceptance cap).
  const auto snapshot = small_trace(200, 2);
  Session session(small_config(6), snapshot);
  // A few nodes can start below M when a hub's acceptance cap drops
  // edges; the repair loop refills them within a few rounds.
  session.run(5.0);
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    EXPECT_GE(session.node(i).neighbors().size(), 4u) << i;
    EXPECT_LE(session.node(i).neighbors().size(), 10u) << i;
  }
}

TEST(Session, DhtTablesPopulatedAndValid) {
  const auto snapshot = small_trace(300, 3);
  Session session(small_config(7), snapshot);
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    const auto& table = session.node(i).dht_peers();
    EXPECT_TRUE(table.invariants_hold()) << i;
    // With 300 nodes in an 8192 space, most high levels are populated.
    EXPECT_GE(table.peers().size(), 4u) << i;
  }
}

TEST(Session, SourceConfiguration) {
  const auto snapshot = small_trace(100, 4);
  auto config = small_config(8);
  Session session(config, snapshot);
  EXPECT_TRUE(session.source().is_source());
  EXPECT_DOUBLE_EQ(session.source().inbound_rate(), 0.0);
  EXPECT_DOUBLE_EQ(session.source().outbound_rate(), config.source_outbound);
}

TEST(Session, HeterogeneousRatesWithinRange) {
  const auto snapshot = small_trace(200, 5);
  auto config = small_config(9);
  Session session(config, snapshot);
  bool varied = false;
  double first = -1.0;
  for (std::size_t i = 1; i < session.node_count(); ++i) {
    const double rate = session.node(i).inbound_rate();
    EXPECT_GE(rate, config.inbound_min);
    EXPECT_LE(rate, config.inbound_max);
    if (first < 0.0) {
      first = rate;
    } else if (rate != first) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(Session, HomogeneousRatesAllEqual) {
  const auto snapshot = small_trace(100, 6);
  auto config = small_config(10);
  config.heterogeneous_bandwidth = false;
  Session session(config, snapshot);
  // Every node gets the distribution mean (~15 segments/s = 450 Kbps).
  const double first = session.node(1).inbound_rate();
  EXPECT_NEAR(first, config.mean_inbound(), 0.6);
  for (std::size_t i = 2; i < session.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(session.node(i).inbound_rate(), first);
  }
}

TEST(Session, EmissionTracksClock) {
  const auto snapshot = small_trace(100, 7);
  Session session(small_config(11), snapshot);
  session.run(10.0);
  // p = 10 segments/s for 10 s.
  EXPECT_NEAR(static_cast<double>(session.emitted()), 100.0, 2.0);
  EXPECT_EQ(session.stats().segments_emitted,
            static_cast<std::uint64_t>(session.emitted()));
}

TEST(Session, PlaybackEventuallyStartsEverywhere) {
  const auto snapshot = small_trace(150, 8);
  Session session(small_config(12), snapshot);
  session.run(30.0);
  std::size_t started = 0;
  for (std::size_t i = 1; i < session.node_count(); ++i) {
    if (session.node(i).buffer().started()) ++started;
  }
  EXPECT_GT(started, 140u);
}

TEST(Session, ContinuityRecordedEveryRound) {
  const auto snapshot = small_trace(100, 9);
  Session session(small_config(13), snapshot);
  session.run(20.0);
  EXPECT_EQ(session.continuity().rounds().size(), 20u);
  for (const auto& round : session.continuity().rounds()) {
    EXPECT_EQ(round.counted_nodes, 99u);  // all alive minus the source
    EXPECT_LE(round.continuous_nodes, round.counted_nodes);
  }
}

TEST(Session, TrafficClassesAllCharged) {
  const auto snapshot = small_trace(150, 10);
  Session session(small_config(14), snapshot);
  session.run(25.0);
  const auto& traffic = session.traffic();
  EXPECT_GT(traffic.bits(net::TrafficClass::kControl), 0u);
  EXPECT_GT(traffic.bits(net::TrafficClass::kRequest), 0u);
  EXPECT_GT(traffic.bits(net::TrafficClass::kData), 0u);
}

TEST(Session, DeterministicForSameSeed) {
  const auto snapshot = small_trace(120, 11);
  const auto config = small_config(15);
  Session a(config, snapshot);
  Session b(config, snapshot);
  a.run(15.0);
  b.run(15.0);
  ASSERT_EQ(a.continuity().rounds().size(), b.continuity().rounds().size());
  for (std::size_t i = 0; i < a.continuity().rounds().size(); ++i) {
    EXPECT_EQ(a.continuity().rounds()[i].continuous_nodes,
              b.continuity().rounds()[i].continuous_nodes);
  }
  EXPECT_EQ(a.stats().segments_delivered, b.stats().segments_delivered);
  EXPECT_EQ(a.stats().prefetch_launched, b.stats().prefetch_launched);
  EXPECT_EQ(a.traffic().bits(net::TrafficClass::kData),
            b.traffic().bits(net::TrafficClass::kData));
}

TEST(Session, DifferentSeedsDiverge) {
  const auto snapshot = small_trace(120, 12);
  Session a(small_config(1), snapshot);
  Session b(small_config(2), snapshot);
  a.run(15.0);
  b.run(15.0);
  EXPECT_NE(a.stats().segments_delivered, b.stats().segments_delivered);
}

TEST(Session, DeliveredAtMostRequestedPlusPrefetched) {
  const auto snapshot = small_trace(100, 13);
  Session session(small_config(16), snapshot);
  session.run(20.0);
  const auto& stats = session.stats();
  EXPECT_GT(stats.segments_delivered, 0u);
  // Duplicates happen BY DESIGN (the pre-fetch channel races gossip —
  // the paper's "repeated data" case) but must stay a modest fraction.
  EXPECT_LT(static_cast<double>(stats.duplicate_deliveries),
            0.15 * static_cast<double>(stats.segments_delivered));
}

TEST(Session, CollectorSeriesPresent) {
  const auto snapshot = small_trace(100, 14);
  Session session(small_config(17), snapshot);
  session.run(10.0);
  EXPECT_TRUE(session.collector().has("continuity"));
  EXPECT_TRUE(session.collector().has("control_overhead_round"));
  EXPECT_TRUE(session.collector().has("prefetch_overhead_round"));
  EXPECT_TRUE(session.collector().has("alive_nodes"));
}

TEST(Session, ChurnChangesMembership) {
  const auto snapshot = small_trace(200, 15);
  auto config = small_config(18);
  config.churn_enabled = true;
  Session session(config, snapshot);
  session.run(20.0);
  EXPECT_GT(session.stats().joins, 0u);
  EXPECT_GT(session.stats().graceful_leaves + session.stats().abrupt_leaves, 0u);
  // Population stays near 200 (5% in, 5% out).
  EXPECT_NEAR(static_cast<double>(session.alive_count()), 200.0, 40.0);
  // Directory matches alive set.
  std::size_t alive = 0;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    if (session.node(i).alive()) ++alive;
  }
  EXPECT_EQ(session.directory().size(), alive);
}

TEST(Session, DeadNodesStopParticipating) {
  const auto snapshot = small_trace(200, 16);
  auto config = small_config(19);
  config.churn_enabled = true;
  config.churn.leave_fraction = 0.10;
  config.churn.join_fraction = 0.0;
  Session session(config, snapshot);
  session.run(15.0);
  EXPECT_LT(session.alive_count(), 200u);
  // Continuity counts only alive nodes.
  const auto& last = session.continuity().rounds().back();
  EXPECT_EQ(last.counted_nodes, session.alive_count() - 1);  // minus source
}

TEST(Session, GracefulLeaverHandsOverBackups) {
  const auto snapshot = small_trace(150, 17);
  auto config = small_config(20);
  config.churn_enabled = true;
  config.churn.graceful_fraction = 1.0;  // all leaves graceful
  Session session(config, snapshot);
  session.run(20.0);
  EXPECT_GT(session.stats().graceful_leaves, 0u);
  EXPECT_EQ(session.stats().abrupt_leaves, 0u);
  EXPECT_GT(session.traffic().bits(net::TrafficClass::kMaintenance), 0u);
}

TEST(Session, NeighborRepairKeepsDegreeUnderChurn) {
  const auto snapshot = small_trace(200, 18);
  auto config = small_config(21);
  config.churn_enabled = true;
  Session session(config, snapshot);
  session.run(25.0);
  std::size_t deficient = 0;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    const auto& node = session.node(i);
    if (!node.alive()) continue;
    // No alive node should keep pointing at dead neighbors for long;
    // allow the most recent joiners a little slack.
    std::size_t alive_neighbors = 0;
    for (const NodeId id : node.neighbors().ids()) {
      const auto idx = session.index_of(id);
      if (idx.has_value() && session.node(*idx).alive()) ++alive_neighbors;
    }
    if (alive_neighbors < 3) ++deficient;
  }
  EXPECT_LT(deficient, session.alive_count() / 10);
}

TEST(Session, BandwidthDistributionMeans) {
  // Inbound follows the paper's skewed draw (mean ~ 450 Kbps = 15
  // segments/s); outbound is uniform on the same range (mean 21.5).
  const auto snapshot = small_trace(400, 18);
  Session session(small_config(21), snapshot);
  double in_sum = 0.0;
  double out_sum = 0.0;
  for (std::size_t i = 1; i < session.node_count(); ++i) {
    in_sum += session.node(i).inbound_rate();
    out_sum += session.node(i).outbound_rate();
  }
  const double n = static_cast<double>(session.node_count() - 1);
  EXPECT_NEAR(in_sum / n, 15.0, 1.0);
  EXPECT_NEAR(out_sum / n, 21.5, 1.2);
}

TEST(Session, StallMechanismSelfHeals) {
  // Regression guard for the wait-then-skip player: configurations that
  // start shallow (everyone anchored near the live edge) must sink to a
  // sustainable depth and RECOVER, not stay pinned at low continuity.
  // Trace seed 56 historically converged to ~0.15 without the stall
  // mechanism.
  trace::GeneratorConfig tc;
  tc.node_count = 400;
  tc.seed = 56;
  const auto snapshot = trace::generate_snapshot(tc);
  SystemConfig config;
  config.seed = 9;
  config.expected_nodes = 400.0;
  Session session(config, snapshot);
  session.run(45.0);
  const double late = session.continuity().stable_mean(30.0);
  EXPECT_GT(late, 0.5);
}

TEST(Session, GridMediaPushesSegments) {
  const auto snapshot = small_trace(150, 19);
  auto config = small_config(22);
  config.scheduler = SchedulerKind::kGridMediaPushPull;
  Session session(config, snapshot);
  session.run(25.0);
  // Pushes happen and carry a real share of the traffic.
  EXPECT_GT(session.stats().segments_pushed, 100u);
  // The push plane never touches the DHT.
  EXPECT_EQ(session.stats().prefetch_launched, 0u);
  // Push relays die out at holders, so duplicates exist but are bounded.
  EXPECT_LT(session.stats().duplicate_deliveries,
            session.stats().segments_delivered / 2);
  // The system still streams.
  EXPECT_GT(session.continuity().stable_mean(15.0), 0.2);
}

TEST(Session, PushPullRedundancyExceedsPull) {
  // GridMedia's documented cost (paper Section 2): pushing brings
  // redundant transmissions that pure pull avoids.
  const auto snapshot = small_trace(150, 20);
  auto base = small_config(23);
  base.scheduler = SchedulerKind::kCoolStreaming;
  Session pull(base, snapshot);
  pull.run(25.0);
  base.scheduler = SchedulerKind::kGridMediaPushPull;
  Session push(base, snapshot);
  push.run(25.0);
  const auto ratio = [](const SessionStats& s) {
    return static_cast<double>(s.duplicate_deliveries) /
           static_cast<double>(std::max<std::uint64_t>(s.segments_delivered, 1));
  };
  EXPECT_GT(ratio(push.stats()), ratio(pull.stats()));
}

// ---------------------------------------------------------------------------
// Memory footprint / allocation discipline
// ---------------------------------------------------------------------------

TEST(Session, BufferMapExchangeDoesNotAllocateAtSteadyState) {
  // The exchange path materializes one pooled window per (node,
  // neighbor) pair per round. After warm-up the arena must serve every
  // checkout from the pool: tens of thousands of further checkouts,
  // zero further allocations.
  const auto snapshot = small_trace(200, 21);
  Session session(small_config(24), snapshot);
  session.run(10.0);  // warm-up: pool fills, buffers saturate

  const auto warm = session.window_arena_stats();
  EXPECT_GT(warm.checkouts, 0u);

  session.run(25.0);  // steady state
  const auto steady = session.window_arena_stats();
  EXPECT_GT(steady.checkouts, warm.checkouts + 10000u)
      << "exchange stopped running — the assertion below would be vacuous";
  EXPECT_EQ(steady.allocations, warm.allocations)
      << "buffer-map exchange allocated at steady state";
}

TEST(Session, MemoryFootprintSectionsAreConsistent) {
  const auto snapshot = small_trace(200, 22);
  Session session(small_config(25), snapshot);
  session.run(15.0);
  const auto fp = session.memory_footprint();
  EXPECT_EQ(fp.nodes, session.node_count());
  EXPECT_EQ(fp.neighbor_bytes, fp.neighbor_set_bytes + fp.overheard_bytes);
  EXPECT_EQ(fp.dht_bytes, fp.peer_table_bytes + fp.backup_bytes);
  EXPECT_EQ(fp.inflight_bytes, fp.transfer_map_bytes + fp.prefetch_map_bytes +
                                   fp.tag_set_bytes + fp.rate_table_bytes +
                                   fp.retry_map_bytes + fp.blacklist_bytes);
  EXPECT_EQ(fp.total_bytes(), fp.buffer_bytes + fp.neighbor_bytes +
                                  fp.dht_bytes + fp.inflight_bytes);
  EXPECT_GT(fp.per_node_bytes(), 0.0);
  // The flat-container rework's contract: a saturated node budget well
  // under the old ~2.8 KB. Generous bound so trace variance never
  // flakes; the CI budget gate enforces the tight number at static_8k.
  EXPECT_LT(fp.per_node_bytes(), 2200.0);
}

}  // namespace
}  // namespace continu::core
