// Unit + integration tests for the deterministic observability layer:
// profiler accumulation against hand-computed values, ring wraparound,
// steady-state no-allocation witnesses, counter shard-order
// determinism across thread counts, fingerprint identity obs-on vs
// obs-off, and parse-back of both JSON exports.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace_sink.hpp"
#include "runner/experiment_runner.hpp"

namespace continu::obs {
namespace {

// ---------------------------------------------------------------------------
// Phase profiler

TEST(PhaseProfiler, HandComputedForkAccumulation) {
  PhaseProfiler prof;
  prof.set_threads(2);

  prof.begin_fork_phase(Phase::kPlan, 100);
  prof.on_fork(2);
  prof.on_shard_done(0, 1000, 1600);  // 600 ns of work, the slow shard
  prof.on_shard_done(1, 1000, 1400);  // 400 ns of work
  prof.on_join(900, 1700);            // 800 ns fork wall
  prof.record_serial(Phase::kCommit, 2000, 2500);
  prof.add_run_wall(10000);

  const PhaseTotals& plan = prof.totals(Phase::kPlan);
  EXPECT_EQ(plan.forks, 1u);
  EXPECT_EQ(plan.fork_wall_ns, 800u);
  EXPECT_EQ(plan.forked_work_ns, 1000u);
  EXPECT_EQ(plan.shards_run, 2u);
  EXPECT_EQ(plan.max_shard_ns, 600u);
  EXPECT_DOUBLE_EQ(plan.mean_shard_ns, 500.0);
  EXPECT_DOUBLE_EQ(plan.imbalance(), 1.2);

  const PhaseTotals& commit = prof.totals(Phase::kCommit);
  EXPECT_EQ(commit.serial_ns, 500u);
  EXPECT_EQ(commit.serial_spans, 1u);

  const ProfileReport report = prof.report();
  EXPECT_EQ(report.threads, 2u);
  EXPECT_EQ(report.amdahl.run_wall_ns, 10000u);
  EXPECT_EQ(report.amdahl.fork_wall_ns, 800u);
  EXPECT_EQ(report.amdahl.forked_work_ns, 1000u);
  EXPECT_EQ(report.amdahl.serial_ns, 9200u);
  EXPECT_DOUBLE_EQ(report.amdahl.serial_fraction, 9200.0 / 10200.0);
  // 100 items lands in log2 bucket 6 (64 <= 100 < 128).
  EXPECT_EQ(report.batch_hist[static_cast<std::size_t>(Phase::kPlan)][6], 1u);
}

TEST(PhaseProfiler, HistogramBucketEdges) {
  EXPECT_EQ(PhaseProfiler::histogram_bucket(0), 0u);
  EXPECT_EQ(PhaseProfiler::histogram_bucket(1), 0u);
  EXPECT_EQ(PhaseProfiler::histogram_bucket(2), 1u);
  EXPECT_EQ(PhaseProfiler::histogram_bucket(3), 1u);
  EXPECT_EQ(PhaseProfiler::histogram_bucket(4), 2u);
  EXPECT_EQ(PhaseProfiler::histogram_bucket(1u << 25),
            PhaseProfiler::kHistBuckets - 1);
}

TEST(PhaseProfiler, EmptyReportIsAllSerial) {
  PhaseProfiler prof;
  prof.add_run_wall(5000);
  const ProfileReport report = prof.report();
  EXPECT_EQ(report.amdahl.serial_ns, 5000u);
  EXPECT_DOUBLE_EQ(report.amdahl.serial_fraction, 1.0);
  EXPECT_DOUBLE_EQ(prof.totals(Phase::kPlan).imbalance(), 0.0);
}

TEST(PhaseProfiler, SteadyStateSlotsStopMoving) {
  PhaseProfiler prof;
  prof.begin_fork_phase(Phase::kPrepareLocal, 64);
  prof.on_fork(8);  // widest fork: slots grow once
  for (std::size_t s = 0; s < 8; ++s) prof.on_shard_done(s, 10, 20);
  prof.on_join(0, 30);
  const void* data = prof.shard_slot_data();
  const std::size_t cap = prof.shard_slot_capacity();
  for (int round = 0; round < 100; ++round) {
    prof.begin_fork_phase(Phase::kPlan, 64);
    prof.on_fork(8);
    for (std::size_t s = 0; s < 8; ++s) prof.on_shard_done(s, 10, 20);
    prof.on_join(0, 30);
  }
  EXPECT_EQ(prof.shard_slot_data(), data);
  EXPECT_EQ(prof.shard_slot_capacity(), cap);
}

// ---------------------------------------------------------------------------
// Trace ring / sink

TEST(TraceRing, WraparoundKeepsNewestOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    TraceEvent event;
    event.time = static_cast<double>(i);
    event.kind = TraceEventKind::kPullGrant;
    ring.push(event);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.overwritten(), 2u);
  std::vector<TraceEvent> out;
  ring.drain_to(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out[i].time, 2.0 + i);
}

TEST(TraceRing, PushNeverReallocates) {
  TraceRing ring(8);
  const TraceEvent* data = ring.data();
  for (int i = 0; i < 1000; ++i) ring.push(TraceEvent{});
  EXPECT_EQ(ring.data(), data);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(TraceEvent{});
  EXPECT_EQ(ring.size(), 1u);
}

TEST(TraceSink, DrainConcatenatesShardsThenSortsByTime) {
  TraceSink sink(16, kTraceAllNodes);
  sink.ensure_shards(2);
  TraceEvent event;
  event.kind = TraceEventKind::kSegmentDelivery;
  event.time = 2.0;
  event.a = 10;
  sink.record(0, event);
  event.time = 1.0;
  event.a = 11;
  sink.record(1, event);
  event.time = 1.0;
  event.a = 12;  // same instant as a=11 but in shard 0: must sort FIRST
  sink.record(0, event);

  const auto events = sink.drained_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].a, 12u);  // t=1.0, shard 0 wins the tie
  EXPECT_EQ(events[1].a, 11u);  // t=1.0, shard 1
  EXPECT_EQ(events[2].a, 10u);  // t=2.0
}

TEST(TraceSink, NodeFilterMatchesEitherEndpoint) {
  TraceSink sink(16, /*node_filter=*/5);
  TraceEvent event;
  event.kind = TraceEventKind::kPullRequest;
  event.node = 5;
  event.peer = 9;
  sink.record_serial(event);
  event.node = 3;
  event.peer = 5;
  sink.record_serial(event);
  event.node = 3;
  event.peer = 4;
  sink.record_serial(event);  // neither endpoint is node 5: dropped
  EXPECT_EQ(sink.drained_events().size(), 2u);
}

// ---------------------------------------------------------------------------
// Counter registry

TEST(CounterRegistry, SettleFoldsLanesInShardOrderAndZeroesThem) {
  CounterRegistry reg;
  const auto a = reg.declare("a");
  const auto b = reg.declare("b");
  reg.ensure_shards(4);
  reg.add(0, a, 1);
  reg.add(3, a, 10);
  reg.add(1, b, 5);
  reg.add(2, b, 7);
  reg.settle();
  EXPECT_EQ(reg.value(a), 11u);
  EXPECT_EQ(reg.value(b), 12u);
  reg.settle();  // lanes were zeroed: totals must not move
  EXPECT_EQ(reg.value(a), 11u);
  EXPECT_EQ(reg.value(b), 12u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(CounterRegistry, LaneStorageStableAcrossGrowthAndSettle) {
  CounterRegistry reg;
  const auto id = reg.declare("x");
  reg.ensure_shards(2);
  const void* lane0 = reg.lane_address(0);
  reg.ensure_shards(8);  // growth must not move existing lanes
  EXPECT_EQ(reg.lane_address(0), lane0);
  for (int i = 0; i < 100; ++i) {
    reg.add(0, id, 1);
    reg.settle();
  }
  EXPECT_EQ(reg.lane_address(0), lane0);
  EXPECT_EQ(reg.value(id), 100u);
}

// ---------------------------------------------------------------------------
// Session-level determinism and export parse-back

runner::ReplicationSpec small_quantized_spec(bool obs_on, unsigned threads) {
  runner::ReplicationSpec spec;
  spec.label = "obs_test";
  spec.config.seed = 7;
  spec.config.threads = threads;
  spec.config.latency_grid_ms = 1.0;  // quantized mode: delivery forks run
  spec.config.expected_nodes = 200.0;
  spec.trace.node_count = 200;
  spec.trace.average_degree = 2.5;
  spec.trace.seed = 3;
  spec.duration = 10.0;
  spec.stable_from = 5.0;
  if (obs_on) {
    spec.config.obs.profile = true;
    spec.config.obs.trace = true;
    spec.config.obs.counters = true;
  }
  return spec;
}

bool events_equal(const std::vector<TraceEvent>& x, const std::vector<TraceEvent>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].time != y[i].time || x[i].a != y[i].a || x[i].b != y[i].b ||
        x[i].node != y[i].node || x[i].peer != y[i].peer ||
        x[i].kind != y[i].kind) {
      return false;
    }
  }
  return true;
}

TEST(ObsSession, FingerprintIdenticalObsOnVsObsOffAcrossThreads) {
  const auto baseline =
      runner::ExperimentRunner::run_one(small_quantized_spec(false, 1));
  const auto base_fp = runner::result_fingerprint(baseline);
  ASSERT_FALSE(baseline.obs) << "obs-off run must not build a report";

  std::shared_ptr<const ObsReport> first_obs;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto off =
        runner::ExperimentRunner::run_one(small_quantized_spec(false, threads));
    EXPECT_EQ(runner::result_fingerprint(off), base_fp)
        << "obs-off drifted at threads=" << threads;
    const auto on =
        runner::ExperimentRunner::run_one(small_quantized_spec(true, threads));
    EXPECT_EQ(runner::result_fingerprint(on), base_fp)
        << "obs-on perturbed the engine at threads=" << threads;
    ASSERT_TRUE(on.obs);

    // Counter snapshot (settled in shard order) and the drained trace
    // must themselves be deterministic across thread counts.
    if (!first_obs) {
      first_obs = on.obs;
    } else {
      EXPECT_EQ(on.obs->counter_values, first_obs->counter_values)
          << "counters depend on thread count at threads=" << threads;
      EXPECT_TRUE(events_equal(on.obs->events, first_obs->events))
          << "trace events depend on thread count at threads=" << threads;
      EXPECT_EQ(on.obs->trace_recorded, first_obs->trace_recorded);
    }
  }
  ASSERT_TRUE(first_obs);
  EXPECT_FALSE(first_obs->events.empty());
  EXPECT_FALSE(first_obs->counter_values.empty());
}

// Minimal strict JSON syntax checker (objects/arrays/strings/numbers/
// literals) for parse-back: the exports must be machine-loadable, not
// just string-shaped.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool parse() {
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip();
      if (!string_lit()) return false;
      skip();
      if (peek() != ':') return false;
      ++pos_;
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void skip() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(ObsExport, ChromeTraceAndStatsJsonParseBack) {
  const auto run = runner::ExperimentRunner::run_one(small_quantized_spec(true, 2));
  ASSERT_TRUE(run.obs);

  const std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(write_chrome_trace(*run.obs, trace_path));
  const std::string trace_text = slurp(trace_path);
  EXPECT_TRUE(JsonChecker(trace_text).parse()) << "trace JSON does not parse";
  EXPECT_NE(trace_text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(trace_text.find("pull_request"), std::string::npos);

  const std::string stats_path = ::testing::TempDir() + "/obs_stats.json";
  ASSERT_TRUE(write_stats_json(*run.obs, stats_path, "obs_test", 7,
                               {{"stable_continuity", 0.5}}));
  const std::string stats_text = slurp(stats_path);
  EXPECT_TRUE(JsonChecker(stats_text).parse()) << "stats JSON does not parse";
  EXPECT_NE(stats_text.find("\"counters\""), std::string::npos);
  EXPECT_NE(stats_text.find("\"serial_fraction\""), std::string::npos);
  EXPECT_NE(stats_text.find("\"round.prepare_nodes\""), std::string::npos);

  std::filesystem::remove(trace_path);
  std::filesystem::remove(stats_path);
}

}  // namespace
}  // namespace continu::obs
