// Unit tests for overlay membership: overheard list, neighbor set, the
// RP server and the churn planner.

#include <gtest/gtest.h>

#include <set>

#include "dht/id_space.hpp"
#include "overlay/churn.hpp"
#include "overlay/neighbor_set.hpp"
#include "overlay/overheard_list.hpp"
#include "overlay/rendezvous.hpp"
#include "util/rng.hpp"

namespace continu::overlay {
namespace {

// ---------------------------------------------------------------------------
// OverheardList
// ---------------------------------------------------------------------------

TEST(OverheardList, KeepsMostRecentUpToCapacity) {
  OverheardList list(3);
  list.hear(1, 10.0, 0.0);
  list.hear(2, 20.0, 1.0);
  list.hear(3, 30.0, 2.0);
  list.hear(4, 40.0, 3.0);  // evicts 1
  EXPECT_EQ(list.size(), 3u);
  EXPECT_FALSE(list.contains(1));
  EXPECT_TRUE(list.contains(4));
}

TEST(OverheardList, RehearMovesToFront) {
  OverheardList list(3);
  list.hear(1, 10.0, 0.0);
  list.hear(2, 20.0, 1.0);
  list.hear(3, 30.0, 2.0);
  list.hear(1, 5.0, 3.0);   // refresh 1
  list.hear(4, 40.0, 4.0);  // evicts 2 (now oldest)
  EXPECT_TRUE(list.contains(1));
  EXPECT_FALSE(list.contains(2));
}

TEST(OverheardList, BestCandidateIsLowestLatency) {
  OverheardList list(5);
  list.hear(1, 50.0, 0.0);
  list.hear(2, 10.0, 0.0);
  list.hear(3, 30.0, 0.0);
  const auto best = list.best_candidate({});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 2u);
}

TEST(OverheardList, BestCandidateRespectsExclusions) {
  OverheardList list(5);
  list.hear(1, 50.0, 0.0);
  list.hear(2, 10.0, 0.0);
  const auto best = list.best_candidate({2});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id, 1u);
  EXPECT_FALSE(list.best_candidate({1, 2}).has_value());
}

TEST(OverheardList, ForgetRemoves) {
  OverheardList list(5);
  list.hear(1, 10.0, 0.0);
  list.forget(1);
  EXPECT_FALSE(list.contains(1));
  EXPECT_EQ(list.size(), 0u);
}

TEST(OverheardList, PaperCapacityDefault) {
  OverheardList list;
  EXPECT_EQ(list.capacity(), 20u);  // H = 20
}

TEST(OverheardList, RejectsZeroCapacity) {
  EXPECT_THROW(OverheardList(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// NeighborSet
// ---------------------------------------------------------------------------

TEST(NeighborSet, AddUpToCapacity) {
  NeighborSet set(2);
  EXPECT_TRUE(set.add(1, 10.0, 0.0));
  EXPECT_TRUE(set.add(2, 20.0, 0.0));
  EXPECT_FALSE(set.add(3, 30.0, 0.0));  // full
  EXPECT_TRUE(set.full());
}

TEST(NeighborSet, NoDuplicates) {
  NeighborSet set(3);
  EXPECT_TRUE(set.add(1, 10.0, 0.0));
  EXPECT_FALSE(set.add(1, 10.0, 0.0));
}

TEST(NeighborSet, RemoveReportsPresence) {
  NeighborSet set(3);
  set.add(1, 10.0, 0.0);
  EXPECT_TRUE(set.remove(1));
  EXPECT_FALSE(set.remove(1));
}

TEST(NeighborSet, SupplyRateSmoothing) {
  NeighborSet set(3);
  set.add(1, 10.0, 0.0);
  for (int i = 0; i < 10; ++i) set.record_supply_event(1);
  set.fold_supply(0.5);
  EXPECT_DOUBLE_EQ(set.get(1)->supply_rate, 5.0);   // 0.5*10 + 0.5*0
  for (int i = 0; i < 10; ++i) set.record_supply_event(1);
  set.fold_supply(0.5);
  EXPECT_DOUBLE_EQ(set.get(1)->supply_rate, 7.5);
}

TEST(NeighborSet, FoldWithoutEventsDecays) {
  NeighborSet set(3);
  set.add(1, 10.0, 0.0);
  for (int i = 0; i < 10; ++i) set.record_supply_event(1);
  set.fold_supply(0.5);
  set.fold_supply(0.5);  // silent period
  EXPECT_DOUBLE_EQ(set.get(1)->supply_rate, 2.5);
}

TEST(NeighborSet, WeakestHonorsGracePeriod) {
  NeighborSet set(3);
  set.add(1, 10.0, /*now=*/0.0);
  set.add(2, 10.0, /*now=*/8.0);
  set.record_supply_event(1);
  set.fold_supply();
  // At t=10 with min_age 5: only neighbor 1 is old enough.
  const auto weakest = set.weakest(/*now=*/10.0, /*min_age=*/5.0);
  ASSERT_TRUE(weakest.has_value());
  EXPECT_EQ(weakest->id, 1u);
  // With min_age 20 nobody qualifies.
  EXPECT_FALSE(set.weakest(10.0, 20.0).has_value());
}

TEST(NeighborSet, WeakestPicksLowestSupply) {
  NeighborSet set(3);
  set.add(1, 10.0, 0.0);
  set.add(2, 10.0, 0.0);
  for (int i = 0; i < 10; ++i) set.record_supply_event(1);
  set.record_supply_event(2);
  set.fold_supply();
  EXPECT_EQ(set.weakest(100.0, 0.0)->id, 2u);
}

TEST(NeighborSet, IdsListsAll) {
  NeighborSet set(3);
  set.add(5, 1.0, 0.0);
  set.add(9, 1.0, 0.0);
  EXPECT_EQ(set.ids(), (std::vector<NodeId>{5, 9}));
}

// ---------------------------------------------------------------------------
// RendezvousServer
// ---------------------------------------------------------------------------

TEST(Rendezvous, AssignsUniqueIds) {
  const dht::IdSpace space(256);
  RendezvousServer rp(space, util::Rng(1));
  std::set<NodeId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.insert(rp.assign_id());
  }
  EXPECT_EQ(ids.size(), 200u);
  for (const auto id : ids) EXPECT_LT(id, 256u);
}

TEST(Rendezvous, ExhaustionThrows) {
  const dht::IdSpace space(4);
  RendezvousServer rp(space, util::Rng(2));
  for (int i = 0; i < 4; ++i) (void)rp.assign_id();
  EXPECT_THROW((void)rp.assign_id(), std::runtime_error);
}

TEST(Rendezvous, FailureFreesIdForReuse) {
  const dht::IdSpace space(4);
  RendezvousServer rp(space, util::Rng(3));
  std::set<NodeId> ids;
  for (int i = 0; i < 4; ++i) ids.insert(rp.assign_id());
  const NodeId victim = *ids.begin();
  rp.report_failure(victim);
  EXPECT_EQ(rp.assign_id(), victim);
}

TEST(Rendezvous, CloseNodesAreRingClosest) {
  const dht::IdSpace space(256);
  RendezvousServer rp(space, util::Rng(4));
  for (const NodeId id : {10u, 50u, 100u, 200u}) {
    rp.register_node(id);
  }
  const auto close = rp.close_nodes(55, 2);
  ASSERT_EQ(close.size(), 2u);
  EXPECT_EQ(close[0], 50u);
  EXPECT_EQ(close[1], 100u);  // distances: 50->5 (ccw), 100->45 (cw), 10->45...
}

TEST(Rendezvous, CloseNodesWrapAroundRing) {
  const dht::IdSpace space(256);
  RendezvousServer rp(space, util::Rng(5));
  rp.register_node(250);
  rp.register_node(5);
  const auto close = rp.close_nodes(1, 2);
  ASSERT_EQ(close.size(), 2u);
  EXPECT_TRUE((close[0] == 250 && close[1] == 5) || (close[0] == 5 && close[1] == 250));
}

TEST(Rendezvous, CloseNodesOnEmptyList) {
  const dht::IdSpace space(256);
  RendezvousServer rp(space, util::Rng(6));
  EXPECT_TRUE(rp.close_nodes(10, 3).empty());
}

TEST(Rendezvous, PartialListCapacityEnforced) {
  const dht::IdSpace space(1024);
  RendezvousServer rp(space, util::Rng(7));
  rp.set_capacity(10);
  for (int i = 0; i < 50; ++i) {
    rp.register_node(rp.assign_id());
  }
  EXPECT_LE(rp.known_count(), 10u);
}

TEST(Rendezvous, ReportFailureRemovesFromList) {
  const dht::IdSpace space(256);
  RendezvousServer rp(space, util::Rng(8));
  const NodeId id = rp.assign_id();
  rp.register_node(id);
  EXPECT_TRUE(rp.knows(id));
  rp.report_failure(id);
  EXPECT_FALSE(rp.knows(id));
}

// ---------------------------------------------------------------------------
// ChurnPlanner
// ---------------------------------------------------------------------------

TEST(Churn, PlansExpectedFractions) {
  ChurnConfig config;
  config.leave_fraction = 0.05;
  config.join_fraction = 0.05;
  ChurnPlanner planner(config, util::Rng(1));
  std::vector<std::size_t> alive(1000);
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;

  double total_leavers = 0.0;
  double total_joins = 0.0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    const auto batch = planner.plan(alive);
    total_leavers +=
        static_cast<double>(batch.graceful_leavers.size() + batch.abrupt_leavers.size());
    total_joins += static_cast<double>(batch.joins);
  }
  EXPECT_NEAR(total_leavers / rounds, 50.0, 3.0);
  EXPECT_NEAR(total_joins / rounds, 50.0, 3.0);
}

TEST(Churn, GracefulFractionRespected) {
  ChurnConfig config;
  config.leave_fraction = 0.2;
  config.graceful_fraction = 0.75;
  ChurnPlanner planner(config, util::Rng(2));
  std::vector<std::size_t> alive(500);
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = i;
  double graceful = 0.0;
  double total = 0.0;
  for (int r = 0; r < 200; ++r) {
    const auto batch = planner.plan(alive);
    graceful += static_cast<double>(batch.graceful_leavers.size());
    total += static_cast<double>(batch.graceful_leavers.size() + batch.abrupt_leavers.size());
  }
  EXPECT_NEAR(graceful / total, 0.75, 0.05);
}

TEST(Churn, LeaversAreDistinctAliveIndices) {
  ChurnConfig config;
  config.leave_fraction = 0.5;
  ChurnPlanner planner(config, util::Rng(3));
  std::vector<std::size_t> alive{100, 200, 300, 400, 500, 600};
  for (int r = 0; r < 50; ++r) {
    const auto batch = planner.plan(alive);
    std::set<std::size_t> seen;
    for (const auto idx : batch.graceful_leavers) {
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_NE(std::find(alive.begin(), alive.end(), idx), alive.end());
    }
    for (const auto idx : batch.abrupt_leavers) {
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_NE(std::find(alive.begin(), alive.end(), idx), alive.end());
    }
  }
}

TEST(Churn, SmallPopulationsChurnInExpectation) {
  ChurnConfig config;
  config.leave_fraction = 0.05;
  ChurnPlanner planner(config, util::Rng(4));
  std::vector<std::size_t> alive{0, 1, 2, 3, 4};  // 5 nodes: E[leavers] = 0.25
  double total = 0.0;
  for (int r = 0; r < 2000; ++r) {
    const auto batch = planner.plan(alive);
    total += static_cast<double>(batch.graceful_leavers.size() + batch.abrupt_leavers.size());
  }
  EXPECT_NEAR(total / 2000.0, 0.25, 0.05);
}

TEST(Churn, EmptyPopulation) {
  ChurnPlanner planner(ChurnConfig{}, util::Rng(5));
  const auto batch = planner.plan({});
  EXPECT_TRUE(batch.graceful_leavers.empty());
  EXPECT_TRUE(batch.abrupt_leavers.empty());
  EXPECT_EQ(batch.joins, 0u);
}

TEST(Churn, RejectsBadFractions) {
  ChurnConfig config;
  config.leave_fraction = 1.5;
  EXPECT_THROW(ChurnPlanner(config, util::Rng(6)), std::invalid_argument);
}

}  // namespace
}  // namespace continu::overlay
