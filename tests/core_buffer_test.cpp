// Unit tests for the stream buffer, the buffer-map wire codec, the rate
// controller and the urgent line.

#include <gtest/gtest.h>

#include "core/buffer_map.hpp"
#include "core/rate_controller.hpp"
#include "core/stream_buffer.hpp"
#include "core/urgent_line.hpp"
#include "util/rng.hpp"

namespace continu::core {
namespace {

// ---------------------------------------------------------------------------
// StreamBuffer
// ---------------------------------------------------------------------------

TEST(StreamBuffer, InsertFreshAndDuplicate) {
  StreamBuffer buf(600, 10);
  EXPECT_TRUE(buf.insert(5));
  EXPECT_FALSE(buf.insert(5));
  EXPECT_TRUE(buf.has(5));
  EXPECT_EQ(buf.held(), 1u);
}

TEST(StreamBuffer, RejectsStaleSegments) {
  StreamBuffer buf(100, 10);
  buf.insert(150);  // slides window to [51, 151)
  EXPECT_FALSE(buf.insert(10));
  EXPECT_FALSE(buf.has(10));
}

TEST(StreamBuffer, FarAheadInsertSlidesWindow) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.insert(500);
  EXPECT_TRUE(buf.has(500));
  EXPECT_FALSE(buf.has(0));  // fell off the FIFO window
  EXPECT_EQ(buf.window_head(), 401);
}

TEST(StreamBuffer, NewestAndStartupPosition) {
  StreamBuffer buf(100, 10);
  EXPECT_FALSE(buf.newest().has_value());
  buf.insert(7);
  buf.insert(42);
  buf.insert(13);
  EXPECT_EQ(buf.newest().value(), 42);
  EXPECT_EQ(buf.startup_position().value(), 7);
}

TEST(StreamBuffer, StartupReadiness) {
  StreamBuffer buf(100, 10);
  for (SegmentId id = 0; id < 19; ++id) buf.insert(id);
  EXPECT_FALSE(buf.startup_ready(20));
  buf.insert(19);
  EXPECT_TRUE(buf.startup_ready(20));
}

TEST(StreamBuffer, PlaybackDeadlines) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.start_playback(0, /*now=*/5.0);
  EXPECT_TRUE(buf.started());
  // Segment s deadline: 5.0 + (s + 1)/10.
  EXPECT_DOUBLE_EQ(buf.deadline(0), 5.1);
  EXPECT_DOUBLE_EQ(buf.deadline(9), 6.0);
}

TEST(StreamBuffer, PlayPointAdvances) {
  StreamBuffer buf(100, 10);
  buf.start_playback(100, /*now=*/0.0);
  EXPECT_EQ(buf.play_point(0.0), 99);    // nothing due yet
  EXPECT_EQ(buf.play_point(0.1), 100);   // first segment played
  EXPECT_EQ(buf.play_point(1.0), 109);
  EXPECT_EQ(buf.play_point(2.35), 122);  // 23 deadlines passed
}

TEST(StreamBuffer, AdvancePlaybackReportsPresence) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.insert(2);  // 1 missing
  buf.start_playback(0, 0.0);
  const auto due = buf.advance_playback(0.35);  // deadlines 0.1, 0.2, 0.3
  // Segment 0 plays; the missing segment 1 triggers a rebuffering stall
  // (the player waits for it rather than skipping).
  ASSERT_EQ(due.size(), 2u);
  EXPECT_TRUE(due[0].present);
  EXPECT_DOUBLE_EQ(due[0].deadline, 0.1);
  EXPECT_FALSE(due[1].present);
  EXPECT_TRUE(due[1].stalled);
}

TEST(StreamBuffer, PlayedSegmentsStayAvailable) {
  // Eviction is FIFO over ARRIVAL (capacity-driven), not playback-driven:
  // played segments keep serving neighbors until the window slides.
  StreamBuffer buf(100, 10);
  for (SegmentId id = 0; id < 10; ++id) buf.insert(id);
  buf.start_playback(0, 0.0);
  (void)buf.advance_playback(0.55);  // plays 0..4
  EXPECT_EQ(buf.window_head(), 0);
  EXPECT_TRUE(buf.has(4));
  EXPECT_TRUE(buf.has(5));
}

TEST(StreamBuffer, CapacityEvictionDropsOldest) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.insert(99);
  EXPECT_TRUE(buf.has(0));
  buf.insert(100);  // window slides to [1, 101)
  EXPECT_FALSE(buf.has(0));
  EXPECT_TRUE(buf.has(99));
  EXPECT_TRUE(buf.has(100));
}

TEST(StreamBuffer, AdvanceTwiceCoversDisjointRanges) {
  StreamBuffer buf(100, 10);
  for (SegmentId id = 0; id < 20; ++id) buf.insert(id);
  buf.start_playback(0, 0.0);
  const auto first = buf.advance_playback(0.5);
  const auto second = buf.advance_playback(1.0);
  EXPECT_EQ(first.size(), 5u);
  EXPECT_EQ(second.size(), 5u);
  EXPECT_EQ(first.back().id + 1, second.front().id);
}

TEST(StreamBuffer, DoubleStartThrows) {
  StreamBuffer buf(100, 10);
  buf.start_playback(0, 0.0);
  EXPECT_THROW(buf.start_playback(1, 1.0), std::logic_error);
}

TEST(StreamBuffer, AdvanceBeforeStartThrows) {
  StreamBuffer buf(100, 10);
  EXPECT_THROW((void)buf.advance_playback(1.0), std::logic_error);
}

TEST(StreamBuffer, LateArrivalForPlayedSegmentStillStored) {
  // A segment arriving after its deadline passed is useless for local
  // playback but still enters the window — it can serve neighbors.
  StreamBuffer buf(100, 10);
  buf.insert(20);
  buf.start_playback(20, 0.0);
  (void)buf.advance_playback(1.05);
  EXPECT_TRUE(buf.insert(25));
  EXPECT_TRUE(buf.has(25));
}

TEST(StreamBuffer, StallWhenNothingAhead) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.start_playback(0, 0.0);
  (void)buf.advance_playback(0.15);  // plays 0
  // Nothing held at/after segment 1: the player must stall, not skip.
  const auto due = buf.advance_playback(1.0);
  ASSERT_FALSE(due.empty());
  EXPECT_TRUE(due.back().stalled);
  EXPECT_EQ(buf.stall_count(), 1u);
  // The schedule shifted: segment 1 is now due one period after t=1.0.
  EXPECT_NEAR(buf.deadline(1), 1.1, 1e-9);
}

TEST(StreamBuffer, HoleStallsThenSkipsAfterPatience) {
  StreamBuffer buf(100, 10, /*stall_patience=*/0.5);
  buf.insert(0);
  buf.insert(2);  // 1 is a hole
  buf.start_playback(0, 0.0);
  // Within the patience window the player waits on segment 1.
  auto due = buf.advance_playback(0.35);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_TRUE(due[1].stalled);
  EXPECT_GE(buf.stall_count(), 1u);
  // After 0.5 s of waiting the hole is skipped as a miss and playback
  // proceeds to segment 2.
  due = buf.advance_playback(1.2);
  bool skipped_one = false;
  bool played_two = false;
  for (const auto& d : due) {
    if (d.id == 1 && !d.present && !d.stalled) skipped_one = true;
    if (d.id == 2 && d.present) played_two = true;
  }
  EXPECT_TRUE(skipped_one);
  EXPECT_TRUE(played_two);
}

TEST(StreamBuffer, StallEndsWhenSegmentArrives) {
  StreamBuffer buf(100, 10, /*stall_patience=*/5.0);
  buf.insert(0);
  buf.insert(2);
  buf.start_playback(0, 0.0);
  (void)buf.advance_playback(0.35);  // waiting on 1
  buf.insert(1);
  const auto due = buf.advance_playback(1.0);
  ASSERT_FALSE(due.empty());
  EXPECT_EQ(due[0].id, 1);
  EXPECT_TRUE(due[0].present);
}

TEST(StreamBuffer, RejectsNegativePatience) {
  EXPECT_THROW(StreamBuffer(100, 10, -1.0), std::invalid_argument);
}

TEST(StreamBuffer, StallResumesWhenDataArrives) {
  StreamBuffer buf(100, 10);
  buf.insert(0);
  buf.start_playback(0, 0.0);
  (void)buf.advance_playback(1.0);  // plays 0, stalls on 1
  buf.insert(1);
  buf.insert(2);
  const auto due = buf.advance_playback(2.25);
  EXPECT_GE(due.size(), 2u);
  EXPECT_TRUE(due[0].present);
  EXPECT_EQ(due[0].id, 1);
}

// ---------------------------------------------------------------------------
// Buffer-map codec
// ---------------------------------------------------------------------------

TEST(BufferMap, BitBudgetMatchesPaper) {
  EXPECT_EQ(buffer_map_bits(600), 620u);
}

TEST(BufferMap, EncodeSizeExact) {
  util::BitWindow window(600, 1234);
  const auto image = encode_buffer_map(window);
  EXPECT_EQ(image.bit_count, 620u);
  EXPECT_EQ(image.bytes.size(), (620u + 7) / 8);
}

TEST(BufferMap, RoundtripPreservesBits) {
  util::Rng rng(5);
  util::BitWindow window(600, 98765);
  for (int i = 0; i < 200; ++i) {
    window.set(98765 + static_cast<SegmentId>(rng.next_below(600)));
  }
  const auto image = encode_buffer_map(window);
  const auto decoded = decode_buffer_map(image, 600, /*reference_head=*/98000);
  EXPECT_EQ(decoded.head(), window.head());
  for (SegmentId id = window.head(); id < window.end(); ++id) {
    EXPECT_EQ(decoded.test(id), window.test(id)) << id;
  }
}

TEST(BufferMap, HeadRecoveredAcrossModulus) {
  // Head ids beyond 2^20 wrap in the 20-bit field but are recovered
  // against a nearby reference.
  const SegmentId head = (1 << 20) + 777;
  util::BitWindow window(600, head);
  window.set(head + 3);
  const auto image = encode_buffer_map(window);
  const auto decoded = decode_buffer_map(image, 600, head - 500);
  EXPECT_EQ(decoded.head(), head);
  EXPECT_TRUE(decoded.test(head + 3));
}

TEST(BufferMap, RejectsSizeMismatch) {
  util::BitWindow window(600, 0);
  const auto image = encode_buffer_map(window);
  EXPECT_THROW(decode_buffer_map(image, 500, 0), std::invalid_argument);
}

class BufferMapRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BufferMapRoundtrip, RandomWindows) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const SegmentId head = static_cast<SegmentId>(rng.next_below(1u << 19));
  util::BitWindow window(600, head);
  for (int i = 0; i < 300; ++i) {
    window.set(head + static_cast<SegmentId>(rng.next_below(600)));
  }
  const auto decoded =
      decode_buffer_map(encode_buffer_map(window), 600,
                        head + static_cast<SegmentId>(rng.next_int(-400, 400)));
  ASSERT_EQ(decoded.head(), head);
  EXPECT_EQ(decoded.count(), window.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferMapRoundtrip, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// RateController
// ---------------------------------------------------------------------------

TEST(RateController, UnknownNeighborUsesInitialRate) {
  RateController rates(10.0);
  EXPECT_DOUBLE_EQ(rates.estimate(42), 10.0);
}

TEST(RateController, ThroughputSamplesConverge) {
  RateController rates(10.0, 0.5);
  // Transfers taking 0.25 s each: throughput 4 segments/s.
  for (int i = 0; i < 20; ++i) rates.on_transfer_complete(1, 0.25);
  EXPECT_NEAR(rates.estimate(1), 4.0, 0.1);
}

TEST(RateController, FailuresDecayEstimate) {
  RateController rates(10.0, 0.5);
  const double before = rates.estimate(1);
  rates.on_transfer_failed(1);
  EXPECT_LT(rates.estimate(1), before);
}

TEST(RateController, EstimateFlooredForProbing) {
  RateController rates(10.0, 0.5);
  for (int i = 0; i < 100; ++i) rates.on_transfer_failed(1);
  // Never freezes a supplier out entirely: 1/floor < tau.
  EXPECT_DOUBLE_EQ(rates.estimate(1), RateController::kFloorRate);
}

TEST(RateController, EstimateCeilingBoundsSpikes) {
  RateController rates(10.0, 1.0);  // no smoothing
  rates.on_transfer_complete(1, 1e-9);  // absurdly fast sample
  EXPECT_LE(rates.estimate(1), RateController::kCeilingRate);
}

TEST(RateController, ForgetResets) {
  RateController rates(10.0, 0.5);
  rates.on_transfer_complete(1, 0.05);
  rates.forget(1);
  EXPECT_DOUBLE_EQ(rates.estimate(1), 10.0);
}

TEST(RateController, RejectsBadArguments) {
  EXPECT_THROW(RateController(0.0), std::invalid_argument);
  EXPECT_THROW(RateController(1.0, 0.0), std::invalid_argument);
  RateController ok(10.0);
  EXPECT_THROW(ok.on_transfer_complete(1, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// UrgentLine
// ---------------------------------------------------------------------------

UrgentLineConfig paper_config() {
  UrgentLineConfig config;
  config.playback_rate = 10;
  config.buffer_capacity = 600;
  config.scheduling_period = 1.0;
  config.t_fetch = 0.4;   // the paper's estimate for n = 1000
  config.t_hop = 0.05;
  return config;
}

TEST(UrgentLine, InitialAlphaMatchesEq9) {
  const UrgentLine line(paper_config());
  // alpha = p/B * max(tau, t_fetch) = 10/600 * 1.0 = 1/60.
  EXPECT_NEAR(line.alpha(), 1.0 / 60.0, 1e-12);
  EXPECT_NEAR(line.lower_bound(), 1.0 / 60.0, 1e-12);
}

TEST(UrgentLine, TFetchDominatesWhenLarger) {
  auto config = paper_config();
  config.t_fetch = 2.5;
  const UrgentLine line(config);
  EXPECT_NEAR(line.alpha(), 10.0 / 600.0 * 2.5, 1e-12);
}

TEST(UrgentLine, UrgentIdOffset) {
  const UrgentLine line(paper_config());
  // alpha*B = 10 segments past the head.
  EXPECT_EQ(line.urgent_id(1000), 1010);
}

TEST(UrgentLine, StepIsPTHopOverB) {
  const UrgentLine line(paper_config());
  EXPECT_NEAR(line.step(), 10.0 * 0.05 / 600.0, 1e-12);
}

TEST(UrgentLine, OverdueGrowsAlpha) {
  UrgentLine line(paper_config());
  const double before = line.alpha();
  line.on_overdue_prefetch();
  EXPECT_NEAR(line.alpha(), before + line.step(), 1e-12);
  EXPECT_EQ(line.overdue_events(), 1u);
}

TEST(UrgentLine, RepeatedShrinksButNotBelowLowerBound) {
  UrgentLine line(paper_config());
  for (int i = 0; i < 100; ++i) line.on_repeated_prefetch();
  EXPECT_DOUBLE_EQ(line.alpha(), line.lower_bound());
  EXPECT_EQ(line.repeated_events(), 100u);
}

TEST(UrgentLine, AlphaCappedAtOne) {
  UrgentLine line(paper_config());
  for (int i = 0; i < 100000; ++i) line.on_overdue_prefetch();
  EXPECT_DOUBLE_EQ(line.alpha(), 1.0);
}

TEST(UrgentLine, AdaptationIsReversible) {
  UrgentLine line(paper_config());
  for (int i = 0; i < 10; ++i) line.on_overdue_prefetch();
  for (int i = 0; i < 10; ++i) line.on_repeated_prefetch();
  EXPECT_NEAR(line.alpha(), line.lower_bound(), 1e-9);
}

TEST(UrgentLine, RejectsBadConfig) {
  auto config = paper_config();
  config.buffer_capacity = 0;
  EXPECT_THROW(UrgentLine line(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pre-fetch trigger (Section 4.3 cases)
// ---------------------------------------------------------------------------

TEST(PrefetchQuota, CaseZeroMissed) {
  EXPECT_EQ(prefetch_quota(0, 5), 0u);
}

TEST(PrefetchQuota, CaseWithinLimit) {
  EXPECT_EQ(prefetch_quota(1, 5), 1u);
  EXPECT_EQ(prefetch_quota(5, 5), 5u);
}

TEST(PrefetchQuota, CaseOverLimitSuppressed) {
  // N_miss > l: not triggered at all, to avoid pre-fetch storms.
  EXPECT_EQ(prefetch_quota(6, 5), 0u);
  EXPECT_EQ(prefetch_quota(100, 5), 0u);
}

}  // namespace
}  // namespace continu::core
