// Unit tests for the metrics library.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "metrics/collector.hpp"
#include "metrics/continuity.hpp"

namespace continu::metrics {
namespace {

TEST(Continuity, RatioComputation) {
  RoundContinuity r{1.0, 83, 100};
  EXPECT_DOUBLE_EQ(r.ratio(), 0.83);
  RoundContinuity empty{1.0, 0, 0};
  EXPECT_DOUBLE_EQ(empty.ratio(), 0.0);
}

TEST(Continuity, TrackerRecordsRounds) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 50, 100);
  tracker.record_round(2.0, 80, 100);
  ASSERT_EQ(tracker.rounds().size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.rounds()[0].ratio(), 0.5);
  EXPECT_DOUBLE_EQ(tracker.rounds()[1].ratio(), 0.8);
}

TEST(Continuity, StableMeanIgnoresWarmup) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 10, 100);   // warm-up
  tracker.record_round(10.0, 90, 100);
  tracker.record_round(11.0, 94, 100);
  EXPECT_DOUBLE_EQ(tracker.stable_mean(10.0), 0.92);
}

TEST(Continuity, StableMeanEmptyRangeIsZero) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 50, 100);
  EXPECT_DOUBLE_EQ(tracker.stable_mean(100.0), 0.0);
}

TEST(Continuity, StabilizationTime) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 10, 100);
  tracker.record_round(2.0, 60, 100);
  tracker.record_round(3.0, 95, 100);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.5), 2.0);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.9), 3.0);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.99), -1.0);
}

TEST(Collector, RecordAndRead) {
  SeriesCollector collector;
  collector.record("x", 1.0, 10.0);
  collector.record("x", 2.0, 20.0);
  collector.record("y", 1.0, -1.0);
  ASSERT_TRUE(collector.has("x"));
  ASSERT_EQ(collector.series("x").size(), 2u);
  EXPECT_DOUBLE_EQ(collector.series("x")[1].value, 20.0);
  EXPECT_EQ(collector.names(), (std::vector<std::string>{"x", "y"}));
}

TEST(Collector, UnknownSeriesThrows) {
  SeriesCollector collector;
  EXPECT_THROW((void)collector.series("nope"), std::out_of_range);
}

TEST(Collector, Summarize) {
  SeriesCollector collector;
  collector.record("x", 1.0, 2.0);
  collector.record("x", 2.0, 4.0);
  const auto stats = collector.summarize("x");
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.count(), 2u);
}

TEST(Collector, MeanFrom) {
  SeriesCollector collector;
  collector.record("x", 1.0, 100.0);
  collector.record("x", 10.0, 2.0);
  collector.record("x", 11.0, 4.0);
  EXPECT_DOUBLE_EQ(collector.mean_from("x", 10.0), 3.0);
}

TEST(Collector, SummarizeUnknownSeriesIsEmpty) {
  SeriesCollector collector;
  const auto stats = collector.summarize("never-recorded");
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(Collector, MeanFromUnknownOrFilteredIsZero) {
  SeriesCollector collector;
  EXPECT_DOUBLE_EQ(collector.mean_from("never-recorded", 0.0), 0.0);
  collector.record("x", 1.0, 42.0);
  collector.record("x", 2.0, 43.0);
  // Cutoff past every sample: the filter drops everything.
  EXPECT_DOUBLE_EQ(collector.mean_from("x", 100.0), 0.0);
}

TEST(Collector, CsvEscapesHostileSeriesNames) {
  SeriesCollector collector;
  collector.record("bad,name", 1.0, 1.0);
  collector.record("worse\nname", 2.0, 2.0);
  collector.record("\"quoted\"", 3.0, 3.0);
  const std::string path = ::testing::TempDir() + "/collector_hostile.csv";
  collector.write_csv(path);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // RFC 4180: fields with separators are quoted, embedded quotes doubled.
  EXPECT_NE(text.find("\"bad,name\","), std::string::npos);
  EXPECT_NE(text.find("\"worse\nname\","), std::string::npos);
  EXPECT_NE(text.find("\"\"\"quoted\"\"\","), std::string::npos);
  // The comma inside the name must not create a fourth column: every
  // parsed record still has exactly three fields.
  std::size_t records = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t fields = 1;
    bool quoted = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (quoted) {
        if (c == '"') quoted = false;
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        ++fields;
      } else if (c == '\n') {
        ++i;
        break;
      }
    }
    EXPECT_EQ(fields, 3u);
    ++records;
  }
  EXPECT_EQ(records, 4u);  // header + three samples
  std::filesystem::remove(path);
}

TEST(Collector, WritesCsv) {
  SeriesCollector collector;
  collector.record("a", 1.0, 0.5);
  const std::string path = ::testing::TempDir() + "/collector_test.csv";
  collector.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "series,time,value");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "a,");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace continu::metrics
