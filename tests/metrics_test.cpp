// Unit tests for the metrics library.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "metrics/collector.hpp"
#include "metrics/continuity.hpp"

namespace continu::metrics {
namespace {

TEST(Continuity, RatioComputation) {
  RoundContinuity r{1.0, 83, 100};
  EXPECT_DOUBLE_EQ(r.ratio(), 0.83);
  RoundContinuity empty{1.0, 0, 0};
  EXPECT_DOUBLE_EQ(empty.ratio(), 0.0);
}

TEST(Continuity, TrackerRecordsRounds) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 50, 100);
  tracker.record_round(2.0, 80, 100);
  ASSERT_EQ(tracker.rounds().size(), 2u);
  EXPECT_DOUBLE_EQ(tracker.rounds()[0].ratio(), 0.5);
  EXPECT_DOUBLE_EQ(tracker.rounds()[1].ratio(), 0.8);
}

TEST(Continuity, StableMeanIgnoresWarmup) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 10, 100);   // warm-up
  tracker.record_round(10.0, 90, 100);
  tracker.record_round(11.0, 94, 100);
  EXPECT_DOUBLE_EQ(tracker.stable_mean(10.0), 0.92);
}

TEST(Continuity, StableMeanEmptyRangeIsZero) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 50, 100);
  EXPECT_DOUBLE_EQ(tracker.stable_mean(100.0), 0.0);
}

TEST(Continuity, StabilizationTime) {
  ContinuityTracker tracker;
  tracker.record_round(1.0, 10, 100);
  tracker.record_round(2.0, 60, 100);
  tracker.record_round(3.0, 95, 100);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.5), 2.0);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.9), 3.0);
  EXPECT_DOUBLE_EQ(tracker.stabilization_time(0.99), -1.0);
}

TEST(Collector, RecordAndRead) {
  SeriesCollector collector;
  collector.record("x", 1.0, 10.0);
  collector.record("x", 2.0, 20.0);
  collector.record("y", 1.0, -1.0);
  ASSERT_TRUE(collector.has("x"));
  ASSERT_EQ(collector.series("x").size(), 2u);
  EXPECT_DOUBLE_EQ(collector.series("x")[1].value, 20.0);
  EXPECT_EQ(collector.names(), (std::vector<std::string>{"x", "y"}));
}

TEST(Collector, UnknownSeriesThrows) {
  SeriesCollector collector;
  EXPECT_THROW((void)collector.series("nope"), std::out_of_range);
}

TEST(Collector, Summarize) {
  SeriesCollector collector;
  collector.record("x", 1.0, 2.0);
  collector.record("x", 2.0, 4.0);
  const auto stats = collector.summarize("x");
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.count(), 2u);
}

TEST(Collector, MeanFrom) {
  SeriesCollector collector;
  collector.record("x", 1.0, 100.0);
  collector.record("x", 10.0, 2.0);
  collector.record("x", 11.0, 4.0);
  EXPECT_DOUBLE_EQ(collector.mean_from("x", 10.0), 3.0);
}

TEST(Collector, WritesCsv) {
  SeriesCollector collector;
  collector.record("a", 1.0, 0.5);
  const std::string path = ::testing::TempDir() + "/collector_test.csv";
  collector.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "series,time,value");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "a,");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace continu::metrics
