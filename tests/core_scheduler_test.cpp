// Unit tests for the priority model (eqs. 1-3) and the data scheduling
// algorithms (Algorithm 1 + the CoolStreaming rarest-first baseline).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/priority.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace continu::core {
namespace {

PriorityInputs paper_inputs(SegmentId play_point = 100) {
  PriorityInputs in;
  in.play_point = play_point;
  in.playback_rate = 10;
  in.buffer_capacity = 600;
  in.rarest_weight = 0.0;  // test eq. 3 literally unless stated otherwise
  return in;
}

Candidate make_candidate(SegmentId id, std::vector<SupplierOffer> offers) {
  Candidate c;
  c.id = id;
  c.offers = std::move(offers);
  return c;
}

// ---------------------------------------------------------------------------
// Priority model
// ---------------------------------------------------------------------------

TEST(Priority, SlackMatchesEq1) {
  // t_i = (id_i - id_play)/p - 1/R_i, R_i the best offered rate.
  const auto c = make_candidate(120, {{1, 4.0, 10}, {2, 5.0, 10}});
  const auto in = paper_inputs(100);
  // distance = 20/10 = 2.0 s; best rate 5.0 -> 1/R = 0.2; slack = 1.8.
  EXPECT_NEAR(expected_slack(c, in), 1.8, 1e-12);
}

TEST(Priority, UrgencyIsInverseSlack) {
  const auto c = make_candidate(120, {{1, 5.0, 10}});
  EXPECT_NEAR(urgency(c, paper_inputs(100)), 1.0 / 1.8, 1e-12);
}

TEST(Priority, UrgencyGrowsAsDeadlineNears) {
  const auto in = paper_inputs(100);
  const auto far = make_candidate(200, {{1, 5.0, 10}});
  const auto near = make_candidate(105, {{1, 5.0, 10}});
  EXPECT_GT(urgency(near, in), urgency(far, in));
}

TEST(Priority, UrgencyClampedWhenSlackNonPositive) {
  // Segment just past reach: distance 0.1 s but transfer needs 0.5 s.
  const auto c = make_candidate(101, {{1, 2.0, 10}});
  EXPECT_DOUBLE_EQ(urgency(c, paper_inputs(100)), 100.0);
}

TEST(Priority, UrgencyZeroBeforePlayback) {
  const auto c = make_candidate(120, {{1, 5.0, 10}});
  EXPECT_DOUBLE_EQ(urgency(c, paper_inputs(kInvalidSegment)), 0.0);
}

TEST(Priority, RarityMatchesEq2) {
  // rarity = prod(p_ij / B).
  const auto c = make_candidate(120, {{1, 5.0, 300}, {2, 5.0, 600}});
  // 300/600 * 600/600 = 0.5.
  EXPECT_NEAR(rarity(c, paper_inputs()), 0.5, 1e-12);
}

TEST(Priority, RarityHigherNearEviction) {
  const auto in = paper_inputs();
  const auto fresh = make_candidate(1, {{1, 5.0, 10}});   // far from eviction
  const auto dying = make_candidate(2, {{1, 5.0, 590}});  // about to vanish
  EXPECT_GT(rarity(dying, in), rarity(fresh, in));
}

TEST(Priority, RarityDecreasesWithMoreSuppliers) {
  const auto in = paper_inputs();
  const auto one = make_candidate(1, {{1, 5.0, 300}});
  const auto two = make_candidate(1, {{1, 5.0, 300}, {2, 5.0, 300}});
  EXPECT_GT(rarity(one, in), rarity(two, in));
}

TEST(Priority, PositionsClampToBuffer) {
  const auto in = paper_inputs();
  const auto c = make_candidate(1, {{1, 5.0, 10000}});  // beyond B
  EXPECT_DOUBLE_EQ(rarity(c, in), 1.0);
  const auto z = make_candidate(1, {{1, 5.0, 0}});      // below 1
  EXPECT_NEAR(rarity(z, in), 1.0 / 600.0, 1e-12);
}

TEST(Priority, PriorityIsMaxOfBoth) {
  const auto in = paper_inputs(100);
  // Rare but not urgent.
  const auto rare = make_candidate(500, {{1, 5.0, 599}});
  EXPECT_DOUBLE_EQ(priority(rare, in), rarity(rare, in));
  // Urgent but common.
  const auto urgent_c = make_candidate(102, {{1, 5.0, 10}, {2, 5.0, 10}});
  EXPECT_DOUBLE_EQ(priority(urgent_c, in), urgency(urgent_c, in));
}

TEST(Priority, CompositeIncludesRarestFirstTerm) {
  auto in = paper_inputs(100);
  in.rarest_weight = 0.9;
  // A fresh single-holder segment far from its deadline: urgency and
  // eq. 2 rarity are both tiny, the pipeline term dominates.
  const auto fresh = make_candidate(400, {{1, 5.0, 1}});
  EXPECT_DOUBLE_EQ(priority(fresh, in), 0.9);
  // With more holders the term decays as w/n_i.
  const auto spread = make_candidate(400, {{1, 5.0, 1}, {2, 5.0, 1}, {3, 5.0, 1}});
  EXPECT_NEAR(priority(spread, in), 0.3, 1e-12);
}

TEST(Priority, UrgencyStillDominatesComposite) {
  auto in = paper_inputs(100);
  in.rarest_weight = 0.9;
  // A segment 0.4 s from its deadline outranks any fresh segment.
  const auto urgent_c = make_candidate(104, {{1, 10.0, 10}, {2, 10.0, 10}});
  EXPECT_GT(priority(urgent_c, in), 0.9);
}

TEST(Priority, RarestFirstScore) {
  const auto one = make_candidate(1, {{1, 5.0, 10}});
  const auto three = make_candidate(1, {{1, 5.0, 10}, {2, 5.0, 10}, {3, 5.0, 10}});
  EXPECT_DOUBLE_EQ(rarest_first_score(one), 1.0);
  EXPECT_NEAR(rarest_first_score(three), 1.0 / 3.0, 1e-12);
}

TEST(Priority, EmptyOfferListsRejected) {
  const auto c = make_candidate(1, {});
  EXPECT_THROW((void)rarity(c, paper_inputs()), std::invalid_argument);
  EXPECT_THROW((void)expected_slack(c, paper_inputs()), std::invalid_argument);
  EXPECT_THROW((void)rarest_first_score(c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Algorithm 1 (greedy supplier selection)
// ---------------------------------------------------------------------------

ScheduleRequest simple_request(std::vector<Candidate> candidates,
                               std::size_t budget = 100, double period = 1.0) {
  ScheduleRequest r;
  r.candidates = std::move(candidates);
  r.priority_inputs = paper_inputs(0);
  r.period = period;
  r.inbound_budget = budget;
  return r;
}

TEST(Scheduler, AssignsEverySuppliableSegment) {
  auto request = simple_request({
      make_candidate(10, {{1, 10.0, 100}}),
      make_candidate(11, {{2, 10.0, 100}}),
  });
  const auto result = schedule_continu(request);
  EXPECT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.unassigned, 0u);
}

TEST(Scheduler, RespectsInboundBudget) {
  std::vector<Candidate> candidates;
  for (SegmentId id = 10; id < 30; ++id) {
    candidates.push_back(make_candidate(id, {{1, 100.0, 100}}));
  }
  auto request = simple_request(std::move(candidates), /*budget=*/5);
  const auto result = schedule_continu(request);
  EXPECT_EQ(result.assignments.size(), 5u);
  EXPECT_EQ(result.unassigned, 15u);
}

TEST(Scheduler, QueueTimeAccumulatesPerSupplier) {
  // One supplier at rate 4/s: each transfer costs 0.25 s of its queue.
  std::vector<Candidate> candidates;
  for (SegmentId id = 10; id < 16; ++id) {
    candidates.push_back(make_candidate(id, {{1, 4.0, 100}}));
  }
  auto request = simple_request(std::move(candidates));
  const auto result = schedule_continu(request);
  // Only 3 fit within the 1 s period (0.25, 0.5, 0.75; the 4th would
  // finish exactly at 1.0 which violates the strict < of line 7).
  EXPECT_EQ(result.assignments.size(), 3u);
  std::vector<double> times;
  for (const auto& a : result.assignments) times.push_back(a.expected_time);
  std::sort(times.begin(), times.end());
  EXPECT_NEAR(times[0], 0.25, 1e-12);
  EXPECT_NEAR(times[1], 0.50, 1e-12);
  EXPECT_NEAR(times[2], 0.75, 1e-12);
}

TEST(Scheduler, SpillsToSecondSupplierUnderLoad) {
  // Two suppliers; greedy should interleave once the first queues up.
  std::vector<Candidate> candidates;
  for (SegmentId id = 10; id < 18; ++id) {
    candidates.push_back(make_candidate(id, {{1, 4.0, 100}, {2, 4.0, 100}}));
  }
  auto request = simple_request(std::move(candidates));
  const auto result = schedule_continu(request);
  EXPECT_EQ(result.assignments.size(), 6u);  // 3 per supplier fit < 1 s
  std::map<NodeId, int> per_supplier;
  for (const auto& a : result.assignments) ++per_supplier[a.supplier];
  EXPECT_EQ(per_supplier[1], 3);
  EXPECT_EQ(per_supplier[2], 3);
}

TEST(Scheduler, PrefersFasterSupplier) {
  auto request = simple_request({
      make_candidate(10, {{1, 2.0, 100}, {2, 20.0, 100}}),
  });
  const auto result = schedule_continu(request);
  ASSERT_EQ(result.assignments.size(), 1u);
  EXPECT_EQ(result.assignments[0].supplier, 2u);
  EXPECT_NEAR(result.assignments[0].expected_time, 0.05, 1e-12);
}

TEST(Scheduler, SkipsTransfersSlowerThanPeriod) {
  // Rate 0.5/s: a single transfer takes 2 s > tau = 1 s.
  auto request = simple_request({make_candidate(10, {{1, 0.5, 100}})});
  const auto result = schedule_continu(request);
  EXPECT_TRUE(result.assignments.empty());
  EXPECT_EQ(result.unassigned, 1u);
}

TEST(Scheduler, ZeroRateOffersIgnored) {
  auto request = simple_request({make_candidate(10, {{1, 0.0, 100}})});
  const auto result = schedule_continu(request);
  EXPECT_TRUE(result.assignments.empty());
}

TEST(Scheduler, HighPriorityScheduledFirst) {
  // The urgent segment must win the fast supplier's front queue slot.
  // Supplier 1 is shared; segment 11 is much closer to its deadline.
  auto request = simple_request({
      make_candidate(500, {{1, 4.0, 10}}),
      make_candidate(11, {{1, 4.0, 10}}),
  });
  request.priority_inputs = paper_inputs(10);
  const auto result = schedule_continu(request);
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.assignments[0].segment, 11);
  EXPECT_LT(result.assignments[0].expected_time, result.assignments[1].expected_time);
}

TEST(Scheduler, NoDoubleAssignment) {
  std::vector<Candidate> candidates;
  for (SegmentId id = 0; id < 50; ++id) {
    candidates.push_back(make_candidate(id, {{1, 30.0, 100}, {2, 30.0, 100}}));
  }
  auto request = simple_request(std::move(candidates));
  const auto result = schedule_continu(request);
  std::set<SegmentId> seen;
  for (const auto& a : result.assignments) {
    EXPECT_TRUE(seen.insert(a.segment).second) << "segment assigned twice";
  }
}

TEST(Scheduler, CoolStreamingPicksRarest) {
  // Segment 20 has one supplier, 10 has three: rarest-first must take
  // 20 first even though 10 is earlier.
  auto request = simple_request({
      make_candidate(10, {{1, 10.0, 10}, {2, 10.0, 10}, {3, 10.0, 10}}),
      make_candidate(20, {{1, 10.0, 10}}),
  });
  const auto result = schedule_coolstreaming(request);
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.assignments[0].segment, 20);
}

TEST(Scheduler, CoolStreamingTieBreaksByEarlierId) {
  auto request = simple_request({
      make_candidate(30, {{1, 10.0, 10}}),
      make_candidate(20, {{2, 10.0, 10}}),
  });
  const auto result = schedule_coolstreaming(request);
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.assignments[0].segment, 20);
}

TEST(Scheduler, EmptyRequestYieldsEmptyResult) {
  auto request = simple_request({});
  const auto result = schedule_continu(request);
  EXPECT_TRUE(result.assignments.empty());
  EXPECT_EQ(result.unassigned, 0u);
}

TEST(Scheduler, ZeroBudgetAssignsNothing) {
  auto request = simple_request({make_candidate(10, {{1, 10.0, 100}})}, /*budget=*/0);
  const auto result = schedule_continu(request);
  EXPECT_TRUE(result.assignments.empty());
  EXPECT_EQ(result.unassigned, 1u);
}

// Property sweep: across random instances, both schedulers satisfy the
// structural invariants of Algorithm 1.
class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, InvariantsHoldOnRandomInstances) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n_candidates = 1 + rng.next_below(60);
    const std::size_t n_suppliers = 1 + rng.next_below(5);
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < n_candidates; ++i) {
      Candidate c;
      c.id = 100 + static_cast<SegmentId>(i);
      for (std::size_t s = 0; s < n_suppliers; ++s) {
        if (rng.next_bool(0.6)) {
          c.offers.push_back(SupplierOffer{static_cast<NodeId>(s + 1),
                                           rng.next_range(0.5, 30.0),
                                           1 + rng.next_below(600)});
        }
      }
      if (!c.offers.empty()) candidates.push_back(std::move(c));
    }
    ScheduleRequest request;
    request.candidates = std::move(candidates);
    request.priority_inputs = paper_inputs(90);
    request.period = 1.0;
    request.inbound_budget = 1 + rng.next_below(20);

    for (const bool continu : {true, false}) {
      const auto result =
          continu ? schedule_continu(request) : schedule_coolstreaming(request);
      // Invariant 1: budget respected.
      EXPECT_LE(result.assignments.size(), request.inbound_budget);
      // Invariant 2: unique segments.
      std::set<SegmentId> seen;
      // Invariant 3: per-supplier completion times fit in the period
      // and are consistent with cumulative queueing.
      std::map<NodeId, double> queue_time;
      for (const auto& a : result.assignments) {
        EXPECT_TRUE(seen.insert(a.segment).second);
        EXPECT_LT(a.expected_time, request.period);
        EXPECT_GT(a.expected_time, queue_time[a.supplier]);
        queue_time[a.supplier] = a.expected_time;
      }
      // Invariant 4: assignments + unassigned == candidates considered.
      EXPECT_EQ(result.assignments.size() + result.unassigned,
                request.candidates.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace continu::core
