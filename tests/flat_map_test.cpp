// Property and regression tests for the open-addressed flat containers
// (util/flat_map.hpp) that back the per-node hot-path bookkeeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace continu::util {
namespace {

// ---------------------------------------------------------------------------
// FlatMap basics
// ---------------------------------------------------------------------------

TEST(FlatMap, StartsEmptyWithoutHeap) {
  FlatMap<std::int64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);
  EXPECT_EQ(map.approx_bytes(), 0u);
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.count(7), 0u);
  EXPECT_EQ(map.erase(7), 0u);
}

TEST(FlatMap, TryEmplaceInsertsOnce) {
  FlatMap<std::int64_t, int> map;
  auto [it, inserted] = map.try_emplace(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 5);
  EXPECT_EQ(it->second, 50);

  auto [it2, inserted2] = map.try_emplace(5, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 50) << "try_emplace must not overwrite";
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SubscriptDefaultConstructsAndAssigns) {
  FlatMap<std::int64_t, int> map;
  EXPECT_EQ(map[3], 0);
  map[3] = 42;
  EXPECT_EQ(map[3], 42);
  map[4] += 7;
  EXPECT_EQ(map.at(4), 7);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, InsertOrAssignOverwrites) {
  FlatMap<std::int64_t, std::string> map;
  map.insert_or_assign(1, std::string("a"));
  map.insert_or_assign(1, std::string("b"));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at(1), "b");
}

TEST(FlatMap, EraseByKeyAndBackwardShiftKeepsLookupsWorking) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 100; ++k) map.try_emplace(k, static_cast<int>(k));
  for (std::int64_t k = 0; k < 100; k += 2) EXPECT_EQ(map.erase(k), 1u);
  EXPECT_EQ(map.size(), 50u);
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(map.count(k), (k % 2 == 0) ? 0u : 1u) << k;
    if (k % 2 == 1) {
      EXPECT_EQ(map.at(k), static_cast<int>(k));
    }
  }
}

TEST(FlatMap, NonTrivialValuesSurviveGrowthAndErase) {
  FlatMap<std::uint32_t, std::vector<std::int64_t>> map;
  for (std::uint32_t k = 0; k < 64; ++k) {
    map[k].push_back(static_cast<std::int64_t>(k) * 10);
    map[k].push_back(static_cast<std::int64_t>(k) * 10 + 1);
  }
  for (std::uint32_t k = 0; k < 64; k += 3) map.erase(k);
  for (std::uint32_t k = 0; k < 64; ++k) {
    if (k % 3 == 0) {
      EXPECT_FALSE(map.contains(k));
    } else {
      ASSERT_EQ(map.at(k).size(), 2u) << k;
      EXPECT_EQ(map.at(k)[1], static_cast<std::int64_t>(k) * 10 + 1);
    }
  }
}

TEST(FlatMap, CopyAndMoveSemantics) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 20; ++k) map.try_emplace(k, static_cast<int>(k * 2));

  FlatMap<std::int64_t, int> copy(map);
  EXPECT_EQ(copy.size(), 20u);
  copy.erase(3);
  EXPECT_TRUE(map.contains(3)) << "copies must be independent";

  FlatMap<std::int64_t, int> moved(std::move(copy));
  EXPECT_EQ(moved.size(), 19u);
  EXPECT_EQ(copy.size(), 0u);  // NOLINT(bugprone-use-after-move): spec check

  map = moved;  // copy assign
  EXPECT_FALSE(map.contains(3));
  map = FlatMap<std::int64_t, int>();  // move assign empties
  EXPECT_TRUE(map.empty());
}

// ---------------------------------------------------------------------------
// Randomized property test against a std::unordered_map reference model
// ---------------------------------------------------------------------------

TEST(FlatMapProperty, MatchesUnorderedMapReferenceModel) {
  // >= 100 independent trials of mixed insert/erase/find/iterate
  // against the reference model, with a key universe small enough to
  // force frequent collisions, duplicate inserts and misses.
  constexpr int kTrials = 120;
  constexpr int kOpsPerTrial = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x9e3779b9u + static_cast<std::uint64_t>(trial));
    FlatMap<std::int64_t, std::uint64_t> map;
    std::unordered_map<std::int64_t, std::uint64_t> ref;
    const std::int64_t universe = 16 + static_cast<std::int64_t>(rng.next_below(64));

    for (int op = 0; op < kOpsPerTrial; ++op) {
      const auto key = static_cast<std::int64_t>(rng.next_below(
          static_cast<std::uint64_t>(universe)));
      switch (rng.next_below(5)) {
        case 0:
        case 1: {  // insert
          const std::uint64_t value = rng.next_u64();
          const bool inserted = map.try_emplace(key, value).second;
          const bool ref_inserted = ref.try_emplace(key, value).second;
          ASSERT_EQ(inserted, ref_inserted);
          break;
        }
        case 2: {  // erase
          ASSERT_EQ(map.erase(key), ref.erase(key));
          break;
        }
        case 3: {  // find
          const auto it = map.find(key);
          const auto rit = ref.find(key);
          ASSERT_EQ(it != map.end(), rit != ref.end());
          if (rit != ref.end()) {
            ASSERT_EQ(it->second, rit->second);
          }
          break;
        }
        default: {  // mutate through operator[]
          map[key] += 1;
          ref[key] += 1;
          break;
        }
      }
      ASSERT_EQ(map.size(), ref.size());
    }

    // Full iteration agreement: same key set, same values.
    std::vector<std::pair<std::int64_t, std::uint64_t>> flat(map.begin(), map.end());
    ASSERT_EQ(flat.size(), ref.size());
    for (const auto& [key, value] : flat) {
      const auto rit = ref.find(key);
      ASSERT_NE(rit, ref.end()) << "flat map holds a key the model lacks";
      ASSERT_EQ(value, rit->second);
    }
  }
}

TEST(FlatSetProperty, MatchesUnorderedSetReferenceModel) {
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xabcdef + static_cast<std::uint64_t>(trial));
    FlatSet<std::int64_t> set;
    std::unordered_set<std::int64_t> ref;
    for (int op = 0; op < 300; ++op) {
      const auto key = static_cast<std::int64_t>(rng.next_below(80));
      if (rng.next_bool(0.6)) {
        ASSERT_EQ(set.insert(key).second, ref.insert(key).second);
      } else {
        ASSERT_EQ(set.erase(key), ref.erase(key));
      }
      ASSERT_EQ(set.size(), ref.size());
      ASSERT_EQ(set.contains(key), ref.count(key) != 0);
    }
    std::vector<std::int64_t> contents(set.begin(), set.end());
    ASSERT_EQ(contents.size(), ref.size());
    for (const auto key : contents) ASSERT_TRUE(ref.count(key) != 0);
  }
}

// ---------------------------------------------------------------------------
// Erase-during-iteration regression
// ---------------------------------------------------------------------------

TEST(FlatMap, EraseDuringIterationDropsExactlyThePredicate) {
  // The contract: `it = map.erase(it)` never skips a live element; an
  // element displaced across the wrap point may be revisited, so the
  // predicate must be idempotent. Verify over many random tables that
  // an expire-style sweep removes exactly the matching keys.
  for (int trial = 0; trial < 100; ++trial) {
    Rng rng(7777 + static_cast<std::uint64_t>(trial));
    FlatMap<std::int64_t, int> map;
    std::unordered_map<std::int64_t, int> ref;
    const int n = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < n; ++i) {
      const auto key = static_cast<std::int64_t>(rng.next_u64() % 1000);
      map.try_emplace(key, static_cast<int>(key));
      ref.try_emplace(key, static_cast<int>(key));
    }
    const std::int64_t horizon = static_cast<std::int64_t>(rng.next_below(1000));

    for (auto it = map.begin(); it != map.end();) {
      if (it->first < horizon) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }

    std::size_t expected = 0;
    for (const auto& [key, value] : ref) {
      if (key >= horizon) {
        ++expected;
        ASSERT_TRUE(map.contains(key)) << "survivor lost (key " << key << ")";
        ASSERT_EQ(map.at(key), value);
      } else {
        ASSERT_FALSE(map.contains(key)) << "expired key survived: " << key;
      }
    }
    ASSERT_EQ(map.size(), expected);
  }
}

TEST(FlatMap, EraseReturnsIteratorCoveringShiftedElement) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 40; ++k) map.try_emplace(k, 1);
  // Erase everything via the iterator protocol; every element must be
  // seen (revisits are fine, the erase makes the predicate idempotent).
  std::size_t erased = 0;
  for (auto it = map.begin(); it != map.end();) {
    it = map.erase(it);
    ++erased;
  }
  EXPECT_EQ(erased, 40u);
  EXPECT_TRUE(map.empty());
}

// ---------------------------------------------------------------------------
// Deterministic iteration / capacity growth regressions
// ---------------------------------------------------------------------------

TEST(FlatMap, IterationOrderIsAFunctionOfOperationHistory) {
  // Two tables fed the identical operation sequence must iterate
  // identically — this is what keeps scenario fingerprints
  // thread-invariant when per-node tables feed event emission order.
  for (int trial = 0; trial < 20; ++trial) {
    FlatMap<std::uint32_t, int> a;
    FlatMap<std::uint32_t, int> b;
    Rng rng_a(42 + static_cast<std::uint64_t>(trial));
    Rng rng_b(42 + static_cast<std::uint64_t>(trial));
    auto drive = [](FlatMap<std::uint32_t, int>& map, Rng& rng) {
      for (int op = 0; op < 500; ++op) {
        const auto key = static_cast<std::uint32_t>(rng.next_below(128));
        if (rng.next_bool(0.7)) {
          map.try_emplace(key, op);
        } else {
          map.erase(key);
        }
      }
    };
    drive(a, rng_a);
    drive(b, rng_b);
    ASSERT_EQ(a.size(), b.size());
    std::vector<std::pair<std::uint32_t, int>> order_a(a.begin(), a.end());
    std::vector<std::pair<std::uint32_t, int>> order_b(b.begin(), b.end());
    ASSERT_EQ(order_a, order_b);
  }
}

TEST(FlatMap, GrowthKeepsPowerOfTwoCapacityAndSevenEighthsLoad) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 10000; ++k) {
    map.try_emplace(k, 0);
    const std::size_t cap = map.capacity();
    ASSERT_NE(cap, 0u);
    ASSERT_EQ(cap & (cap - 1), 0u) << "capacity must stay a power of two";
    ASSERT_LE(map.size() * 8, cap * 7) << "load factor above 7/8";
  }
  EXPECT_EQ(map.size(), 10000u);
  for (std::int64_t k = 0; k < 10000; ++k) ASSERT_TRUE(map.contains(k));
}

TEST(FlatMap, MaybeShrinkReturnsBurstCapacity) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 1000; ++k) map.try_emplace(k, 0);
  const std::size_t burst_cap = map.capacity();
  for (std::int64_t k = 0; k < 990; ++k) map.erase(k);
  map.maybe_shrink();
  EXPECT_LT(map.capacity(), burst_cap);
  for (std::int64_t k = 990; k < 1000; ++k) {
    EXPECT_TRUE(map.contains(k)) << "shrink lost key " << k;
  }
  // Draining entirely releases the heap.
  for (std::int64_t k = 990; k < 1000; ++k) map.erase(k);
  map.maybe_shrink();
  EXPECT_EQ(map.capacity(), 0u);
  EXPECT_EQ(map.approx_bytes(), 0u);
  // And the table is still usable afterwards.
  map.try_emplace(1, 2);
  EXPECT_EQ(map.at(1), 2);
}

TEST(FlatMap, ShrinkDoesNotThrashSteadyState) {
  FlatMap<std::int64_t, int> map;
  for (std::int64_t k = 0; k < 12; ++k) map.try_emplace(k, 0);
  const std::size_t cap = map.capacity();
  map.maybe_shrink();  // 12 of 16: above the 1/4 threshold
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMap, ApproxBytesChargesCapacity) {
  FlatMap<std::int64_t, double> map;
  map.try_emplace(1, 1.0);
  const std::size_t slot = sizeof(std::pair<std::int64_t, double>) + 1;
  EXPECT_EQ(map.approx_bytes(), map.capacity() * slot);
}

TEST(FlatMap, ReserveAvoidsLaterGrowth) {
  FlatMap<std::int64_t, int> map;
  map.reserve(100);
  const std::size_t cap = map.capacity();
  ASSERT_GE(cap * 7, 100u * 8);
  for (std::int64_t k = 0; k < 100; ++k) map.try_emplace(k, 0);
  EXPECT_EQ(map.capacity(), cap);
}

}  // namespace
}  // namespace continu::util
