// Tests for the sharded event-queue engine: MetaHeap ordering, the
// randomized single-queue vs sharded-queue equivalence property
// (schedule/cancel/cross-shard storms), frontier edge cases (empty
// shard, simultaneous ties, cancel of a frontier event), delivery-lane
// hand-offs, and session-level byte-identity of the sharded engine
// against the single-queue oracle at threads 1/2/4/8.
//
// Lax mode (bounded-skew windows, queue_skew_buckets >= 1) has its own
// suite at the bottom: fence correctness (no event beyond the skew
// window, emissions invisible to their own window), cancel semantics
// under skew, inline-vs-threaded collection identity, randomized
// bounded-skew storms, per-receiver FIFO under skew, and session-level
// gates (skew-0 == strict byte-identity, fixed-skew thread-invariance
// at threads {1,2,4,8} x skew {1,4}).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"
#include "sim/parallel/executor.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace continu {
namespace {

using sim::EventQueue;
using sim::MetaHeap;
using sim::ShardedEventQueue;

// ---------------------------------------------------------------------------
// MetaHeap
// ---------------------------------------------------------------------------

TEST(MetaHeap, OrdersByTimeThenKey) {
  MetaHeap heap(4);
  EXPECT_TRUE(heap.empty());
  heap.update(0, 5.0, 10);
  heap.update(1, 3.0, 20);
  heap.update(2, 3.0, 7);
  heap.update(3, 9.0, 1);
  ASSERT_FALSE(heap.empty());
  EXPECT_EQ(heap.top().slot, 2u);  // earliest time, then smallest key
  heap.clear(2);
  EXPECT_EQ(heap.top().slot, 1u);
  heap.clear(1);
  EXPECT_EQ(heap.top().slot, 0u);
}

TEST(MetaHeap, UpdateRepositionsBothDirections) {
  MetaHeap heap(3);
  heap.update(0, 1.0, 1);
  heap.update(1, 2.0, 2);
  heap.update(2, 3.0, 3);
  heap.update(0, 10.0, 4);  // head moves later
  EXPECT_EQ(heap.top().slot, 1u);
  heap.update(2, 0.5, 5);  // tail moves earliest
  EXPECT_EQ(heap.top().slot, 2u);
  heap.update(2, 0.5, 5);  // no-op update keeps the heap consistent
  EXPECT_EQ(heap.top().slot, 2u);
  heap.clear(2);
  heap.clear(1);
  heap.clear(0);
  EXPECT_TRUE(heap.empty());
  heap.clear(0);  // clearing an absent slot is a no-op
  EXPECT_TRUE(heap.empty());
}

// ---------------------------------------------------------------------------
// Randomized single-queue vs sharded-queue equivalence
// ---------------------------------------------------------------------------

// Drives one simulator through a deterministic schedule/cancel storm:
// root events at random (often colliding) times, children scheduled
// from inside handlers (cross-shard by construction — sequences spread
// round-robin), random cancels of still-pending handles, plus deferred
// batches. The execution log (time, token) is the equivalence witness.
struct Storm {
  sim::Simulator& sim;
  util::Rng rng;
  std::vector<sim::EventId> handles;
  std::vector<std::pair<double, int>> log;
  int next_token = 0;

  explicit Storm(sim::Simulator& s, std::uint64_t seed) : sim(s), rng(seed) {}

  void fire(int token) {
    log.emplace_back(sim.now(), token);
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 35) {
      // Child event, possibly at the SAME instant (tie across shards).
      const double dt = (roll < 10) ? 0.0 : 0.25 * static_cast<double>(rng.next_below(8));
      schedule(sim.now() + dt);
    }
    if (roll >= 90 && !handles.empty()) {
      // Cancel a random pending-or-stale handle; cancelling a fired id
      // must be a harmless no-op on both engines.
      (void)sim.cancel(handles[rng.next_below(handles.size())]);
    }
  }

  void schedule(double when) {
    const int token = next_token++;
    Storm* self = this;
    handles.push_back(sim.schedule_at(when, [self, token] { self->fire(token); }));
  }
};

TEST(ShardedQueueEquivalence, RandomStormsMatchSingleQueue) {
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    sim::Simulator single;
    sim::Simulator sharded(4 + static_cast<unsigned>(trial % 3));  // 4..6 -> 4/8
    auto run = [&](sim::Simulator& sim) {
      Storm storm(sim, 1000 + trial);
      for (int i = 0; i < 40; ++i) {
        storm.schedule(0.5 * static_cast<double>(storm.rng.next_below(20)));
      }
      sim.run_until(64.0);
      return std::move(storm.log);
    };
    const auto log_single = run(single);
    const auto log_sharded = run(sharded);
    ASSERT_EQ(log_single, log_sharded) << "trial " << trial;
    EXPECT_EQ(single.executed(), sharded.executed()) << "trial " << trial;
    EXPECT_EQ(single.now(), sharded.now()) << "trial " << trial;
  }
}

TEST(ShardedQueueEquivalence, DeferredBatchesMatchSingleQueue) {
  sim::Simulator single;
  sim::Simulator sharded(8);
  auto run = [](sim::Simulator& sim) {
    std::vector<std::pair<double, int>> log;
    std::vector<EventQueue::Deferred> batch;
    for (int i = 0; i < 32; ++i) {
      EventQueue::Deferred d;
      d.time = (i % 5) * 1.0;  // heavy ties
      const int token = i;
      auto* logp = &log;
      sim::Simulator* simp = &sim;
      d.action = sim::EventAction(
          [logp, simp, token] { logp->emplace_back(simp->now(), token); });
      batch.push_back(std::move(d));
    }
    sim.schedule_deferred(batch);
    EXPECT_TRUE(batch.empty());
    sim.run_all();
    return log;
  };
  EXPECT_EQ(run(single), run(sharded));
}

// ---------------------------------------------------------------------------
// Frontier edge cases
// ---------------------------------------------------------------------------

TEST(ShardedQueueFrontier, SimultaneousTiesDrainInScheduleOrder) {
  ShardedEventQueue queue(4);
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    auto* firedp = &fired;
    const int token = i;
    (void)queue.push(1.0, sim::EventAction([firedp, token] {
                       firedp->push_back(token);
                     }));
  }
  ShardedEventQueue::DueEvent due;
  while (queue.acquire_due(2.0, due)) queue.execute_and_release(due);
  ASSERT_EQ(fired.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fired[i], i);
  // One frontier instant, sampled once; every shard held work there.
  EXPECT_EQ(queue.frontier_advances(), 1u);
  EXPECT_EQ(queue.frontier_stalled_shards(), 0u);
}

TEST(ShardedQueueFrontier, CancelOfFrontierEventAdvancesMeta) {
  ShardedEventQueue queue(4);
  std::vector<int> fired;
  auto push_at = [&](double when, int token) {
    auto* firedp = &fired;
    return queue.push(when, sim::EventAction([firedp, token] {
                        firedp->push_back(token);
                      }));
  };
  const sim::EventId head = push_at(1.0, 0);
  (void)push_at(2.0, 1);
  (void)push_at(3.0, 2);
  SimTime t = 0.0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(queue.peek(t, seq));
  EXPECT_EQ(t, 1.0);
  EXPECT_TRUE(queue.cancel(head));
  EXPECT_FALSE(queue.cancel(head));  // second cancel is stale
  ASSERT_TRUE(queue.peek(t, seq));
  EXPECT_EQ(t, 2.0);  // the meta-heap advanced past the cancelled head
  ShardedEventQueue::DueEvent due;
  while (queue.acquire_due(10.0, due)) queue.execute_and_release(due);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_TRUE(queue.empty());
}

TEST(ShardedQueueFrontier, EmptyShardNeverBlocksTheDrain) {
  // Two shards; sequences alternate 1,2,3,4 -> shards 1,0,1,0. Cancel
  // everything on shard 0 so it sits empty while shard 1 drains.
  ShardedEventQueue queue(2);
  std::vector<int> fired;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 4; ++i) {
    auto* firedp = &fired;
    const int token = i;
    ids.push_back(queue.push(1.0 + i, sim::EventAction([firedp, token] {
                               firedp->push_back(token);
                             })));
  }
  EXPECT_TRUE(queue.cancel(ids[1]));
  EXPECT_TRUE(queue.cancel(ids[3]));
  EXPECT_EQ(queue.size(), 2u);
  ShardedEventQueue::DueEvent due;
  while (queue.acquire_due(10.0, due)) queue.execute_and_release(due);
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
  // Both surviving events sat on one shard: the other shard stalled at
  // each of the two frontier instants.
  EXPECT_EQ(queue.frontier_advances(), 2u);
  EXPECT_EQ(queue.frontier_stalled_shards(), 2u);
}

TEST(ShardedQueueFrontier, AllocateSeqInterleavesWithoutDisturbingOrder) {
  ShardedEventQueue queue(4);
  std::vector<int> fired;
  auto push_tok = [&](double when, int token) {
    auto* firedp = &fired;
    (void)queue.push(when, sim::EventAction([firedp, token] {
                       firedp->push_back(token);
                     }));
  };
  push_tok(1.0, 0);
  const std::uint64_t s1 = queue.allocate_seq();
  const std::uint64_t s2 = queue.allocate_seq();
  EXPECT_EQ(s2, s1 + 1);
  push_tok(1.0, 1);  // same instant, later sequence — still FIFO
  push_tok(0.5, 2);
  ShardedEventQueue::DueEvent due;
  while (queue.acquire_due(10.0, due)) queue.execute_and_release(due);
  EXPECT_EQ(fired, (std::vector<int>{2, 0, 1}));
}

// ---------------------------------------------------------------------------
// Delivery-lane hand-offs (quantized mode on the sharded engine)
// ---------------------------------------------------------------------------

TEST(ShardedHandoff, LanedNetworkMatchesBucketedNetwork) {
  // Two simulators, one per engine, each with a quantized Network; the
  // same send_sharded workload must deliver in the same order with the
  // same counters. No executor: the inline fallback shares the shard
  // decomposition, so the comparison is exact.
  auto run = [](unsigned queue_shards) {
    auto sim = queue_shards > 0 ? std::make_unique<sim::Simulator>(queue_shards)
                                : std::make_unique<sim::Simulator>();
    net::Network net(*sim, net::LatencyModel({10.0, 20.0, 30.0, 40.0}, 5.0,
                                             /*grid_ms=*/2.0));
    EXPECT_EQ(net.laned(), queue_shards > 0);
    std::vector<std::pair<double, int>> log;
    auto* logp = &log;
    for (int wave = 0; wave < 5; ++wave) {
      for (std::uint32_t to = 0; to < 4; ++to) {
        const int token = wave * 4 + static_cast<int>(to);
        sim::Simulator* simp = sim.get();
        net.send_sharded(/*from=*/0, to, net::MessageType::kBufferMap,
                         /*bits=*/100,
                         [logp, simp, token](net::DeliveryContext&) {
                           logp->emplace_back(simp->now(), token);
                         },
                         /*extra_delay=*/0.01 * wave);
      }
    }
    sim->run_until(10.0);
    return std::make_tuple(std::move(log), net.delivery_batches(),
                           net.batched_deliveries(), sim->executed());
  };
  const auto bucketed = run(0);
  const auto laned = run(4);
  EXPECT_EQ(std::get<0>(bucketed), std::get<0>(laned));
  EXPECT_EQ(std::get<1>(bucketed), std::get<1>(laned));
  EXPECT_EQ(std::get<2>(bucketed), std::get<2>(laned));
  EXPECT_EQ(std::get<3>(bucketed), std::get<3>(laned));
}

TEST(ShardedHandoff, FrontierCountersTrackBarriers) {
  sim::Simulator sim(4);
  net::Network net(sim, net::LatencyModel({10.0, 20.0}, 5.0, /*grid_ms=*/1.0));
  ASSERT_TRUE(net.laned());
  int delivered = 0;
  auto* dp = &delivered;
  net.send_sharded(0, 1, net::MessageType::kBufferMap, 64,
                   [dp](net::DeliveryContext&) { ++*dp; });
  net.send_sharded(1, 0, net::MessageType::kBufferMap, 64,
                   [dp](net::DeliveryContext&) { ++*dp; });
  sim.run_until(1.0);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.frontier_barriers(), net.delivery_batches());
  EXPECT_GT(net.frontier_barriers(), 0u);
  // 4 lanes, and each barrier drained one receiver's lane — the other
  // lanes count as stalled.
  EXPECT_GT(net.frontier_stalled_lanes(), 0u);
}

// ---------------------------------------------------------------------------
// Session-level byte-identity: sharded engine vs single-queue oracle
// ---------------------------------------------------------------------------

std::uint64_t session_fingerprint(const trace::TraceSnapshot& snapshot,
                                  unsigned threads, bool churn, double grid_ms,
                                  bool sharded_queue, unsigned queue_skew = 0) {
  core::SystemConfig config;
  config.seed = 42;
  config.expected_nodes = 200;
  config.threads = threads;
  config.churn_enabled = churn;
  config.latency_grid_ms = grid_ms;
  config.sharded_queue = sharded_queue;
  config.queue_skew_buckets = queue_skew;
  runner::ReplicationSpec spec;
  spec.config = config;
  spec.snapshot = std::make_shared<const trace::TraceSnapshot>(snapshot);
  spec.duration = 25.0;
  spec.stable_from = 15.0;
  return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
}

TEST(ShardedQueueSessions, BitIdenticalToSingleQueueAcrossThreadCounts) {
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);

  // Continuous AND quantized, static AND churn: the reference is the
  // single-queue engine at threads 1; the sharded engine must match it
  // bit for bit at every width.
  for (const double grid_ms : {0.0, 1.0}) {
    for (const bool churn : {false, true}) {
      const std::uint64_t reference =
          session_fingerprint(snapshot, 1, churn, grid_ms, false);
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        EXPECT_EQ(session_fingerprint(snapshot, threads, churn, grid_ms, true),
                  reference)
            << "threads " << threads << " churn " << churn << " grid "
            << grid_ms;
      }
    }
  }
}

TEST(ShardedQueueSessions, FaultedScenarioMatchesOracle) {
  // Fault injection + retry hardening + quantized lanes together: the
  // f5_q1 family member exercises send-boundary loss classification on
  // the laned hand-off path.
  const auto scenario = runner::find_scenario("f5_q1_static_small");
  ASSERT_TRUE(scenario.has_value());
  auto fingerprint = [&](unsigned threads, bool sharded_queue) {
    auto spec = runner::spec_for(*scenario, 42);
    spec.config.threads = threads;
    spec.config.sharded_queue = sharded_queue;
    return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
  };
  const std::uint64_t reference = fingerprint(1, false);
  EXPECT_EQ(fingerprint(1, true), reference);
  EXPECT_EQ(fingerprint(4, true), reference);
}

TEST(ShardedQueueSessions, ShardCountIsPurelyAPerformanceKnob) {
  // The frontier walk restores global order for ANY shard count, so
  // 2/8/32 shards all reproduce the oracle fingerprint.
  trace::GeneratorConfig tc;
  tc.node_count = 120;
  tc.seed = 9;
  const auto snapshot = trace::generate_snapshot(tc);
  auto fingerprint = [&](bool sharded, unsigned shards) {
    core::SystemConfig config;
    config.seed = 7;
    config.expected_nodes = 120;
    config.threads = 2;
    config.latency_grid_ms = 1.0;
    config.sharded_queue = sharded;
    config.sharded_queue_shards = shards;
    runner::ReplicationSpec spec;
    spec.config = config;
    spec.snapshot = std::make_shared<const trace::TraceSnapshot>(snapshot);
    spec.duration = 15.0;
    spec.stable_from = 10.0;
    return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
  };
  const std::uint64_t reference = fingerprint(false, 8);
  for (const unsigned shards : {2u, 8u, 32u}) {
    EXPECT_EQ(fingerprint(true, shards), reference) << "shards " << shards;
  }
}

// ---------------------------------------------------------------------------
// Lax mode: bounded-skew windows (queue_skew_buckets >= 1)
// ---------------------------------------------------------------------------

void enable_lax(sim::Simulator& sim, unsigned skew, double grid_s,
                sim::parallel::ParallelExecutor* exec = nullptr) {
  sim::Simulator::LaxConfig lax;
  lax.skew_buckets = skew;
  lax.grid_s = grid_s;
  lax.exec = exec;
  sim.set_lax_drain(std::move(lax));
}

TEST(LaxDrain, RequiresShardedEngineAndPositiveGrid) {
  sim::Simulator single;
  sim::Simulator sharded(4);
  sim::Simulator::LaxConfig bad;
  bad.skew_buckets = 1;
  bad.grid_s = 1.0;
  EXPECT_THROW(single.set_lax_drain(bad), std::logic_error);
  bad.grid_s = 0.0;
  EXPECT_THROW(sharded.set_lax_drain(bad), std::logic_error);
  bad.skew_buckets = 0;
  bad.grid_s = 1.0;
  EXPECT_THROW(sharded.set_lax_drain(bad), std::logic_error);
  EXPECT_FALSE(sharded.lax());
}

TEST(LaxDrain, WindowsFenceEmissionsAndBoundTheClock) {
  // skew 2 x grid 1.0 => window width 2.0. Four roots spread across
  // shards (seq 1..4 -> shards 1,2,3,0), one child emitted mid-window.
  sim::Simulator sim(4);
  enable_lax(sim, /*skew=*/2, /*grid_s=*/1.0);
  ASSERT_TRUE(sim.lax());
  std::vector<std::pair<double, int>> log;
  auto fire = [&](int token) { log.emplace_back(sim.now(), token); };
  sim.schedule_at(0.0, [&] {
    fire(0);
    // Emitted DURING window [0, 2]: collection already happened, so
    // this fences to the next window even though 1.0 <= limit.
    sim.schedule_at(1.0, [&] { fire(4); });
  });
  sim.schedule_at(1.5, [&] { fire(1); });
  sim.schedule_at(2.5, [&] { fire(2); });
  sim.schedule_at(5.0, [&] { fire(3); });
  sim.run_until(10.0);

  // Window 1 [0,2]: tok0 then tok1 (shard order). Window 2 anchors at
  // the fenced child [1,3]: tok4 (clock steps BACK 1.5 -> 1.0, within
  // the skew bound) then tok2. Window 3 [5,7]: tok3.
  const std::vector<std::pair<double, int>> expected = {
      {0.0, 0}, {1.5, 1}, {1.0, 4}, {2.5, 2}, {5.0, 3}};
  EXPECT_EQ(log, expected);

  // Bounded-skew invariant: no event runs more than skew*grid behind
  // the furthest clock already observed.
  double high_water = 0.0;
  for (const auto& [t, tok] : log) {
    EXPECT_GE(t, high_water - 2.0) << "token " << tok;
    high_water = std::max(high_water, t);
  }

  const auto* queue = sim.sharded_queue();
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->lax_windows(), 3u);
  EXPECT_EQ(queue->lax_events_drained(), 5u);
  // Window 1 idles shards 0,3; window 2 idles 0,2; window 3 idles 1,2,3.
  EXPECT_EQ(queue->lax_stalled_shards(), 7u);
  // Leads: three events at their window anchor, two one bucket ahead.
  ASSERT_EQ(queue->lax_lead_histogram().size(), 3u);
  EXPECT_EQ(queue->lax_lead_histogram()[0], 3u);
  EXPECT_EQ(queue->lax_lead_histogram()[1], 2u);
  EXPECT_EQ(queue->lax_lead_histogram()[2], 0u);
}

TEST(LaxDrain, CrossShardCancelInsideAWindowIsHonoured) {
  // A (shard 1) and B (shard 2) are collected into the SAME window;
  // A executes first and cancels B — the stale collected ref must be
  // skipped, exactly like the strict engine would have skipped it.
  sim::Simulator sim(4);
  enable_lax(sim, /*skew=*/4, /*grid_s=*/1.0);
  std::vector<std::pair<double, int>> log;
  sim::EventId b = sim::kInvalidEvent;
  sim.schedule_at(0.0, [&] {
    log.emplace_back(sim.now(), 0);
    EXPECT_TRUE(sim.cancel(b));
    EXPECT_FALSE(sim.cancel(b));  // double cancel is a stale no-op
  });
  b = sim.schedule_at(1.5, [&] { log.emplace_back(sim.now(), 1); });
  const sim::EventId a_probe = sim.schedule_at(
      0.5, [&] { log.emplace_back(sim.now(), 2); });
  sim.run_until(10.0);
  const std::vector<std::pair<double, int>> expected = {{0.0, 0}, {0.5, 2}};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(sim.executed(), 2u);
  EXPECT_FALSE(sim.cancel(a_probe));  // already fired
}

TEST(LaxDrain, ThreadedCollectionMatchesInlineCollection) {
  // The forked Phase A only POPS per-shard heaps; execution stays
  // serial. A 4-thread executor must therefore reproduce the inline
  // fallback's log exactly, storm after storm.
  sim::parallel::ParallelExecutor exec(4);
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const unsigned skew = (trial % 2 == 0) ? 1u : 4u;
    auto run = [&](sim::parallel::ParallelExecutor* e) {
      sim::Simulator sim(4);
      enable_lax(sim, skew, /*grid_s=*/0.5, e);
      Storm storm(sim, 7000 + trial);
      for (int i = 0; i < 40; ++i) {
        storm.schedule(0.5 * static_cast<double>(storm.rng.next_below(20)));
      }
      sim.run_until(64.0);
      return std::move(storm.log);
    };
    const auto inline_log = run(nullptr);
    const auto threaded_log = run(&exec);
    ASSERT_EQ(inline_log, threaded_log) << "trial " << trial << " skew " << skew;
  }
}

TEST(LaxDrain, RandomStormsAreDeterministicOncePerTokenAndBounded) {
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    const unsigned skew = (trial % 2 == 0) ? 1u : 4u;
    const double grid = 0.5;
    auto run = [&] {
      sim::Simulator sim(4 + static_cast<unsigned>(trial % 3));
      enable_lax(sim, skew, grid);
      Storm storm(sim, 4000 + trial);
      for (int i = 0; i < 40; ++i) {
        storm.schedule(0.5 * static_cast<double>(storm.rng.next_below(20)));
      }
      sim.run_until(64.0);
      return std::move(storm.log);
    };
    const auto log_a = run();
    const auto log_b = run();
    ASSERT_EQ(log_a, log_b) << "trial " << trial;  // run-to-run determinism

    // Every token fires at most once (cancel/execute race would double
    // fire), and the clock never regresses past the skew window.
    std::vector<int> seen;
    double high_water = 0.0;
    for (const auto& [t, tok] : log_a) {
      seen.push_back(tok);
      ASSERT_GE(t, high_water - skew * grid) << "trial " << trial;
      high_water = std::max(high_water, t);
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end())
        << "trial " << trial << ": a token fired twice";
  }
}

TEST(LaxDrain, PerReceiverDeliveryOrderSurvivesSkew) {
  // Laned hand-offs under skew: the windowed barrier sweep merges due
  // lanes by (instant, seq), so each receiver must observe tokens in
  // exactly the order the single-queue oracle delivers them.
  auto run = [](unsigned queue_shards, unsigned skew) {
    auto sim = queue_shards > 0 ? std::make_unique<sim::Simulator>(queue_shards)
                                : std::make_unique<sim::Simulator>();
    net::Network net(*sim, net::LatencyModel({10.0, 20.0, 30.0, 40.0}, 5.0,
                                             /*grid_ms=*/2.0));
    if (skew > 0) enable_lax(*sim, skew, net.grid_s());
    std::vector<std::vector<int>> per_receiver(4);
    auto* prp = &per_receiver;
    for (int wave = 0; wave < 6; ++wave) {
      for (std::uint32_t from = 0; from < 2; ++from) {
        for (std::uint32_t to = 0; to < 4; ++to) {
          const int token = (wave * 2 + static_cast<int>(from)) * 4 +
                            static_cast<int>(to);
          net.send_sharded(from, to, net::MessageType::kBufferMap, /*bits=*/100,
                           [prp, to, token](net::DeliveryContext&) {
                             (*prp)[to].push_back(token);
                           },
                           /*extra_delay=*/0.013 * wave);
        }
      }
    }
    sim->run_until(10.0);
    return per_receiver;
  };
  const auto oracle = run(0, 0);
  for (const unsigned skew : {1u, 4u}) {
    const auto lax = run(4, skew);
    for (std::size_t to = 0; to < 4; ++to) {
      EXPECT_EQ(lax[to], oracle[to]) << "receiver " << to << " skew " << skew;
      EXPECT_FALSE(oracle[to].empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Session-level lax gates: skew-0 byte-identity and thread-invariance
// ---------------------------------------------------------------------------

TEST(LaxSessions, SkewIsInertWithoutShardedQueueOrQuantizedGrid) {
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);
  // Continuous mode (grid 0): lax never engages, skew must be inert.
  EXPECT_EQ(session_fingerprint(snapshot, 1, true, 0.0, true, 4),
            session_fingerprint(snapshot, 1, true, 0.0, true, 0));
  // Single-queue engine: skew must be inert too.
  EXPECT_EQ(session_fingerprint(snapshot, 1, true, 1.0, false, 4),
            session_fingerprint(snapshot, 1, true, 1.0, false, 0));
}

TEST(LaxSessions, SkewZeroMatchesStrictAndFixedSkewIsThreadInvariant) {
  trace::GeneratorConfig tc;
  tc.node_count = 200;
  tc.seed = 21;
  const auto snapshot = trace::generate_snapshot(tc);

  // Strict reference: the single-queue oracle; skew 0 on the sharded
  // engine must stay byte-identical to it.
  const std::uint64_t strict =
      session_fingerprint(snapshot, 1, true, 1.0, false, 0);
  EXPECT_EQ(session_fingerprint(snapshot, 1, true, 1.0, true, 0), strict);

  // Fixed skew: a DIFFERENT deterministic universe, identical at every
  // thread count.
  for (const unsigned skew : {1u, 4u}) {
    const std::uint64_t reference =
        session_fingerprint(snapshot, 1, true, 1.0, true, skew);
    EXPECT_NE(reference, strict) << "skew " << skew
        << ": lax silently fell back to strict";
    for (const unsigned threads : {2u, 4u, 8u}) {
      EXPECT_EQ(session_fingerprint(snapshot, threads, true, 1.0, true, skew),
                reference)
          << "threads " << threads << " skew " << skew;
    }
  }
}

TEST(LaxSessions, FaultedScenarioIsThreadInvariantUnderSkew) {
  const auto scenario = runner::find_scenario("f5_q1_static_small");
  ASSERT_TRUE(scenario.has_value());
  auto fingerprint = [&](unsigned threads, unsigned skew) {
    auto spec = runner::spec_for(*scenario, 42);
    spec.config.threads = threads;
    spec.config.sharded_queue = true;
    spec.config.queue_skew_buckets = skew;
    return runner::result_fingerprint(runner::ExperimentRunner::run_one(spec));
  };
  const std::uint64_t reference = fingerprint(1, 1);
  EXPECT_EQ(fingerprint(4, 1), reference);
  EXPECT_EQ(fingerprint(8, 1), reference);
}

}  // namespace
}  // namespace continu
