// Unit tests for trace snapshots, the synthetic generator and topology.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "trace/generator.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace continu::trace {
namespace {

TEST(TraceSnapshot, ValidatesDenseIds) {
  std::vector<TraceNode> nodes(2);
  nodes[0].trace_id = 0;
  nodes[1].trace_id = 5;  // not dense
  EXPECT_THROW(TraceSnapshot(std::move(nodes), {}), std::invalid_argument);
}

TEST(TraceSnapshot, RejectsSelfLoops) {
  std::vector<TraceNode> nodes(2);
  nodes[0].trace_id = 0;
  nodes[1].trace_id = 1;
  EXPECT_THROW(TraceSnapshot(std::move(nodes), {{0, 0}}), std::invalid_argument);
}

TEST(TraceSnapshot, RejectsOutOfRangeEdges) {
  std::vector<TraceNode> nodes(2);
  nodes[0].trace_id = 0;
  nodes[1].trace_id = 1;
  EXPECT_THROW(TraceSnapshot(std::move(nodes), {{0, 7}}), std::invalid_argument);
}

TEST(TraceSnapshot, AverageDegree) {
  std::vector<TraceNode> nodes(4);
  for (std::uint32_t i = 0; i < 4; ++i) nodes[i].trace_id = i;
  const TraceSnapshot snap(std::move(nodes), {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(snap.average_degree(), 1.0);
}

TEST(TraceSnapshot, SaveLoadRoundtrip) {
  GeneratorConfig config;
  config.node_count = 50;
  config.seed = 7;
  const TraceSnapshot original = generate_snapshot(config);
  std::stringstream stream;
  original.save(stream);
  const TraceSnapshot loaded = TraceSnapshot::load(stream);
  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.edge_count(), original.edge_count());
  for (std::size_t i = 0; i < original.node_count(); ++i) {
    EXPECT_EQ(loaded.nodes()[i].ipv4, original.nodes()[i].ipv4);
    EXPECT_DOUBLE_EQ(loaded.nodes()[i].ping_ms, original.nodes()[i].ping_ms);
    EXPECT_DOUBLE_EQ(loaded.nodes()[i].speed_kbps, original.nodes()[i].speed_kbps);
  }
  EXPECT_EQ(loaded.edges(), original.edges());
}

TEST(TraceSnapshot, LoadRejectsBadHeader) {
  std::stringstream stream("bogus 1 0 0\n");
  EXPECT_THROW(TraceSnapshot::load(stream), std::runtime_error);
}

TEST(TraceSnapshot, LoadRejectsCountMismatch) {
  std::stringstream stream("continu-trace 1 2 0\nnode 0 1 2.0 56.0\n");
  EXPECT_THROW(TraceSnapshot::load(stream), std::runtime_error);
}

TEST(FormatIpv4, Format) {
  EXPECT_EQ(format_ipv4(0x0A000001), "10.0.0.1");
  EXPECT_EQ(format_ipv4(0xC0A80164), "192.168.1.100");
}

TEST(Generator, Deterministic) {
  GeneratorConfig config;
  config.node_count = 100;
  config.seed = 42;
  const auto a = generate_snapshot(config);
  const auto b = generate_snapshot(config);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.nodes()[3].ipv4, b.nodes()[3].ipv4);
}

TEST(Generator, RespectsNodeCount) {
  GeneratorConfig config;
  config.node_count = 321;
  EXPECT_EQ(generate_snapshot(config).node_count(), 321u);
}

TEST(Generator, RejectsTinyCounts) {
  GeneratorConfig config;
  config.node_count = 1;
  EXPECT_THROW(generate_snapshot(config), std::invalid_argument);
}

TEST(Generator, AverageDegreeNearTarget) {
  GeneratorConfig config;
  config.node_count = 2000;
  config.average_degree = 2.5;
  config.seed = 5;
  const auto snap = generate_snapshot(config);
  // Dedup and self-loop rejection lose a little; stay in the crawl band.
  EXPECT_GT(snap.average_degree(), 1.5);
  EXPECT_LT(snap.average_degree(), 3.5);
}

TEST(Generator, DegreeClampedToCrawlBand) {
  GeneratorConfig config;
  config.node_count = 500;
  config.average_degree = 50.0;  // absurd; must clamp to 3.5
  const auto snap = generate_snapshot(config);
  EXPECT_LE(snap.average_degree(), 3.6);
}

TEST(Generator, PingTimesInEraRange) {
  GeneratorConfig config;
  config.node_count = 1000;
  config.seed = 11;
  const auto snap = generate_snapshot(config);
  for (const auto& node : snap.nodes()) {
    EXPECT_GE(node.ping_ms, 15.0);
    EXPECT_LE(node.ping_ms, 300.0);
  }
}

TEST(Generator, TwoPingPopulations) {
  GeneratorConfig config;
  config.node_count = 2000;
  config.broadband_fraction = 0.5;
  config.seed = 13;
  const auto snap = generate_snapshot(config);
  std::size_t fast = 0;
  std::size_t slow = 0;
  for (const auto& node : snap.nodes()) {
    if (node.ping_ms < 100.0) ++fast;
    if (node.ping_ms >= 100.0) ++slow;
  }
  EXPECT_NEAR(static_cast<double>(fast) / 2000.0, 0.5, 0.06);
  EXPECT_NEAR(static_cast<double>(slow) / 2000.0, 0.5, 0.06);
}

TEST(Generator, CorpusSizesSpanRange) {
  const auto corpus = generate_corpus(10, 100, 10000, 3);
  ASSERT_EQ(corpus.size(), 10u);
  EXPECT_NEAR(static_cast<double>(corpus.front().node_count()), 100.0, 5.0);
  EXPECT_NEAR(static_cast<double>(corpus.back().node_count()), 10000.0, 100.0);
  for (std::size_t i = 1; i < corpus.size(); ++i) {
    EXPECT_GE(corpus[i].node_count(), corpus[i - 1].node_count());
  }
}

TEST(Generator, CorpusRejectsBadArguments) {
  EXPECT_THROW(generate_corpus(0, 100, 1000, 1), std::invalid_argument);
  EXPECT_THROW(generate_corpus(5, 1000, 100, 1), std::invalid_argument);
}

TEST(Topology, EveryNodeReachesMinDegree) {
  GeneratorConfig config;
  config.node_count = 500;
  config.average_degree = 1.2;  // sparse crawl
  config.seed = 17;
  const auto snap = generate_snapshot(config);
  util::Rng rng(1);
  const Topology topo(snap, 5, rng);
  EXPECT_GE(topo.min_degree(), 5u);
}

TEST(Topology, PreservesTraceEdges) {
  GeneratorConfig config;
  config.node_count = 100;
  config.seed = 19;
  const auto snap = generate_snapshot(config);
  util::Rng rng(2);
  const Topology topo(snap, 5, rng);
  for (const auto& [a, b] : snap.edges()) {
    EXPECT_TRUE(topo.has_edge(a, b));
    EXPECT_TRUE(topo.has_edge(b, a));
  }
}

TEST(Topology, AdjacencySymmetric) {
  GeneratorConfig config;
  config.node_count = 200;
  config.seed = 23;
  const auto snap = generate_snapshot(config);
  util::Rng rng(3);
  const Topology topo(snap, 5, rng);
  for (std::uint32_t v = 0; v < 200; ++v) {
    for (const auto u : topo.neighbors(v)) {
      EXPECT_TRUE(topo.has_edge(u, v));
    }
  }
}

TEST(Topology, NoSelfLoopsOrDuplicates) {
  GeneratorConfig config;
  config.node_count = 300;
  config.seed = 29;
  const auto snap = generate_snapshot(config);
  util::Rng rng(4);
  const Topology topo(snap, 5, rng);
  for (std::uint32_t v = 0; v < 300; ++v) {
    const auto& adj = topo.neighbors(v);
    std::set<std::uint32_t> unique(adj.begin(), adj.end());
    EXPECT_EQ(unique.size(), adj.size());
    EXPECT_FALSE(unique.count(v) != 0);
  }
}

TEST(Topology, LatencyIsPingDifferenceWithFloor) {
  std::vector<TraceNode> nodes(3);
  for (std::uint32_t i = 0; i < 3; ++i) nodes[i].trace_id = i;
  nodes[0].ping_ms = 100.0;
  nodes[1].ping_ms = 130.0;
  nodes[2].ping_ms = 101.0;
  const TraceSnapshot snap(std::move(nodes), {{0, 1}});
  util::Rng rng(5);
  const Topology topo(snap, 1, rng);
  EXPECT_DOUBLE_EQ(topo.latency_ms(0, 1), 30.0);
  EXPECT_DOUBLE_EQ(topo.latency_ms(1, 0), 30.0);
  // |100 - 101| = 1ms is below the 5ms floor.
  EXPECT_DOUBLE_EQ(topo.latency_ms(0, 2), Topology::kLatencyFloorMs);
}

TEST(Topology, SmallCompleteGraphCase) {
  // min_degree >= n-1 must terminate with the complete graph.
  std::vector<TraceNode> nodes(4);
  for (std::uint32_t i = 0; i < 4; ++i) nodes[i].trace_id = i;
  const TraceSnapshot snap(std::move(nodes), {});
  util::Rng rng(6);
  const Topology topo(snap, 10, rng);
  EXPECT_EQ(topo.min_degree(), 3u);
}

// Parameterized sweep over the paper's trace sizes: augmentation to
// M = 5 must hold at every scale.
class TopologyScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyScale, AugmentationHoldsAtScale) {
  GeneratorConfig config;
  config.node_count = GetParam();
  config.average_degree = 2.0;
  config.seed = 31;
  const auto snap = generate_snapshot(config);
  util::Rng rng(7);
  const Topology topo(snap, 5, rng);
  EXPECT_GE(topo.min_degree(), 5u);
  EXPECT_LT(topo.average_degree(), 16.0);  // augmentation stays frugal
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyScale,
                         ::testing::Values(100u, 500u, 1000u, 2000u));

}  // namespace
}  // namespace continu::trace
