// Cross-module integration tests: the headline comparisons of the paper
// reproduced at small scale, plus failure injection.

#include <gtest/gtest.h>

#include "analysis/continuity_model.hpp"
#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"

namespace continu::core {
namespace {

trace::TraceSnapshot make_trace(std::size_t n, std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = n;
  config.seed = seed;
  return trace::generate_snapshot(config);
}

SystemConfig base_config(std::uint64_t seed, std::size_t n) {
  SystemConfig config;
  config.seed = seed;
  config.expected_nodes = static_cast<double>(n);
  return config;
}

struct RunResult {
  double stable_continuity = 0.0;
  double control_overhead = 0.0;
  double prefetch_overhead = 0.0;       ///< stable-phase, per-round mean
  double prefetch_overhead_total = 0.0; ///< cumulative incl. startup
  SessionStats stats;
};

RunResult run_session(const SystemConfig& config, const trace::TraceSnapshot& snapshot,
                      double duration, double stable_from) {
  Session session(config, snapshot);
  session.run(duration);
  RunResult result;
  result.stable_continuity = session.continuity().stable_mean(stable_from);
  result.control_overhead = session.traffic().control_overhead();
  result.prefetch_overhead =
      session.collector().mean_from("prefetch_overhead_round", stable_from);
  result.prefetch_overhead_total = session.traffic().prefetch_overhead();
  result.stats = session.stats();
  return result;
}

// The paper's headline (Figs. 5-8): ContinuStreaming beats CoolStreaming
// on playback continuity, in both static and dynamic environments.
TEST(Integration, ContinuBeatsCoolStreamingStatic) {
  const auto snapshot = make_trace(250, 21);
  const auto config = base_config(31, 250);
  const auto continu = run_session(config, snapshot, 40.0, 25.0);
  const auto cool = run_session(config.as_coolstreaming(), snapshot, 40.0, 25.0);
  EXPECT_GT(continu.stable_continuity, cool.stable_continuity);
  EXPECT_GT(continu.stable_continuity, 0.7);
}

TEST(Integration, ContinuBeatsCoolStreamingDynamic) {
  const auto snapshot = make_trace(250, 22);
  auto config = base_config(32, 250);
  config.churn_enabled = true;
  const auto continu = run_session(config, snapshot, 40.0, 25.0);
  const auto cool = run_session(config.as_coolstreaming(), snapshot, 40.0, 25.0);
  EXPECT_GT(continu.stable_continuity, cool.stable_continuity);
}

// Section 5.4.2: control overhead ~ M/495, and similar for both systems.
TEST(Integration, ControlOverheadNearModel) {
  const auto snapshot = make_trace(200, 23);
  const auto config = base_config(33, 200);
  const auto continu = run_session(config, snapshot, 40.0, 20.0);
  const auto cool = run_session(config.as_coolstreaming(), snapshot, 40.0, 20.0);
  const double model = 5.0 / 495.0;
  // A little above the model because continuity < 1.0 shrinks the
  // denominator — exactly the deviation the paper reports.
  EXPECT_GT(continu.control_overhead, model * 0.8);
  EXPECT_LT(continu.control_overhead, 0.02);
  EXPECT_NEAR(continu.control_overhead, cool.control_overhead,
              0.5 * continu.control_overhead);
}

// Section 5.4.3 / Fig. 10-11: stable-phase pre-fetch overhead stays a
// minor fraction of media traffic. (The paper reports < 4% at 1000+
// nodes — bench_fig10/fig11 check that scale; this 200-node smoke test
// has proportionally more misses per node, so the bound is looser.)
TEST(Integration, PrefetchOverheadSmall) {
  const auto snapshot = make_trace(200, 24);
  const auto config = base_config(34, 200);
  const auto continu = run_session(config, snapshot, 45.0, 25.0);
  EXPECT_GT(continu.stats.prefetch_launched, 0u);
  EXPECT_LT(continu.prefetch_overhead, 0.12);
}

TEST(Integration, PrefetchOverheadHigherUnderChurn) {
  // Fig. 11's claim, compared in the stable phase where the startup
  // transient no longer dominates. At this smoke scale the static
  // overhead is heavily seed-dependent (a struggling tail of nodes can
  // lean on pre-fetch for the whole run), so the comparison averages a
  // few seeds — a single draw sits right at the noise floor of the
  // 0.7 slack in either direction.
  const auto snapshot = make_trace(250, 25);
  double static_mean = 0.0;
  double dynamic_mean = 0.0;
  const std::uint64_t seeds[] = {35, 36, 37};
  for (const std::uint64_t seed : seeds) {
    auto config = base_config(seed, 250);
    static_mean += run_session(config, snapshot, 40.0, 20.0).prefetch_overhead;
    config.churn_enabled = true;
    dynamic_mean += run_session(config, snapshot, 40.0, 20.0).prefetch_overhead;
  }
  EXPECT_GE(dynamic_mean, static_mean * 0.7);
}

// Failure injection: abrupt mass failure mid-stream.
TEST(Integration, SurvivesMassAbruptFailure) {
  const auto snapshot = make_trace(200, 26);
  auto config = base_config(36, 200);
  config.churn_enabled = true;
  config.churn.leave_fraction = 0.15;     // heavy
  config.churn.graceful_fraction = 0.0;   // all abrupt
  config.churn.join_fraction = 0.15;
  Session session(config, snapshot);
  session.run(30.0);
  // The system must keep running (this is a survival test under 3x the
  // paper's churn rate, all failures abrupt — continuity is expected to
  // be poor, but bookkeeping must stay sound and playback nonzero).
  EXPECT_GT(session.alive_count(), 50u);
  EXPECT_GT(session.continuity().stable_mean(20.0), 0.02);
  // In-flight bookkeeping survived: no node holds absurd in-flight sets.
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    EXPECT_LT(session.node(i).inflight_count(), 200u);
  }
}

// Failure injection: no joins, only departures — the overlay shrinks
// but the survivors keep playing.
TEST(Integration, ShrinkingOverlayKeepsPlaying) {
  const auto snapshot = make_trace(200, 27);
  auto config = base_config(37, 200);
  config.churn_enabled = true;
  config.churn.leave_fraction = 0.05;
  config.churn.join_fraction = 0.0;
  Session session(config, snapshot);
  session.run(30.0);
  EXPECT_LT(session.alive_count(), 200u);
  EXPECT_GT(session.continuity().stable_mean(20.0), 0.5);
}

// The theory (Section 5.1) and the simulator agree on the sign and
// rough size of the improvement at the paper's operating point.
TEST(Integration, TheoryPredictsImprovementDirection) {
  analysis::ContinuityInputs in;
  in.lambda = 15.0;
  const auto prediction = analysis::predict_continuity(in);

  const auto snapshot = make_trace(250, 28);
  const auto config = base_config(38, 250);
  const auto continu = run_session(config, snapshot, 40.0, 25.0);
  const auto cool = run_session(config.as_coolstreaming(), snapshot, 40.0, 25.0);
  const double measured_delta = continu.stable_continuity - cool.stable_continuity;
  EXPECT_GT(prediction.delta, 0.0);
  EXPECT_GT(measured_delta, 0.0);
}

// Conservation: nobody plays a segment that was never emitted, and all
// deliveries reference emitted ids.
TEST(Integration, NoSegmentFromThinAir) {
  const auto snapshot = make_trace(150, 29);
  Session session(base_config(39, 150), snapshot);
  session.run(20.0);
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    const auto newest = session.node(i).buffer().newest();
    if (newest.has_value()) {
      EXPECT_LT(*newest, session.emitted());
    }
    for (const SegmentId id : session.node(i).backup().contents()) {
      EXPECT_LT(id, session.emitted());
    }
  }
}

// Larger M must not help much (the paper: "using a larger M cannot
// bring notable increment ... the main constraint lies in the inbound
// rate") — and must cost proportionally more control overhead.
TEST(Integration, LargerMCostsMoreControl) {
  const auto snapshot = make_trace(200, 30);
  auto config4 = base_config(40, 200);
  config4.connected_neighbors = 4;
  auto config6 = base_config(40, 200);
  config6.connected_neighbors = 6;
  const auto m4 = run_session(config4, snapshot, 30.0, 20.0);
  const auto m6 = run_session(config6, snapshot, 30.0, 20.0);
  EXPECT_GT(m6.control_overhead, m4.control_overhead);
}

}  // namespace
}  // namespace continu::core
