// Tests for the DHT pre-fetch plane exercised through small sessions:
// backup placement, Algorithm 2 end-to-end, alpha adaptation events and
// the prefetch/traffic counters.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"

namespace continu::core {
namespace {

trace::TraceSnapshot small_trace(std::size_t n, std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = n;
  config.seed = seed;
  return trace::generate_snapshot(config);
}

SystemConfig small_config(std::uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.expected_nodes = 100.0;
  return config;
}

TEST(Prefetch, SessionLaunchesPrefetches) {
  const auto snapshot = small_trace(120, 1);
  auto config = small_config(7);
  Session session(config, snapshot);
  session.run(30.0);
  // In a bandwidth-constrained gossip system some segments are always
  // predicted missed — Algorithm 2 must have fired.
  EXPECT_GT(session.stats().prefetch_launched, 0u);
  // And mostly succeeded (k = 4 replicas, failure ~ 2^-4 plus churnless
  // routing).
  EXPECT_GT(session.stats().prefetch_succeeded, 0u);
}

TEST(Prefetch, CoolStreamingNeverPrefetches) {
  const auto snapshot = small_trace(120, 1);
  auto config = small_config(7).as_coolstreaming();
  Session session(config, snapshot);
  session.run(30.0);
  EXPECT_EQ(session.stats().prefetch_launched, 0u);
  EXPECT_EQ(session.traffic().bits(net::TrafficClass::kPrefetch), 0u);
}

TEST(Prefetch, RoutingMessagesCharged) {
  const auto snapshot = small_trace(120, 2);
  auto config = small_config(8);
  Session session(config, snapshot);
  session.run(30.0);
  if (session.stats().prefetch_launched > 0) {
    // Each launch sends k = 4 locate chains; every hop costs 80 bits.
    EXPECT_GT(session.stats().dht_route_messages, 0u);
    EXPECT_GT(session.traffic().bits(net::TrafficClass::kPrefetch), 0u);
  }
}

TEST(Prefetch, BackupStoresPopulate) {
  const auto snapshot = small_trace(120, 3);
  auto config = small_config(9);
  Session session(config, snapshot);
  session.run(20.0);
  std::size_t stored = 0;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    stored += session.node(i).backup().size();
  }
  // k replicas per live segment spread over the overlay: the aggregate
  // must be substantial.
  EXPECT_GT(stored, 50u);
}

TEST(Prefetch, BackupReplicationBounded) {
  // Responsibility is evaluated at storage time against the node's
  // then-current arc; arcs move as overhearing refines the peer tables,
  // so a retroactive per-segment check is not meaningful. What must
  // hold in aggregate: each emitted segment is backed up a bounded
  // number of times (targets k; arcs can overlap transiently), and no
  // store holds unemitted ids.
  const auto snapshot = small_trace(100, 4);
  auto config = small_config(10);
  Session session(config, snapshot);
  session.run(15.0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    for (const SegmentId id : session.node(i).backup().contents()) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, session.emitted());
      ++total;
    }
  }
  const auto emitted = static_cast<double>(session.emitted());
  EXPECT_GT(static_cast<double>(total), 0.5 * emitted);               // not empty
  EXPECT_LT(static_cast<double>(total),
            3.0 * static_cast<double>(config.backup_replicas) * emitted);
}

TEST(Prefetch, AlphaStaysWithinBounds) {
  const auto snapshot = small_trace(150, 5);
  auto config = small_config(11);
  Session session(config, snapshot);
  session.run(30.0);
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    const auto& line = session.node(i).urgent_line();
    EXPECT_GE(line.alpha(), line.lower_bound() - 1e-12);
    EXPECT_LE(line.alpha(), 1.0 + 1e-12);
  }
}

TEST(Prefetch, AdaptationEventsObserved) {
  const auto snapshot = small_trace(150, 6);
  auto config = small_config(12);
  Session session(config, snapshot);
  session.run(40.0);
  std::uint64_t repeated = 0;
  std::uint64_t overdue = 0;
  for (std::size_t i = 0; i < session.node_count(); ++i) {
    repeated += session.node(i).urgent_line().repeated_events();
    overdue += session.node(i).urgent_line().overdue_events();
  }
  // At least one kind of adaptation signal should appear in a 40 s run
  // with pre-fetch active.
  EXPECT_GT(repeated + overdue, 0u);
}

TEST(Prefetch, SourceHoldsEverythingItEmits) {
  const auto snapshot = small_trace(100, 7);
  auto config = small_config(13);
  Session session(config, snapshot);
  session.run(10.0);
  const auto& source = session.source();
  EXPECT_TRUE(source.is_source());
  // The source inserted every emitted segment still inside its window.
  const SegmentId head = source.buffer().window_head();
  for (SegmentId id = std::max<SegmentId>(head, 0); id < session.emitted(); ++id) {
    EXPECT_TRUE(source.buffer().has(id)) << id;
  }
}

TEST(Prefetch, InflightBookkeepingBounded) {
  // In-flight sets stay bounded by a few rounds' worth of the inbound
  // rate (requests + the mid-round top-up + the 3-round timeout).
  const auto snapshot = small_trace(80, 8);
  auto config = small_config(14);
  config.inbound_min = 11.0;
  config.inbound_max = 12.0;
  Session session(config, snapshot);
  session.run(25.0);
  for (std::size_t i = 1; i < session.node_count(); ++i) {
    const auto& node = session.node(i);
    EXPECT_LE(node.inflight_count(),
              static_cast<std::size_t>(node.inbound_rate() * 4.0) + 4)
        << "node " << i;
    EXPECT_LE(node.prefetch_inflight_count(), 30u) << "node " << i;
  }
}

}  // namespace
}  // namespace continu::core
