// Unit and property tests for the DHT substrate: ID space, peer table,
// ring directory, greedy routing (incl. the appendix hop bound) and the
// VoD backup store.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "dht/backup_store.hpp"
#include "dht/id_space.hpp"
#include "dht/peer_table.hpp"
#include "dht/ring_directory.hpp"
#include "dht/routing_experiment.hpp"
#include "util/rng.hpp"

namespace continu::dht {
namespace {

// ---------------------------------------------------------------------------
// IdSpace
// ---------------------------------------------------------------------------

TEST(IdSpace, RequiresPowerOfTwo) {
  EXPECT_THROW(IdSpace(1000), std::invalid_argument);
  EXPECT_THROW(IdSpace(0), std::invalid_argument);
  EXPECT_NO_THROW(IdSpace(8192));
}

TEST(IdSpace, LevelsAreLogN) {
  EXPECT_EQ(IdSpace(8192).levels(), 13u);
  EXPECT_EQ(IdSpace(16).levels(), 4u);
}

TEST(IdSpace, LevelOfMatchesDefinition) {
  const IdSpace space(16);
  // Peer at distance d has level floor(log2 d) + 1.
  EXPECT_EQ(space.level_of(0, 1), 1u);   // d=1 in [1,2)
  EXPECT_EQ(space.level_of(0, 2), 2u);   // d=2 in [2,4)
  EXPECT_EQ(space.level_of(0, 3), 2u);
  EXPECT_EQ(space.level_of(0, 4), 3u);   // d=4 in [4,8)
  EXPECT_EQ(space.level_of(0, 8), 4u);   // d=8 in [8,16)
  EXPECT_EQ(space.level_of(0, 15), 4u);
  EXPECT_EQ(space.level_of(0, 0), 0u);   // self
}

TEST(IdSpace, LevelOfWrapsRing) {
  const IdSpace space(16);
  // From node 14, node 1 is at clockwise distance 3 -> level 2.
  EXPECT_EQ(space.level_of(14, 1), 2u);
}

TEST(IdSpace, LevelArcBoundaries) {
  const IdSpace space(16);
  const auto [lo1, hi1] = space.level_arc(0, 1);
  EXPECT_EQ(lo1, 1u);
  EXPECT_EQ(hi1, 2u);
  const auto [lo4, hi4] = space.level_arc(0, 4);
  EXPECT_EQ(lo4, 8u);
  EXPECT_EQ(hi4, 0u);  // wraps to the owner: [8, 16) == [8, 0)
}

TEST(IdSpace, LevelArcsPartitionNonSelfIds) {
  const IdSpace space(64);
  for (NodeId owner : {0u, 17u, 63u}) {
    std::map<NodeId, int> covered;
    for (unsigned level = 1; level <= space.levels(); ++level) {
      const auto [lo, hi] = space.level_arc(owner, level);
      for (std::uint64_t x = 0; x < space.size(); ++x) {
        if (util::in_clockwise_arc(x, lo, hi, space.size())) {
          ++covered[static_cast<NodeId>(x)];
        }
      }
    }
    for (std::uint64_t x = 0; x < space.size(); ++x) {
      if (x == owner) {
        EXPECT_EQ(covered[static_cast<NodeId>(x)], 0) << "owner " << owner;
      } else {
        EXPECT_EQ(covered[static_cast<NodeId>(x)], 1)
            << "x=" << x << " owner=" << owner;
      }
    }
  }
}

TEST(IdSpace, HopUpperBoundMatchesAppendix) {
  const IdSpace space(8192);
  // log N / log(4/3) with N = 8192: log2 N = 13, 13/log2(4/3) ~= 31.3.
  EXPECT_NEAR(space.hop_upper_bound(), std::log(8192.0) / std::log(4.0 / 3.0), 1e-9);
  EXPECT_NEAR(space.hop_upper_bound(), 2.41 * 13.0, 1.0);
}

TEST(IdSpace, BackupTargetMatchesHash) {
  const IdSpace space(8192);
  EXPECT_EQ(space.backup_target(77, 3), util::backup_target(77, 3, 8192));
}

// ---------------------------------------------------------------------------
// PeerTable
// ---------------------------------------------------------------------------

TEST(PeerTable, OfferInstallsAtCorrectLevel) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  EXPECT_TRUE(table.offer(3, 10.0, 0.0));  // level 2
  const auto peer = table.peer_at(2);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->id, 3u);
  EXPECT_TRUE(table.invariants_hold());
}

TEST(PeerTable, OfferSelfRejected) {
  const IdSpace space(16);
  PeerTable table(space, 5);
  EXPECT_FALSE(table.offer(5, 1.0, 0.0));
}

TEST(PeerTable, FresherInformationWins) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(2, 10.0, 0.0);
  EXPECT_TRUE(table.offer(3, 50.0, 1.0));  // same level 2, fresher
  EXPECT_EQ(table.peer_at(2)->id, 3u);
}

TEST(PeerTable, EqualFreshnessLowerLatencyWins) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(2, 10.0, 0.0);
  EXPECT_FALSE(table.offer(3, 50.0, 0.0));  // same time, worse latency
  EXPECT_EQ(table.peer_at(2)->id, 2u);
  EXPECT_TRUE(table.offer(3, 5.0, 0.0));    // same time, better latency
  EXPECT_EQ(table.peer_at(2)->id, 3u);
}

TEST(PeerTable, ReofferRefreshes) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(2, 10.0, 0.0);
  EXPECT_FALSE(table.offer(2, 8.0, 5.0));  // same peer: refresh, not change
  EXPECT_DOUBLE_EQ(table.peer_at(2)->latency_ms, 8.0);
  EXPECT_DOUBLE_EQ(table.peer_at(2)->refreshed_at, 5.0);
}

TEST(PeerTable, EvictClearsSlot) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(2, 10.0, 0.0);
  table.evict(2);
  EXPECT_FALSE(table.peer_at(2).has_value());
}

TEST(PeerTable, NextHopChoosesClosestToTarget) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(1, 1.0, 0.0);   // level 1
  table.offer(2, 1.0, 0.0);   // level 2
  table.offer(5, 1.0, 0.0);   // level 3
  table.offer(9, 1.0, 0.0);   // level 4
  // Target 11: distances - from 9: 2, from 5: 6, from 0: 11 -> pick 9.
  EXPECT_EQ(table.next_hop(11).value(), 9u);
  // Target 1: the level-1 peer IS the target.
  EXPECT_EQ(table.next_hop(1).value(), 1u);
}

TEST(PeerTable, NextHopNoneWhenOwnerClosest) {
  const IdSpace space(16);
  PeerTable table(space, 0);
  table.offer(9, 1.0, 0.0);
  // Target 0 is the owner itself; no peer improves on distance 0.
  EXPECT_FALSE(table.next_hop(0).has_value());
  // Target 8: owner distance 8, peer 9 distance 15 -> stay.
  EXPECT_FALSE(table.next_hop(8).has_value());
}

TEST(PeerTable, ClosestClockwisePeer) {
  const IdSpace space(16);
  PeerTable table(space, 10);
  table.offer(14, 1.0, 0.0);
  table.offer(3, 1.0, 0.0);  // distance 9
  EXPECT_EQ(table.closest_clockwise_peer().value(), 14u);
  EXPECT_FALSE(PeerTable(space, 10).closest_clockwise_peer().has_value());
}

// ---------------------------------------------------------------------------
// RingDirectory
// ---------------------------------------------------------------------------

TEST(RingDirectory, InsertEraseContains) {
  const IdSpace space(64);
  RingDirectory dir(space);
  dir.insert(5);
  EXPECT_TRUE(dir.contains(5));
  EXPECT_THROW(dir.insert(5), std::invalid_argument);
  dir.erase(5);
  EXPECT_FALSE(dir.contains(5));
}

TEST(RingDirectory, OwnerIsCounterClockwiseClosest) {
  const IdSpace space(64);
  RingDirectory dir(space);
  for (const NodeId id : {10u, 20u, 40u}) dir.insert(id);
  EXPECT_EQ(dir.owner_of(25).value(), 20u);
  EXPECT_EQ(dir.owner_of(20).value(), 20u);  // exact hit owns itself
  EXPECT_EQ(dir.owner_of(5).value(), 40u);   // wraps counter-clockwise
  EXPECT_EQ(dir.owner_of(63).value(), 40u);
}

TEST(RingDirectory, SuccessorPredecessor) {
  const IdSpace space(64);
  RingDirectory dir(space);
  for (const NodeId id : {10u, 20u, 40u}) dir.insert(id);
  EXPECT_EQ(dir.successor_of(10).value(), 20u);
  EXPECT_EQ(dir.successor_of(40).value(), 10u);  // wraps
  EXPECT_EQ(dir.predecessor_of(10).value(), 40u);  // wraps
  EXPECT_EQ(dir.predecessor_of(40).value(), 20u);
  // For a non-member id, neighbors in ring order still make sense.
  EXPECT_EQ(dir.successor_of(15).value(), 20u);
  EXPECT_EQ(dir.predecessor_of(15).value(), 10u);
}

TEST(RingDirectory, SingleMemberHasNoNeighbors) {
  const IdSpace space(64);
  RingDirectory dir(space);
  dir.insert(7);
  EXPECT_FALSE(dir.successor_of(7).has_value());
  EXPECT_FALSE(dir.predecessor_of(7).has_value());
  EXPECT_EQ(dir.owner_of(50).value(), 7u);
}

TEST(RingDirectory, EmptyDirectory) {
  const IdSpace space(64);
  RingDirectory dir(space);
  EXPECT_FALSE(dir.owner_of(3).has_value());
  EXPECT_TRUE(dir.empty());
}

// ---------------------------------------------------------------------------
// Routing experiment (paper Figure 3 machinery + appendix bound)
// ---------------------------------------------------------------------------

TEST(Routing, FullRingAlwaysSucceeds) {
  const IdSpace space(256);
  util::Rng rng(1);
  const RoutingExperiment exp(space, 256, rng);
  util::Rng qrng(2);
  const auto stats = exp.run(500, qrng);
  EXPECT_DOUBLE_EQ(stats.success_rate, 1.0);
  EXPECT_GT(stats.average_hops, 1.0);
}

TEST(Routing, HopsStayUnderAppendixBound) {
  const IdSpace space(1024);
  util::Rng rng(3);
  const RoutingExperiment exp(space, 700, rng);
  const auto bound = space.hop_upper_bound();
  util::Rng qrng(4);
  for (int q = 0; q < 300; ++q) {
    const NodeId start = exp.node_ids()[qrng.next_below(exp.node_ids().size())];
    const auto target = static_cast<NodeId>(qrng.next_below(space.size()));
    const auto result = exp.route(start, target);
    EXPECT_LE(static_cast<double>(result.hops), bound + 1.0);
  }
}

TEST(Routing, AverageHopsNearHalfLogN) {
  // Paper Fig. 3: average hops ~ log2(n)/2.
  const IdSpace space(8192);
  util::Rng rng(5);
  const RoutingExperiment exp(space, 4096, rng);
  util::Rng qrng(6);
  const auto stats = exp.run(2000, qrng);
  const double expected = std::log2(4096.0) / 2.0;  // = 6
  EXPECT_NEAR(stats.average_hops, expected, 1.5);
  EXPECT_GT(stats.success_rate, 0.95);
}

TEST(Routing, SparseRingStillMostlySucceeds) {
  // n << N: the paper reports success close to 1.0 even when sparse.
  const IdSpace space(8192);
  util::Rng rng(7);
  const RoutingExperiment exp(space, 500, rng);
  util::Rng qrng(8);
  const auto stats = exp.run(1000, qrng);
  EXPECT_GT(stats.success_rate, 0.8);
}

TEST(Routing, PartiallyFilledTablesDegradeGracefully) {
  const IdSpace space(1024);
  util::Rng rng(9);
  const RoutingExperiment full(space, 512, rng);
  util::Rng rng2(9);
  const RoutingExperiment holey(space, 512, rng2, /*fill_probability=*/0.5);
  util::Rng qa(10);
  util::Rng qb(10);
  const auto stats_full = full.run(800, qa);
  const auto stats_holey = holey.run(800, qb);
  EXPECT_GE(stats_full.success_rate, stats_holey.success_rate);
  EXPECT_GT(stats_holey.success_rate, 0.3);
}

TEST(Routing, GreedyProgressMonotone) {
  // Along any successful route, clockwise distance to the target must
  // strictly decrease hop over hop.
  const IdSpace space(512);
  util::Rng rng(11);
  const RoutingExperiment exp(space, 300, rng);
  util::Rng qrng(12);
  for (int q = 0; q < 200; ++q) {
    const NodeId start = exp.node_ids()[qrng.next_below(exp.node_ids().size())];
    const auto target = static_cast<NodeId>(qrng.next_below(space.size()));
    const auto result = exp.route(start, target);
    for (std::size_t i = 1; i < result.path.size(); ++i) {
      EXPECT_LT(space.distance(result.path[i], target),
                space.distance(result.path[i - 1], target));
    }
  }
}

TEST(Routing, RouteToOwnIdTerminatesImmediately) {
  const IdSpace space(256);
  util::Rng rng(13);
  const RoutingExperiment exp(space, 128, rng);
  const NodeId start = exp.node_ids().front();
  const auto result = exp.route(start, start);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.hops, 0u);
}

// Parameterized sweep mirroring Fig. 3's x-axis.
class RoutingScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoutingScale, SuccessHighAcrossOccupancies) {
  const IdSpace space(8192);
  util::Rng rng(GetParam());
  const RoutingExperiment exp(space, GetParam(), rng);
  util::Rng qrng(99);
  const auto stats = exp.run(600, qrng);
  EXPECT_GT(stats.success_rate, 0.85) << "n=" << GetParam();
  EXPECT_LT(stats.average_hops, space.hop_upper_bound());
}

INSTANTIATE_TEST_SUITE_P(Occupancies, RoutingScale,
                         ::testing::Values(1000u, 2000u, 4000u, 8000u));

// ---------------------------------------------------------------------------
// BackupStore
// ---------------------------------------------------------------------------

TEST(BackupStore, ResponsibilityFollowsHash) {
  const IdSpace space(64);
  BackupStore store(space, /*owner=*/10, /*replicas=*/4);
  // Find a segment with a replica target in [10, 20).
  SegmentId covered = -1;
  for (SegmentId id = 0; id < 2000; ++id) {
    bool hit = false;
    for (unsigned r = 1; r <= 4; ++r) {
      const auto t = space.backup_target(id, r);
      hit |= (t >= 10 && t < 20);
    }
    if (hit) {
      covered = id;
      break;
    }
  }
  ASSERT_GE(covered, 0);
  EXPECT_TRUE(store.responsible_for(covered, 20));
  EXPECT_TRUE(store.offer(covered, 20));
  EXPECT_TRUE(store.has(covered));
}

TEST(BackupStore, NotResponsibleOutsideArc) {
  const IdSpace space(64);
  BackupStore store(space, 10, 4);
  for (SegmentId id = 0; id < 200; ++id) {
    bool any_inside = false;
    for (unsigned r = 1; r <= 4; ++r) {
      const auto t = space.backup_target(id, r);
      any_inside |= util::in_clockwise_arc(t, 10, 12, 64);
    }
    EXPECT_EQ(store.responsible_for(id, 12), any_inside) << id;
  }
}

TEST(BackupStore, ResponsibilityPartition) {
  // Across a full ring of owners whose arcs tile the space, every
  // segment replica lands with exactly the owners whose arc covers a
  // target — so each segment is stored by >= 1 and <= k owners.
  const IdSpace space(256);
  const std::vector<NodeId> owners{0, 50, 100, 150, 200, 250};
  for (SegmentId id = 0; id < 300; ++id) {
    int responsible = 0;
    for (std::size_t i = 0; i < owners.size(); ++i) {
      const NodeId arc_end = owners[(i + 1) % owners.size()];
      BackupStore store(space, owners[i], 4);
      if (store.responsible_for(id, arc_end)) ++responsible;
    }
    EXPECT_GE(responsible, 1) << id;
    EXPECT_LE(responsible, 4) << id;
  }
}

TEST(BackupStore, FullRingArcCoversEverything) {
  const IdSpace space(64);
  BackupStore store(space, 10, 1);
  // arc_end == owner means the whole ring (single-node overlay).
  for (SegmentId id = 0; id < 50; ++id) {
    EXPECT_TRUE(store.responsible_for(id, 10));
  }
}

TEST(BackupStore, ExpireDropsOldSegments) {
  const IdSpace space(64);
  BackupStore store(space, 0, 1);
  for (SegmentId id = 0; id < 10; ++id) store.store(id);
  EXPECT_EQ(store.expire_before(5), 5u);
  EXPECT_EQ(store.size(), 5u);
  EXPECT_FALSE(store.has(4));
  EXPECT_TRUE(store.has(5));
}

TEST(BackupStore, TakeAllEmpties) {
  const IdSpace space(64);
  BackupStore store(space, 0, 1);
  store.store(3);
  store.store(9);
  const auto contents = store.take_all();
  EXPECT_EQ(contents, (std::vector<SegmentId>{3, 9}));
  EXPECT_EQ(store.size(), 0u);
}

TEST(BackupStore, RejectsZeroReplicas) {
  const IdSpace space(64);
  EXPECT_THROW(BackupStore(space, 0, 0), std::invalid_argument);
}

TEST(BackupStore, ExpectedReplicationFactor) {
  // With owners tiling the ring and k = 4, the mean number of owners
  // responsible per segment should be near 4 * (1 - collision slack).
  const IdSpace space(1024);
  std::vector<NodeId> owners;
  for (NodeId id = 0; id < 1024; id += 16) owners.push_back(id);
  double total = 0.0;
  const int segments = 400;
  for (SegmentId id = 0; id < segments; ++id) {
    for (std::size_t i = 0; i < owners.size(); ++i) {
      const NodeId arc_end = owners[(i + 1) % owners.size()];
      BackupStore store(space, owners[i], 4);
      if (store.responsible_for(id, arc_end)) total += 1.0;
    }
  }
  EXPECT_NEAR(total / segments, 4.0, 0.35);
}

}  // namespace
}  // namespace continu::dht
