// Tests for the theoretical models — including exact reproduction of the
// paper's Section 5.1 table values for lambda = 14, 15.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/continuity_model.hpp"
#include "analysis/coverage.hpp"
#include "analysis/poisson.hpp"

namespace continu::analysis {
namespace {

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

TEST(Poisson, PmfSumsToOne) {
  for (const double mean : {0.5, 1.0, 5.0, 15.0, 50.0}) {
    double sum = 0.0;
    for (std::uint64_t n = 0; n < 400; ++n) sum += poisson_pmf(n, mean);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "mean=" << mean;
  }
}

TEST(Poisson, PmfMatchesClosedForm) {
  // P{N=3} with mean 2: e^-2 * 2^3 / 3! = e^-2 * 8/6.
  EXPECT_NEAR(poisson_pmf(3, 2.0), std::exp(-2.0) * 8.0 / 6.0, 1e-12);
}

TEST(Poisson, MeanIsLambdaT) {
  const double mean = 15.0;
  double expectation = 0.0;
  for (std::uint64_t n = 0; n < 400; ++n) {
    expectation += static_cast<double>(n) * poisson_pmf(n, mean);
  }
  EXPECT_NEAR(expectation, mean, 1e-6);  // eq. 10
}

TEST(Poisson, CdfMonotone) {
  double prev = 0.0;
  for (std::uint64_t n = 0; n < 50; ++n) {
    const double c = poisson_cdf(n, 15.0);
    EXPECT_GE(c, prev);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

TEST(Poisson, CdfMatchesPmfSum) {
  double sum = 0.0;
  for (std::uint64_t n = 0; n <= 10; ++n) sum += poisson_pmf(n, 15.0);
  EXPECT_NEAR(poisson_cdf(10, 15.0), sum, 1e-12);
}

TEST(Poisson, ZeroMeanDegenerate) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(poisson_cdf(5, 0.0), 1.0);
}

TEST(Poisson, LargeMeanStable) {
  // Must not overflow/underflow for big means.
  const double p = poisson_pmf(1000, 1000.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_NEAR(poisson_cdf(100000, 1000.0), 1.0, 1e-9);
}

TEST(Poisson, ExpectedShortfallMatchesEq12) {
  // Nmiss = sum_{n<m} (m-n) P{N=n}; brute-force cross-check.
  const double mean = 14.0;
  const std::uint64_t m = 10;
  double brute = 0.0;
  for (std::uint64_t n = 0; n < m; ++n) {
    brute += static_cast<double>(m - n) * poisson_pmf(n, mean);
  }
  EXPECT_NEAR(poisson_expected_shortfall(m, mean), brute, 1e-12);
}

TEST(Poisson, ShortfallZeroWhenDemandZero) {
  EXPECT_DOUBLE_EQ(poisson_expected_shortfall(0, 15.0), 0.0);
}

TEST(Poisson, NegativeMeanRejected) {
  EXPECT_THROW((void)poisson_pmf(0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)poisson_cdf(0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Continuity model vs the paper's table (Section 5.1)
// ---------------------------------------------------------------------------

TEST(ContinuityModel, PaperTableLambda15) {
  // "Theoretical result with lambda=15": PCold 0.8815, PCnew 0.9989,
  // delta 0.1174 (p = 10, tau = 1, k = 4).
  ContinuityInputs in;
  in.lambda = 15.0;
  in.tau = 1.0;
  in.p = 10;
  in.k = 4;
  const auto out = predict_continuity(in);
  EXPECT_NEAR(out.pc_old, 0.8815, 0.0005);
  EXPECT_NEAR(out.pc_new, 0.9989, 0.0005);
  EXPECT_NEAR(out.delta, 0.1174, 0.001);
}

TEST(ContinuityModel, PaperTableLambda14) {
  // "Theoretical result with lambda=14": PCold 0.8243, PCnew 0.9975,
  // delta 0.1732.
  ContinuityInputs in;
  in.lambda = 14.0;
  const auto out = predict_continuity(in);
  EXPECT_NEAR(out.pc_old, 0.8243, 0.0005);
  EXPECT_NEAR(out.pc_new, 0.9975, 0.0005);
  EXPECT_NEAR(out.delta, 0.1732, 0.001);
}

TEST(ContinuityModel, DeltaIsDifference) {
  ContinuityInputs in;
  const auto out = predict_continuity(in);
  EXPECT_NEAR(out.delta, out.pc_new - out.pc_old, 1e-12);
}

TEST(ContinuityModel, PcNewAtLeastPcOld) {
  for (const double lambda : {5.0, 10.0, 12.0, 15.0, 20.0, 30.0}) {
    ContinuityInputs in;
    in.lambda = lambda;
    const auto out = predict_continuity(in);
    EXPECT_GE(out.pc_new, out.pc_old) << lambda;
    EXPECT_GE(out.pc_old, 0.0);
    EXPECT_LE(out.pc_new, 1.0);
  }
}

TEST(ContinuityModel, MoreBandwidthMoreContinuity) {
  ContinuityInputs lo;
  lo.lambda = 12.0;
  ContinuityInputs hi;
  hi.lambda = 18.0;
  EXPECT_LT(predict_continuity(lo).pc_old, predict_continuity(hi).pc_old);
}

TEST(ContinuityModel, MoreReplicasMoreContinuity) {
  ContinuityInputs k1;
  k1.k = 1;
  ContinuityInputs k6;
  k6.k = 6;
  EXPECT_LT(predict_continuity(k1).pc_new, predict_continuity(k6).pc_new);
}

TEST(ContinuityModel, ZeroReplicasNoImprovement) {
  ContinuityInputs in;
  in.k = 0;
  const auto out = predict_continuity(in);
  EXPECT_NEAR(out.delta, 0.0, 1e-12);
}

TEST(ContinuityModel, TriggerProbabilityIsEq11) {
  ContinuityInputs in;
  in.lambda = 15.0;
  const auto out = predict_continuity(in);
  EXPECT_NEAR(out.trigger_probability, poisson_cdf(10, 15.0), 1e-12);
}

TEST(ContinuityModel, PrefetchFailureProbability) {
  EXPECT_DOUBLE_EQ(prefetch_all_fail_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(prefetch_all_fail_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(prefetch_all_fail_probability(4), 1.0 / 16.0);
}

TEST(ContinuityModel, FetchTimeMatchesEq7) {
  // t_fetch = (log2(n)/2 + 3) * t_hop; n = 1000, t_hop = 50 ms -> ~0.4 s
  // (the paper rounds log2(1000)/2 ~ 5 to get 8 * 50 ms).
  const double t = expected_fetch_time_s(1000.0, 0.05);
  EXPECT_NEAR(t, (std::log2(1000.0) / 2.0 + 3.0) * 0.05, 1e-12);
  EXPECT_NEAR(t, 0.4, 0.01);
}

TEST(ContinuityModel, InitialAlphaMatchesEq9) {
  // alpha = p/B * max(tau, t_fetch) = 10/600 * 1 = 1/60.
  EXPECT_NEAR(initial_urgent_ratio(10, 600, 1.0, 0.4), 1.0 / 60.0, 1e-12);
  // When t_fetch dominates it scales up.
  EXPECT_NEAR(initial_urgent_ratio(10, 600, 1.0, 3.0), 0.05, 1e-12);
}

TEST(ContinuityModel, RejectsBadInputs) {
  ContinuityInputs in;
  in.tau = 0.0;
  EXPECT_THROW((void)predict_continuity(in), std::invalid_argument);
  EXPECT_THROW((void)expected_fetch_time_s(0.5, 0.05), std::invalid_argument);
  EXPECT_THROW((void)initial_urgent_ratio(10, 0, 1.0, 0.4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Coverage formulas
// ---------------------------------------------------------------------------

TEST(Coverage, KermarrecConvergesToOne) {
  EXPECT_NEAR(kermarrec_coverage(0.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(kermarrec_coverage(3.0), 0.95);
  EXPECT_GT(kermarrec_coverage(5.0), 0.99);
  EXPECT_LT(kermarrec_coverage(-2.0), 0.01);
}

TEST(Coverage, KermarrecMonotone) {
  double prev = 0.0;
  for (double c = -3.0; c <= 5.0; c += 0.5) {
    const double v = kermarrec_coverage(c);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Coverage, CoolStreamingFormula) {
  // 1 - exp(-M (M-1)^(d-2) / ((M-2) n)).
  const double v = coolstreaming_coverage(5, 6, 1000.0);
  const double expected = 1.0 - std::exp(-5.0 * std::pow(4.0, 4.0) / (3.0 * 1000.0));
  EXPECT_NEAR(v, expected, 1e-12);
}

TEST(Coverage, CoolStreamingGrowsWithDistance) {
  double prev = 0.0;
  for (unsigned d = 2; d <= 12; ++d) {
    const double v = coolstreaming_coverage(5, d, 1000.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GT(prev, 0.99);  // deep enough gossip covers everyone
}

TEST(Coverage, CoverageDistanceFindsThreshold) {
  const unsigned d = coverage_distance(5, 1000.0, 0.99);
  EXPECT_GE(d, 2u);
  EXPECT_GE(coolstreaming_coverage(5, d, 1000.0), 0.99);
  EXPECT_LT(coolstreaming_coverage(5, d - 1, 1000.0), 0.99);
}

TEST(Coverage, LargerNetworksNeedDeeperGossip) {
  EXPECT_LE(coverage_distance(5, 100.0, 0.99), coverage_distance(5, 8000.0, 0.99));
}

TEST(Coverage, RejectsBadArguments) {
  EXPECT_THROW((void)coolstreaming_coverage(2, 3, 100.0), std::invalid_argument);
  EXPECT_THROW((void)coolstreaming_coverage(5, 1, 100.0), std::invalid_argument);
  EXPECT_THROW((void)coolstreaming_coverage(5, 3, 0.0), std::invalid_argument);
}

TEST(Coverage, ControlOverheadModelMatchesPaper) {
  // Section 5.4.2: overhead = 620 M / (30*1024*10), which the paper
  // rounds to M/495.
  EXPECT_NEAR(control_overhead_model(5, 10), 5.0 / 495.0, 2e-4);
  EXPECT_NEAR(control_overhead_model(4, 10), 4.0 / 495.0, 2e-4);
  EXPECT_NEAR(control_overhead_model(6, 10), 6.0 / 495.0, 2e-4);
  EXPECT_LT(control_overhead_model(6, 10), 0.02);  // Fig. 9's ceiling
}

TEST(Coverage, PrefetchCostMatchesPaper) {
  // Section 5.4.3: ~ (k(log2 n / 2 + 1) + 1) * 80 + 30*1024 ~ 33000 bits
  // for k = 4, n <= 8000.
  const double bits = prefetch_cost_bits(4, 8000.0);
  EXPECT_NEAR(bits, 33000.0, 1500.0);
  EXPECT_GT(bits, 30.0 * 1024.0);  // dominated by the segment itself
}

class ContinuityModelSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContinuityModelSweep, DeltaShrinksAsLambdaGrows) {
  // With abundant bandwidth, gossip alone suffices and the DHT adds
  // little — delta must decay in lambda.
  ContinuityInputs lo;
  lo.lambda = GetParam();
  ContinuityInputs hi;
  hi.lambda = GetParam() + 5.0;
  EXPECT_GE(predict_continuity(lo).delta, predict_continuity(hi).delta - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ContinuityModelSweep,
                         ::testing::Values(11.0, 13.0, 15.0, 18.0, 22.0));

}  // namespace
}  // namespace continu::analysis
