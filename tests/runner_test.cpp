// ExperimentRunner tests: jobs-invariant determinism, aggregation math,
// derived seeding, and a smoke pass over the shared scenario matrix.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"

namespace continu::runner {
namespace {

[[nodiscard]] ReplicationSpec small_spec(std::uint64_t seed, bool churn = false) {
  ReplicationSpec spec;
  spec.label = "test";
  spec.config.seed = seed;
  spec.config.expected_nodes = 120.0;
  spec.config.churn_enabled = churn;
  spec.trace.node_count = 120;
  spec.trace.seed = 5;
  spec.duration = 20.0;
  spec.stable_from = 10.0;
  return spec;
}

[[nodiscard]] bool stats_equal(const core::SessionStats& a, const core::SessionStats& b) {
  return a.segments_emitted == b.segments_emitted &&
         a.segments_delivered == b.segments_delivered &&
         a.duplicate_deliveries == b.duplicate_deliveries &&
         a.requests_sent == b.requests_sent &&
         a.segments_booked == b.segments_booked &&
         a.segments_refused == b.segments_refused &&
         a.candidates_seen == b.candidates_seen &&
         a.candidates_unassigned == b.candidates_unassigned &&
         a.prefetch_launched == b.prefetch_launched &&
         a.prefetch_succeeded == b.prefetch_succeeded &&
         a.prefetch_no_replica == b.prefetch_no_replica &&
         a.prefetch_suppressed == b.prefetch_suppressed &&
         a.segments_pushed == b.segments_pushed &&
         a.dht_route_messages == b.dht_route_messages &&
         a.dht_route_failures == b.dht_route_failures && a.joins == b.joins &&
         a.graceful_leaves == b.graceful_leaves &&
         a.abrupt_leaves == b.abrupt_leaves &&
         a.neighbor_replacements == b.neighbor_replacements &&
         a.transfer_timeouts == b.transfer_timeouts;
}

TEST(ReplicationSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(replication_seed(42, 0), replication_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 64; ++i) seen.insert(replication_seed(42, i));
  EXPECT_EQ(seen.size(), 64u) << "derived seeds must not collide";
  EXPECT_NE(replication_seed(42, 0), replication_seed(43, 0));
}

TEST(Replicate, LabelsAndSeeds) {
  ReplicationSpec base = small_spec(7);
  base.label = "sweep";
  const auto specs = replicate(base, 5);
  ASSERT_EQ(specs.size(), 5u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].config.seed, replication_seed(7, i));
    EXPECT_EQ(specs[i].label, "sweep #" + std::to_string(i));
    EXPECT_EQ(specs[i].trace.seed, base.trace.seed) << "trace must not vary";
  }
}

TEST(Replicate, VaryTraceSeedDerivesFreshTopologies) {
  ReplicationSpec base = small_spec(7);
  ReplicateOptions options;
  options.vary_trace_seed = true;
  const auto specs = replicate(base, 5, options);
  ASSERT_EQ(specs.size(), 5u);
  std::set<std::uint64_t> trace_seeds;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].config.seed, replication_seed(7, i));
    EXPECT_EQ(specs[i].trace.seed, replication_seed(base.trace.seed, i));
    trace_seeds.insert(specs[i].trace.seed);
  }
  EXPECT_EQ(trace_seeds.size(), specs.size()) << "topologies must differ";

  // Default behaviour is unchanged: same call without the option is
  // bit-identical to the two-argument overload.
  const auto classic = replicate(base, 5);
  const auto classic_default = replicate(base, 5, ReplicateOptions{});
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i].config.seed, classic_default[i].config.seed);
    EXPECT_EQ(classic[i].trace.seed, classic_default[i].trace.seed);
    EXPECT_EQ(classic[i].trace.seed, base.trace.seed);
  }
}

TEST(Replicate, VaryTraceSeedRejectsPinnedSnapshot) {
  ReplicationSpec base = small_spec(7);
  base.snapshot = std::make_shared<const trace::TraceSnapshot>(
      trace::generate_snapshot(base.trace));
  ReplicateOptions options;
  options.vary_trace_seed = true;
  EXPECT_THROW((void)replicate(base, 3, options), std::invalid_argument);
}

TEST(ExperimentRunner, VaryTraceSeedProducesDistinctRunsDeterministically) {
  ReplicationSpec base = small_spec(31);
  ReplicateOptions options;
  options.vary_trace_seed = true;
  const auto specs = replicate(base, 3, options);

  const ExperimentRunner serial(1);
  const ExperimentRunner pool(8);
  const auto a = serial.run_all(specs);
  const auto b = pool.run_all(specs);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(stats_equal(a[i].stats, b[i].stats))
        << "jobs-invariance must hold with per-replication topologies";
    EXPECT_GT(a[i].stats.segments_delivered, 0u);
  }
  // Distinct topologies actually produce distinct sessions.
  EXPECT_FALSE(stats_equal(a[0].stats, a[1].stats));
  EXPECT_FALSE(stats_equal(a[1].stats, a[2].stats));
}

// The acceptance bar: same specs => bit-identical per-seed results at
// jobs=1 and jobs=8, in the same (spec) order.
TEST(ExperimentRunner, JobsInvariantDeterminism) {
  ReplicationSpec base = small_spec(11, /*churn=*/true);
  const auto specs = replicate(base, 6);

  const ExperimentRunner serial(1);
  const ExperimentRunner pool(8);
  const auto a = serial.run_all(specs);
  const auto b = pool.run_all(specs);

  ASSERT_EQ(a.size(), specs.size());
  ASSERT_EQ(b.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed) << "replication " << i;
    EXPECT_EQ(a[i].stable_continuity, b[i].stable_continuity) << "replication " << i;
    EXPECT_EQ(a[i].control_overhead, b[i].control_overhead) << "replication " << i;
    EXPECT_EQ(a[i].prefetch_overhead, b[i].prefetch_overhead) << "replication " << i;
    EXPECT_TRUE(stats_equal(a[i].stats, b[i].stats)) << "replication " << i;
    ASSERT_EQ(a[i].continuity.rounds().size(), b[i].continuity.rounds().size());
    for (std::size_t r = 0; r < a[i].continuity.rounds().size(); ++r) {
      EXPECT_EQ(a[i].continuity.rounds()[r].continuous_nodes,
                b[i].continuity.rounds()[r].continuous_nodes);
    }
  }
}

TEST(ExperimentRunner, RerunIsDeterministic) {
  const auto specs = replicate(small_spec(3), 2);
  const ExperimentRunner pool(2);
  const auto a = pool.run_all(specs);
  const auto b = pool.run_all(specs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stable_continuity, b[i].stable_continuity);
    EXPECT_TRUE(stats_equal(a[i].stats, b[i].stats));
  }
}

TEST(ExperimentRunner, AggregationMath) {
  // Hand-built results: aggregation must reproduce textbook mean/stddev
  // and element-wise stat sums without running any session.
  std::vector<ReplicationResult> runs(3);
  runs[0].stable_continuity = 0.90;
  runs[1].stable_continuity = 0.95;
  runs[2].stable_continuity = 1.00;
  runs[0].control_overhead = 0.010;
  runs[1].control_overhead = 0.020;
  runs[2].control_overhead = 0.030;
  runs[0].stabilization_time = 10.0;
  runs[1].stabilization_time = -1.0;  // never stabilized: excluded
  runs[2].stabilization_time = 20.0;
  runs[0].stats.segments_delivered = 100;
  runs[1].stats.segments_delivered = 200;
  runs[2].stats.segments_delivered = 300;
  runs[0].stats.joins = 1;
  runs[2].stats.prefetch_launched = 7;

  const auto agg = ExperimentRunner::aggregate(runs);
  EXPECT_EQ(agg.replications, 3u);
  EXPECT_NEAR(agg.continuity.mean(), 0.95, 1e-12);
  // Population stddev of {0.90, 0.95, 1.00} = sqrt(0.05^2 * 2 / 3).
  EXPECT_NEAR(agg.continuity.stddev(), 0.040824829046386, 1e-9);
  EXPECT_NEAR(agg.continuity.min(), 0.90, 1e-12);
  EXPECT_NEAR(agg.continuity.max(), 1.00, 1e-12);
  EXPECT_NEAR(agg.control_overhead.mean(), 0.020, 1e-12);
  EXPECT_EQ(agg.stabilization_time.count(), 2u);
  EXPECT_NEAR(agg.stabilization_time.mean(), 15.0, 1e-12);
  EXPECT_EQ(agg.total.segments_delivered, 600u);
  EXPECT_EQ(agg.total.joins, 1u);
  EXPECT_EQ(agg.total.prefetch_launched, 7u);
  EXPECT_EQ(agg.runs.size(), 3u);
}

TEST(ExperimentRunner, StatsSumOperator) {
  core::SessionStats a;
  a.segments_delivered = 5;
  a.abrupt_leaves = 2;
  core::SessionStats b;
  b.segments_delivered = 7;
  b.transfer_timeouts = 3;
  const auto c = a + b;
  EXPECT_EQ(c.segments_delivered, 12u);
  EXPECT_EQ(c.abrupt_leaves, 2u);
  EXPECT_EQ(c.transfer_timeouts, 3u);
}

TEST(ExperimentRunner, EmptyBatch) {
  const ExperimentRunner pool(4);
  const auto results = pool.run_all({});
  EXPECT_TRUE(results.empty());
  const auto agg = ExperimentRunner::aggregate({});
  EXPECT_EQ(agg.replications, 0u);
  EXPECT_TRUE(agg.continuity.empty());
}

TEST(ExperimentRunner, MoreJobsThanSpecs) {
  const auto specs = replicate(small_spec(19), 2);
  const ExperimentRunner pool(16);
  const auto results = pool.run_all(specs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_GT(r.stats.segments_delivered, 0u);
}

// --- scenario matrix ------------------------------------------------------

TEST(ScenarioMatrix, NamedLookup) {
  EXPECT_GE(scenario_matrix().size(), 3u);
  EXPECT_TRUE(find_scenario("static_1k").has_value());
  EXPECT_TRUE(find_scenario("dynamic_1k").has_value());
  EXPECT_FALSE(find_scenario("no_such_scenario").has_value());

  const auto names = scenario_names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size()) << "scenario names must be unique";
}

TEST(ScenarioMatrix, ConfigReflectsScenario) {
  const auto dynamic = *find_scenario("dynamic_1k");
  const auto config = dynamic.make_config(99);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_TRUE(config.churn_enabled);
  EXPECT_DOUBLE_EQ(config.expected_nodes, static_cast<double>(dynamic.node_count));

  const auto cool = *find_scenario("cool_static_1k");
  EXPECT_EQ(cool.make_config(1).scheduler, core::SchedulerKind::kCoolStreaming);
  EXPECT_FALSE(cool.make_config(1).churn_enabled);
}

TEST(ScenarioMatrix, SelectorExpandsExactNamesAndFamilyPrefixes) {
  // Exact names resolve to exactly that scenario.
  const auto exact = expand_scenario_selector("q1_static_1k");
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].name, "q1_static_1k");

  // A family prefix expands to every member that starts with it,
  // across the matrix AND the families — "--only q1_" must sweep the
  // whole quantized family, never error out.
  const auto family = expand_scenario_selector("q1_");
  EXPECT_GT(family.size(), 1u);
  bool saw_static_1k = false;
  for (const auto& scenario : family) {
    EXPECT_EQ(scenario.name.compare(0, 3, "q1_"), 0) << scenario.name;
    if (scenario.name == "q1_static_1k") saw_static_1k = true;
  }
  EXPECT_TRUE(saw_static_1k);

  // An exact matrix name that is ALSO a prefix of other names must
  // resolve to the exact match alone (exact beats prefix).
  const auto exact_wins = expand_scenario_selector("static_1k");
  ASSERT_EQ(exact_wins.size(), 1u);
  EXPECT_EQ(exact_wins[0].name, "static_1k");

  // Matching nothing yields an empty vector — callers turn that into
  // an unknown-scenario error, never a vacuously-empty sweep.
  EXPECT_TRUE(expand_scenario_selector("zzz_no_such_prefix").empty());
  EXPECT_TRUE(expand_scenario_selector("").empty());
}

// Smoke: at least 3 named scenarios run end-to-end (downscaled horizon)
// through the runner and produce sane metrics.
TEST(ScenarioMatrix, SmokeRunsThroughRunner) {
  const std::vector<std::string> names = {"static_small", "no_prefetch",
                                          "thin_replicas"};
  std::vector<ReplicationSpec> specs;
  for (const auto& name : names) {
    auto scenario = find_scenario(name);
    ASSERT_TRUE(scenario.has_value()) << name;
    // Downscale for test speed: small overlays, short horizon.
    scenario->node_count = std::min<std::size_t>(scenario->node_count, 150);
    scenario->duration = 15.0;
    scenario->stable_from = 8.0;
    specs.push_back(spec_for(*scenario, 2024));
  }

  const ExperimentRunner pool(4);
  const auto experiment = pool.run_experiment(specs);
  ASSERT_EQ(experiment.runs.size(), names.size());
  EXPECT_EQ(experiment.replications, names.size());
  for (std::size_t i = 0; i < experiment.runs.size(); ++i) {
    const auto& run = experiment.runs[i];
    EXPECT_EQ(run.label, names[i]);
    EXPECT_GT(run.stats.segments_delivered, 0u) << names[i];
    EXPECT_GE(run.stable_continuity, 0.0) << names[i];
    EXPECT_LE(run.stable_continuity, 1.0) << names[i];
    EXPECT_FALSE(run.continuity.rounds().empty()) << names[i];
  }
  // "no_prefetch" really disables pre-fetch.
  EXPECT_EQ(experiment.runs[1].stats.prefetch_launched, 0u);
  EXPECT_GT(experiment.total.segments_delivered, 0u);
}

}  // namespace
}  // namespace continu::runner
