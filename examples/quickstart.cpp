// Quickstart: run the shared "static_small" scenario through the
// ExperimentRunner and print the headline metrics. This is the smallest
// end-to-end use of the public API: named scenario -> spec -> runner ->
// results. (For raw Session-level control see examples/dht_explorer.cpp.)

#include <cstdio>

#include "runner/experiment_runner.hpp"
#include "runner/scenario.hpp"

int main() {
  using namespace continu;

  // 1. The shared scenario matrix names the standard workloads; pick the
  //    200-node static one every bench/test also knows by name.
  const auto scenario = runner::find_scenario("static_small");
  if (!scenario.has_value()) {
    std::fprintf(stderr, "scenario matrix is missing static_small\n");
    return 1;
  }

  // 2. One replication at seed 7. (spec_for fills in the paper's
  //    standard system parameters: 300 Kbps stream split into 10
  //    segments/s, B = 600-segment buffers, M = 5 partners, k = 4 DHT
  //    backups, l = 5 pre-fetches per round.)
  const auto result = runner::ExperimentRunner::run_one(runner::spec_for(*scenario, 7));

  // 3. Results.
  std::printf("ContinuStreaming quickstart (%s: %zu nodes, %.0f s)\n",
              scenario->name.c_str(), scenario->node_count, scenario->duration);
  std::printf("  segments emitted        : %llu\n",
              static_cast<unsigned long long>(result.stats.segments_emitted));
  std::printf("  segments delivered      : %llu\n",
              static_cast<unsigned long long>(result.stats.segments_delivered));
  std::printf("  stable continuity       : %.3f   (paper target: close to 1.0)\n",
              result.stable_continuity);
  std::printf("  control overhead        : %.4f   (paper model: M/495 = %.4f)\n",
              result.control_overhead, 5.0 / 495.0);
  std::printf("  pre-fetch overhead      : %.4f   (paper: < 0.04)\n",
              result.prefetch_overhead);
  std::printf("  pre-fetches launched/ok : %llu / %llu\n",
              static_cast<unsigned long long>(result.stats.prefetch_launched),
              static_cast<unsigned long long>(result.stats.prefetch_succeeded));

  std::printf("\nContinuity track (every 5 s):\n");
  for (const auto& round : result.continuity.rounds()) {
    const auto t = static_cast<long long>(round.time);
    if (t % 5 == 0) {
      std::printf("  t=%2llds  continuity=%.3f\n", t, round.ratio());
    }
  }
  return 0;
}
