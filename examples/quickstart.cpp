// Quickstart: build a small ContinuStreaming session on a synthetic
// clip2-style trace, stream for 40 virtual seconds, and print the
// headline metrics. This is the smallest end-to-end use of the public
// API: trace generation -> configuration -> session -> results.

#include <cstdio>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/message.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace continu;

  // 1. A 200-host overlay snapshot in the style of the clip2 crawls.
  trace::GeneratorConfig trace_config;
  trace_config.node_count = 200;
  trace_config.seed = 42;
  const auto snapshot = trace::generate_snapshot(trace_config);

  // 2. The paper's standard system parameters (300 Kbps stream split
  //    into 10 segments/s, B = 600-segment buffers, M = 5 partners,
  //    k = 4 DHT backups, l = 5 pre-fetches per round).
  core::SystemConfig config;
  config.seed = 7;
  config.expected_nodes = 200.0;

  // 3. Run 40 seconds of virtual time.
  core::Session session(config, snapshot);
  session.run(40.0);

  // 4. Results.
  std::printf("ContinuStreaming quickstart (200 nodes, 40 s)\n");
  std::printf("  segments emitted        : %lld\n",
              static_cast<long long>(session.emitted()));
  std::printf("  segments delivered      : %llu\n",
              static_cast<unsigned long long>(session.stats().segments_delivered));
  std::printf("  stable continuity       : %.3f   (paper target: close to 1.0)\n",
              session.continuity().stable_mean(20.0));
  std::printf("  control overhead        : %.4f   (paper model: M/495 = %.4f)\n",
              session.traffic().control_overhead(), 5.0 / 495.0);
  std::printf("  pre-fetch overhead      : %.4f   (paper: < 0.04)\n",
              session.traffic().prefetch_overhead());
  std::printf("  pre-fetches launched/ok : %llu / %llu\n",
              static_cast<unsigned long long>(session.stats().prefetch_launched),
              static_cast<unsigned long long>(session.stats().prefetch_succeeded));

  std::printf("\nContinuity track (every 5 s):\n");
  for (const auto& round : session.continuity().rounds()) {
    const auto t = static_cast<long long>(round.time);
    if (t % 5 == 0) {
      std::printf("  t=%2llds  continuity=%.3f\n", t, round.ratio());
    }
  }
  return 0;
}
