// Churn resilience: ContinuStreaming vs the CoolStreaming baseline under
// increasingly harsh churn — the paper's core claim is that DHT-assisted
// pre-fetch matters MORE in dynamic environments. Sweeps the per-round
// churn rate and prints both systems' stable continuity side by side.

#include <cstdio>

#include "core/config.hpp"
#include "core/session.hpp"
#include "trace/generator.hpp"

namespace {

double run_stable(const continu::core::SystemConfig& config,
                  const continu::trace::TraceSnapshot& snapshot) {
  continu::core::Session session(config, snapshot);
  session.run(45.0);
  return session.continuity().stable_mean(20.0);
}

}  // namespace

int main() {
  using namespace continu;

  trace::GeneratorConfig trace_config;
  trace_config.node_count = 300;
  trace_config.seed = 17;
  const auto snapshot = trace::generate_snapshot(trace_config);

  std::printf("Churn resilience sweep (300 nodes, 45 s, stable window 20-45 s)\n\n");
  std::printf("%12s %16s %18s %10s\n", "churn/round", "CoolStreaming",
              "ContinuStreaming", "delta");

  for (const double churn : {0.0, 0.02, 0.05, 0.10}) {
    core::SystemConfig config;
    config.seed = 3;
    config.expected_nodes = 300.0;
    config.churn_enabled = churn > 0.0;
    config.churn.leave_fraction = churn;
    config.churn.join_fraction = churn;

    const double cool = run_stable(config.as_coolstreaming(), snapshot);
    const double cont = run_stable(config, snapshot);
    std::printf("%11.0f%% %16.3f %18.3f %10.3f\n", churn * 100.0, cool, cont,
                cont - cool);
  }

  std::printf("\nExpectation (paper Figs. 6/8): the delta grows with churn — the\n"
              "gossip mesh loses more segments when partners vanish, and the DHT\n"
              "pre-fetch recovers exactly those.\n");
  return 0;
}
