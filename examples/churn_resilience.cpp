// Churn resilience: ContinuStreaming vs the CoolStreaming baseline under
// increasingly harsh churn — the paper's core claim is that DHT-assisted
// pre-fetch matters MORE in dynamic environments. Sweeps the per-round
// churn rate and prints both systems' stable continuity side by side.
// The whole (churn x system) grid runs as one ExperimentRunner batch.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "runner/experiment_runner.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace continu;

  trace::GeneratorConfig trace_config;
  trace_config.node_count = 300;
  trace_config.seed = 17;
  const auto snapshot = std::make_shared<const trace::TraceSnapshot>(
      trace::generate_snapshot(trace_config));

  const std::vector<double> churn_rates = {0.0, 0.02, 0.05, 0.10};
  std::vector<runner::ReplicationSpec> specs;
  for (const double churn : churn_rates) {
    core::SystemConfig config;
    config.seed = 3;
    config.expected_nodes = 300.0;
    config.churn_enabled = churn > 0.0;
    config.churn.leave_fraction = churn;
    config.churn.join_fraction = churn;

    runner::ReplicationSpec spec;
    spec.snapshot = snapshot;
    spec.config = config.as_coolstreaming();
    specs.push_back(spec);
    spec.config = config;
    specs.push_back(spec);
  }

  const runner::ExperimentRunner pool;  // all hardware threads
  const auto results = pool.run_all(specs);

  std::printf("Churn resilience sweep (300 nodes, 45 s, stable window 20-45 s)\n\n");
  std::printf("%12s %16s %18s %10s\n", "churn/round", "CoolStreaming",
              "ContinuStreaming", "delta");

  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    const double cool = results[2 * i].stable_continuity;
    const double cont = results[2 * i + 1].stable_continuity;
    std::printf("%11.0f%% %16.3f %18.3f %10.3f\n", churn_rates[i] * 100.0, cool,
                cont, cont - cool);
  }

  std::printf("\nExpectation (paper Figs. 6/8): the delta grows with churn — the\n"
              "gossip mesh loses more segments when partners vanish, and the DHT\n"
              "pre-fetch recovers exactly those.\n");
  return 0;
}
