// DHT explorer: a tour of the structured half of the hybrid overlay —
// builds a ring, routes a few queries hop by hop, shows the level
// structure of a peer table, and demonstrates backup-responsibility
// arithmetic (hash(id*i) mod N placement, eq. 5).

#include <cmath>
#include <cstdio>

#include "dht/backup_store.hpp"
#include "dht/id_space.hpp"
#include "dht/routing_experiment.hpp"
#include "util/rng.hpp"

int main() {
  using namespace continu;

  const dht::IdSpace space(8192);
  util::Rng rng(12);
  const dht::RoutingExperiment ring(space, 1000, rng);

  std::printf("DHT explorer: N = %llu, %zu joined nodes, %u peer levels\n\n",
              static_cast<unsigned long long>(space.size()), ring.node_ids().size(),
              space.levels());

  // 1. One node's level-structured peer table.
  const NodeId sample = ring.node_ids()[500];
  std::printf("Peer table of node %u (level i peer lies in [n+2^(i-1), n+2^i)):\n",
              sample);
  const auto& table = ring.table_of(sample);
  for (unsigned level = 1; level <= space.levels(); ++level) {
    const auto peer = table.peer_at(level);
    if (peer.has_value()) {
      std::printf("  level %2u: peer %4u (clockwise distance %llu)\n", level, peer->id,
                  static_cast<unsigned long long>(space.distance(sample, peer->id)));
    } else {
      std::printf("  level %2u: (empty — no node overheard in this arc)\n", level);
    }
  }

  // 2. A few greedy routes, hop by hop.
  util::Rng query_rng(34);
  std::printf("\nGreedy clockwise routing (appendix bound: %.1f hops):\n",
              space.hop_upper_bound());
  for (int q = 0; q < 3; ++q) {
    const NodeId start = ring.node_ids()[query_rng.next_below(ring.node_ids().size())];
    const auto target = static_cast<NodeId>(query_rng.next_below(space.size()));
    const auto result = ring.route(start, target);
    std::printf("  %u -> target %u: %s in %llu hops, path:", start, target,
                result.success ? "owner found" : "route stuck",
                static_cast<unsigned long long>(result.hops));
    for (const NodeId hop : result.path) std::printf(" %u", hop);
    std::printf("\n");
  }

  // 3. Backup placement for one segment (paper eq. 5).
  std::printf("\nBackup placement of segment 1234 with k = 4 replicas:\n");
  for (unsigned replica = 1; replica <= 4; ++replica) {
    const NodeId target = space.backup_target(1234, replica);
    const auto owner = ring.directory().owner_of(target);
    std::printf("  replica %u: hash(1234 * %u) %% N = %4u -> responsible node %u\n",
                replica, replica, target, owner.value_or(kInvalidNode));
  }

  // 4. Aggregate routing quality.
  util::Rng bench_rng(56);
  const auto stats = ring.run(5000, bench_rng);
  std::printf("\n5000 random queries: avg hops %.2f (log2(n)/2 = %.2f), success %.4f\n",
              stats.average_hops, 0.5 * std::log2(1000.0), stats.success_rate);
  return 0;
}
