// Theory vs simulation: evaluates the paper's closed-form continuity
// model (Section 5.1, eqs. 10-15) across a lambda sweep and checks one
// operating point against a live simulation — the same comparison the
// paper's Section 5.1 table makes.

#include <cstdio>

#include "analysis/continuity_model.hpp"
#include "analysis/coverage.hpp"
#include "core/config.hpp"
#include "core/session.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace continu;

  std::printf("Poisson continuity model (p = 10, tau = 1 s, k = 4):\n\n");
  std::printf("%8s %10s %10s %10s %12s\n", "lambda", "PC_old", "PC_new", "delta",
              "E[N_miss]");
  for (const double lambda : {11.0, 12.0, 13.0, 14.0, 15.0, 17.0, 20.0, 25.0}) {
    analysis::ContinuityInputs in;
    in.lambda = lambda;
    const auto out = analysis::predict_continuity(in);
    std::printf("%8.1f %10.4f %10.4f %10.4f %12.3f\n", lambda, out.pc_old, out.pc_new,
                out.delta, out.expected_miss);
  }

  std::printf("\nGossip coverage checks:\n");
  std::printf("  Kermarrec e^(-e^(-c)) at c = 2: %.4f\n", analysis::kermarrec_coverage(2.0));
  std::printf("  CoolStreaming coverage (M=5, n=1000) reaches 99%% at distance %u\n",
              analysis::coverage_distance(5, 1000.0, 0.99));
  std::printf("  control overhead model M=5: %.5f (~M/495)\n",
              analysis::control_overhead_model(5, 10));
  std::printf("  pre-fetch cost per segment (k=4, n=1000): %.0f bits\n",
              analysis::prefetch_cost_bits(4, 1000.0));

  // One live data point against the model.
  std::printf("\nLive check (400 nodes, 45 s):\n");
  trace::GeneratorConfig trace_config;
  trace_config.node_count = 400;
  trace_config.seed = 21;
  const auto snapshot = trace::generate_snapshot(trace_config);
  core::SystemConfig config;
  config.seed = 11;
  config.expected_nodes = 400.0;

  core::Session continu_session(config, snapshot);
  continu_session.run(45.0);
  core::Session cool_session(config.as_coolstreaming(), snapshot);
  cool_session.run(45.0);

  analysis::ContinuityInputs in;
  in.lambda = config.mean_inbound();
  const auto predicted = analysis::predict_continuity(in);

  std::printf("  theory  (lambda = %.1f): PC_old %.3f, PC_new %.3f\n", in.lambda,
              predicted.pc_old, predicted.pc_new);
  std::printf("  measured              : PC_old %.3f, PC_new %.3f\n",
              cool_session.continuity().stable_mean(20.0),
              continu_session.continuity().stable_mean(20.0));
  std::printf("\nThe theory idealizes arrivals as Poisson(I) and ignores mesh\n"
              "position effects, so measured values sit at or below it — the same\n"
              "relationship the paper's table shows.\n");
  return 0;
}
