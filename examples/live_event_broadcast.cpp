// Live event broadcast: the flash-crowd scenario that motivates P2P
// streaming — a broadcast starts with a small audience, then a crowd
// joins mid-stream (joins far exceeding departures). Shows how joiners
// bootstrap through the RP server, follow their neighbors' play points
// and how playback continuity behaves through the surge.

#include <cstdio>

#include "core/config.hpp"
#include "core/session.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace continu;

  trace::GeneratorConfig trace_config;
  trace_config.node_count = 150;  // the early audience
  trace_config.seed = 99;
  const auto snapshot = trace::generate_snapshot(trace_config);

  core::SystemConfig config;
  config.seed = 5;
  config.expected_nodes = 600.0;  // sized for the post-surge audience
  config.churn_enabled = true;
  config.churn.leave_fraction = 0.01;   // light departures
  config.churn.join_fraction = 0.035;   // flash crowd: +3.5%/s compounding
  config.churn.graceful_fraction = 0.7;

  core::Session session(config, snapshot);

  std::printf("Live event broadcast: 150 early viewers, +3.5%%/s flash crowd\n\n");
  std::printf("%6s %12s %12s %10s %12s\n", "t (s)", "audience", "continuity",
              "joins", "prefetch ok");

  double last_ok = 0.0;
  for (int checkpoint = 10; checkpoint <= 60; checkpoint += 10) {
    session.run(checkpoint);
    const auto& stats = session.stats();
    const double ok = static_cast<double>(stats.prefetch_succeeded);
    std::printf("%6d %12zu %12.3f %10llu %12.0f\n", checkpoint, session.alive_count(),
                session.continuity().rounds().back().ratio(),
                static_cast<unsigned long long>(stats.joins), ok - last_ok);
    last_ok = ok;
  }

  std::printf("\nThe audience grew to %zu viewers; stable continuity over the "
              "surge: %.3f\n",
              session.alive_count(), session.continuity().stable_mean(20.0));
  std::printf("Joiners start playback by following their neighbors' play points\n"
              "(paper Section 5.2) and the DHT pre-fetch covers their early holes.\n");
  return 0;
}
