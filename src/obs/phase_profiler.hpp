#pragma once
// Phase profiler: nanosecond wall-clock accounting for every engine
// phase — the forked round phases (prepare-local, plan), the serial
// ones (prepare-link, commit), quantized delivery buckets and the
// metrics/churn sweeps — plus per-fork shard timing from the executor's
// ForkObserver hooks.
//
// Workers write only their own cache-line-aligned shard slot (zeroed at
// on_fork, folded at on_join on the calling thread, with the executor's
// join as the synchronization edge), so recording is lock-free and,
// once the slot vector has grown to the session's widest fork,
// allocation-free. Everything here is wall-clock measurement of
// obs-owned state: enabling the profiler cannot move a result
// fingerprint.
//
// The Amdahl estimate is thread-count robust: serial time is the run
// wall MINUS the fork walls (everything not under a fork), and the
// parallelizable mass is the summed per-shard work, so the reported
// serial fraction answers "what does perfect scaling leave behind"
// rather than reflecting however many threads this run happened to use.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/phases.hpp"
#include "sim/parallel/executor.hpp"

namespace continu::obs {

class TraceSink;

struct PhaseTotals {
  std::uint64_t serial_ns = 0;        ///< explicit serial spans
  std::uint64_t serial_spans = 0;
  std::uint64_t fork_wall_ns = 0;     ///< fork-to-join wall time
  std::uint64_t forked_work_ns = 0;   ///< summed per-shard durations
  std::uint64_t forks = 0;
  std::uint64_t shards_run = 0;
  std::uint64_t max_shard_ns = 0;     ///< summed slowest-shard durations
  double mean_shard_ns = 0.0;         ///< summed mean-shard durations

  /// Shard imbalance: slowest shard over mean shard, fork-weighted.
  /// 1.0 = perfectly balanced; 0.0 = no forked work recorded.
  [[nodiscard]] double imbalance() const noexcept {
    return mean_shard_ns > 0.0 ? static_cast<double>(max_shard_ns) / mean_shard_ns
                               : 0.0;
  }
};

struct AmdahlEstimate {
  std::uint64_t run_wall_ns = 0;
  std::uint64_t fork_wall_ns = 0;    ///< sum over all forks
  std::uint64_t forked_work_ns = 0;  ///< sum over all shards of all forks
  std::uint64_t serial_ns = 0;       ///< run_wall - fork_wall (clamped at 0)
  /// serial / (serial + forked_work); 1.0 when nothing was measured.
  double serial_fraction = 1.0;
};

struct ProfileReport {
  unsigned threads = 1;
  std::array<PhaseTotals, kPhaseCount> phases{};
  /// Log2 batch-size histogram per phase: bucket b counts forks whose
  /// item count n satisfies 2^b <= n < 2^(b+1) (bucket 0 includes n<=1).
  std::array<std::array<std::uint64_t, 20>, kPhaseCount> batch_hist{};
  AmdahlEstimate amdahl{};
};

class PhaseProfiler final : public sim::parallel::ForkObserver {
 public:
  static constexpr std::size_t kHistBuckets = 20;

  PhaseProfiler() = default;

  void set_threads(unsigned threads) noexcept { threads_ = threads; }
  /// Optional: mirror per-shard and serial spans into a trace sink
  /// (drawn as the wall-clock track of the Chrome trace export).
  void set_span_sink(TraceSink* sink) noexcept { span_sink_ = sink; }

  /// Attributes the NEXT fork/join to `phase` and bumps that phase's
  /// batch-size histogram. Call serially, immediately before the fork.
  void begin_fork_phase(Phase phase, std::size_t batch_items) noexcept;

  /// Accounts an explicit serial span (prepare-link, commit).
  void record_serial(Phase phase, std::uint64_t t0_ns, std::uint64_t t1_ns);

  /// Adds a Session::run() wall-clock bracket to the Amdahl base.
  void add_run_wall(std::uint64_t wall_ns) noexcept { run_wall_ns_ += wall_ns; }

  // ForkObserver — called by the executor.
  void on_fork(std::size_t shards) override;
  void on_shard_done(std::size_t shard, std::uint64_t t0_ns,
                     std::uint64_t t1_ns) override;
  void on_join(std::uint64_t fork_t0_ns, std::uint64_t join_t1_ns) override;

  [[nodiscard]] ProfileReport report() const;
  [[nodiscard]] const PhaseTotals& totals(Phase phase) const noexcept {
    return totals_[static_cast<std::size_t>(phase)];
  }

  /// Steady-state no-allocation witness: slot storage stops moving once
  /// the widest fork has been seen.
  [[nodiscard]] const void* shard_slot_data() const noexcept { return slots_.data(); }
  [[nodiscard]] std::size_t shard_slot_capacity() const noexcept {
    return slots_.capacity();
  }

  [[nodiscard]] static std::size_t histogram_bucket(std::size_t items) noexcept {
    std::size_t bucket = 0;
    while (items > 1 && bucket + 1 < kHistBuckets) {
      items >>= 1U;
      ++bucket;
    }
    return bucket;
  }

 private:
  // One cache line per shard: workers time disjoint slots with no
  // false sharing; the join publishes them before on_join folds.
  struct alignas(64) ShardSlot {
    std::uint64_t t0_ns = 0;
    std::uint64_t t1_ns = 0;
  };

  Phase current_ = Phase::kOtherFork;
  unsigned threads_ = 1;
  std::uint64_t run_wall_ns_ = 0;
  std::size_t fork_shards_ = 0;
  std::vector<ShardSlot> slots_;
  std::array<PhaseTotals, kPhaseCount> totals_{};
  std::array<std::array<std::uint64_t, kHistBuckets>, kPhaseCount> hist_{};
  TraceSink* span_sink_ = nullptr;
};

}  // namespace continu::obs
