#pragma once
// Structured trace capture: fixed-capacity per-shard ring buffers of
// sim-time protocol events plus a serial ring of wall-time phase spans.
//
// Determinism and thread-safety contract
// --------------------------------------
// Shard rings mirror the executor's shard decomposition: during a fork,
// shard s writes only ring s (disjoint, no locks); serial code writes
// ring 0. Because shard boundaries are a pure function of (count,
// grain) — never of the thread count — ring contents are byte-identical
// at threads 1 and 8. `ensure_shards` may allocate, but it is called
// serially before a fork launches; the record calls themselves never
// allocate (rings overwrite oldest), which the obs tests assert.
// Draining concatenates rings in shard order and stable-sorts by sim
// time, so the exported event stream is deterministic too.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs_config.hpp"
#include "obs/phases.hpp"

namespace continu::obs {

enum class TraceEventKind : std::uint8_t {
  kPullRequest = 0,  ///< node asked peer for segments (a = ids requested)
  kPullGrant,        ///< supplier accepted one segment (a = segment id)
  kPullRefused,      ///< supplier refused one segment (a = segment id)
  kSegmentDelivery,  ///< segment arrived (a = segment id, b = supplier NodeId)
  kStallStart,       ///< playback entered a stall at a sample tick
  kStallEnd,         ///< playback left a stall at a sample tick
  kFaultLoss,        ///< injector classified a send as lost (a = cause tag)
  kFaultPartition,   ///< injector classified a send as partitioned (a = cause tag)
  kRetryBackoff,     ///< hardened sweep backoffs (a = backoffs, b = blacklists)
  kBucketFire,       ///< quantized bucket dispatched (a = entries, b = receiver groups)
  kCount,
};

[[nodiscard]] inline const char* trace_event_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kPullRequest: return "pull_request";
    case TraceEventKind::kPullGrant: return "pull_grant";
    case TraceEventKind::kPullRefused: return "pull_refused";
    case TraceEventKind::kSegmentDelivery: return "segment_delivery";
    case TraceEventKind::kStallStart: return "stall_start";
    case TraceEventKind::kStallEnd: return "stall_end";
    case TraceEventKind::kFaultLoss: return "fault_loss";
    case TraceEventKind::kFaultPartition: return "fault_partition";
    case TraceEventKind::kRetryBackoff: return "retry_backoff";
    case TraceEventKind::kBucketFire: return "bucket_fire";
    case TraceEventKind::kCount: break;
  }
  return "unknown";
}

/// Sentinel session index for "no node attached to this event".
inline constexpr std::uint32_t kNoTraceNode = 0xFFFFFFFFu;

struct TraceEvent {
  double time = 0.0;  ///< sim-time seconds
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t node = kNoTraceNode;  ///< session index, when known
  std::uint32_t peer = kNoTraceNode;  ///< session index, when known
  TraceEventKind kind = TraceEventKind::kCount;
};

/// Marker shard for spans recorded outside any fork.
inline constexpr std::uint32_t kSerialSpanShard = 0xFFFFFFFFu;

struct PhaseSpan {
  std::uint64_t t0_ns = 0;  ///< monotonic wall clock
  std::uint64_t t1_ns = 0;
  std::uint32_t shard = kSerialSpanShard;
  Phase phase = Phase::kOtherFork;
};

/// Overwrite-oldest event ring. push() never allocates.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : events_(capacity == 0 ? 1 : capacity), capacity_(events_.size()) {}

  void push(const TraceEvent& event) noexcept {
    events_[head_] = event;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    ++recorded_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return recorded_ < capacity_ ? static_cast<std::size_t>(recorded_) : capacity_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  /// Steady-state no-allocation witness: storage address never moves.
  [[nodiscard]] const TraceEvent* data() const noexcept { return events_.data(); }

  /// Appends the retained events oldest-first.
  void drain_to(std::vector<TraceEvent>& out) const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::uint64_t recorded_ = 0;
};

class TraceSink {
 public:
  TraceSink(std::size_t capacity_per_shard, std::uint32_t node_filter);

  /// Grows the ring set to cover `shards`. Serial-only; call before a
  /// fork whose workers will record (the session's obs_ensure_shards).
  void ensure_shards(std::size_t shards);

  [[nodiscard]] bool accepts(std::uint32_t node, std::uint32_t peer) const noexcept {
    return node_filter_ == kTraceAllNodes || node == node_filter_ ||
           peer == node_filter_;
  }

  /// Records into ring `shard` if the event passes the node filter.
  /// Never allocates; safe from the worker owning `shard` mid-fork.
  void record(std::size_t shard, const TraceEvent& event) noexcept {
    if (!accepts(event.node, event.peer)) return;
    rings_[shard]->push(event);
  }

  /// Serial-context convenience (immediate-mode delivery, fault
  /// classification on the send path): ring 0.
  void record_serial(const TraceEvent& event) noexcept { record(0, event); }

  /// Wall-time phase span; serial-only (the profiler emits spans at
  /// joins, on the calling thread).
  void record_span(Phase phase, std::uint32_t shard, std::uint64_t t0_ns,
                   std::uint64_t t1_ns) noexcept;

  /// Rings concatenated in shard order, stable-sorted by sim time.
  [[nodiscard]] std::vector<TraceEvent> drained_events() const;
  /// Retained phase spans, oldest-first.
  [[nodiscard]] std::vector<PhaseSpan> drained_spans() const;

  [[nodiscard]] std::uint64_t recorded() const noexcept;
  [[nodiscard]] std::uint64_t overwritten() const noexcept;
  [[nodiscard]] std::size_t shard_rings() const noexcept { return rings_.size(); }
  [[nodiscard]] const TraceRing& ring(std::size_t shard) const { return *rings_[shard]; }

 private:
  std::size_t capacity_;
  std::uint32_t node_filter_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  // Span ring: serial writer only, overwrite-oldest like the event rings.
  std::vector<PhaseSpan> spans_;
  std::size_t span_capacity_;
  std::size_t span_head_ = 0;
  std::uint64_t spans_recorded_ = 0;
};

}  // namespace continu::obs
