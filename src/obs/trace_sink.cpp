#include "obs/trace_sink.hpp"

#include <algorithm>

namespace continu::obs {

void TraceRing::drain_to(std::vector<TraceEvent>& out) const {
  const std::size_t n = size();
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = recorded_ > capacity_ ? head_ : 0;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t at = start + k;
    if (at >= capacity_) at -= capacity_;
    out.push_back(events_[at]);
  }
}

TraceSink::TraceSink(std::size_t capacity_per_shard, std::uint32_t node_filter)
    : capacity_(capacity_per_shard == 0 ? 1 : capacity_per_shard),
      node_filter_(node_filter),
      spans_(4096),
      span_capacity_(spans_.size()) {
  ensure_shards(1);
}

void TraceSink::ensure_shards(std::size_t shards) {
  while (rings_.size() < shards) {
    rings_.push_back(std::make_unique<TraceRing>(capacity_));
  }
}

void TraceSink::record_span(Phase phase, std::uint32_t shard, std::uint64_t t0_ns,
                            std::uint64_t t1_ns) noexcept {
  PhaseSpan& slot = spans_[span_head_];
  slot.t0_ns = t0_ns;
  slot.t1_ns = t1_ns;
  slot.shard = shard;
  slot.phase = phase;
  span_head_ = span_head_ + 1 == span_capacity_ ? 0 : span_head_ + 1;
  ++spans_recorded_;
}

std::vector<TraceEvent> TraceSink::drained_events() const {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  out.reserve(total);
  for (const auto& ring : rings_) ring->drain_to(out);
  // Stable: ties keep shard order, so the merged stream is independent
  // of the thread count (shard structure already is).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
  return out;
}

std::vector<PhaseSpan> TraceSink::drained_spans() const {
  std::vector<PhaseSpan> out;
  const std::size_t n = spans_recorded_ < span_capacity_
                            ? static_cast<std::size_t>(spans_recorded_)
                            : span_capacity_;
  const std::size_t start = spans_recorded_ > span_capacity_ ? span_head_ : 0;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t at = start + k;
    if (at >= span_capacity_) at -= span_capacity_;
    out.push_back(spans_[at]);
  }
  return out;
}

std::uint64_t TraceSink::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->recorded();
  return total;
}

std::uint64_t TraceSink::overwritten() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->overwritten();
  return total;
}

}  // namespace continu::obs
