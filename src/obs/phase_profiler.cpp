#include "obs/phase_profiler.hpp"

#include "obs/trace_sink.hpp"

namespace continu::obs {

void PhaseProfiler::begin_fork_phase(Phase phase, std::size_t batch_items) noexcept {
  current_ = phase;
  ++hist_[static_cast<std::size_t>(phase)][histogram_bucket(batch_items)];
}

void PhaseProfiler::record_serial(Phase phase, std::uint64_t t0_ns,
                                  std::uint64_t t1_ns) {
  PhaseTotals& totals = totals_[static_cast<std::size_t>(phase)];
  totals.serial_ns += t1_ns - t0_ns;
  ++totals.serial_spans;
  if (span_sink_ != nullptr) {
    span_sink_->record_span(phase, kSerialSpanShard, t0_ns, t1_ns);
  }
}

void PhaseProfiler::on_fork(std::size_t shards) {
  fork_shards_ = shards;
  if (slots_.size() < shards) slots_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) slots_[s] = ShardSlot{};
}

void PhaseProfiler::on_shard_done(std::size_t shard, std::uint64_t t0_ns,
                                  std::uint64_t t1_ns) {
  // Worker context: `shard` slots are disjoint, and the executor's join
  // happens-before on_join's reads.
  slots_[shard].t0_ns = t0_ns;
  slots_[shard].t1_ns = t1_ns;
}

void PhaseProfiler::on_join(std::uint64_t fork_t0_ns, std::uint64_t join_t1_ns) {
  PhaseTotals& totals = totals_[static_cast<std::size_t>(current_)];
  ++totals.forks;
  totals.fork_wall_ns += join_t1_ns - fork_t0_ns;
  std::uint64_t work = 0;
  std::uint64_t max_shard = 0;
  for (std::size_t s = 0; s < fork_shards_; ++s) {
    const std::uint64_t busy = slots_[s].t1_ns - slots_[s].t0_ns;
    work += busy;
    if (busy > max_shard) max_shard = busy;
    if (span_sink_ != nullptr) {
      span_sink_->record_span(current_, static_cast<std::uint32_t>(s),
                              slots_[s].t0_ns, slots_[s].t1_ns);
    }
  }
  totals.forked_work_ns += work;
  totals.shards_run += fork_shards_;
  totals.max_shard_ns += max_shard;
  if (fork_shards_ > 0) {
    totals.mean_shard_ns +=
        static_cast<double>(work) / static_cast<double>(fork_shards_);
  }
  // A fork launched without a bracket (there should be none) counts
  // against kOtherFork rather than the previous phase.
  current_ = Phase::kOtherFork;
}

ProfileReport PhaseProfiler::report() const {
  ProfileReport out;
  out.threads = threads_;
  out.phases = totals_;
  out.batch_hist = hist_;
  AmdahlEstimate& amdahl = out.amdahl;
  amdahl.run_wall_ns = run_wall_ns_;
  for (const PhaseTotals& totals : totals_) {
    amdahl.fork_wall_ns += totals.fork_wall_ns;
    amdahl.forked_work_ns += totals.forked_work_ns;
  }
  amdahl.serial_ns = run_wall_ns_ > amdahl.fork_wall_ns
                         ? run_wall_ns_ - amdahl.fork_wall_ns
                         : 0;
  const double denom =
      static_cast<double>(amdahl.serial_ns) + static_cast<double>(amdahl.forked_work_ns);
  amdahl.serial_fraction =
      denom > 0.0 ? static_cast<double>(amdahl.serial_ns) / denom : 1.0;
  return out;
}

}  // namespace continu::obs
