#pragma once
// Runtime switches for the deterministic observability layer (src/obs/).
// Everything defaults OFF: a default-constructed config adds nothing to
// the hot paths beyond null-pointer checks, and enabling any pillar is
// guaranteed not to move a result fingerprint — observability writes
// only to obs-owned state (profiler slots, trace rings, counter lanes),
// never to RNG streams, node state or the event queue. CI enforces the
// guarantee by diffing scenario fingerprints obs-on vs obs-off.

#include <cstddef>
#include <cstdint>

namespace continu::obs {

/// Sentinel for "trace every node" (no per-node timeline filter).
inline constexpr std::uint32_t kTraceAllNodes = 0xFFFFFFFFu;

struct ObsConfig {
  /// Phase profiler: wall-clock timers around round phases, delivery
  /// buckets and executor fork/joins, plus the Amdahl serial-fraction
  /// estimate.
  bool profile = false;
  /// Structured trace: per-shard ring buffers of sim-time protocol
  /// events and wall-time phase spans, exportable as Chrome trace JSON.
  bool trace = false;
  /// Counter registry: per-shard counters settled in shard order,
  /// dumped as a JSON snapshot.
  bool counters = false;
  /// Per-node timeline filter: record only trace events whose node (or
  /// peer) session index matches. kTraceAllNodes = record everything.
  std::uint32_t trace_node = kTraceAllNodes;
  /// Events per shard ring (memory = shards x capacity x ~40 B; the
  /// ring overwrites oldest, so a run always keeps its newest tail).
  std::size_t trace_capacity = 4096;

  [[nodiscard]] bool any() const noexcept { return profile || trace || counters; }
};

}  // namespace continu::obs
