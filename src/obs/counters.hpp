#pragma once
// Counter registry: named counters accumulated into per-shard lanes and
// settled in shard order.
//
// Like the session's shard-stats buffers, a lane is owned exclusively
// by one shard during a fork (serial code uses lane 0), so add() is a
// plain unsynchronized increment — wait-free, allocation-free. settle()
// folds lanes into totals walking lanes in shard index order, which
// makes the totals — and any snapshot built from them — independent of
// the thread count and of worker scheduling.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace continu::obs {

class CounterRegistry {
 public:
  using Id = std::uint32_t;

  /// Registers a counter and returns its dense id. Serial-only; call
  /// before the run starts. Names are reported in declaration order.
  Id declare(std::string name);

  /// Grows the lane set to cover `shards`. Serial-only; call before a
  /// fork whose workers will count.
  void ensure_shards(std::size_t shards);

  /// Wait-free, allocation-free; callable from the worker owning
  /// `shard` mid-fork. Requires ensure_shards(shard + 1) to have run.
  void add(std::size_t shard, Id id, std::uint64_t delta) noexcept {
    lanes_[shard]->slots[id] += delta;
  }

  /// Folds every lane into the totals, in shard index order, and zeroes
  /// the lanes. Serial-only.
  void settle();

  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }
  [[nodiscard]] std::uint64_t value(Id id) const noexcept { return totals_[id]; }
  [[nodiscard]] std::size_t lane_count() const noexcept { return lanes_.size(); }
  /// Steady-state no-allocation witness: slot storage never moves.
  [[nodiscard]] const void* lane_address(std::size_t shard) const noexcept {
    return lanes_[shard]->slots.data();
  }

 private:
  // unique_ptr keeps each lane's address stable as the vector grows, so
  // a serial ensure_shards cannot move memory a later fork writes.
  struct Lane {
    std::vector<std::uint64_t> slots;
  };
  std::vector<std::string> names_;
  std::vector<std::uint64_t> totals_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace continu::obs
