#pragma once
// Observability output: a materialized ObsReport snapshot (what a
// Session hands back after a run) plus the three writers — a human
// phase-breakdown table, Chrome trace-event JSON for
// chrome://tracing / Perfetto, and a counters/profile JSON snapshot.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase_profiler.hpp"
#include "obs/trace_sink.hpp"

namespace continu::obs {

struct ObsReport {
  bool profile = false;
  bool trace = false;
  bool counters = false;
  ProfileReport prof{};
  std::vector<TraceEvent> events;  ///< drained, time-sorted
  std::vector<PhaseSpan> spans;    ///< drained, oldest-first
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_overwritten = 0;
  /// Settled registry counters followed by snapshot-time mirrors of the
  /// session/engine/network totals, in a deterministic order.
  std::vector<std::pair<std::string, std::uint64_t>> counter_values;
};

/// Human-readable phase breakdown: per-phase serial/fork wall, shard
/// imbalance, batch histograms and the Amdahl serial fraction.
void print_profile(const ObsReport& report, std::FILE* out);

/// Chrome trace-event JSON. Track layout: pid 0 carries wall-clock
/// phase spans ("X" events, tid = shard, serial spans on tid 0); pid 1
/// carries sim-time protocol events ("i" events, tid = node, sim
/// seconds mapped to microseconds). Returns false on I/O failure.
bool write_chrome_trace(const ObsReport& report, const std::string& path);

/// Counters + profile snapshot as JSON. `headline` carries the runner's
/// derived metrics (continuity indices, overheads).
bool write_stats_json(const ObsReport& report, const std::string& path,
                      const std::string& label, std::uint64_t seed,
                      const std::vector<std::pair<std::string, double>>& headline);

}  // namespace continu::obs
