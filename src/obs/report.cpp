#include "obs/report.hpp"

#include <algorithm>
#include <cinttypes>

namespace continu::obs {
namespace {

/// Minimal JSON string escaping: quotes, backslashes and control bytes.
/// Names here are ASCII identifiers, so this is exhaustive in practice.
std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

struct FileCloser {
  std::FILE* file;
  ~FileCloser() {
    if (file != nullptr) std::fclose(file);
  }
};

}  // namespace

void print_profile(const ObsReport& report, std::FILE* out) {
  if (!report.profile) return;
  const ProfileReport& prof = report.prof;
  std::fprintf(out, "phase profile (threads=%u)\n", prof.threads);
  std::fprintf(out,
               "  %-16s %10s %10s %12s %12s %8s %10s\n",
               "phase", "forks", "serial_ms", "fork_wall_ms", "work_ms",
               "shards", "imbalance");
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const PhaseTotals& totals = prof.phases[p];
    if (totals.forks == 0 && totals.serial_spans == 0) continue;
    std::fprintf(out,
                 "  %-16s %10" PRIu64 " %10.3f %12.3f %12.3f %8" PRIu64 " %10.3f\n",
                 phase_name(static_cast<Phase>(p)), totals.forks,
                 ms(totals.serial_ns), ms(totals.fork_wall_ns),
                 ms(totals.forked_work_ns), totals.shards_run,
                 totals.imbalance());
  }
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const auto& hist = prof.batch_hist[p];
    std::size_t top = 0;
    for (std::size_t b = 0; b < PhaseProfiler::kHistBuckets; ++b) {
      if (hist[b] > 0) top = b + 1;
    }
    if (top == 0) continue;
    std::fprintf(out, "  batch sizes %-14s:", phase_name(static_cast<Phase>(p)));
    for (std::size_t b = 0; b < top; ++b) {
      std::fprintf(out, " [>=%zu]=%" PRIu64, static_cast<std::size_t>(1) << b,
                   hist[b]);
    }
    std::fprintf(out, "\n");
  }
  const AmdahlEstimate& amdahl = prof.amdahl;
  std::fprintf(out,
               "  run wall %.3f ms = serial %.3f ms + fork wall %.3f ms "
               "(forked work %.3f ms)\n",
               ms(amdahl.run_wall_ns), ms(amdahl.serial_ns),
               ms(amdahl.fork_wall_ns), ms(amdahl.forked_work_ns));
  std::fprintf(out,
               "  Amdahl serial fraction %.4f -> perfect-scaling speedup cap "
               "%.2fx\n",
               amdahl.serial_fraction,
               amdahl.serial_fraction > 0.0 ? 1.0 / amdahl.serial_fraction : 0.0);
}

bool write_chrome_trace(const ObsReport& report, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  FileCloser closer{file};

  std::fputs("{\"traceEvents\":[\n", file);
  bool first = true;
  auto sep = [&] {
    if (!first) std::fputs(",\n", file);
    first = false;
  };

  sep();
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"wall-clock phases (tid = shard)\"}}",
      file);
  sep();
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"sim-time protocol events (tid = node)\"}}",
      file);

  // Wall-clock spans, rebased so the first span starts at ts 0.
  std::uint64_t base = 0;
  bool base_set = false;
  for (const PhaseSpan& span : report.spans) {
    if (!base_set || span.t0_ns < base) {
      base = span.t0_ns;
      base_set = true;
    }
  }
  for (const PhaseSpan& span : report.spans) {
    sep();
    const double ts = static_cast<double>(span.t0_ns - base) / 1e3;
    const double dur = static_cast<double>(span.t1_ns - span.t0_ns) / 1e3;
    const std::uint32_t tid = span.shard == kSerialSpanShard ? 0 : span.shard + 1;
    std::fprintf(file,
                 "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":0,"
                 "\"tid\":%" PRIu32 ",\"ts\":%.3f,\"dur\":%.3f}",
                 phase_name(span.phase), tid, ts, dur);
  }

  // Sim-time events: 1 sim second = 1 trace second (ts is in us).
  for (const TraceEvent& event : report.events) {
    sep();
    const std::uint32_t tid = event.node == kNoTraceNode ? 0 : event.node;
    std::fprintf(file,
                 "{\"name\":\"%s\",\"cat\":\"protocol\",\"ph\":\"i\",\"s\":\"t\","
                 "\"pid\":1,\"tid\":%" PRIu32 ",\"ts\":%.3f,\"args\":{",
                 trace_event_name(event.kind), tid, event.time * 1e6);
    std::fprintf(file, "\"a\":%" PRIu64 ",\"b\":%" PRIu64, event.a, event.b);
    if (event.peer != kNoTraceNode) {
      std::fprintf(file, ",\"peer\":%" PRIu32, event.peer);
    }
    std::fputs("}}", file);
  }

  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", file);
  return std::ferror(file) == 0;
}

bool write_stats_json(const ObsReport& report, const std::string& path,
                      const std::string& label, std::uint64_t seed,
                      const std::vector<std::pair<std::string, double>>& headline) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  FileCloser closer{file};

  std::fprintf(file, "{\n  \"label\": \"%s\",\n  \"seed\": %" PRIu64 ",\n",
               json_escape(label).c_str(), seed);
  std::fprintf(file, "  \"threads\": %u,\n", report.prof.threads);

  std::fputs("  \"headline\": {", file);
  for (std::size_t i = 0; i < headline.size(); ++i) {
    std::fprintf(file, "%s\n    \"%s\": %.10g", i == 0 ? "" : ",",
                 json_escape(headline[i].first).c_str(), headline[i].second);
  }
  std::fputs("\n  },\n", file);

  std::fputs("  \"counters\": {", file);
  for (std::size_t i = 0; i < report.counter_values.size(); ++i) {
    std::fprintf(file, "%s\n    \"%s\": %" PRIu64, i == 0 ? "" : ",",
                 json_escape(report.counter_values[i].first).c_str(),
                 report.counter_values[i].second);
  }
  std::fputs("\n  },\n", file);

  if (report.profile) {
    const AmdahlEstimate& amdahl = report.prof.amdahl;
    std::fputs("  \"profile\": {\n", file);
    std::fprintf(file, "    \"run_wall_ns\": %" PRIu64 ",\n", amdahl.run_wall_ns);
    std::fprintf(file, "    \"serial_ns\": %" PRIu64 ",\n", amdahl.serial_ns);
    std::fprintf(file, "    \"fork_wall_ns\": %" PRIu64 ",\n", amdahl.fork_wall_ns);
    std::fprintf(file, "    \"forked_work_ns\": %" PRIu64 ",\n",
                 amdahl.forked_work_ns);
    std::fprintf(file, "    \"serial_fraction\": %.6f,\n", amdahl.serial_fraction);
    std::fputs("    \"phases\": [", file);
    bool first_phase = true;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const PhaseTotals& totals = report.prof.phases[p];
      if (totals.forks == 0 && totals.serial_spans == 0) continue;
      std::fprintf(file, "%s\n      {\"phase\": \"%s\"", first_phase ? "" : ",",
                   phase_name(static_cast<Phase>(p)));
      first_phase = false;
      std::fprintf(file, ", \"forks\": %" PRIu64, totals.forks);
      std::fprintf(file, ", \"serial_ns\": %" PRIu64, totals.serial_ns);
      std::fprintf(file, ", \"fork_wall_ns\": %" PRIu64, totals.fork_wall_ns);
      std::fprintf(file, ", \"forked_work_ns\": %" PRIu64, totals.forked_work_ns);
      std::fprintf(file, ", \"shards_run\": %" PRIu64, totals.shards_run);
      std::fprintf(file, ", \"imbalance\": %.6f", totals.imbalance());
      std::fputs(", \"batch_hist\": [", file);
      std::size_t top = 0;
      for (std::size_t b = 0; b < PhaseProfiler::kHistBuckets; ++b) {
        if (report.prof.batch_hist[p][b] > 0) top = b + 1;
      }
      for (std::size_t b = 0; b < top; ++b) {
        std::fprintf(file, "%s%" PRIu64, b == 0 ? "" : ", ",
                     report.prof.batch_hist[p][b]);
      }
      std::fputs("]}", file);
    }
    std::fputs("\n    ]\n  },\n", file);
  }

  std::fprintf(file,
               "  \"trace\": {\"enabled\": %s, \"events_recorded\": %" PRIu64
               ", \"events_overwritten\": %" PRIu64
               ", \"events_drained\": %zu, \"spans_drained\": %zu}\n}\n",
               report.trace ? "true" : "false", report.trace_recorded,
               report.trace_overwritten, report.events.size(),
               report.spans.size());
  return std::ferror(file) == 0;
}

}  // namespace continu::obs
