#include "obs/counters.hpp"

#include <utility>

namespace continu::obs {

CounterRegistry::Id CounterRegistry::declare(std::string name) {
  const Id id = static_cast<Id>(names_.size());
  names_.push_back(std::move(name));
  totals_.push_back(0);
  for (auto& lane : lanes_) lane->slots.resize(names_.size(), 0);
  return id;
}

void CounterRegistry::ensure_shards(std::size_t shards) {
  while (lanes_.size() < shards) {
    auto lane = std::make_unique<Lane>();
    lane->slots.assign(names_.size(), 0);
    lanes_.push_back(std::move(lane));
  }
}

void CounterRegistry::settle() {
  for (auto& lane : lanes_) {
    for (std::size_t i = 0; i < lane->slots.size(); ++i) {
      totals_[i] += lane->slots[i];
      lane->slots[i] = 0;
    }
  }
}

}  // namespace continu::obs
