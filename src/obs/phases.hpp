#pragma once
// Phase taxonomy shared by the profiler (per-phase timing totals) and
// the trace sink (wall-time phase spans). One entry per instrumented
// region of the engine; kOtherFork catches fork/joins launched without
// an explicit phase bracket so nothing is silently unattributed.

#include <cstddef>
#include <cstdint>

namespace continu::obs {

enum class Phase : std::uint8_t {
  kPrepareLocal = 0,  ///< round batch phase 1a (forked)
  kPrepareLink,       ///< round batch phase 1b (serial)
  kPlan,              ///< round batch phase 2 (forked)
  kCommit,            ///< round batch phase 3 (serial)
  kDeliveryBucket,    ///< quantized-mode bucket dispatch (forked)
  kShardDrain,        ///< sharded-engine lane pops at a barrier (forked)
  kLaxDrain,          ///< lax-mode windowed shard/lane pops (forked)
  kSampleSweep,       ///< metrics sample tick sweep (forked)
  kChurnSweep,        ///< dead-supplier transfer sweep (forked)
  kOtherFork,         ///< fork/join with no phase bracket
  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] inline const char* phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kPrepareLocal: return "prepare_local";
    case Phase::kPrepareLink: return "prepare_link";
    case Phase::kPlan: return "plan";
    case Phase::kCommit: return "commit";
    case Phase::kDeliveryBucket: return "delivery_bucket";
    case Phase::kShardDrain: return "shard_drain";
    case Phase::kLaxDrain: return "lax_drain";
    case Phase::kSampleSweep: return "sample_sweep";
    case Phase::kChurnSweep: return "churn_sweep";
    case Phase::kOtherFork: return "other_fork";
    case Phase::kCount: break;
  }
  return "unknown";
}

}  // namespace continu::obs
