#include "analysis/continuity_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/poisson.hpp"

namespace continu::analysis {

ContinuityPrediction predict_continuity(const ContinuityInputs& in) {
  if (in.lambda < 0.0 || in.tau <= 0.0) {
    throw std::invalid_argument("predict_continuity: bad lambda/tau");
  }
  const double mean = in.lambda * in.tau;
  const auto demand = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(in.p) * in.tau));

  ContinuityPrediction out;
  out.trigger_probability = poisson_cdf(demand, mean);
  out.expected_miss = poisson_expected_shortfall(demand, mean);
  out.pc_old = 1.0 - out.trigger_probability;
  const double fetch_ok = 1.0 - prefetch_all_fail_probability(in.k);
  const double all_fetched = std::pow(fetch_ok, out.expected_miss);
  out.pc_new = 1.0 - out.trigger_probability * (1.0 - all_fetched);
  out.delta = out.pc_new - out.pc_old;
  return out;
}

double prefetch_all_fail_probability(unsigned k) {
  if (k == 0) return 1.0;
  return std::pow(0.5, static_cast<double>(k));
}

double expected_fetch_time_s(double n_nodes, double t_hop_s) {
  if (n_nodes < 1.0 || t_hop_s < 0.0) {
    throw std::invalid_argument("expected_fetch_time_s: bad inputs");
  }
  const double locate_hops = std::log2(n_nodes) / 2.0;
  return (locate_hops + 3.0) * t_hop_s;
}

double initial_urgent_ratio(std::uint64_t p, std::uint64_t buffer_capacity, double tau_s,
                            double t_fetch_s) {
  if (buffer_capacity == 0) {
    throw std::invalid_argument("initial_urgent_ratio: empty buffer");
  }
  const double ratio = static_cast<double>(p) / static_cast<double>(buffer_capacity) *
                       std::max(tau_s, t_fetch_s);
  return std::min(ratio, 1.0);
}

}  // namespace continu::analysis
