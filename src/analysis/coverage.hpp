#pragma once
// Gossip coverage formulas cited in the paper (Sections 2 and 4.1).

#include <cstdint>

namespace continu::analysis {

/// Kermarrec et al.: with n nodes each gossiping to log(n) + c others,
/// P{everyone receives the message} -> exp(-exp(-c)).
[[nodiscard]] double kermarrec_coverage(double c);

/// CoolStreaming's analysis: coverage ratio at overlay distance d with M
/// connected neighbors and n nodes:
///   1 - exp(-M * (M-1)^(d-2) / ((M-2) * n)).
/// Requires M >= 3, d >= 2.
[[nodiscard]] double coolstreaming_coverage(unsigned m, unsigned d, double n);

/// Smallest distance d at which coolstreaming_coverage reaches `target`
/// (caps at `max_d`). Used to sanity-check propagation depth.
[[nodiscard]] unsigned coverage_distance(unsigned m, double n, double target,
                                         unsigned max_d = 64);

/// Control-overhead model from Section 5.4.2: each buffer-map exchange
/// costs 620 bits, a node reaches M neighbors per round and receives
/// p segments of 30*1024 bits each per round when continuity is 1.0,
/// giving overhead ~= 620*M / (30*1024*p) = M/495 (for p = 10).
[[nodiscard]] double control_overhead_model(unsigned m, std::uint64_t p);

/// Pre-fetch cost model from Section 5.4.3: fetching one segment takes
/// about k*(log2(n)/2 + 1) + 1 routing messages of 80 bits plus the
/// 30*1024-bit segment itself.
[[nodiscard]] double prefetch_cost_bits(unsigned k, double n);

}  // namespace continu::analysis
