#pragma once
// Closed-form playback-continuity model (paper Section 5.1).
//
//   PC_old  = 1 - P{N(tau) <= p*tau}                          (eq. 13)
//   PC_new  = 1 - P{N(tau) <= p*tau} * (1 - (1 - 2^-k)^Nmiss) (eq. 14)
//   Delta   = PC_new - PC_old                                 (eq. 15)
//   Nmiss   = E[(p*tau - N(tau))^+]                           (eq. 12)
//
// with N(tau) Poisson of mean lambda*tau, lambda ~ inbound rate I, and
// each segment backed up on k DHT nodes (per-replica miss probability
// 1/2, so a pre-fetch finds some replica w.p. 1 - 2^-k).

#include <cstdint>

namespace continu::analysis {

struct ContinuityInputs {
  double lambda = 15.0;     ///< arrival rate (segments/s) ~ inbound rate I
  double tau = 1.0;         ///< scheduling period (s)
  std::uint64_t p = 10;     ///< playback rate (segments/s)
  unsigned k = 4;           ///< backup replicas per segment
};

struct ContinuityPrediction {
  double trigger_probability = 0.0;  ///< P{on-demand retrieval triggered} (eq. 11)
  double expected_miss = 0.0;        ///< E[N_miss] (eq. 12)
  double pc_old = 0.0;               ///< gossip-only continuity (eq. 13)
  double pc_new = 0.0;               ///< with DHT pre-fetch (eq. 14)
  double delta = 0.0;                ///< improvement (eq. 15)
};

[[nodiscard]] ContinuityPrediction predict_continuity(const ContinuityInputs& in);

/// Probability that a node CANNOT pre-fetch a given segment from any of
/// the k backups: (1/2)^k (paper Section 4.3).
[[nodiscard]] double prefetch_all_fail_probability(unsigned k);

/// Expected time to pre-fetch one segment (paper eqs. 6-7):
/// t_fetch ~= (log2(n)/2 + 3) * t_hop.
[[nodiscard]] double expected_fetch_time_s(double n_nodes, double t_hop_s);

/// Lower bound and initial value of the urgent ratio (paper eq. 9):
/// alpha = (p / B) * max(tau, t_fetch).
[[nodiscard]] double initial_urgent_ratio(std::uint64_t p, std::uint64_t buffer_capacity,
                                          double tau_s, double t_fetch_s);

}  // namespace continu::analysis
