#include "analysis/poisson.hpp"

#include <cmath>
#include <stdexcept>

namespace continu::analysis {

double poisson_pmf(std::uint64_t n, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson_pmf: negative mean");
  if (mean == 0.0) return n == 0 ? 1.0 : 0.0;
  // log pmf = -mean + n*log(mean) - lgamma(n+1)
  const double log_pmf = -mean + static_cast<double>(n) * std::log(mean) -
                         std::lgamma(static_cast<double>(n) + 1.0);
  return std::exp(log_pmf);
}

double poisson_cdf(std::uint64_t n, double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson_cdf: negative mean");
  if (mean == 0.0) return 1.0;
  // For large means e^-mean underflows, so anchor the sum at pmf(n) in
  // log space and accumulate the RELATIVE terms pmf(k)/pmf(n) downward
  // (they decay geometrically with ratio k/mean once k < mean).
  const double sd = std::sqrt(mean);
  if (static_cast<double>(n) > mean + 12.0 * sd + 30.0) {
    return 1.0;  // beyond any representable tail mass
  }
  const double log_anchor = -mean + static_cast<double>(n) * std::log(mean) -
                            std::lgamma(static_cast<double>(n) + 1.0);
  double rel = 1.0;
  double sum = 0.0;
  for (std::uint64_t k = n;; --k) {
    sum += rel;
    if (k == 0) break;
    rel *= static_cast<double>(k) / mean;
    if (rel < 1e-18 * sum) break;
  }
  const double result = std::exp(log_anchor) * sum;
  return (result > 1.0) ? 1.0 : result;
}

double poisson_expected_shortfall(std::uint64_t m, double mean) {
  if (m == 0) return 0.0;
  double term = std::exp(-mean);
  double sum = 0.0;
  for (std::uint64_t n = 0; n < m; ++n) {
    sum += static_cast<double>(m - n) * term;
    term *= mean / static_cast<double>(n + 1);
  }
  return sum;
}

}  // namespace continu::analysis
