#include "analysis/coverage.hpp"

#include <cmath>
#include <stdexcept>

namespace continu::analysis {

double kermarrec_coverage(double c) { return std::exp(-std::exp(-c)); }

double coolstreaming_coverage(unsigned m, unsigned d, double n) {
  if (m < 3) throw std::invalid_argument("coolstreaming_coverage: M must be >= 3");
  if (d < 2) throw std::invalid_argument("coolstreaming_coverage: d must be >= 2");
  if (n <= 0.0) throw std::invalid_argument("coolstreaming_coverage: n must be positive");
  const double md = static_cast<double>(m);
  const double exponent =
      md * std::pow(md - 1.0, static_cast<double>(d - 2)) / ((md - 2.0) * n);
  return 1.0 - std::exp(-exponent);
}

unsigned coverage_distance(unsigned m, double n, double target, unsigned max_d) {
  for (unsigned d = 2; d <= max_d; ++d) {
    if (coolstreaming_coverage(m, d, n) >= target) return d;
  }
  return max_d;
}

double control_overhead_model(unsigned m, std::uint64_t p) {
  if (p == 0) throw std::invalid_argument("control_overhead_model: p must be positive");
  return 620.0 * static_cast<double>(m) / (30.0 * 1024.0 * static_cast<double>(p));
}

double prefetch_cost_bits(unsigned k, double n) {
  if (n < 1.0) throw std::invalid_argument("prefetch_cost_bits: n must be >= 1");
  const double routing =
      (static_cast<double>(k) * (std::log2(n) / 2.0 + 1.0) + 1.0) * 80.0;
  return routing + 30.0 * 1024.0;
}

}  // namespace continu::analysis
