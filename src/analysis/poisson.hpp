#pragma once
// Numerically stable Poisson distribution helpers.
//
// The paper models segment arrival at a node as a Poisson process with
// rate lambda ~ the node's inbound rate I (Section 5.1). Everything in
// the continuity model reduces to pmf/cdf evaluations, computed here in
// log space to stay stable for the large lambda*t the benches sweep.

#include <cstdint>

namespace continu::analysis {

/// P{N(t) = n} for a Poisson process with the given mean = lambda * t.
[[nodiscard]] double poisson_pmf(std::uint64_t n, double mean);

/// P{N(t) <= n}.
[[nodiscard]] double poisson_cdf(std::uint64_t n, double mean);

/// E[(m - N)^+] = sum_{n=0}^{m-1} (m - n) P{N = n}: the expected
/// shortfall below m — the paper's E[N_miss] (eq. 12) with m = p*tau.
[[nodiscard]] double poisson_expected_shortfall(std::uint64_t m, double mean);

}  // namespace continu::analysis
