#pragma once
// Overheard Nodes — the third section of the paper's Peer Table
// (Figure 2). A bounded most-recently-overheard list (H = 20 in the
// paper) fed by routing messages passing through the node. Both the
// connected-neighbor repair policy and DHT-peer refresh draw candidates
// from here, which is why overlay maintenance needs no extra messages.

#include <deque>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace continu::overlay {

struct OverheardNode {
  NodeId id = kInvalidNode;
  double latency_ms = 0.0;
  SimTime heard_at = 0.0;
};

class OverheardList {
 public:
  explicit OverheardList(std::size_t capacity = 20);

  /// Records an overheard node; refreshes (moves to front) if already
  /// present, evicts the oldest entry when full.
  void hear(NodeId id, double latency_ms, SimTime now);

  /// Drops a node known to be dead.
  void forget(NodeId id);

  /// Lowest-latency entry, optionally excluding some ids (current
  /// neighbors should not be re-picked as replacements).
  [[nodiscard]] std::optional<OverheardNode> best_candidate(
      const std::vector<NodeId>& excluded) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::deque<OverheardNode>& entries() const noexcept { return entries_; }
  [[nodiscard]] bool contains(NodeId id) const noexcept;

  /// Estimated footprint — memory sizing. Deques allocate in blocks;
  /// the estimate charges live entries only.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + entries_.size() * sizeof(OverheardNode);
  }

 private:
  std::size_t capacity_;
  std::deque<OverheardNode> entries_;  // front = most recent
};

}  // namespace continu::overlay
