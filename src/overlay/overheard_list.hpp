#pragma once
// Overheard Nodes — the third section of the paper's Peer Table
// (Figure 2). A bounded most-recently-overheard list (H = 20 in the
// paper) fed by routing messages passing through the node. Both the
// connected-neighbor repair policy and DHT-peer refresh draw candidates
// from here, which is why overlay maintenance needs no extra messages.

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace continu::overlay {

/// Float-packed (12 bytes): overheard link metrics are approximate by
/// nature, and the list is per-node state at 100k-node scale.
struct OverheardNode {
  NodeId id = kInvalidNode;
  float latency_ms = 0.0f;
  float heard_at = 0.0f;  ///< SimTime narrowed
};

class OverheardList {
 public:
  explicit OverheardList(std::size_t capacity = 20);

  /// Records an overheard node; refreshes (moves to front) if already
  /// present, evicts the oldest entry when full.
  void hear(NodeId id, double latency_ms, SimTime now);

  /// Drops a node known to be dead.
  void forget(NodeId id);

  /// Lowest-latency entry, optionally excluding some ids (current
  /// neighbors should not be re-picked as replacements).
  [[nodiscard]] std::optional<OverheardNode> best_candidate(
      const std::vector<NodeId>& excluded) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::vector<OverheardNode>& entries() const noexcept { return entries_; }
  [[nodiscard]] bool contains(NodeId id) const noexcept;

  /// Estimated footprint — memory sizing. The vector is reserved to
  /// exactly `capacity` (a deque's 512-byte block minimum would more
  /// than double the cost of a 20-entry list).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + entries_.capacity() * sizeof(OverheardNode);
  }

 private:
  std::size_t capacity_;
  std::vector<OverheardNode> entries_;  // front (index 0) = most recent
};

}  // namespace continu::overlay
