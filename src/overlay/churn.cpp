#include "overlay/churn.hpp"

#include <cmath>
#include <stdexcept>

namespace continu::overlay {

ChurnPlanner::ChurnPlanner(ChurnConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  if (config.leave_fraction < 0.0 || config.leave_fraction > 1.0 ||
      config.join_fraction < 0.0 || config.graceful_fraction < 0.0 ||
      config.graceful_fraction > 1.0) {
    throw std::invalid_argument("ChurnPlanner: fractions out of range");
  }
}

std::size_t ChurnPlanner::stochastic_round(double x) {
  const double floor_part = std::floor(x);
  const double frac = x - floor_part;
  auto result = static_cast<std::size_t>(floor_part);
  if (rng_.next_bool(frac)) ++result;
  return result;
}

ChurnBatch ChurnPlanner::plan(const std::vector<std::size_t>& alive_indices) {
  ChurnBatch batch;
  const auto n = alive_indices.size();
  if (n == 0) return batch;

  const std::size_t leavers =
      std::min(n, stochastic_round(config_.leave_fraction * static_cast<double>(n)));
  const auto picks = rng_.sample_indices(n, leavers);
  for (const auto p : picks) {
    if (rng_.next_bool(config_.graceful_fraction)) {
      batch.graceful_leavers.push_back(alive_indices[p]);
    } else {
      batch.abrupt_leavers.push_back(alive_indices[p]);
    }
  }
  batch.joins = stochastic_round(config_.join_fraction * static_cast<double>(n));
  return batch;
}

}  // namespace continu::overlay
