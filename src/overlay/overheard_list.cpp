#include "overlay/overheard_list.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::overlay {

OverheardList::OverheardList(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("OverheardList: capacity must be positive");
  }
}

void OverheardList::hear(NodeId id, double latency_ms, SimTime now) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const OverheardNode& e) { return e.id == id; });
  if (it != entries_.end()) {
    entries_.erase(it);
  }
  entries_.push_front(OverheardNode{id, latency_ms, now});
  if (entries_.size() > capacity_) {
    entries_.pop_back();
  }
}

void OverheardList::forget(NodeId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const OverheardNode& e) { return e.id == id; }),
                 entries_.end());
}

std::optional<OverheardNode> OverheardList::best_candidate(
    const std::vector<NodeId>& excluded) const {
  std::optional<OverheardNode> best;
  for (const auto& entry : entries_) {
    if (std::find(excluded.begin(), excluded.end(), entry.id) != excluded.end()) {
      continue;
    }
    if (!best.has_value() || entry.latency_ms < best->latency_ms) {
      best = entry;
    }
  }
  return best;
}

bool OverheardList::contains(NodeId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const OverheardNode& e) { return e.id == id; });
}

}  // namespace continu::overlay
