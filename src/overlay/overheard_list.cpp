#include "overlay/overheard_list.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::overlay {

OverheardList::OverheardList(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("OverheardList: capacity must be positive");
  }
  entries_.reserve(capacity);
}

void OverheardList::hear(NodeId id, double latency_ms, SimTime now) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [id](const OverheardNode& e) { return e.id == id; });
  if (it != entries_.end()) {
    entries_.erase(it);
  }
  if (entries_.size() >= capacity_) {
    entries_.pop_back();
  }
  // Move-to-front over <= capacity 12-byte entries: a ~240-byte memmove,
  // cheaper than the deque's block bookkeeping at this size.
  entries_.insert(entries_.begin(),
                  OverheardNode{id, static_cast<float>(latency_ms),
                                static_cast<float>(now)});
}

void OverheardList::forget(NodeId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const OverheardNode& e) { return e.id == id; }),
                 entries_.end());
}

std::optional<OverheardNode> OverheardList::best_candidate(
    const std::vector<NodeId>& excluded) const {
  std::optional<OverheardNode> best;
  for (const auto& entry : entries_) {
    if (std::find(excluded.begin(), excluded.end(), entry.id) != excluded.end()) {
      continue;
    }
    if (!best.has_value() || entry.latency_ms < best->latency_ms) {
      best = entry;
    }
  }
  return best;
}

bool OverheardList::contains(NodeId id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const OverheardNode& e) { return e.id == id; });
}

}  // namespace continu::overlay
