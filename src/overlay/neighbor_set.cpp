#include "overlay/neighbor_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::overlay {

NeighborSet::NeighborSet(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("NeighborSet: capacity must be positive");
  }
  // Exact reservation: the set never exceeds `capacity`, and growth
  // doubling would strand up to capacity-1 unused slots per node.
  neighbors_.reserve(capacity);
}

bool NeighborSet::contains(NodeId id) const noexcept {
  return std::any_of(neighbors_.begin(), neighbors_.end(),
                     [id](const Neighbor& n) { return n.id == id; });
}

std::vector<NodeId> NeighborSet::ids() const {
  std::vector<NodeId> out;
  out.reserve(neighbors_.size());
  for (const auto& n : neighbors_) out.push_back(n.id);
  return out;
}

bool NeighborSet::add(NodeId id, double latency_ms, SimTime now) {
  if (full() || contains(id)) return false;
  neighbors_.push_back(Neighbor{id, static_cast<float>(latency_ms), 0.0f, 0.0f,
                                static_cast<float>(now)});
  return true;
}

bool NeighborSet::remove(NodeId id) {
  const auto before = neighbors_.size();
  neighbors_.erase(std::remove_if(neighbors_.begin(), neighbors_.end(),
                                  [id](const Neighbor& n) { return n.id == id; }),
                   neighbors_.end());
  return neighbors_.size() != before;
}

void NeighborSet::record_supply_event(NodeId id) {
  for (auto& n : neighbors_) {
    if (n.id == id) {
      n.pending_supply += 1.0f;
      return;
    }
  }
}

void NeighborSet::fold_supply(double alpha) {
  for (auto& n : neighbors_) {
    n.supply_rate =
        static_cast<float>(alpha * static_cast<double>(n.pending_supply) +
                           (1.0 - alpha) * static_cast<double>(n.supply_rate));
    n.pending_supply = 0.0f;
  }
}

std::optional<Neighbor> NeighborSet::weakest(SimTime now, SimTime min_age) const {
  std::optional<Neighbor> worst;
  for (const auto& n : neighbors_) {
    if (now - n.connected_at < min_age) continue;
    if (!worst.has_value() || n.supply_rate < worst->supply_rate) {
      worst = n;
    }
  }
  return worst;
}

std::optional<Neighbor> NeighborSet::get(NodeId id) const {
  for (const auto& n : neighbors_) {
    if (n.id == id) return n;
  }
  return std::nullopt;
}

}  // namespace continu::overlay
