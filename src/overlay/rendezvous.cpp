#include "overlay/rendezvous.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::overlay {

RendezvousServer::RendezvousServer(const dht::IdSpace& space, util::Rng rng)
    : space_(&space), rng_(rng), known_(space), ever_issued_(space) {}

NodeId RendezvousServer::assign_id() {
  if (ever_issued_.size() >= space_->size()) {
    throw std::runtime_error("RendezvousServer: ID space exhausted");
  }
  // Rejection-sample a free ID; with the paper's sparse occupancy this
  // terminates almost immediately, and the directory check makes the
  // uniqueness guarantee absolute.
  for (;;) {
    const auto candidate = static_cast<NodeId>(rng_.next_below(space_->size()));
    if (!ever_issued_.contains(candidate)) {
      ever_issued_.insert(candidate);
      return candidate;
    }
  }
}

void RendezvousServer::register_node(NodeId id) {
  if (known_.contains(id)) return;
  known_.insert(id);
  if (capacity_ != 0 && known_.size() > capacity_) {
    // Partial list: evict a uniformly random entry that is not the one
    // we just added.
    const auto members = known_.members();
    for (;;) {
      const NodeId victim = members[rng_.next_below(members.size())];
      if (victim != id) {
        known_.erase(victim);
        break;
      }
    }
  }
}

void RendezvousServer::report_failure(NodeId id) {
  known_.erase(id);
  // The ID-space position frees up for later joiners (like an expired
  // lease) — without this, long churn-heavy runs would exhaust N.
  ever_issued_.erase(id);
}

std::vector<NodeId> RendezvousServer::close_nodes(NodeId target, std::size_t count) const {
  std::vector<NodeId> out;
  if (known_.empty() || count == 0) return out;
  // Walk outward from the target alternating predecessor/successor.
  const auto members = known_.members();  // ascending
  // Find insertion point.
  auto it = std::lower_bound(members.begin(), members.end(), target);
  std::size_t right = static_cast<std::size_t>(it - members.begin()) % members.size();
  std::size_t left = (right + members.size() - 1) % members.size();
  while (out.size() < std::min(count, members.size())) {
    // Compare ring distances on both sides; take the closer.
    const std::uint64_t dr = space_->distance(target, members[right]);
    const std::uint64_t dl = space_->distance(members[left], target);
    if (dr <= dl) {
      out.push_back(members[right]);
      right = (right + 1) % members.size();
    } else {
      out.push_back(members[left]);
      left = (left + members.size() - 1) % members.size();
    }
    if (out.size() >= members.size()) break;
  }
  // Deduplicate while preserving order (small lists).
  std::vector<NodeId> unique;
  for (const NodeId id : out) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
      unique.push_back(id);
    }
  }
  unique.resize(std::min(unique.size(), count));
  return unique;
}

}  // namespace continu::overlay
