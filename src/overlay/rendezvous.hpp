#pragma once
// Rendezvous Point (RP) server — the paper's join bootstrap.
//
// The RP holds a partial list of joined nodes, assigns each newcomer a
// unique ID in the DHT space, and hands it a short list of existing
// nodes with nearby IDs. The newcomer PINGs those to find the nearest
// alive one, copies its Peer Table as a seed, and reports dead entries
// back to the RP.

#include <optional>
#include <vector>

#include "dht/id_space.hpp"
#include "dht/ring_directory.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace continu::overlay {

class RendezvousServer {
 public:
  RendezvousServer(const dht::IdSpace& space, util::Rng rng);

  /// Allocates a fresh, currently-unused ID uniformly at random.
  /// Throws when the ID space is exhausted.
  [[nodiscard]] NodeId assign_id();

  /// Registers a successfully joined node (RP keeps only a partial
  /// list; we cap it and evict uniformly to model that).
  void register_node(NodeId id);

  /// Removes a node reported dead (or leaving).
  void report_failure(NodeId id);

  /// Up to `count` known node ids with IDs closest (on the ring) to
  /// `target` — the "short list of several existing nodes which have
  /// close IDs" from the paper.
  [[nodiscard]] std::vector<NodeId> close_nodes(NodeId target, std::size_t count) const;

  [[nodiscard]] std::size_t known_count() const noexcept { return known_.size(); }
  [[nodiscard]] bool knows(NodeId id) const { return known_.contains(id); }

  /// Partial-list capacity (0 = unlimited, default: unlimited; the
  /// simulator typically caps at a few hundred for large overlays).
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }

 private:
  const dht::IdSpace* space_;
  util::Rng rng_;
  dht::RingDirectory known_;        // nodes the RP currently lists
  dht::RingDirectory ever_issued_;  // all IDs ever assigned (uniqueness)
  std::size_t capacity_ = 0;
};

}  // namespace continu::overlay
