#pragma once
// Connected Neighbors — the first section of the paper's Peer Table.
//
// M TCP-connected neighbors with per-neighbor latency and a recent
// supply-rate estimate (fed by the Rate Controller). A neighbor that
// fails or supplies too little is replaced by the lowest-latency
// overheard node.

#include <optional>
#include <vector>

#include "util/types.hpp"

namespace continu::overlay {

/// Float-packed per-neighbor state (20 bytes vs 40 with doubles): link
/// latency and supply estimates are coarse measurements, so 24 mantissa
/// bits are plenty — per-peer state budget is the scaling constraint.
/// pending_supply counts whole segments (integers are float-exact far
/// beyond any per-period count).
struct Neighbor {
  NodeId id = kInvalidNode;
  float latency_ms = 0.0f;
  /// Exponentially-smoothed supply rate, segments per scheduling period.
  float supply_rate = 0.0f;
  /// Segments supplied since the last fold_supply().
  float pending_supply = 0.0f;
  float connected_at = 0.0f;  ///< SimTime narrowed; ages compare coarsely
};

class NeighborSet {
 public:
  explicit NeighborSet(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return neighbors_.size(); }
  [[nodiscard]] bool full() const noexcept { return neighbors_.size() >= capacity_; }
  [[nodiscard]] const std::vector<Neighbor>& all() const noexcept { return neighbors_; }
  [[nodiscard]] bool contains(NodeId id) const noexcept;
  [[nodiscard]] std::vector<NodeId> ids() const;

  /// Adds a neighbor if there is room and it is not present.
  /// Returns false when full or duplicate.
  bool add(NodeId id, double latency_ms, SimTime now);

  /// Removes a neighbor (failure or replacement). Returns whether it
  /// was present.
  bool remove(NodeId id);

  /// Counts one supplied segment from `id` (called per delivery).
  void record_supply_event(NodeId id);

  /// Period boundary: folds the per-period counters into each
  /// neighbor's smoothed supply rate (segments per period):
  /// new = alpha*count + (1-alpha)*old.
  void fold_supply(double alpha = 0.3);

  /// The neighbor with the lowest smoothed supply rate, eligible for
  /// replacement once it has been connected for at least `min_age`
  /// (gives fresh connections a grace period).
  [[nodiscard]] std::optional<Neighbor> weakest(SimTime now, SimTime min_age) const;

  [[nodiscard]] std::optional<Neighbor> get(NodeId id) const;

  /// Estimated footprint (vector capacity) — memory sizing. The vector
  /// is reserved to exactly `capacity` at construction, so this is the
  /// true steady-state heap cost.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + neighbors_.capacity() * sizeof(Neighbor);
  }

 private:
  std::size_t capacity_;
  std::vector<Neighbor> neighbors_;
};

}  // namespace continu::overlay
