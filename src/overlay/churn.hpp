#pragma once
// Churn plan for the "dynamic environment" evaluations: every
// scheduling period, 5% of alive (non-source) nodes leave and an equal
// number of fresh nodes join (paper Section 5.2). The plan samples WHO
// churns; the session layer executes the departures/joins because they
// touch node state.

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace continu::overlay {

struct ChurnConfig {
  double leave_fraction = 0.05;   ///< of alive non-source nodes, per period
  double join_fraction = 0.05;    ///< new nodes per period, same base
  /// Probability a departure is graceful (hands over its VoD backup);
  /// the rest fail abruptly. The paper discusses both paths.
  double graceful_fraction = 0.5;
};

struct ChurnBatch {
  std::vector<std::size_t> graceful_leavers;  ///< session indices
  std::vector<std::size_t> abrupt_leavers;    ///< session indices
  std::size_t joins = 0;
};

class ChurnPlanner {
 public:
  ChurnPlanner(ChurnConfig config, util::Rng rng);

  /// Samples one period's churn from the alive population (session
  /// indices, source excluded by the caller). Fractions round
  /// stochastically so small populations still churn in expectation.
  [[nodiscard]] ChurnBatch plan(const std::vector<std::size_t>& alive_indices);

  [[nodiscard]] const ChurnConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::size_t stochastic_round(double x);

  ChurnConfig config_;
  util::Rng rng_;
};

}  // namespace continu::overlay
