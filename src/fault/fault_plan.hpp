#pragma once
// Scenario-declared fault plans: the deterministic adversity a session
// runs under. A FaultPlan is pure data — scenarios declare one, the
// session compiles it into a FaultInjector wired to the Network, and
// every injected decision is drawn from Rng::for_tick streams so the
// fingerprint oracle stays byte-identical at threads 1/2/4/8.
//
// An empty (default) plan is inert by construction: no injector is
// installed, no RNG stream is consumed, and the simulation is
// bit-identical to a build without the fault subsystem.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace continu::fault {

/// Crash-stop event: at `time`, `fraction` of the alive non-source
/// nodes fail abruptly — no DHT handover, same path as
/// ChurnPlan::abrupt_leavers. Victims are drawn from a for_tick stream
/// keyed on the event time.
struct CrashEvent {
  SimTime time = 0.0;
  double fraction = 0.0;
};

/// Regional partition: during [start, heal) the session splits into
/// `regions` groups by session index modulo; every cross-region wire
/// message is dropped. The heal is the window end — no event fires.
struct PartitionEvent {
  SimTime start = 0.0;
  SimTime heal = 0.0;
  unsigned regions = 2;
};

/// Transient latency spike: during [start, start + duration) every
/// wire message gains `extra_ms` of one-way latency, layered on the
/// LatencyModel's output (and, in quantized mode, applied before the
/// grid snap so bucketing physics are unchanged).
struct LatencySpike {
  SimTime start = 0.0;
  double duration = 0.0;
  double extra_ms = 0.0;
};

/// The full fault schedule for one session. All fields compose; the
/// default instance declares nothing and costs nothing.
struct FaultPlan {
  /// Per-message iid loss probability on every wire send.
  double loss_rate = 0.0;

  /// Burst-loss episodes: during the first `burst_duration` seconds of
  /// every `burst_period`-second cycle, the loss probability rises to
  /// max(loss_rate, burst_rate). burst_period == 0 disables bursts.
  double burst_rate = 0.0;
  double burst_period = 0.0;
  double burst_duration = 0.0;

  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<LatencySpike> spikes;

  [[nodiscard]] bool active() const noexcept {
    return loss_rate > 0.0 || (burst_period > 0.0 && burst_rate > 0.0) ||
           !crashes.empty() || !partitions.empty() || !spikes.empty();
  }
};

/// Hardening policy for the pull/prefetch planes: bounded
/// retry-with-backoff on timed-out transfers and a decaying supplier
/// blacklist after repeated failures. Disabled by default so the
/// zero-fault hot path is untouched; fault scenarios switch it on.
struct RetryPolicy {
  bool enabled = false;

  /// Backoff after the k-th consecutive timeout of one segment:
  /// min(backoff_base * 2^(k-1), backoff_cap) seconds. Attempts are
  /// capped at max_attempts; further failures keep the cap.
  double backoff_base = 0.5;
  double backoff_cap = 8.0;
  std::uint32_t max_attempts = 6;

  /// A supplier accumulates one strike per timed-out transfer it was
  /// serving. At `blacklist_strikes` strikes its offers are ignored for
  /// min(blacklist_base * 2^(strikes - blacklist_strikes),
  /// blacklist_cap) seconds; entries expire (strike slate wiped) once
  /// their window passes, so the blacklist decays on success or quiet.
  std::uint32_t blacklist_strikes = 3;
  double blacklist_base = 2.0;
  double blacklist_cap = 16.0;
};

}  // namespace continu::fault
