#include "fault/fault_injector.hpp"

#include <cmath>
#include <utility>

#include "util/rng.hpp"

namespace continu::fault {

namespace {
/// Stream label separating loss draws from every other for_tick
/// consumer (node rounds, request shuffles, churn) at the same instant.
constexpr std::uint64_t kLossStream = 0x464C4F5353ull;  // "FLOSS"
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {}

double FaultInjector::loss_rate_at(SimTime now) const {
  double rate = plan_.loss_rate;
  if (plan_.burst_period > 0.0 && plan_.burst_rate > rate) {
    const double phase =
        now - std::floor(now / plan_.burst_period) * plan_.burst_period;
    if (phase < plan_.burst_duration) rate = plan_.burst_rate;
  }
  return rate;
}

bool FaultInjector::partitioned(std::size_t from, std::size_t to,
                                SimTime now) const {
  for (const auto& p : plan_.partitions) {
    if (p.regions < 2) continue;
    if (now >= p.start && now < p.heal && from % p.regions != to % p.regions) {
      return true;
    }
  }
  return false;
}

SimTime FaultInjector::extra_latency_s(SimTime now) const {
  double extra_ms = 0.0;
  for (const auto& s : plan_.spikes) {
    if (now >= s.start && now < s.start + s.duration) extra_ms += s.extra_ms;
  }
  return extra_ms / 1000.0;
}

FaultInjector::Fate FaultInjector::classify(std::size_t from, std::size_t to,
                                            SimTime now) {
  if (partitioned(from, to, now)) return Fate::kPartition;
  const double rate = loss_rate_at(now);
  if (rate > 0.0) {
    // One fresh stream per decision, keyed on the link plus the send
    // nonce: two sends on one link at one instant draw independently,
    // and the draw sequence is a pure function of the serial send
    // order, so it cannot vary with the thread count.
    const std::uint64_t link = (static_cast<std::uint64_t>(from) << 32) ^
                               static_cast<std::uint64_t>(to);
    auto rng = util::Rng::for_tick(seed_ ^ kLossStream, now,
                                   link + 0x9E3779B97F4A7C15ull * ++nonce_);
    if (rng.next_bool(rate)) return Fate::kLoss;
  }
  return Fate::kDeliver;
}

}  // namespace continu::fault
