#pragma once
// Compiles a FaultPlan into per-send decisions at the Network boundary.
//
// The injector sits on the serial send path (Network::send /
// send_sharded are only ever called from serial phases: the commit
// phase, serial delivery events, and the join-time replay of deferred
// work — the same contract that protects the traffic account). That
// makes a mutable draw nonce safe, and because the serial send order
// is itself a deterministic function of the simulation, every injected
// decision is thread-count invariant: fingerprints stay byte-identical
// at threads 1/2/4/8 in both network modes.

#include <cstddef>
#include <cstdint>

#include "fault/fault_plan.hpp"
#include "util/types.hpp"

namespace continu::fault {

class FaultInjector {
 public:
  enum class Fate : std::uint8_t { kDeliver, kLoss, kPartition };

  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Classifies one wire send at `now`. Partition checks are pure
  /// window tests (no draw); a loss draw is made only when the
  /// effective loss rate is positive, so partition-only plans consume
  /// no RNG stream.
  [[nodiscard]] Fate classify(std::size_t from, std::size_t to, SimTime now);

  /// Extra one-way latency from active spike episodes, in seconds.
  [[nodiscard]] SimTime extra_latency_s(SimTime now) const;

  /// Effective iid loss probability at `now` (burst windows raise it
  /// to max(loss_rate, burst_rate)).
  [[nodiscard]] double loss_rate_at(SimTime now) const;

  /// True when (from, to) straddle a region boundary of a partition
  /// whose [start, heal) window covers `now`.
  [[nodiscard]] bool partitioned(std::size_t from, std::size_t to,
                                 SimTime now) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
  std::uint64_t nonce_ = 0;  ///< serial send counter (see header comment)
};

}  // namespace continu::fault
