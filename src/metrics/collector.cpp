#include "metrics/collector.hpp"

#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace continu::metrics {

void SeriesCollector::record(const std::string& series, SimTime time, double value) {
  data_[series].push_back(Sample{time, value});
}

bool SeriesCollector::has(const std::string& series) const {
  return data_.count(series) != 0;
}

const std::vector<Sample>& SeriesCollector::series(const std::string& name) const {
  const auto it = data_.find(name);
  if (it == data_.end()) {
    throw std::out_of_range("SeriesCollector: unknown series '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> SeriesCollector::names() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

util::RunningStats SeriesCollector::summarize(const std::string& name) const {
  // Total by design: an unknown series summarizes to an empty
  // RunningStats (count 0, mean 0) rather than throwing — summaries
  // feed report tables, where a missing series is data, not a bug.
  // series() keeps throwing for callers that want the hard error.
  util::RunningStats stats;
  const auto it = data_.find(name);
  if (it == data_.end()) return stats;
  for (const auto& sample : it->second) stats.add(sample.value);
  return stats;
}

double SeriesCollector::mean_from(const std::string& name, SimTime from) const {
  // Total like summarize(): unknown, empty or fully-filtered series
  // mean to 0.0 (RunningStats keeps mean_ = 0 with no samples).
  const auto it = data_.find(name);
  if (it == data_.end()) return 0.0;
  util::RunningStats stats;
  for (const auto& sample : it->second) {
    if (sample.time >= from) stats.add(sample.value);
  }
  return stats.mean();
}

void SeriesCollector::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"series", "time", "value"});
  for (const auto& [name, samples] : data_) {
    for (const auto& sample : samples) {
      csv.add_row({name, util::Table::num(sample.time, 3), util::Table::num(sample.value, 6)});
    }
  }
}

}  // namespace continu::metrics
