#include "metrics/collector.hpp"

#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace continu::metrics {

void SeriesCollector::record(const std::string& series, SimTime time, double value) {
  data_[series].push_back(Sample{time, value});
}

bool SeriesCollector::has(const std::string& series) const {
  return data_.count(series) != 0;
}

const std::vector<Sample>& SeriesCollector::series(const std::string& name) const {
  const auto it = data_.find(name);
  if (it == data_.end()) {
    throw std::out_of_range("SeriesCollector: unknown series '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> SeriesCollector::names() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

util::RunningStats SeriesCollector::summarize(const std::string& name) const {
  util::RunningStats stats;
  for (const auto& sample : series(name)) stats.add(sample.value);
  return stats;
}

double SeriesCollector::mean_from(const std::string& name, SimTime from) const {
  util::RunningStats stats;
  for (const auto& sample : series(name)) {
    if (sample.time >= from) stats.add(sample.value);
  }
  return stats.mean();
}

void SeriesCollector::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, {"series", "time", "value"});
  for (const auto& [name, samples] : data_) {
    for (const auto& sample : samples) {
      csv.add_row({name, util::Table::num(sample.time, 3), util::Table::num(sample.value, 6)});
    }
  }
}

}  // namespace continu::metrics
