#pragma once
// Named time-series collector: every bench records (time, value) series
// (continuity track, per-round overheads, alpha trajectory, ...) through
// one of these and dumps them as CSV for replotting.

#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace continu::metrics {

struct Sample {
  SimTime time = 0.0;
  double value = 0.0;
};

class SeriesCollector {
 public:
  void record(const std::string& series, SimTime time, double value);

  [[nodiscard]] bool has(const std::string& series) const;
  [[nodiscard]] const std::vector<Sample>& series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Summary statistics over one series' values. Total: an unknown or
  /// empty series yields an empty RunningStats (count 0) — it never
  /// throws, unlike series().
  [[nodiscard]] util::RunningStats summarize(const std::string& name) const;

  /// Mean of values with time >= from. Total: 0.0 for an unknown,
  /// empty or fully-filtered series.
  [[nodiscard]] double mean_from(const std::string& name, SimTime from) const;

  /// Writes all series as long-format CSV (series,time,value). Series
  /// names containing commas, quotes or newlines are RFC-4180 quoted
  /// by the CsvWriter, so hostile names round-trip instead of
  /// corrupting columns.
  void write_csv(const std::string& path) const;

 private:
  std::map<std::string, std::vector<Sample>> data_;
};

}  // namespace continu::metrics
