#include "metrics/continuity.hpp"

namespace continu::metrics {

void ContinuityTracker::record_round(SimTime time, std::uint64_t continuous,
                                     std::uint64_t counted) {
  rounds_.push_back(RoundContinuity{time, continuous, counted});
}

double ContinuityTracker::stable_mean(SimTime from) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : rounds_) {
    if (r.time < from) continue;
    sum += r.ratio();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

SimTime ContinuityTracker::stabilization_time(double threshold) const {
  for (const auto& r : rounds_) {
    if (r.ratio() >= threshold) return r.time;
  }
  return -1.0;
}

}  // namespace continu::metrics
