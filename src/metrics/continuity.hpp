#pragma once
// Playback-continuity accounting (paper Section 5.3, metric 1).
//
// Per round, the metric is the RATIO OF NODES that have collected
// sufficient data segments to play that round — deliberately stricter
// than the per-segment "continuity index", as the paper argues. A node
// that has not yet started playback counts as non-continuous, which
// produces the 0 -> stable ramp of Figures 5/6.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace continu::metrics {

struct RoundContinuity {
  SimTime time = 0.0;
  std::uint64_t continuous_nodes = 0;
  std::uint64_t counted_nodes = 0;  ///< alive non-source nodes this round

  [[nodiscard]] double ratio() const noexcept {
    return counted_nodes == 0
               ? 0.0
               : static_cast<double>(continuous_nodes) / static_cast<double>(counted_nodes);
  }
};

class ContinuityTracker {
 public:
  void record_round(SimTime time, std::uint64_t continuous, std::uint64_t counted);

  [[nodiscard]] const std::vector<RoundContinuity>& rounds() const noexcept {
    return rounds_;
  }

  /// Mean ratio over rounds with time >= from (the "stable phase" mean).
  [[nodiscard]] double stable_mean(SimTime from) const;

  /// First round time at which the ratio reaches `threshold` and stays
  /// within `band` of the stable mean thereafter; -1 when never.
  [[nodiscard]] SimTime stabilization_time(double threshold) const;

  [[nodiscard]] bool empty() const noexcept { return rounds_.empty(); }

 private:
  std::vector<RoundContinuity> rounds_;
};

}  // namespace continu::metrics
