#pragma once
// Segment-window arena: pools the word storage behind short-lived
// BitWindow copies so per-exchange window materialization reuses a
// small set of buffers instead of allocating per exchange.
//
// The buffer-map exchange path checks out one window per (node,
// neighbor) pair per round — at 100k nodes that is ~500k windows per
// scheduling period. All of them are the same capacity and die within
// the call, so a tiny pool (usually one buffer) serves the entire
// session; after warm-up the steady state performs zero allocations,
// which Stats::allocations makes assertable from tests.
//
// Leases are RAII: the storage returns to the pool when the lease goes
// out of scope. Concurrently outstanding leases always hold disjoint
// buffers (the pool pops, never shares).

#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitwindow.hpp"
#include "util/types.hpp"

namespace continu::util {

class BitWindowArena {
 public:
  struct Stats {
    std::uint64_t checkouts = 0;    ///< leases handed out
    std::uint64_t allocations = 0;  ///< checkouts that had to allocate
  };

  /// RAII handle over a pooled window. Move-only; returns the storage
  /// to the arena on destruction. The arena must outlive its leases.
  class Lease {
   public:
    Lease(BitWindowArena* arena, BitWindow window) noexcept
        : arena_(arena), window_(std::move(window)) {}
    Lease(Lease&& other) noexcept
        : arena_(other.arena_), window_(std::move(other.window_)) {
      other.arena_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        arena_ = other.arena_;
        window_ = std::move(other.window_);
        other.arena_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] BitWindow& window() noexcept { return window_; }
    [[nodiscard]] const BitWindow& window() const noexcept { return window_; }

   private:
    void release() noexcept {
      if (arena_ != nullptr) {
        arena_->give_back(window_.take_words());
        arena_ = nullptr;
      }
    }
    BitWindowArena* arena_;
    BitWindow window_;
  };

  /// Checks out an empty window of `capacity` bits at `head`.
  [[nodiscard]] Lease checkout(std::size_t capacity, SegmentId head) {
    BitWindow window;
    window.adopt(capacity, head, take_storage((capacity + 63) / 64));
    return Lease(this, std::move(window));
  }

  /// Checks out a pooled copy of `source` (same capacity, head and
  /// presence bits) — the buffer-map materialization primitive. Each
  /// word is written once (no clear-then-copy pass).
  [[nodiscard]] Lease checkout_copy(const BitWindow& source) {
    BitWindow window;
    window.adopt_copy(source, take_storage((source.capacity() + 63) / 64));
    return Lease(this, std::move(window));
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t pooled() const noexcept { return pool_.size(); }

  /// Pooled storage bytes — memory sizing.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& storage : pool_) {
      total += storage.capacity() * sizeof(std::uint64_t);
    }
    return total;
  }

 private:
  friend class Lease;

  /// Pops pooled storage (or an empty vector on a cold pool), counting
  /// the checkout and whether it will have to allocate to hold `words`.
  [[nodiscard]] std::vector<std::uint64_t> take_storage(std::size_t words) {
    ++stats_.checkouts;
    std::vector<std::uint64_t> storage;
    if (!pool_.empty()) {
      storage = std::move(pool_.back());
      pool_.pop_back();
    }
    if (storage.capacity() < words) ++stats_.allocations;
    return storage;
  }

  void give_back(std::vector<std::uint64_t>&& storage) noexcept {
    pool_.push_back(std::move(storage));
  }

  std::vector<std::vector<std::uint64_t>> pool_;
  Stats stats_;
};

}  // namespace continu::util
