#pragma once
// Minimal CSV emitter so every bench can dump machine-readable series
// next to its human-readable table (for replotting the figures).

#include <fstream>
#include <string>
#include <vector>

namespace continu::util {

class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace continu::util
