#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace continu::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() noexcept { *this = RunningStats{}; }

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile of empty sample set");
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples.size()) return samples.back();
  return samples[idx] * (1.0 - frac) + samples[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_mid(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(i) + 0.5);
}

}  // namespace continu::util
