#pragma once
// Header-only open-addressed hash containers for the per-node hot-path
// bookkeeping (in-flight transfers, pre-fetch records, DHT backup sets,
// rate estimates). Designed for the 100k-node memory budget:
//
//   * Robin-Hood linear probing with one metadata byte per slot
//     (probe distance + 1; 0 = empty) — no per-entry heap nodes, no
//     bucket pointer arrays, one allocation for the whole table.
//   * Power-of-two capacity, max load factor 7/8, minimum capacity 4;
//     an empty container owns no heap at all (dead nodes cost nothing).
//   * Tombstone-free erase (backward shift), so long-lived tables never
//     degrade and capacity tracks the live high-water mark.
//   * maybe_shrink() gives periodic sweeps (the per-round GC) a cheap
//     way to return capacity after a burst drains.
//   * Deterministic iteration: slot-scan order, a pure function of the
//     operation history and the hash — independent of thread count,
//     allocator state and pointer values, which is what keeps
//     scenario_fingerprint byte-identical across --threads values.
//
// Erase-during-iteration contract: `it = table.erase(it)` never skips a
// live element. An element displaced across the table's wrap point may
// be visited twice, so erase predicates must be idempotent (every
// expire-style sweep in this codebase is).

#include <cassert>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

#include "util/hash.hpp"

namespace continu::util {

/// Default hash: SplitMix64 finalizer over the integral key. Low bits
/// are fully mixed, as power-of-two masking requires.
template <class Key>
struct FlatHash {
  [[nodiscard]] std::size_t operator()(const Key& key) const noexcept {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(key)));
  }
};

namespace detail {

template <class Key, class T>
struct MapSlotPolicy {
  using Slot = std::pair<Key, T>;
  [[nodiscard]] static const Key& key(const Slot& slot) noexcept {
    return slot.first;
  }
};

template <class Key>
struct SetSlotPolicy {
  using Slot = Key;
  [[nodiscard]] static const Key& key(const Slot& slot) noexcept {
    return slot;
  }
};

/// Shared open-addressing core. `Policy` fixes the slot payload (pair
/// for maps, bare key for sets); everything else — probing, growth,
/// backward-shift erase, iteration — is identical.
template <class Policy, class Key, class Hash>
class FlatTable {
 public:
  using Slot = typename Policy::Slot;

  FlatTable() noexcept = default;

  FlatTable(FlatTable&& other) noexcept
      : slots_(other.slots_), meta_(other.meta_), capacity_(other.capacity_),
        size_(other.size_) {
    other.slots_ = nullptr;
    other.meta_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }

  FlatTable& operator=(FlatTable&& other) noexcept {
    if (this != &other) {
      destroy();
      slots_ = other.slots_;
      meta_ = other.meta_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.slots_ = nullptr;
      other.meta_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  FlatTable(const FlatTable& other) { copy_from(other); }

  FlatTable& operator=(const FlatTable& other) {
    if (this != &other) {
      destroy();
      slots_ = nullptr;
      meta_ = nullptr;
      capacity_ = 0;
      size_ = 0;
      copy_from(other);
    }
    return *this;
  }

  ~FlatTable() { destroy(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Heap bytes owned by the table (slot payloads + metadata bytes) —
  /// memory sizing. Capacity-based: this is what the node pays, not
  /// what it currently uses.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return capacity_ * (sizeof(Slot) + 1);
  }

  // --- iteration ----------------------------------------------------------

  template <bool kConst>
  class Iter {
   public:
    using Table = std::conditional_t<kConst, const FlatTable, FlatTable>;
    using Value = std::conditional_t<kConst, const Slot, Slot>;
    using iterator_category = std::forward_iterator_tag;
    using value_type = Slot;
    using difference_type = std::ptrdiff_t;
    using pointer = Value*;
    using reference = Value&;

    Iter() noexcept = default;
    Iter(Table* table, std::size_t index) noexcept : table_(table), index_(index) {
      skip_empty();
    }
    /// const conversion.
    operator Iter<true>() const noexcept {  // NOLINT(google-explicit-constructor)
      return Iter<true>(table_, index_);
    }

    [[nodiscard]] Value& operator*() const noexcept { return table_->slots_[index_]; }
    [[nodiscard]] Value* operator->() const noexcept { return &table_->slots_[index_]; }

    Iter& operator++() noexcept {
      ++index_;
      skip_empty();
      return *this;
    }

    [[nodiscard]] bool operator==(const Iter& rhs) const noexcept {
      return index_ == rhs.index_;
    }
    [[nodiscard]] bool operator!=(const Iter& rhs) const noexcept {
      return index_ != rhs.index_;
    }

   private:
    friend class FlatTable;
    friend class Iter<true>;
    void skip_empty() noexcept {
      while (index_ < table_->capacity_ && table_->meta_[index_] == 0) ++index_;
    }
    Table* table_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  [[nodiscard]] iterator begin() noexcept { return iterator(this, 0); }
  [[nodiscard]] iterator end() noexcept { return iterator(this, capacity_); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, capacity_);
  }

  // --- lookup -------------------------------------------------------------

  [[nodiscard]] iterator find(const Key& key) noexcept {
    const std::size_t i = probe(key);
    return i == kNpos ? end() : at_index(i);
  }
  [[nodiscard]] const_iterator find(const Key& key) const noexcept {
    const std::size_t i = probe(key);
    return i == kNpos ? end() : const_iterator(this, i);
  }
  [[nodiscard]] std::size_t count(const Key& key) const noexcept {
    return probe(key) == kNpos ? 0 : 1;
  }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return probe(key) != kNpos;
  }

  // --- modification -------------------------------------------------------

  /// Erases `key`; returns the number of elements removed (0 or 1).
  std::size_t erase(const Key& key) {
    const std::size_t i = probe(key);
    if (i == kNpos) return 0;
    erase_index(i);
    return 1;
  }

  /// Erases the element at `it`; returns the iterator to resume from
  /// (see the erase-during-iteration contract in the header comment).
  iterator erase(const_iterator it) {
    erase_index(it.index_);
    return at_index(it.index_);
  }

  /// Drops every element; keeps the current capacity (callers about to
  /// refill at the same scale). Use shrink_to_fit() to return memory.
  void clear() noexcept {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) {
        slots_[i].~Slot();
        meta_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Rehashes to the smallest valid capacity when the table is mostly
  /// empty (size <= capacity/4, capacity > minimum). Cheap enough to
  /// call from a periodic GC sweep; the factor-of-two hysteresis keeps
  /// a steady-state table from thrashing.
  void maybe_shrink() {
    if (capacity_ <= kMinCapacity || size_ * 4 > capacity_) return;
    if (size_ == 0) {
      destroy();
      slots_ = nullptr;
      meta_ = nullptr;
      capacity_ = 0;
      return;
    }
    rehash_to(capacity_for(size_));
  }

  /// Rehashes to exactly fit the current size.
  void shrink_to_fit() {
    if (size_ == 0) {
      destroy();
      slots_ = nullptr;
      meta_ = nullptr;
      capacity_ = 0;
      return;
    }
    const std::size_t target = capacity_for(size_);
    if (target < capacity_) rehash_to(target);
  }

  /// Ensures capacity for `n` elements without further growth.
  void reserve(std::size_t n) {
    const std::size_t target = capacity_for(n);
    if (target > capacity_) rehash_to(target);
  }

 protected:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 4;

  [[nodiscard]] iterator at_index(std::size_t i) noexcept {
    iterator it;
    it.table_ = this;
    it.index_ = i;
    if (i < capacity_ && meta_[i] == 0) it.skip_empty();
    return it;
  }

  /// Index of `key`, or kNpos. Robin-Hood early exit: stop as soon as
  /// the resident's probe distance is shorter than ours.
  [[nodiscard]] std::size_t probe(const Key& key) const noexcept {
    if (capacity_ == 0) return kNpos;
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash{}(key)&mask;
    std::uint8_t dist = 1;
    for (;;) {
      const std::uint8_t m = meta_[i];
      if (m < dist) return kNpos;  // empty (0) or richer resident
      if (m == dist && Policy::key(slots_[i]) == key) return i;
      i = (i + 1) & mask;
      ++dist;
      // Stored probe distances never exceed the metadata byte (inserts
      // grow instead), so a wrapped distance proves absence.
      if (dist == 0) return kNpos;
    }
  }

  /// Inserts a slot known to be absent; returns its resting index.
  /// The caller has already ensured capacity.
  std::size_t insert_absent(Slot&& slot) {
    const std::size_t mask = capacity_ - 1;
    std::size_t i = Hash{}(Policy::key(slot)) & mask;
    std::uint8_t dist = 1;
    Slot carried = std::move(slot);
    std::size_t placed = kNpos;
    for (;;) {
      if (meta_[i] == 0) {
        new (&slots_[i]) Slot(std::move(carried));
        meta_[i] = dist;
        ++size_;
        return placed == kNpos ? i : placed;
      }
      if (meta_[i] < dist) {
        // Rob the richer resident: it carries on from here.
        std::swap(carried, slots_[i]);
        std::swap(dist, meta_[i]);
        if (placed == kNpos) placed = i;
      }
      i = (i + 1) & mask;
      ++dist;
      if (dist == 0) {
        // Probe distance overflowed the metadata byte (pathological
        // clustering). Grow and restart with the carried element.
        grow();
        return insert_absent(std::move(carried));
      }
    }
  }

  /// Grows if inserting one more element would exceed 7/8 load.
  void ensure_room() {
    if (capacity_ == 0 || (size_ + 1) * 8 > capacity_ * 7) grow();
  }

  void grow() { rehash_to(capacity_ == 0 ? kMinCapacity : capacity_ * 2); }

  /// Smallest power-of-two capacity holding `n` elements at <= 7/8.
  [[nodiscard]] static std::size_t capacity_for(std::size_t n) noexcept {
    std::size_t cap = kMinCapacity;
    while (n * 8 > cap * 7) cap *= 2;
    return cap;
  }

  void rehash_to(std::size_t new_capacity) {
    Slot* old_slots = slots_;
    std::uint8_t* old_meta = meta_;
    const std::size_t old_capacity = capacity_;

    allocate(new_capacity);
    size_ = 0;
    for (std::size_t i = 0; i < old_capacity; ++i) {
      if (old_meta[i] != 0) {
        insert_absent(std::move(old_slots[i]));
        old_slots[i].~Slot();
      }
    }
    deallocate(old_slots, old_capacity);
  }

  /// Backward-shift deletion: pull the rest of the probe chain one slot
  /// toward home, leaving no tombstone.
  void erase_index(std::size_t i) {
    const std::size_t mask = capacity_ - 1;
    std::size_t j = (i + 1) & mask;
    while (meta_[j] > 1) {
      slots_[i] = std::move(slots_[j]);
      meta_[i] = static_cast<std::uint8_t>(meta_[j] - 1);
      i = j;
      j = (j + 1) & mask;
    }
    slots_[i].~Slot();
    meta_[i] = 0;
    --size_;
  }

  // One allocation per table: [Slot x capacity][meta byte x capacity].
  void allocate(std::size_t capacity) {
    const std::size_t bytes = capacity * (sizeof(Slot) + 1);
    auto* raw = static_cast<std::uint8_t*>(
        ::operator new(bytes, std::align_val_t{alignof(Slot)}));
    slots_ = reinterpret_cast<Slot*>(raw);
    meta_ = raw + capacity * sizeof(Slot);
    std::memset(meta_, 0, capacity);
    capacity_ = capacity;
  }

  void deallocate(Slot* slots, std::size_t capacity) noexcept {
    if (slots != nullptr) {
      ::operator delete(static_cast<void*>(slots),
                        capacity * (sizeof(Slot) + 1),
                        std::align_val_t{alignof(Slot)});
    }
  }

  void destroy() noexcept {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (meta_[i] != 0) slots_[i].~Slot();
    }
    deallocate(slots_, capacity_);
  }

  void copy_from(const FlatTable& other) {
    if (other.size_ == 0) return;
    allocate(other.capacity_);
    size_ = 0;
    for (std::size_t i = 0; i < other.capacity_; ++i) {
      if (other.meta_[i] != 0) {
        new (&slots_[i]) Slot(other.slots_[i]);
        meta_[i] = other.meta_[i];
        ++size_;
      }
    }
  }

  Slot* slots_ = nullptr;
  std::uint8_t* meta_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Open-addressed flat map. Drop-in for the std::unordered_map uses in
/// the per-node bookkeeping; iteration yields std::pair<Key, T>& in
/// deterministic slot order (keys must not be mutated through it).
template <class Key, class T, class Hash = FlatHash<Key>>
class FlatMap
    : public detail::FlatTable<detail::MapSlotPolicy<Key, T>, Key, Hash> {
  using Base = detail::FlatTable<detail::MapSlotPolicy<Key, T>, Key, Hash>;

 public:
  using value_type = typename Base::Slot;
  using iterator = typename Base::iterator;
  using const_iterator = typename Base::const_iterator;

  /// Inserts {key, T(args...)} if absent. Returns {iterator, inserted}.
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    const std::size_t existing = this->probe(key);
    if (existing != Base::kNpos) return {this->at_index(existing), false};
    this->ensure_room();
    const std::size_t cap_before = this->capacity();
    const std::size_t placed =
        this->insert_absent(value_type(key, T(std::forward<Args>(args)...)));
    // insert_absent's index is correct unless the (pathological)
    // grow-on-probe-overflow path rehashed mid-insert — detectable as a
    // capacity change; only then pay a re-probe.
    return {this->at_index(this->capacity() == cap_before ? placed
                                                          : this->probe(key)),
            true};
  }

  /// Inserts or assigns.
  template <class U>
  std::pair<iterator, bool> insert_or_assign(const Key& key, U&& value) {
    auto [it, inserted] = try_emplace(key, std::forward<U>(value));
    if (!inserted) it->second = std::forward<U>(value);
    return {it, inserted};
  }

  [[nodiscard]] T& operator[](const Key& key) {
    return try_emplace(key).first->second;
  }

  /// at() without exceptions is deliberate: the hot paths never look up
  /// keys they have not inserted; asserts in debug, UB in release.
  [[nodiscard]] T& at(const Key& key) {
    auto it = this->find(key);
    assert(it != this->end() && "FlatMap::at: key absent");
    return it->second;
  }
  [[nodiscard]] const T& at(const Key& key) const {
    auto it = this->find(key);
    assert(it != this->end() && "FlatMap::at: key absent");
    return it->second;
  }
};

/// Open-addressed flat set: the FlatMap core storing bare keys (9 bytes
/// per int64 slot at capacity). Used where values were always `true` or
/// the container was a std::set of ids.
template <class Key, class Hash = FlatHash<Key>>
class FlatSet : public detail::FlatTable<detail::SetSlotPolicy<Key>, Key, Hash> {
  using Base = detail::FlatTable<detail::SetSlotPolicy<Key>, Key, Hash>;

 public:
  using value_type = Key;
  using iterator = typename Base::iterator;
  using const_iterator = typename Base::const_iterator;

  /// Inserts `key` if absent. Returns {iterator, inserted}.
  std::pair<iterator, bool> insert(const Key& key) {
    const std::size_t existing = this->probe(key);
    if (existing != Base::kNpos) return {this->at_index(existing), false};
    this->ensure_room();
    const std::size_t cap_before = this->capacity();
    const std::size_t placed = this->insert_absent(Key(key));
    return {this->at_index(this->capacity() == cap_before ? placed
                                                          : this->probe(key)),
            true};
  }
};

}  // namespace continu::util
