#pragma once
// Leveled logging with a process-global threshold. Simulation code logs
// through this so benches can silence it wholesale; tests can raise the
// level to debug a failing scenario.

#include <sstream>
#include <string>

namespace continu::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

/// Stream-style helper: Log(LogLevel::kInfo) << "x=" << x;  (flushes on
/// destruction). Kept as a class, not a macro, per the no-macros rule.
class Log {
 public:
  explicit Log(LogLevel level) noexcept : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() { log_line(level_, stream_.str()); }

  template <typename T>
  Log& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace continu::util
