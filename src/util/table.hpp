#pragma once
// ASCII table rendering for benchmark harness output. Every figure/table
// reproduction prints its rows through this, so the harness output reads
// like the paper's tables.

#include <string>
#include <vector>

namespace continu::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 4);

  /// Renders with aligned columns and a header rule.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace continu::util
