#pragma once
// Sliding window of presence bits over consecutive segment ids.
//
// This is the in-memory representation behind both the stream buffer's
// availability set and the 620-bit buffer-map wire format (600 window
// bits + 20-bit head id, Section 5.4.2). The window covers
// [head, head + capacity) and slides forward monotonically.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace continu::util {

class BitWindow {
 public:
  /// Window of `capacity` bits starting (empty) at segment id `head`.
  explicit BitWindow(std::size_t capacity, SegmentId head = 0);

  /// Storage-less shell (capacity 0) — only valid as an adopt() target
  /// or move-assignment destination; every other member requires a
  /// positive capacity. Lets BitWindowArena build windows without an
  /// intermediate allocation.
  BitWindow() noexcept : capacity_(0), head_(0) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] SegmentId head() const noexcept { return head_; }
  /// One past the last id covered by the window.
  [[nodiscard]] SegmentId end() const noexcept {
    return head_ + static_cast<SegmentId>(capacity_);
  }

  /// True iff id lies in [head, end).
  [[nodiscard]] bool covers(SegmentId id) const noexcept;

  /// Presence bit for id; ids outside the window read as absent.
  [[nodiscard]] bool test(SegmentId id) const noexcept;

  /// Sets the presence bit. Returns false (no-op) if id is outside the
  /// window — the caller decides whether to slide first.
  bool set(SegmentId id) noexcept;

  /// Clears the presence bit if covered.
  void reset(SegmentId id) noexcept;

  /// Slides the window head forward to `new_head` (>= head), dropping
  /// bits that fall off the front. FIFO replacement in the paper's terms.
  void slide_to(SegmentId new_head);

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// Number of set bits with id < limit (ids below head count as absent).
  [[nodiscard]] std::size_t count_below(SegmentId limit) const noexcept;

  /// Ids of all clear bits in [from, to), clipped to the window.
  [[nodiscard]] std::vector<SegmentId> missing_in(SegmentId from, SegmentId to) const;

  /// Ids of all set bits in the window, ascending.
  [[nodiscard]] std::vector<SegmentId> present() const;

  /// Smallest set id, if any (O(capacity/64)).
  [[nodiscard]] std::optional<SegmentId> lowest() const noexcept;

  /// Largest set id, if any (O(capacity/64)).
  [[nodiscard]] std::optional<SegmentId> highest() const noexcept;

  /// Raw words for wire encoding (bit b of word w = id head + 64w + b).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rebuilds the window from a decoded wire image.
  static BitWindow from_words(std::size_t capacity, SegmentId head,
                              std::vector<std::uint64_t> words);

  /// Copies another window's head and presence bits into this one
  /// (word-level copy; reuses this window's storage when the word
  /// counts match, so pooled windows copy without allocating).
  void copy_from(const BitWindow& other);

  /// Moves the word storage out, leaving the storage-less shell state
  /// (capacity 0, head 0). Storage-recycling hook for BitWindowArena.
  [[nodiscard]] std::vector<std::uint64_t> take_words() noexcept;

  /// Reinitializes to an empty window of `capacity` bits at `head`,
  /// adopting `storage` as the backing words (resized and cleared; its
  /// capacity is reused, so recycled storage makes this allocation-free).
  void adopt(std::size_t capacity, SegmentId head,
             std::vector<std::uint64_t>&& storage);

  /// Reinitializes to a copy of `other` over adopted storage, writing
  /// each word exactly once (no clear-then-copy double pass — this is
  /// the per-exchange hot path).
  void adopt_copy(const BitWindow& other, std::vector<std::uint64_t>&& storage);

  /// Estimated heap footprint (capacity, not live bits) — memory
  /// sizing for large sessions.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  [[nodiscard]] std::size_t offset_of(SegmentId id) const noexcept {
    return static_cast<std::size_t>(id - head_);
  }

  std::size_t capacity_;
  SegmentId head_;
  std::vector<std::uint64_t> words_;
};

}  // namespace continu::util
