#pragma once
// Basic vocabulary types shared by every ContinuStreaming module.

#include <cstdint>
#include <limits>

namespace continu {

/// Logical node identifier in the DHT ID space [0, N).
using NodeId = std::uint32_t;

/// Monotonically increasing media segment identifier (source-assigned).
using SegmentId = std::int64_t;

/// Simulated time in seconds.
using SimTime = double;

/// Communication cost in bits (all overhead accounting is bit-exact).
using Bits = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no segment".
inline constexpr SegmentId kInvalidSegment = -1;

}  // namespace continu
