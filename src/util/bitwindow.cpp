#include "util/bitwindow.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace continu::util {

namespace {
constexpr std::size_t kWordBits = 64;

[[nodiscard]] std::size_t words_for(std::size_t bits) noexcept {
  return (bits + kWordBits - 1) / kWordBits;
}

// C++17 stand-ins for the <bit> word operations (callers never pass 0
// to the count-zero helpers).
[[nodiscard]] int popcount64(std::uint64_t w) noexcept {
  return __builtin_popcountll(w);
}
[[nodiscard]] int countr_zero64(std::uint64_t w) noexcept {
  return __builtin_ctzll(w);
}
[[nodiscard]] int countl_zero64(std::uint64_t w) noexcept {
  return __builtin_clzll(w);
}
}  // namespace

BitWindow::BitWindow(std::size_t capacity, SegmentId head)
    : capacity_(capacity), head_(head), words_(words_for(capacity), 0) {
  if (capacity == 0) {
    throw std::invalid_argument("BitWindow capacity must be positive");
  }
}

bool BitWindow::covers(SegmentId id) const noexcept {
  return id >= head_ && id < end();
}

bool BitWindow::test(SegmentId id) const noexcept {
  if (!covers(id)) return false;
  const std::size_t off = offset_of(id);
  return (words_[off / kWordBits] >> (off % kWordBits)) & 1ULL;
}

bool BitWindow::set(SegmentId id) noexcept {
  if (!covers(id)) return false;
  const std::size_t off = offset_of(id);
  words_[off / kWordBits] |= (1ULL << (off % kWordBits));
  return true;
}

void BitWindow::reset(SegmentId id) noexcept {
  if (!covers(id)) return;
  const std::size_t off = offset_of(id);
  words_[off / kWordBits] &= ~(1ULL << (off % kWordBits));
}

void BitWindow::slide_to(SegmentId new_head) {
  if (new_head <= head_) return;
  const auto shift = static_cast<std::size_t>(new_head - head_);
  if (shift >= capacity_) {
    for (auto& w : words_) w = 0;
    head_ = new_head;
    return;
  }
  // Shift the whole bit image right by `shift` bits (dropping the front).
  const std::size_t word_shift = shift / kWordBits;
  const std::size_t bit_shift = shift % kWordBits;
  const std::size_t n = words_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = i + word_shift;
    std::uint64_t lo = (src < n) ? words_[src] : 0;
    std::uint64_t hi = (src + 1 < n) ? words_[src + 1] : 0;
    words_[i] = (bit_shift == 0) ? lo : ((lo >> bit_shift) | (hi << (kWordBits - bit_shift)));
  }
  head_ = new_head;
  // Mask out bits beyond capacity in the last word.
  const std::size_t tail_bits = capacity_ % kWordBits;
  if (tail_bits != 0) {
    words_.back() &= (1ULL << tail_bits) - 1;
  }
}

std::size_t BitWindow::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(popcount64(w));
  return total;
}

std::size_t BitWindow::count_below(SegmentId limit) const noexcept {
  if (limit <= head_) return 0;
  const SegmentId clipped = (limit < end()) ? limit : end();
  const auto bits = static_cast<std::size_t>(clipped - head_);
  std::size_t total = 0;
  const std::size_t full_words = bits / kWordBits;
  for (std::size_t i = 0; i < full_words; ++i) {
    total += static_cast<std::size_t>(popcount64(words_[i]));
  }
  const std::size_t rem = bits % kWordBits;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(popcount64(words_[full_words] & mask));
  }
  return total;
}

std::vector<SegmentId> BitWindow::missing_in(SegmentId from, SegmentId to) const {
  std::vector<SegmentId> out;
  const SegmentId lo = (from > head_) ? from : head_;
  const SegmentId hi = (to < end()) ? to : end();
  for (SegmentId id = lo; id < hi; ++id) {
    if (!test(id)) out.push_back(id);
  }
  return out;
}

std::vector<SegmentId> BitWindow::present() const {
  std::vector<SegmentId> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    std::uint64_t w = words_[wi];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(countr_zero64(w));
      out.push_back(head_ + static_cast<SegmentId>(wi * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

std::optional<SegmentId> BitWindow::lowest() const noexcept {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      const auto bit = static_cast<std::size_t>(countr_zero64(words_[wi]));
      return head_ + static_cast<SegmentId>(wi * kWordBits + bit);
    }
  }
  return std::nullopt;
}

std::optional<SegmentId> BitWindow::highest() const noexcept {
  for (std::size_t wi = words_.size(); wi > 0; --wi) {
    const std::uint64_t w = words_[wi - 1];
    if (w != 0) {
      const auto bit = static_cast<std::size_t>(63 - countl_zero64(w));
      return head_ + static_cast<SegmentId>((wi - 1) * kWordBits + bit);
    }
  }
  return std::nullopt;
}

void BitWindow::copy_from(const BitWindow& other) {
  capacity_ = other.capacity_;
  head_ = other.head_;
  if (words_.size() == other.words_.size()) {
    std::copy(other.words_.begin(), other.words_.end(), words_.begin());
  } else {
    words_.assign(other.words_.begin(), other.words_.end());
  }
}

std::vector<std::uint64_t> BitWindow::take_words() noexcept {
  std::vector<std::uint64_t> out = std::move(words_);
  words_.clear();
  capacity_ = 0;  // back to the storage-less shell state
  head_ = 0;
  return out;
}

void BitWindow::adopt(std::size_t capacity, SegmentId head,
                      std::vector<std::uint64_t>&& storage) {
  if (capacity == 0) {
    throw std::invalid_argument("BitWindow capacity must be positive");
  }
  capacity_ = capacity;
  head_ = head;
  words_ = std::move(storage);
  words_.assign(words_for(capacity), 0);
}

void BitWindow::adopt_copy(const BitWindow& other,
                           std::vector<std::uint64_t>&& storage) {
  words_ = std::move(storage);
  words_.clear();  // keeps the recycled capacity; no zero-fill pass
  copy_from(other);  // size mismatch (0 vs n) -> assign: one write per word
}

BitWindow BitWindow::from_words(std::size_t capacity, SegmentId head,
                                std::vector<std::uint64_t> words) {
  BitWindow bw(capacity, head);
  if (words.size() != bw.words_.size()) {
    throw std::invalid_argument("BitWindow::from_words: wrong word count");
  }
  bw.words_ = std::move(words);
  const std::size_t tail_bits = capacity % kWordBits;
  if (tail_bits != 0) {
    bw.words_.back() &= (1ULL << tail_bits) - 1;
  }
  return bw;
}

}  // namespace continu::util
