#pragma once
// Modular arithmetic on the DHT identifier ring [0, N).
//
// The ContinuStreaming DHT orients the ring clockwise in increasing ID
// order (mod N): node n's level-i peer lies in [n + 2^(i-1), n + 2^i).
// All helpers are header-only and constexpr-friendly: they sit on the
// hot path of routing and backup-responsibility checks.

#include <cassert>
#include <cstdint>

#include "util/types.hpp"

namespace continu::util {

/// Clockwise distance from `from` to `to` on a ring of size `n`:
/// the number of steps walking in increasing-ID direction.
[[nodiscard]] constexpr std::uint64_t clockwise_distance(std::uint64_t from,
                                                         std::uint64_t to,
                                                         std::uint64_t n) noexcept {
  return (to >= from) ? (to - from) : (n - from + to);
}

/// Counter-clockwise distance from `from` to `to` on a ring of size `n`.
[[nodiscard]] constexpr std::uint64_t counter_clockwise_distance(
    std::uint64_t from, std::uint64_t to, std::uint64_t n) noexcept {
  return clockwise_distance(to, from, n);
}

/// True iff `x` lies in the clockwise half-open arc [lo, hi) on a ring of
/// size `n`. An arc with lo == hi is interpreted as the full ring, which
/// is what backup responsibility needs when a node is its own closest peer.
[[nodiscard]] constexpr bool in_clockwise_arc(std::uint64_t x, std::uint64_t lo,
                                              std::uint64_t hi,
                                              std::uint64_t n) noexcept {
  if (lo == hi) return true;
  return clockwise_distance(lo, x, n) < clockwise_distance(lo, hi, n);
}

/// (a + b) mod n with no overflow for a, b < n <= 2^63.
[[nodiscard]] constexpr std::uint64_t ring_add(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t n) noexcept {
  const std::uint64_t s = a + b;
  return (s >= n) ? s - n : s;
}

/// (a - b) mod n.
[[nodiscard]] constexpr std::uint64_t ring_sub(std::uint64_t a, std::uint64_t b,
                                               std::uint64_t n) noexcept {
  return (a >= b) ? (a - b) : (n - b + a);
}

/// floor(log2(n)) for n >= 1.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t n) noexcept {
  unsigned r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

/// Number of DHT peer levels for an ID space of size n (n a power of two
/// in the paper's setting): log2(n).
[[nodiscard]] constexpr unsigned dht_levels(std::uint64_t id_space) noexcept {
  return floor_log2(id_space);
}

/// True iff v is a power of two (the paper's ID spaces are 2^m).
[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace continu::util
