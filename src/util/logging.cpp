#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace continu::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

[[nodiscard]] const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  if (level == LogLevel::kOff) return;
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace continu::util
