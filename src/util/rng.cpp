#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace continu::util {

namespace {
// C++17 stand-in for std::rotl (k in [1, 63] at every call site).
[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng Rng::for_tick(std::uint64_t seed, double tick_time, std::uint64_t key) noexcept {
  std::uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(tick_time), "SimTime must be 64-bit");
  std::memcpy(&time_bits, &tick_time, sizeof(time_bits));
  // Fold each input through its own SplitMix64 round so no two of the
  // three can cancel by XOR coincidence (e.g. seed == time_bits).
  // splitmix64 advances `state` in place; the explicit temporaries pin
  // the advance-then-xor order independent of assignment sequencing
  // rules (the stream is locked by a golden test).
  std::uint64_t state = seed;
  const std::uint64_t round1 = splitmix64(state);
  state ^= round1;
  state ^= time_bits;
  const std::uint64_t round2 = splitmix64(state);
  state ^= round2;
  state ^= key;
  return Rng(splitmix64(state));
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl64(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling with rejection for
  // exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_range(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return next_double() < clamped;
}

double Rng::next_exponential(double rate) noexcept {
  // Inverse-CDF; guard the log argument away from 0.
  const double u = 1.0 - next_double();
  return -std::log(u) / rate;
}

double Rng::next_pareto(double x_m, double alpha) noexcept {
  const double u = 1.0 - next_double();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) return all;
  // Partial Fisher-Yates: settle the first k slots only.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork() noexcept {
  return Rng(next_u64());
}

}  // namespace continu::util
