#pragma once
// Small statistics toolkit for metrics and benchmark reporting.

#include <cstddef>
#include <vector>

namespace continu::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void clear() noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set via linear interpolation (q in [0,1]).
/// The input is copied and sorted; intended for end-of-run reporting.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values
/// outside the range clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Midpoint value of bucket i.
  [[nodiscard]] double bucket_mid(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace continu::util
