#pragma once
// Deterministic pseudo-random number generation for reproducible simulation.
//
// The simulator must produce identical runs for identical seeds across
// platforms, so we avoid std::default_random_engine / std::uniform_*
// distributions (whose algorithms are implementation-defined) and ship a
// self-contained xoshiro256** generator with explicit sampling routines.

#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace continu::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Derives the per-tick RNG stream for (session seed, tick time,
  /// participant key) — the parallel engine's replacement for drawing
  /// from a shared session generator inside node rounds. The mapping is
  /// a pure SplitMix64 chain over the three inputs (the time enters by
  /// bit pattern, so any representable SimTime is a distinct input):
  /// stable across platforms and thread counts, and decorrelated
  /// between adjacent ticks, nodes and seeds. Two calls with the same
  /// triple always yield identical streams.
  [[nodiscard]] static Rng for_tick(std::uint64_t seed, double tick_time,
                                    std::uint64_t key) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_range(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  [[nodiscard]] double next_exponential(double rate) noexcept;

  /// Pareto-distributed value with scale x_m > 0 and shape alpha > 0.
  /// Heavy-tailed; used for trace degree/ping synthesis.
  [[nodiscard]] double next_pareto(double x_m, double alpha) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k > n yields all of them).
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator (stable given call order).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace continu::util
