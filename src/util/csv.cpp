#include "util/csv.hpp"

#include <stdexcept>

namespace continu::util {

namespace {
void write_row(std::ofstream& out, const std::vector<std::string>& cells,
               std::string (*escape)(const std::string&)) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out << ',';
    out << escape(cells[i]);
  }
  out << '\n';
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), arity_(header.size()) {
  if (arity_ == 0) {
    throw std::invalid_argument("CsvWriter requires at least one column");
  }
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(out_, header, &CsvWriter::escape);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != arity_) {
    throw std::invalid_argument("CsvWriter row arity mismatch");
  }
  write_row(out_, cells, &CsvWriter::escape);
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace continu::util
