#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace continu::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace continu::util
