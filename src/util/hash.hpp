#pragma once
// 64-bit mixing hash used for DHT backup placement.
//
// The paper requires hash(id * i) % N to scatter the k replicas of a
// segment across the ring (Section 4.3: multiplying rather than adding
// the replica index i disperses consecutive segment ids over distinct
// nodes). Any well-mixing common hash qualifies; we use the SplitMix64
// finalizer, which passes avalanche tests and is constexpr-evaluable.

#include <cstdint>

#include "util/types.hpp"

namespace continu::util {

/// SplitMix64 finalizer: full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// DHT target of the i-th replica (i in 1..k) of segment `id` on an ID
/// space of size `id_space`: hash(id * i) mod N, exactly as in the paper.
[[nodiscard]] constexpr std::uint64_t backup_target(SegmentId id, unsigned replica,
                                                    std::uint64_t id_space) noexcept {
  const auto key = static_cast<std::uint64_t>(id) * replica;
  return mix64(key) % id_space;
}

}  // namespace continu::util
