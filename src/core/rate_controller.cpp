#include "core/rate_controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::core {

RateController::RateController(double initial_rate, double smoothing)
    : initial_rate_(initial_rate), smoothing_(smoothing) {
  if (initial_rate <= 0.0) {
    throw std::invalid_argument("RateController: initial rate must be positive");
  }
  if (smoothing <= 0.0 || smoothing > 1.0) {
    throw std::invalid_argument("RateController: smoothing must be in (0, 1]");
  }
}

void RateController::on_transfer_complete(NodeId neighbor, double transfer_s) {
  if (transfer_s < 0.0) {
    throw std::invalid_argument("RateController: negative transfer time");
  }
  const double sample = 1.0 / std::max(transfer_s, kMinTurnaround);
  auto [it, inserted] = ewma_.try_emplace(neighbor, static_cast<float>(initial_rate_));
  it->second = static_cast<float>(smoothing_ * sample +
                                  (1.0 - smoothing_) * static_cast<double>(it->second));
}

void RateController::on_transfer_failed(NodeId neighbor) {
  auto [it, inserted] = ewma_.try_emplace(neighbor, static_cast<float>(initial_rate_));
  it->second *= 0.7f;
}

void RateController::on_transfer_refused(NodeId neighbor) {
  auto [it, inserted] = ewma_.try_emplace(neighbor, static_cast<float>(initial_rate_));
  it->second *= 0.9f;
}

double RateController::estimate(NodeId neighbor) const {
  const auto it = ewma_.find(neighbor);
  const double raw =
      (it == ewma_.end()) ? initial_rate_ : static_cast<double>(it->second);
  return std::clamp(raw, kFloorRate, kCeilingRate);
}

void RateController::forget(NodeId neighbor) {
  ewma_.erase(neighbor);
  ewma_.maybe_shrink();
}

}  // namespace continu::core
