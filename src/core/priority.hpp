#pragma once
// Requesting-priority model (paper Section 4.2, equations 1-3).
//
//   R_i       = max_j R_ij                 best receiving rate offer
//   t_i       = (id_i - id_play)/p - 1/R_i expected slack before deadline
//   urgency_i = 1 / t_i                    (eq. 1)
//   rarity_i  = prod_j (p_ij / B)          (eq. 2)
//   priority  = max(urgency_i, rarity_i)   (eq. 3)
//
// p_ij is segment i's position in supplier j's FIFO buffer measured
// from the tail (the freshly-written end): segments far from the tail
// are close to eviction, so the product is the probability the segment
// is about to vanish from every supplier.
//
// The CoolStreaming baseline replaces all of this with the traditional
// rarest-first score 1/n_i.

#include <vector>

#include "util/types.hpp"

namespace continu::core {

/// One supplier's view of one candidate segment.
struct SupplierOffer {
  NodeId supplier = kInvalidNode;
  /// Estimated receiving rate from this supplier (R_ij, segments/s).
  double rate = 0.0;
  /// Distance of the segment from the supplier's buffer tail, in
  /// segments (1 = just written, B = about to be evicted).
  std::size_t buffer_position = 1;
};

/// A candidate segment with every supplier that can offer it.
struct Candidate {
  SegmentId id = kInvalidSegment;
  std::vector<SupplierOffer> offers;
};

struct PriorityInputs {
  /// id of the segment being played (id_play). kInvalidSegment when
  /// playback has not started — urgency is then defined as zero and
  /// rarity alone drives the ordering.
  SegmentId play_point = kInvalidSegment;
  /// Playback rate p (segments/s).
  std::uint64_t playback_rate = 10;
  /// Buffer capacity B.
  std::size_t buffer_capacity = 600;
  /// Weight of the classic rarest-first component (w/n_i) in the
  /// composite priority. Equation 3's urgency/rarity terms protect
  /// deadline-critical and dying segments but rank every fresh segment
  /// last, which starves the dissemination pipeline the paper takes for
  /// granted; the rarest-first term keeps few-holder (i.e. freshly
  /// emitted) segments flowing. 0 reproduces eq. 3 literally (see the
  /// ablation bench).
  double rarest_weight = 0.9;
};

/// Expected slack t_i; negative or zero means the deadline is already
/// unreachable at the offered rates.
[[nodiscard]] double expected_slack(const Candidate& candidate, const PriorityInputs& in);

/// urgency_i (eq. 1). Clamped to `max_urgency` when slack is <= 0 but
/// the segment is still ahead of the play point (we must still try).
[[nodiscard]] double urgency(const Candidate& candidate, const PriorityInputs& in,
                             double max_urgency = 100.0);

/// rarity_i (eq. 2).
[[nodiscard]] double rarity(const Candidate& candidate, const PriorityInputs& in);

/// Composite priority: max(urgency_i, rarity_i, w/n_i) — eq. 3
/// extended with the rarest-first pipeline term (see PriorityInputs).
[[nodiscard]] double priority(const Candidate& candidate, const PriorityInputs& in);

/// CoolStreaming's rarest-first score: 1/n_i.
[[nodiscard]] double rarest_first_score(const Candidate& candidate);

}  // namespace continu::core
