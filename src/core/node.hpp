#pragma once
// Per-node state, assembling the software architecture of Figure 1:
// P2P Overlay Manager (Peer Table), Data Scheduler inputs, Buffer, VoD
// Data Backup, Rate Controller. Protocol behaviour (who sends what to
// whom, and when) lives in core::Session, which owns all nodes and the
// network; this keeps node state independently constructible and
// testable.

#include <memory>
#include <optional>

#include "core/config.hpp"
#include "core/rate_controller.hpp"
#include "core/stream_buffer.hpp"
#include "core/urgent_line.hpp"
#include "dht/backup_store.hpp"
#include "dht/id_space.hpp"
#include "dht/peer_table.hpp"
#include "overlay/neighbor_set.hpp"
#include "overlay/overheard_list.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace continu::core {

/// How a pending segment transfer was initiated — gossip scheduling or
/// DHT pre-fetch. Pre-fetched segments carry the paper's "tag" so the
/// scheduler can recognize repeats (alpha case 2).
enum class TransferKind : std::uint8_t {
  kScheduled,  ///< pulled by the gossip scheduler
  kPrefetch,   ///< fetched on demand through the DHT
  kPushed,     ///< relayed unrequested (GridMedia-style push)
};

struct InflightTransfer {
  TransferKind kind = TransferKind::kScheduled;
  NodeId supplier = kInvalidNode;
  SimTime requested_at = 0.0;
};

namespace detail {
/// Packed in-flight record (12 bytes; the public InflightTransfer is
/// reconstructed on read). requested_at is float: it only feeds
/// timeout-cutoff comparisons at whole-period granularity.
struct PackedTransfer {
  float requested_at = 0.0f;
  NodeId supplier = kInvalidNode;
  TransferKind kind = TransferKind::kScheduled;
};

/// Packed retry record (8 bytes): when the segment may be re-requested
/// and how many consecutive timeouts it has accumulated (capped at
/// RetryPolicy::max_attempts — the backoff saturates, it never grows
/// past the cap).
struct PackedRetry {
  float eligible_at = 0.0f;
  std::uint8_t attempts = 0;
};

/// Packed supplier-strike record (8 bytes). `until` doubles as the
/// record's freshness stamp: below the strike threshold it marks when
/// the slate is wiped; at/above it, when the blacklist window ends.
/// compact_bookkeeping erases any record whose `until` has passed, so
/// the blacklist decays on quiet as well as on success.
struct PackedStrike {
  float until = 0.0f;
  std::uint8_t strikes = 0;
};
}  // namespace detail

class Node {
 public:
  Node(NodeId id, std::size_t session_index, const SystemConfig& config,
       const dht::IdSpace& space, double inbound_rate, double outbound_rate,
       double ping_ms);

  // --- identity -----------------------------------------------------------
  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t session_index() const noexcept { return session_index_; }
  [[nodiscard]] double ping_ms() const noexcept { return ping_ms_; }

  // --- liveness -----------------------------------------------------------
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) noexcept { alive_ = alive; }
  [[nodiscard]] bool is_source() const noexcept { return is_source_; }
  void mark_source() noexcept { is_source_ = true; }

  // --- bandwidth ----------------------------------------------------------
  [[nodiscard]] double inbound_rate() const noexcept { return inbound_rate_; }
  [[nodiscard]] double outbound_rate() const noexcept { return outbound_rate_; }

  /// Fluid-model transfer queues: the time at which this node's uplink
  /// (resp. downlink) next becomes free.
  [[nodiscard]] SimTime uplink_free_at() const noexcept { return uplink_free_at_; }
  void set_uplink_free_at(SimTime t) noexcept { uplink_free_at_ = t; }
  [[nodiscard]] SimTime downlink_free_at() const noexcept { return downlink_free_at_; }
  void set_downlink_free_at(SimTime t) noexcept { downlink_free_at_ = t; }

  /// Available sending rate advertised in DHT replies: the full uplink
  /// rate discounted by current backlog (seconds of queued work).
  [[nodiscard]] double available_sending_rate(SimTime now) const noexcept;

  // --- components (Figure 1) ------------------------------------------------
  [[nodiscard]] StreamBuffer& buffer() noexcept { return buffer_; }
  [[nodiscard]] const StreamBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] overlay::NeighborSet& neighbors() noexcept { return neighbors_; }
  [[nodiscard]] const overlay::NeighborSet& neighbors() const noexcept { return neighbors_; }
  [[nodiscard]] dht::PeerTable& dht_peers() noexcept { return dht_peers_; }
  [[nodiscard]] const dht::PeerTable& dht_peers() const noexcept { return dht_peers_; }
  [[nodiscard]] overlay::OverheardList& overheard() noexcept { return overheard_; }
  [[nodiscard]] const overlay::OverheardList& overheard() const noexcept { return overheard_; }
  [[nodiscard]] dht::BackupStore& backup() noexcept { return backup_; }
  [[nodiscard]] const dht::BackupStore& backup() const noexcept { return backup_; }
  [[nodiscard]] RateController& rates() noexcept { return rates_; }
  [[nodiscard]] const RateController& rates() const noexcept { return rates_; }
  [[nodiscard]] UrgentLine& urgent_line() noexcept { return urgent_line_; }
  [[nodiscard]] const UrgentLine& urgent_line() const noexcept { return urgent_line_; }

  // --- in-flight bookkeeping ----------------------------------------------
  /// Registers a pending transfer; returns false if one is already
  /// pending for the segment (no double-request).
  bool begin_transfer(SegmentId id, TransferKind kind, NodeId supplier, SimTime now);

  /// Completes (erases) the pending entry; returns its record.
  std::optional<InflightTransfer> end_transfer(SegmentId id);

  [[nodiscard]] bool transfer_pending(SegmentId id) const;
  [[nodiscard]] std::size_t inflight_count() const noexcept { return inflight_.size(); }

  /// One-pass timeout sweep over BOTH in-flight tables (transfers of
  /// any kind and pre-fetches): erases every entry requested before
  /// `cutoff` and returns how many were dropped. For each dropped
  /// in-flight transfer with a known supplier (whatever its
  /// TransferKind), `on_failed(supplier)` fires exactly once so
  /// the caller can decay the rate estimate — directly, or deferred
  /// into a per-shard list when the sweep runs inside a fork (the
  /// prepare-local phase applies those decays after the join, in shard
  /// order). Touches only this node's own tables, so it is safe to run
  /// concurrently across nodes. Erase-during-iteration is within the
  /// FlatMap contract: the cutoff predicate is idempotent, and the
  /// side effect rides the erase, so a wrap-displaced revisit (which is
  /// only ever a non-erased entry) can never double-fire it.
  /// Hardening tallies produced by a policy-carrying sweep, merged into
  /// the session stats by the caller (per-shard when forked).
  struct SweepHardening {
    std::uint64_t backoffs = 0;    ///< retry records created or escalated
    std::uint64_t blacklists = 0;  ///< blacklist activations
  };

  /// When `policy` is non-null the same one-pass sweep also records the
  /// hardening state for each dropped entry: a retry-backoff record for
  /// the segment (consulted by plan_scheduling / plan_prefetch) and a
  /// strike against the supplier (blacklist after repeated failures).
  /// All writes land in this node's own tables, so the fork-safety
  /// argument is unchanged. The fault-free path (null policy) is
  /// bit-identical to the pre-hardening sweep.
  template <typename F>
  std::size_t sweep_timeouts(SimTime cutoff, F&& on_failed,
                             const fault::RetryPolicy* policy = nullptr,
                             SimTime now = 0.0,
                             SweepHardening* hardening = nullptr) {
    std::size_t dropped = 0;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (static_cast<SimTime>(it->second.requested_at) < cutoff) {
        if (it->second.supplier != kInvalidNode) {
          on_failed(it->second.supplier);
          if (policy != nullptr &&
              note_supplier_failure(it->second.supplier, now, *policy)) {
            ++hardening->blacklists;
          }
        }
        if (policy != nullptr) {
          note_retry_failure(it->first, now, *policy);
          ++hardening->backoffs;
        }
        it = inflight_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto it = prefetch_pending_.begin(); it != prefetch_pending_.end();) {
      if (static_cast<SimTime>(it->second) < cutoff) {
        if (policy != nullptr) {
          note_retry_failure(it->first, now, *policy);
          ++hardening->backoffs;
        }
        it = prefetch_pending_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  // --- pre-fetch bookkeeping (separate from gossip transfers: the two
  // channels deliberately RACE; the alpha tag mechanism reconciles) ----
  /// Registers a pending pre-fetch; false if one is already running.
  bool begin_prefetch(SegmentId id, SimTime now);
  /// Completes/aborts the pending pre-fetch entry.
  void end_prefetch(SegmentId id);
  [[nodiscard]] bool prefetch_pending(SegmentId id) const;
  [[nodiscard]] std::size_t prefetch_inflight_count() const noexcept {
    return prefetch_pending_.size();
  }

  /// Was this segment delivered by pre-fetch (the paper's tag)? Used to
  /// recognize "repeated data" when gossip later delivers it too.
  [[nodiscard]] bool prefetch_tagged(SegmentId id) const;
  void tag_prefetched(SegmentId id);
  /// Drops tags older than the window head (bounded memory).
  void expire_tags(SegmentId horizon);

  /// Drops in-flight entries whose supplier died (abrupt failure).
  /// Returns the affected segment ids.
  std::vector<SegmentId> drop_transfers_from(NodeId supplier);

  // --- retry/backoff + supplier blacklist (hardening; fault_plan.hpp) ----
  /// True while `id` sits inside its retry-backoff window.
  [[nodiscard]] bool retry_blocked(SegmentId id, SimTime now) const;
  /// Clears the retry record (the segment arrived after all).
  void clear_retry(SegmentId id);
  /// Adds a strike against `supplier`; returns true when this strike
  /// activated (or re-armed) the blacklist window.
  bool note_supplier_failure(NodeId supplier, SimTime now,
                             const fault::RetryPolicy& policy);
  /// A completed transfer wipes the supplier's strike slate.
  void note_supplier_success(NodeId supplier);
  /// True while `supplier`'s offers are ignored by the scheduler (the
  /// policy carries the strike threshold the packed record is read
  /// against).
  [[nodiscard]] bool supplier_blacklisted(NodeId supplier, SimTime now,
                                          const fault::RetryPolicy& policy) const;
  [[nodiscard]] std::size_t retry_record_count() const noexcept {
    return retry_state_.size();
  }
  [[nodiscard]] std::size_t strike_record_count() const noexcept {
    return supplier_strikes_.size();
  }

  // Estimated footprint of the bookkeeping tables — memory sizing.
  // Flat tables charge capacity x (slot + 1 meta byte). Per-table
  // detail for the footprint report / README budget table; the rate
  // table is reported via rates().approx_bytes().
  [[nodiscard]] std::size_t approx_transfer_map_bytes() const noexcept {
    return inflight_.approx_bytes();
  }
  [[nodiscard]] std::size_t approx_prefetch_map_bytes() const noexcept {
    return prefetch_pending_.approx_bytes();
  }
  [[nodiscard]] std::size_t approx_tag_set_bytes() const noexcept {
    return prefetch_tags_.approx_bytes();
  }
  [[nodiscard]] std::size_t approx_retry_map_bytes() const noexcept {
    return retry_state_.approx_bytes();
  }
  [[nodiscard]] std::size_t approx_blacklist_bytes() const noexcept {
    return supplier_strikes_.approx_bytes();
  }

  /// Periodic GC hook (called once per round): sweeps expired hardening
  /// records (retry entries behind the window head or long past their
  /// backoff, strike records whose decay window passed) and shrinks
  /// bookkeeping tables whose burst capacity has drained, so
  /// steady-state footprint tracks live state instead of the all-time
  /// high-water mark. Not noexcept — the shrink rehash allocates and
  /// may throw bad_alloc.
  void compact_bookkeeping(SimTime now, SegmentId horizon);

  // --- playback-round bookkeeping -------------------------------------------
  /// Round statistics updated by the session each period.
  struct RoundStats {
    std::uint64_t played = 0;
    std::uint64_t missed = 0;
  };
  [[nodiscard]] RoundStats& round_stats() noexcept { return round_stats_; }

  /// Stall-episode tracking bit, owned by the metrics sampler: set
  /// while the node is inside a run of rounds with missed segments, so
  /// episode starts (ok -> stalled transitions) can be counted.
  [[nodiscard]] bool in_stall() const noexcept { return in_stall_; }
  void set_in_stall(bool stalled) noexcept { in_stall_ = stalled; }

 private:
  NodeId id_;
  std::size_t session_index_;
  double ping_ms_;
  bool alive_ = true;
  bool is_source_ = false;

  double inbound_rate_;
  double outbound_rate_;
  SimTime uplink_free_at_ = 0.0;
  SimTime downlink_free_at_ = 0.0;

  StreamBuffer buffer_;
  overlay::NeighborSet neighbors_;
  dht::PeerTable dht_peers_;
  overlay::OverheardList overheard_;
  dht::BackupStore backup_;
  RateController rates_;
  UrgentLine urgent_line_;

  /// Keys are window-local segment ids narrowed to 32 bits — the same
  /// boundedness argument as the 20-bit wire head: at 10 segments/s,
  /// 2^32 ids is a 13-year stream. seg_key() asserts the precondition.
  [[nodiscard]] static std::uint32_t seg_key(SegmentId id) noexcept;

  /// Inserts/escalates the retry record for a timed-out segment key.
  void note_retry_failure(std::uint32_t key, SimTime now,
                          const fault::RetryPolicy& policy);

  util::FlatMap<std::uint32_t, detail::PackedTransfer> inflight_;
  util::FlatMap<std::uint32_t, float> prefetch_pending_;
  /// Pre-fetch delivery tags (paper: "tag"). Membership is the value,
  /// so a flat SET (5 bytes/slot) replaces the old map-to-true.
  util::FlatSet<std::uint32_t> prefetch_tags_;
  /// Hardening state (empty unless a RetryPolicy is active): per-segment
  /// backoff records and per-supplier strike/blacklist records. Same
  /// bounded FlatMap discipline as the in-flight tables — swept by
  /// compact_bookkeeping, zero heap when empty.
  util::FlatMap<std::uint32_t, detail::PackedRetry> retry_state_;
  util::FlatMap<NodeId, detail::PackedStrike> supplier_strikes_;
  RoundStats round_stats_;
  bool in_stall_ = false;
};

}  // namespace continu::core
