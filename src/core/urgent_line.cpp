#include "core/urgent_line.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace continu::core {

UrgentLine::UrgentLine(const UrgentLineConfig& config)
    : capacity_(config.buffer_capacity) {
  if (config.buffer_capacity == 0 || config.playback_rate == 0) {
    throw std::invalid_argument("UrgentLine: bad buffer/playback parameters");
  }
  const double p = static_cast<double>(config.playback_rate);
  const double b = static_cast<double>(config.buffer_capacity);
  lower_bound_ = p / b * std::max(config.scheduling_period, config.t_fetch);
  lower_bound_ = std::min(lower_bound_, 1.0);
  step_ = p * config.t_hop / b;
  alpha_ = lower_bound_;
}

SegmentId UrgentLine::urgent_id(SegmentId id_head) const noexcept {
  return id_head + static_cast<SegmentId>(std::llround(alpha_ * static_cast<double>(capacity_)));
}

void UrgentLine::on_overdue_prefetch() noexcept {
  ++overdue_;
  alpha_ += step_;
  clamp();
}

void UrgentLine::on_repeated_prefetch() noexcept {
  ++repeated_;
  alpha_ -= step_;
  clamp();
}

void UrgentLine::clamp() noexcept {
  alpha_ = std::clamp(alpha_, lower_bound_, 1.0);
}

std::size_t prefetch_quota(std::size_t n_miss, std::size_t limit) noexcept {
  if (n_miss == 0) return 0;       // case 1: nothing predicted missed
  if (n_miss > limit) return 0;    // case 3: too many — avoid traffic burst
  return n_miss;                   // case 2: fetch them all in parallel
}

}  // namespace continu::core
