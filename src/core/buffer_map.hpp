#pragma once
// Buffer-map wire format (paper Section 5.4.2): 600 availability bits
// (one per buffer slot) plus a 20-bit head segment id = 620 bits per
// exchange. The codec packs to that exact budget; the decoder recovers
// the window for the scheduler.

#include <cstdint>
#include <vector>

#include "util/bitwindow.hpp"
#include "util/types.hpp"

namespace continu::core {

struct EncodedBufferMap {
  /// Packed little-endian bit stream: 20 head bits then window bits.
  std::vector<std::uint8_t> bytes;
  /// Exact size in bits (= 20 + window capacity).
  std::size_t bit_count = 0;
};

/// Number of bits a buffer map for the given window capacity costs.
[[nodiscard]] constexpr std::size_t buffer_map_bits(std::size_t capacity) noexcept {
  return 20 + capacity;
}

/// Encodes head id (mod 2^20 — the source emits < 2^20 segments/hour,
/// and the decoder disambiguates against its own clock) + window bits.
[[nodiscard]] EncodedBufferMap encode_buffer_map(const util::BitWindow& window);

/// Decodes an image produced by encode_buffer_map. `reference_head` is
/// the decoder's estimate of the sender's window head (any value within
/// +/- 2^19 of the truth reconstructs the exact id).
[[nodiscard]] util::BitWindow decode_buffer_map(const EncodedBufferMap& image,
                                                std::size_t capacity,
                                                SegmentId reference_head);

}  // namespace continu::core
