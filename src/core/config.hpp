#pragma once
// System configuration — every paper parameter in one place, with the
// paper's defaults (Section 5.2 simulation methodology).

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "obs/obs_config.hpp"
#include "overlay/churn.hpp"
#include "util/types.hpp"

namespace continu::core {

/// Which data scheduler a session runs.
enum class SchedulerKind {
  /// ContinuStreaming: priority = max(urgency, rarity) with
  /// rarity = prod(p_ij / B)  (paper eqs. 1-3) + DHT pre-fetch.
  kContinuStreaming,
  /// CoolStreaming baseline: rarest-first (rarity = 1/n_i), no DHT.
  kCoolStreaming,
  /// GridMedia-style push-pull (paper Section 2): fresh segments are
  /// RELAYED to partners as soon as they are received ("pushing
  /// packets"), pulls fill the holes; no DHT. Reduces latency at the
  /// cost of redundant transmissions.
  kGridMediaPushPull,
};

struct SystemConfig {
  // --- stream parameters -------------------------------------------------
  /// Playback rate p: segments per second (300 Kbps / 30 Kb).
  std::uint64_t playback_rate = 10;
  /// Buffer capacity B in segments (60 s of media).
  std::size_t buffer_capacity = 600;
  /// Scheduling period tau in seconds.
  double scheduling_period = 1.0;
  /// Segments a node must accumulate before starting playback — the
  /// startup cushion that absorbs per-round supply fluctuations. 5 s of
  /// media by default (CoolStreaming-era players buffered 5-120 s).
  std::size_t startup_segments = 50;
  /// How long playback waits (rebuffers) for a missing due segment
  /// before skipping it. Era players wait rather than skip; waiting
  /// also sinks a node to a depth its supply can sustain.
  double stall_patience = 2.0;

  // --- overlay parameters ------------------------------------------------
  /// Connected neighbors M.
  std::size_t connected_neighbors = 5;
  /// Overheard Nodes capacity H.
  std::size_t overheard_capacity = 20;
  /// ID space size N (power of two; paper uses 8192). The session
  /// raises it automatically if the trace needs more room.
  std::uint64_t id_space = 8192;

  // --- bandwidth (segments/second; 1 segment = 30 Kb) ---------------------
  /// Node inbound rate range [10, 33] ~ 300 Kbps - 1 Mbps, mean ~15.
  double inbound_min = 10.0;
  double inbound_max = 33.0;
  /// Whether inbound/outbound rates vary per node ("heterogeneous") or
  /// every node gets the mean ("homogeneous", used by the 5.1 table).
  bool heterogeneous_bandwidth = true;
  /// Outbound arranged "alike" per the paper.
  double outbound_min = 10.0;
  double outbound_max = 33.0;
  /// The source: zero inbound, much larger outbound (I = 100).
  double source_outbound = 100.0;
  /// Push fan-out for the GridMedia-style scheduler: how many partners
  /// a fresh segment is relayed to on receipt.
  std::size_t push_fanout = 2;

  // --- DHT / pre-fetch ---------------------------------------------------
  /// Replicas per segment k.
  unsigned backup_replicas = 4;
  /// Max segments fetched per on-demand invocation l.
  unsigned prefetch_limit = 5;
  /// Average one-hop overlay latency estimate t_hop (seconds) used for
  /// the alpha adaptation step size; the paper estimates ~50 ms.
  double t_hop_estimate = 0.05;
  /// Expected overlay population estimate used in t_fetch (the paper:
  /// "we can set n = N/2 initially; it does not need to be accurate").
  double expected_nodes = 4096.0;

  // --- scheduler / churn ---------------------------------------------------
  SchedulerKind scheduler = SchedulerKind::kContinuStreaming;
  /// Enable churn ("dynamic environment").
  bool churn_enabled = false;
  overlay::ChurnConfig churn{};

  // --- faults / hardening --------------------------------------------------
  /// Deterministic fault schedule (link loss, crash-stop events,
  /// partitions, latency spikes). The default plan is inert: no
  /// injector is installed and the simulation is bit-identical to a
  /// fault-free build.
  fault::FaultPlan fault{};
  /// Retry/backoff + supplier-blacklist hardening for the pull and
  /// prefetch planes. Off by default (zero-fault hot path untouched);
  /// the f*_ scenario families switch it on.
  fault::RetryPolicy retry{};

  // --- observability -------------------------------------------------------
  /// Deterministic observability layer (src/obs/): phase profiler,
  /// structured trace export, counter registry. All off by default;
  /// enabling any pillar never moves a result fingerprint (obs writes
  /// only to obs-owned state — CI diffs fingerprints obs-on vs
  /// obs-off to enforce it).
  obs::ObsConfig obs{};

  // --- neighbor maintenance ----------------------------------------------
  /// Replace a neighbor whose smoothed supply rate is below this many
  /// segments per period (after the grace period).
  double low_supply_threshold = 0.25;
  /// Grace period (seconds) before a neighbor can be judged weak.
  double neighbor_min_age = 10.0;

  // --- run control ---------------------------------------------------------
  std::uint64_t seed = 42;
  /// Intra-session worker threads for the fork/join round executor.
  /// 1 = serial (inline shards), 0 = all hardware threads. Results are
  /// bit-identical for EVERY value — the parallel engine derives
  /// per-tick RNG streams and merges stats/emissions in fixed shard
  /// order, so threads only changes wall-clock time.
  unsigned threads = 1;
  /// Round-phase quantization: node-round phases are drawn from this
  /// many evenly spaced buckets across the jitter range, so nodes in
  /// the same bucket tick at the same instant and form a RoundScheduler
  /// batch the executor can shard. 0 = continuous phases (every batch
  /// is a single node; parallel execution degenerates to serial).
  unsigned round_phase_buckets = 32;
  /// Latency quantization grid in milliseconds. 0 = the paper's
  /// continuous pairwise model (every delivery is its own serial
  /// event). Positive (1-5 ms in practice) snaps delivery instants UP
  /// to the grid so co-instant deliveries batch and fork by receiver —
  /// the quantized network mode. Results are bit-identical at every
  /// thread count WITHIN a mode; the two modes are distinct universes
  /// (see the committed divergence study for the metric deltas).
  double latency_grid_ms = 0.0;
  /// Sharded event-queue engine (strict mode): per-shard slot-pool
  /// heaps under a meta-heap time frontier, with quantized deliveries
  /// routed through per-lane hand-off heaps drained in parallel at
  /// each grid barrier. Off by default — the single queue stays the
  /// oracle; results are REQUIRED to be byte-identical either way at
  /// every thread count (CI diffs fingerprints on-vs-off).
  bool sharded_queue = false;
  /// Shard count for the sharded engine (rounded up to a power of
  /// two). Identity holds for ANY value — the frontier walk restores
  /// global order — so this is purely a performance knob.
  unsigned sharded_queue_shards = 8;
  /// Bounded clock skew for the sharded engine, in latency-grid
  /// buckets. 0 = strict mode (byte-identical to the single-queue
  /// oracle, unchanged). k >= 1 = lax mode: shards drain events up to
  /// k grid buckets ahead of the global meta-heap frontier, with the
  /// per-shard pops forked across the session executor and cross-shard
  /// emissions fenced to the next window. Lax runs are deterministic
  /// and thread-count invariant PER SKEW SETTING, but each k >= 1 is a
  /// different universe from strict (see docs/DETERMINISM.md contract
  /// 7 and the committed drift study). Requires sharded_queue and a
  /// positive latency_grid_ms; ignored otherwise.
  unsigned queue_skew_buckets = 0;

  /// Convenience: mean inbound rate (the lambda of Section 5.1). The
  /// rate distribution is a truncated exponential on [min, max] with
  /// mean at min + (max-min)/4.6 ~ 15 segments/s for the paper's
  /// 300 Kbps - 1 Mbps range (average 450 Kbps).
  [[nodiscard]] double mean_inbound() const noexcept {
    return inbound_min + (inbound_max - inbound_min) / 4.6;
  }

  /// Preset: the paper's CoolStreaming baseline on identical substrate.
  [[nodiscard]] SystemConfig as_coolstreaming() const noexcept {
    SystemConfig c = *this;
    c.scheduler = SchedulerKind::kCoolStreaming;
    return c;
  }
};

}  // namespace continu::core
