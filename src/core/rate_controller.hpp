#pragma once
// Rate Controller (paper Figure 1): monitors and estimates the
// receiving rate from each connected neighbor. The estimates are the
// R_ij inputs of the priority model and of Algorithm 1.
//
// The estimator samples the turnaround of completed transfers
// (request -> delivery), which reflects the supplier's real service
// capacity including queueing, rather than "segments we happened to
// pull last period" (which self-throttles: booking little lowers the
// estimate, which books even less, until the supplier freezes out).
// Estimates are floored so a quiet supplier is still probed with one
// request per round, letting it recover.

#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace continu::core {

class RateController {
 public:
  /// `initial_rate` seeds the estimate for a neighbor we have never
  /// transferred from (segments/second); `smoothing` is the EWMA
  /// factor applied per turnaround sample.
  explicit RateController(double initial_rate = 10.0, double smoothing = 0.3);

  /// Records one completed transfer from `neighbor` whose payload took
  /// `transfer_s` seconds on the wire (the receiver's throughput
  /// measurement: segment size / receive rate).
  void on_transfer_complete(NodeId neighbor, double transfer_s);

  /// Records a transfer that timed out — decays the estimate hard.
  void on_transfer_failed(NodeId neighbor);

  /// Records a refusal (supplier saturated this round) — decays the
  /// estimate mildly so chronic saturation steers bookings elsewhere
  /// while one-off refusals barely matter.
  void on_transfer_refused(NodeId neighbor);

  /// Current estimate for the neighbor (segments/second), clamped to
  /// [floor_rate, ceiling_rate].
  [[nodiscard]] double estimate(NodeId neighbor) const;

  /// Drops state for a departed neighbor.
  void forget(NodeId neighbor);

  [[nodiscard]] double initial_rate() const noexcept { return initial_rate_; }

  /// Estimated heap footprint of the estimate table — memory sizing.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return ewma_.approx_bytes();
  }

  /// Probe floor: keeps every supplier schedulable for at least one
  /// segment per period (1/floor < tau for tau = 1 s).
  static constexpr double kFloorRate = 1.5;
  /// Sanity ceiling (segments/second).
  static constexpr double kCeilingRate = 50.0;
  /// Minimum turnaround accounted, to bound single-sample spikes.
  static constexpr double kMinTurnaround = 0.02;

 private:
  double initial_rate_;
  double smoothing_;
  /// Per-neighbor EWMA, float-packed: estimates are heavily smoothed
  /// and clamped to [1.5, 50], so 24 mantissa bits lose nothing that
  /// matters; the slot drops from 16 to 8 bytes (9 with metadata).
  util::FlatMap<NodeId, float> ewma_;
};

}  // namespace continu::core
