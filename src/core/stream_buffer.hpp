#pragma once
// Per-node stream buffer and playback state.
//
// The buffer is a FIFO sliding window of B consecutive segment ids
// anchored just ahead of the playback point: once a segment is played
// (or its deadline passes) it is removed — exactly the behaviour the
// paper relies on for its rarity computation and for case 2 of the
// motivating example ("d has been playbacked by B and removed from B's
// buffer").
//
// Playback: the node starts playing either (a) by following its
// neighbors' current play point (join rule, Section 5.2), or (b) after
// accumulating a startup window of segments. After start, segment s is
// due at deadline(s) = start_time + (s - start_segment + 1)/p.

#include <optional>
#include <vector>

#include "util/bitwindow.hpp"
#include "util/types.hpp"

namespace continu::core {

struct DueSegment {
  SegmentId id = kInvalidSegment;
  SimTime deadline = 0.0;
  bool present = false;
  /// True when this entry marks a rebuffering stall (nothing at or
  /// after the due point was held) rather than an isolated hole.
  bool stalled = false;
};

class StreamBuffer {
 public:
  /// `stall_patience` — how long playback waits for a missing due
  /// segment before skipping it (era players rebuffer rather than skip;
  /// waiting also deepens the node's position until it is sustainable).
  StreamBuffer(std::size_t capacity, std::uint64_t playback_rate,
               double stall_patience = 2.0);

  [[nodiscard]] std::size_t capacity() const noexcept { return window_.capacity(); }
  [[nodiscard]] std::uint64_t playback_rate() const noexcept { return playback_rate_; }

  // --- receiving ----------------------------------------------------------
  /// Inserts a received segment. Returns true iff the segment was fresh
  /// (inside the window and not already present). Segments behind the
  /// window head are stale and rejected.
  bool insert(SegmentId id);

  [[nodiscard]] bool has(SegmentId id) const noexcept { return window_.test(id); }
  [[nodiscard]] std::size_t held() const noexcept { return window_.count(); }

  /// Window bounds [head, end).
  [[nodiscard]] SegmentId window_head() const noexcept { return window_.head(); }
  [[nodiscard]] SegmentId window_end() const noexcept { return window_.end(); }

  /// Highest-id segment currently held (nullopt when empty).
  [[nodiscard]] std::optional<SegmentId> newest() const;

  /// Missing ids in [from, to) clipped to the window.
  [[nodiscard]] std::vector<SegmentId> missing_in(SegmentId from, SegmentId to) const {
    return window_.missing_in(from, to);
  }

  [[nodiscard]] const util::BitWindow& window() const noexcept { return window_; }

  // --- playback -----------------------------------------------------------
  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Starts playback at `segment` with the first deadline one segment
  /// period after `now`.
  void start_playback(SegmentId segment, SimTime now);

  /// True when the startup accumulation rule is satisfied: the node
  /// holds at least `startup_segments` segments.
  [[nodiscard]] bool startup_ready(std::size_t startup_segments) const noexcept {
    return held() >= startup_segments;
  }

  /// First segment of the startup run (the oldest held segment);
  /// nullopt when empty.
  [[nodiscard]] std::optional<SegmentId> startup_position() const;

  /// The id currently being played: the last segment whose deadline has
  /// passed (id_play in the paper's equations). One less than the next
  /// due segment. Only meaningful after start.
  [[nodiscard]] SegmentId play_point(SimTime now) const;

  /// Deadline of segment `id` (requires started()).
  [[nodiscard]] SimTime deadline(SegmentId id) const;

  /// Pops every segment due in (last_play_time, now]: reports presence.
  /// Played segments stay in the window (eviction is FIFO by arrival,
  /// driven by insert()), so they remain available to neighbors.
  /// A missing due segment makes the player REBUFFER (the deadline
  /// schedule shifts forward; one stalled marker is reported and the
  /// round counts as discontinuous) for up to `stall_patience` seconds;
  /// only then is it skipped as a miss. Waiting is what real players
  /// do, and it lets a node sink to a depth its supply can sustain
  /// instead of being pinned at an infeasible distance behind the live
  /// edge. Requires started().
  [[nodiscard]] std::vector<DueSegment> advance_playback(SimTime now);

  /// Number of rebuffering stalls so far.
  [[nodiscard]] std::uint64_t stall_count() const noexcept { return stalls_; }

 private:
  util::BitWindow window_;
  std::uint64_t playback_rate_;
  bool started_ = false;
  SegmentId start_segment_ = kInvalidSegment;
  SimTime start_time_ = 0.0;
  SegmentId next_due_ = kInvalidSegment;
  std::uint64_t stalls_ = 0;
  double stall_patience_;
  SegmentId pending_stall_segment_ = kInvalidSegment;
  SimTime pending_stall_since_ = 0.0;
};

}  // namespace continu::core
