#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/flat_map.hpp"
#include "util/hash.hpp"

namespace continu::core {

namespace {

struct Ranked {
  std::size_t index = 0;   ///< into request.candidates
  double score = 0.0;
};

/// The greedy supplier-selection pass shared by both systems
/// (Algorithm 1 lines 2-15).
[[nodiscard]] ScheduleResult greedy_assign(const ScheduleRequest& request,
                                           std::vector<Ranked> ranked) {
  ScheduleResult result;
  // Line 1: the maximum number of inbound segments this period.
  const std::size_t limit = std::min(ranked.size(), request.inbound_budget);

  // Queuing time per supplier, tau(j), initially 0. Flat maps: one
  // allocation each for the handful of suppliers a round sees, on the
  // hottest per-round path in the system.
  util::FlatMap<NodeId, double> queue_time;
  util::FlatMap<NodeId, std::size_t> booked;

  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (result.assignments.size() >= limit) {
      result.unassigned += ranked.size() - r;
      break;
    }
    const Candidate& candidate = request.candidates[ranked[r].index];
    double t_min = std::numeric_limits<double>::infinity();
    NodeId chosen = kInvalidNode;
    for (const auto& offer : candidate.offers) {
      if (offer.rate <= 0.0) continue;
      if (request.per_supplier_cap != 0 &&
          booked[offer.supplier] >= request.per_supplier_cap) {
        continue;
      }
      const double t_trans = 1.0 / offer.rate;
      const double queued = queue_time[offer.supplier];
      const double total = t_trans + queued;
      // Line 7: must beat the best so far AND finish within the period.
      if (total < t_min && total < request.period) {
        t_min = total;
        chosen = offer.supplier;
      }
    }
    if (chosen == kInvalidNode) {
      ++result.unassigned;
      continue;
    }
    queue_time[chosen] = t_min;  // line 13: tau(supplier) <- t_min
    ++booked[chosen];
    result.assignments.push_back(
        Assignment{candidate.id, chosen, t_min, ranked[r].score});
  }
  return result;
}

[[nodiscard]] std::vector<Ranked> rank_by(const ScheduleRequest& request,
                                          double (*score_fn)(const Candidate&,
                                                             const PriorityInputs&)) {
  std::vector<Ranked> ranked;
  ranked.reserve(request.candidates.size());
  for (std::size_t i = 0; i < request.candidates.size(); ++i) {
    double score = score_fn(request.candidates[i], request.priority_inputs);
    if (request.rank_jitter > 0.0) {
      const auto h = util::mix64(request.jitter_seed ^
                                 static_cast<std::uint64_t>(request.candidates[i].id));
      const double centered =
          static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;  // [-0.5, 0.5)
      score *= 1.0 + request.rank_jitter * centered;
    }
    ranked.push_back(Ranked{i, score});
  }
  // Descending score; ties broken by smaller segment id (earlier
  // deadline) for a deterministic, sensible order.
  std::sort(ranked.begin(), ranked.end(), [&](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return request.candidates[a.index].id < request.candidates[b.index].id;
  });
  return ranked;
}

}  // namespace

ScheduleResult schedule_continu(const ScheduleRequest& request) {
  return greedy_assign(request, rank_by(request, [](const Candidate& c,
                                                    const PriorityInputs& in) {
                         return priority(c, in);
                       }));
}

ScheduleResult schedule_coolstreaming(const ScheduleRequest& request) {
  return greedy_assign(request, rank_by(request, [](const Candidate& c,
                                                    const PriorityInputs&) {
                         return rarest_first_score(c);
                       }));
}

}  // namespace continu::core
