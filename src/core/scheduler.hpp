#pragma once
// Data scheduling (paper Section 4.2, Algorithm 1) and the
// CoolStreaming rarest-first baseline, as pure functions over value
// inputs so both are unit-testable without a simulator.
//
// The underlying assignment problem (pick a supplier per segment to
// minimize deadline/replacement misses) is NP-hard — it contains
// parallel machine scheduling — so, as in the paper, a greedy pass
// assigns high-priority segments first, tracking a per-supplier queue
// time tau(j) and refusing assignments that cannot complete within the
// scheduling period.

#include <vector>

#include "core/priority.hpp"
#include "util/types.hpp"

namespace continu::core {

struct ScheduleRequest {
  /// Candidate segments (each with its supplier offers).
  std::vector<Candidate> candidates;
  PriorityInputs priority_inputs;
  /// Scheduling period tau (seconds).
  double period = 1.0;
  /// Inbound budget for this period, in segments (I * tau, minus
  /// whatever in-flight transfers already claim).
  std::size_t inbound_budget = 0;
  /// Cap on segments booked from one supplier per round. Spreads load
  /// so concurrent requesters do not all converge on the one supplier
  /// with the best rate estimate. 0 means unlimited.
  std::size_t per_supplier_cap = 0;
  /// Relative rank jitter in [0, 1): scores are scaled by a
  /// deterministic per-(seed, segment) factor in [1 - j/2, 1 + j/2).
  /// Gossip depends on neighbors making DIFFERENT choices — without
  /// jitter, identically-ranked requesters pull identical prefixes and
  /// have nothing left to exchange with each other.
  double rank_jitter = 0.0;
  /// Seed for the jitter hash (typically the requester's node id).
  std::uint64_t jitter_seed = 0;
};

struct Assignment {
  SegmentId segment = kInvalidSegment;
  NodeId supplier = kInvalidNode;
  /// Expected completion time offset within the period (t_min in
  /// Algorithm 1): queueing at the supplier + transfer.
  double expected_time = 0.0;
  /// The priority that ranked this segment (for diagnostics/tests).
  double priority = 0.0;
};

struct ScheduleResult {
  std::vector<Assignment> assignments;
  /// Candidates considered but left unassigned (no supplier could
  /// deliver within the period, or budget exhausted).
  std::size_t unassigned = 0;
};

/// ContinuStreaming's scheduler: rank by priority = max(urgency, rarity)
/// then run the greedy supplier-selection pass of Algorithm 1.
[[nodiscard]] ScheduleResult schedule_continu(const ScheduleRequest& request);

/// CoolStreaming baseline: rank by rarest-first (1/n_i, ties broken by
/// earlier deadline i.e. smaller id), same greedy supplier pass.
[[nodiscard]] ScheduleResult schedule_coolstreaming(const ScheduleRequest& request);

}  // namespace continu::core
