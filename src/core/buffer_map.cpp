#include "core/buffer_map.hpp"

#include <stdexcept>

namespace continu::core {

namespace {

constexpr std::size_t kHeadBits = 20;
constexpr std::int64_t kHeadSpan = 1LL << kHeadBits;

void put_bit(std::vector<std::uint8_t>& bytes, std::size_t index, bool value) {
  if (value) {
    bytes[index / 8] |= static_cast<std::uint8_t>(1u << (index % 8));
  }
}

[[nodiscard]] bool get_bit(const std::vector<std::uint8_t>& bytes, std::size_t index) {
  return (bytes[index / 8] >> (index % 8)) & 1u;
}

}  // namespace

EncodedBufferMap encode_buffer_map(const util::BitWindow& window) {
  EncodedBufferMap out;
  out.bit_count = buffer_map_bits(window.capacity());
  out.bytes.assign((out.bit_count + 7) / 8, 0);

  const auto head_mod =
      static_cast<std::uint32_t>(window.head() % kHeadSpan);
  for (std::size_t b = 0; b < kHeadBits; ++b) {
    put_bit(out.bytes, b, (head_mod >> b) & 1u);
  }
  for (std::size_t b = 0; b < window.capacity(); ++b) {
    const SegmentId id = window.head() + static_cast<SegmentId>(b);
    put_bit(out.bytes, kHeadBits + b, window.test(id));
  }
  return out;
}

util::BitWindow decode_buffer_map(const EncodedBufferMap& image, std::size_t capacity,
                                  SegmentId reference_head) {
  if (image.bit_count != buffer_map_bits(capacity)) {
    throw std::invalid_argument("decode_buffer_map: size mismatch");
  }
  std::uint32_t head_mod = 0;
  for (std::size_t b = 0; b < kHeadBits; ++b) {
    if (get_bit(image.bytes, b)) head_mod |= (1u << b);
  }
  // Reconstruct the absolute head: the value congruent to head_mod
  // (mod 2^20) closest to the reference estimate.
  SegmentId base = reference_head - (reference_head % kHeadSpan);
  SegmentId best = base + head_mod;
  for (const SegmentId candidate : {best - kHeadSpan, best + kHeadSpan}) {
    if (candidate >= 0 &&
        std::abs(candidate - reference_head) < std::abs(best - reference_head)) {
      best = candidate;
    }
  }
  if (best < 0) best += kHeadSpan;

  util::BitWindow window(capacity, best);
  for (std::size_t b = 0; b < capacity; ++b) {
    if (get_bit(image.bytes, kHeadBits + b)) {
      window.set(best + static_cast<SegmentId>(b));
    }
  }
  return window;
}

}  // namespace continu::core
