#include "core/session.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "analysis/continuity_model.hpp"
#include "core/buffer_map.hpp"
#include "net/message.hpp"
#include "obs/counters.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/report.hpp"
#include "obs/trace_sink.hpp"
#include "trace/topology.hpp"
#include "util/logging.hpp"

namespace continu::core {

SessionStats& operator+=(SessionStats& lhs, const SessionStats& rhs) noexcept {
  lhs.segments_emitted += rhs.segments_emitted;
  lhs.segments_delivered += rhs.segments_delivered;
  lhs.duplicate_deliveries += rhs.duplicate_deliveries;
  lhs.requests_sent += rhs.requests_sent;
  lhs.segments_booked += rhs.segments_booked;
  lhs.segments_refused += rhs.segments_refused;
  lhs.candidates_seen += rhs.candidates_seen;
  lhs.candidates_unassigned += rhs.candidates_unassigned;
  lhs.prefetch_launched += rhs.prefetch_launched;
  lhs.prefetch_succeeded += rhs.prefetch_succeeded;
  lhs.prefetch_no_replica += rhs.prefetch_no_replica;
  lhs.prefetch_suppressed += rhs.prefetch_suppressed;
  lhs.segments_pushed += rhs.segments_pushed;
  lhs.dht_route_messages += rhs.dht_route_messages;
  lhs.dht_route_failures += rhs.dht_route_failures;
  lhs.joins += rhs.joins;
  lhs.graceful_leaves += rhs.graceful_leaves;
  lhs.abrupt_leaves += rhs.abrupt_leaves;
  lhs.neighbor_replacements += rhs.neighbor_replacements;
  lhs.transfer_timeouts += rhs.transfer_timeouts;
  lhs.mixed_batch_fallbacks += rhs.mixed_batch_fallbacks;
  lhs.deliveries_dropped += rhs.deliveries_dropped;
  lhs.deliveries_lost += rhs.deliveries_lost;
  lhs.deliveries_partitioned += rhs.deliveries_partitioned;
  lhs.fault_crashes += rhs.fault_crashes;
  lhs.retry_backoffs += rhs.retry_backoffs;
  lhs.suppliers_blacklisted += rhs.suppliers_blacklisted;
  lhs.stall_episodes += rhs.stall_episodes;
  lhs.stall_rounds += rhs.stall_rounds;
  return lhs;
}

SessionStats operator+(SessionStats lhs, const SessionStats& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

namespace {

using net::MessageType;
using net::TrafficClass;
using net::WireCosts;

/// Node-round phase jitter range within a period (the metrics sampler
/// runs at exact period boundaries, after every node has ticked).
constexpr double kPhaseLo = 0.05;
constexpr double kPhaseHi = 0.90;
/// Churn executes just before the period boundary.
constexpr double kChurnPhase = 0.95;
/// In-flight transfers older than this many periods are abandoned.
constexpr double kTransferTimeoutPeriods = 3.0;
/// A supplier accepts a transfer only if it completes within this many
/// periods of the request (Algorithm 1's premise is that transfers
/// finish inside the scheduling period; the paper's case 3 — "does not
/// have sufficient available bandwidth" — is a refusal). No standing
/// backlog accumulates across rounds.
constexpr double kServeWithinPeriods = 2.0;
/// How many RP-listed close nodes a joiner probes.
constexpr std::size_t kJoinProbeCount = 4;
/// Cap on candidates evaluated per scheduling round (safety bound).
constexpr std::size_t kMaxCandidates = 400;
/// Runway (segments) a joiner accumulates before following its
/// neighbors' play steps — about one scheduling round of pulls.
constexpr std::size_t kJoinStartSegments = 10;
/// Cushion a joiner anchors behind its neighbors' play point.
constexpr std::size_t kJoinBackstep = 20;
/// Leading request entries a supplier serves in the requester's
/// priority order (deadline-critical); the rest are served randomly.
constexpr std::size_t kUrgentHead = 4;
/// Membership piggyback riding each buffer-map exchange: how many
/// peer-table entries travel, and the wire size of one entry. Consumed
/// by BOTH halves of the exchange — the forked receive side picks
/// kPiggybackEntries entries, the join's bulk charge prices them — so
/// they must stay a single definition.
constexpr int kPiggybackEntries = 2;
constexpr Bits kMembershipEntryBits = 48;
/// Look-ahead horizon (segments past the play point) the scheduler
/// pulls toward. Bounds the elastic window-filling demand — without it,
/// every young node pulls its entire 60 s buffer at full rate and the
/// aggregate demand under churn permanently exceeds capacity.
constexpr SegmentId kLookaheadSegments = 150;

/// Fork/join shard grains. Fixed constants — NEVER derived from the
/// thread count — so the shard structure (and with it the merge order
/// of stats deltas, FP accumulations and deferred emissions) is
/// identical at every thread count.
constexpr std::size_t kPlanGrain = 32;    ///< round-plan items per shard
constexpr std::size_t kSweepGrain = 256;  ///< per-node sweep items per shard

}  // namespace

std::uint64_t fit_id_space(std::uint64_t configured, std::size_t nodes) {
  std::uint64_t size = configured;
  while (static_cast<double>(nodes) > 0.85 * static_cast<double>(size)) {
    size *= 2;
  }
  return size;
}

Session::Session(const SystemConfig& config, const trace::TraceSnapshot& snapshot)
    : config_(config),
      space_(fit_id_space(config.id_space, snapshot.node_count())),
      // 0 = single-queue oracle; the sharded engine rounds its shard
      // count up to a power of two itself (so 0 shards still means at
      // least the 2-shard minimum once the switch is on).
      sim_(config.sharded_queue ? std::max(1u, config.sharded_queue_shards) : 0),
      network_(sim_, net::LatencyModel::from_trace(snapshot, /*floor_ms=*/5.0,
                                                   config.latency_grid_ms)),
      directory_(space_),
      rp_(space_, util::Rng(config.seed ^ 0x5250ULL)),
      churn_(config.churn, util::Rng(config.seed ^ 0xC4u)),
      rng_(config.seed),
      // ParallelExecutor resolves 0 to hardware_concurrency itself.
      exec_(config.threads),
      rounds_(sim_, config.scheduling_period,
              [this](std::size_t user) { on_round_tick(user); }) {
  rounds_.set_batch_tick(
      [this](const std::vector<std::size_t>& users) { on_round_batch(users); });
  network_.set_delivery_filter([this](std::size_t to) { return alive_index(to); });
  // Quantized-mode delivery buckets fork on the session's executor;
  // the hooks bracket each dispatch with per-shard stats scratch and
  // the shard-order reduction — the same deferred-merge contract the
  // round phases use. Continuous mode never forks, and its immediate
  // contexts write straight into stats_.
  network_.set_executor(&exec_);
  {
    net::Network::ShardHooks hooks;
    hooks.on_fork = [this](std::size_t shards) {
      delivery_shard_stats_.assign(shards, SessionStats{});
      obs_ensure_shards(shards);
    };
    hooks.scratch = [this](std::size_t shard) -> void* {
      return &delivery_shard_stats_[shard];
    };
    hooks.on_join = [this](std::size_t) {
      sim::parallel::reduce_in_order(delivery_shard_stats_, stats_);
    };
    hooks.serial_scratch = &stats_;
    network_.set_shard_hooks(std::move(hooks));
  }
  // Self-calibrate t_hop from the trace (the paper: "t_hop is ... an
  // approximate estimation from our simulation experience"). Drives the
  // urgent line's initial alpha, lower bound and adaptation step.
  config_.t_hop_estimate = network_.latency().average_latency_ms() / 1000.0;
  config_.expected_nodes = static_cast<double>(snapshot.node_count());
  // Compile the fault plan. An inert plan installs nothing, so the
  // zero-fault send path never even branches into the injector.
  hardened_ = config_.retry.enabled;
  if (config_.fault.active()) {
    fault_injector_ =
        std::make_unique<fault::FaultInjector>(config_.fault, config_.seed);
    network_.set_fault_injector(fault_injector_.get());
  }
  // Observability pillars (all optional). Wiring order matters only in
  // that the profiler's span sink must exist before the first fork.
  if (config_.obs.profile) {
    profiler_ = std::make_unique<obs::PhaseProfiler>();
    profiler_->set_threads(exec_.threads());
    exec_.set_observer(profiler_.get());
  }
  if (config_.obs.trace) {
    trace_ = std::make_unique<obs::TraceSink>(config_.obs.trace_capacity,
                                              config_.obs.trace_node);
    if (profiler_ != nullptr) profiler_->set_span_sink(trace_.get());
  }
  if (config_.obs.counters) {
    obs_counters_ = std::make_unique<obs::CounterRegistry>();
    ctr_prepare_nodes_ = obs_counters_->declare("round.prepare_nodes");
    ctr_plan_nodes_ = obs_counters_->declare("round.plan_nodes");
    ctr_pull_requests_ = obs_counters_->declare("delivery.pull_requests");
    ctr_segments_delivered_ = obs_counters_->declare("delivery.segments");
    ctr_stall_transitions_ = obs_counters_->declare("sample.stall_transitions");
    obs_counters_->ensure_shards(1);
  }
  network_.set_observability(profiler_.get(), trace_.get());
  // Lax mode: bounded-skew windowed drain instead of the strict
  // frontier walk. Only engages on the sharded engine under a positive
  // latency grid (the skew unit is a grid bucket); any other
  // combination silently stays strict, which is what keeps skew-0 —
  // and skew on non-applicable configs — byte-identical to today.
  if (config_.sharded_queue && config_.queue_skew_buckets > 0 &&
      network_.quantized()) {
    sim::Simulator::LaxConfig lax;
    lax.skew_buckets = config_.queue_skew_buckets;
    lax.grid_s = network_.grid_s();
    lax.exec = &exec_;
    lax.on_fork = [this](std::size_t shards) {
      if (profiler_ != nullptr) {
        profiler_->begin_fork_phase(obs::Phase::kLaxDrain, shards);
      }
    };
    sim_.set_lax_drain(std::move(lax));
  }
  build_nodes(snapshot);
  assign_initial_neighbors(snapshot);
  populate_initial_dht();
  start_processes();
}

Session::~Session() = default;

void Session::build_nodes(const trace::TraceSnapshot& snapshot) {
  const std::size_t n = snapshot.node_count();
  nodes_.reserve(n);
  round_handles_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = rp_.assign_id();
    double inbound =
        sample_rate(config_.inbound_min, config_.inbound_max, /*skewed=*/true);
    double outbound =
        sample_rate(config_.outbound_min, config_.outbound_max, /*skewed=*/false);
    if (i == 0) {
      // The source: zero inbound, much larger outbound.
      inbound = 0.0;
      outbound = config_.source_outbound;
    }
    auto node = std::make_unique<Node>(id, i, config_, space_, inbound, outbound,
                                       snapshot.nodes()[i].ping_ms);
    if (i == 0) node->mark_source();
    directory_.insert(id);
    rp_.register_node(id);
    index_of_[id] = i;
    nodes_.push_back(std::move(node));
  }
}

double Session::sample_rate(double lo, double hi, bool skewed) {
  // Inbound rates: the paper draws "randomly ... from 300 Kbps to
  // 1 Mbps" with an average of 450 Kbps — skewed toward the low end; a
  // truncated exponential on [lo, hi] reproduces that (mean at
  // lo + span/4.6, the lambda ~ 15 of the Section 5.1 theory).
  //
  // Outbound rates: the paper only says the arrangement is "alike"
  // (same range). We read that as uniform on the range (mean 21.5).
  // This matters: the paper's evaluation model charges no uplink
  // occupancy at all (arrivals are independent Poisson), while our
  // fluid model serializes every transfer — granting the uplink the
  // uniform reading keeps the supply slack its results presuppose.
  const double span = hi - lo;
  const double beta = span / 4.45;  // calibrated so the mean ~ lo + span/4.6
  if (!config_.heterogeneous_bandwidth) {
    return skewed ? lo + beta * (1.0 - std::exp(-span / beta)) : lo + span / 2.0;
  }
  return skewed ? lo + std::min(rng_.next_exponential(1.0 / beta), span)
                : rng_.next_range(lo, hi);
}

double Session::sample_ping() {
  // Same broadband/dial-up mixture as the trace generator.
  if (rng_.next_bool(0.6)) {
    return std::min(15.0 + rng_.next_exponential(1.0 / 20.0), 100.0);
  }
  return std::min(100.0 + rng_.next_exponential(1.0 / 50.0), 300.0);
}

void Session::assign_initial_neighbors(const trace::TraceSnapshot& snapshot) {
  util::Rng topo_rng = rng_.fork();
  trace::Topology topology(snapshot, config_.connected_neighbors, topo_rng);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    std::vector<std::uint32_t> adjacency = topology.neighbors(static_cast<std::uint32_t>(i));
    rng_.shuffle(adjacency);
    for (const auto peer_index : adjacency) {
      if (node.neighbors().full()) break;
      // Partnerships are the undirected overlay edges: install both
      // directions (TCP connections serve data exchange both ways).
      Node& peer = *nodes_[peer_index];
      if (peer.neighbors().full()) continue;
      const double lat =
          topology.latency_ms(static_cast<std::uint32_t>(i), peer_index);
      if (node.neighbors().contains(peer.id())) continue;
      node.neighbors().add(peer.id(), lat, /*now=*/0.0);
      peer.neighbors().add(node.id(), lat, /*now=*/0.0);
    }
    // Seed the overheard list with a few random peers so early repair
    // has candidates (models join-time observations).
    for (int s = 0; s < 5; ++s) {
      const auto r = static_cast<std::size_t>(rng_.next_below(nodes_.size()));
      if (r == i) continue;
      node.overheard().hear(nodes_[r]->id(),
                            network_.latency().latency_ms(i, r), 0.0);
    }
  }
}

void Session::populate_initial_dht() {
  // Sorted live IDs for binary-searched arc membership.
  const std::vector<NodeId> members = directory_.members();  // ascending
  auto members_in_arc = [&](NodeId lo, NodeId hi, std::vector<NodeId>& out) {
    out.clear();
    auto push_range = [&](NodeId a, NodeId b) {
      auto first = std::lower_bound(members.begin(), members.end(), a);
      auto last = std::lower_bound(members.begin(), members.end(), b);
      out.insert(out.end(), first, last);
    };
    if (lo <= hi) {
      push_range(lo, hi);
    } else {
      push_range(lo, static_cast<NodeId>(space_.size()));
      push_range(0, hi);
    }
  };

  std::vector<NodeId> arc;
  for (const auto& node : nodes_) {
    for (unsigned level = 1; level <= space_.levels(); ++level) {
      const auto [lo, hi] = space_.level_arc(node->id(), level);
      members_in_arc(lo, hi, arc);
      arc.erase(std::remove(arc.begin(), arc.end(), node->id()), arc.end());
      if (arc.empty()) continue;
      const NodeId pick = arc[rng_.next_below(arc.size())];
      const auto pick_index = index_of_.at(pick);
      node->dht_peers().offer(pick,
                              network_.latency().latency_ms(node->session_index(),
                                                            pick_index),
                              /*now=*/0.0);
    }
  }
}

SimTime Session::round_phase(util::Rng& rng) const {
  const double tau = config_.scheduling_period;
  const unsigned buckets = config_.round_phase_buckets;
  const SimTime now = sim_.now();
  if (buckets == 0) {
    return now + rng.next_range(kPhaseLo, kPhaseHi) * tau;  // continuous
  }
  // Quantized: nodes sharing a bucket tick at the SAME instant, so
  // RoundScheduler batches them and the executor has something to
  // shard. Buckets span [kPhaseLo, kPhaseHi) — strictly before the
  // churn phase (0.95 tau) and the sampler (period boundary), so a
  // batch is never a mix of node rounds and reserved ticks.
  const auto bucket = static_cast<double>(rng.next_below(buckets));
  SimTime tick = (kPhaseLo + (kPhaseHi - kPhaseLo) * bucket / buckets) * tau;
  // A joiner must land on its bucket's ABSOLUTE grid, advanced with the
  // exact accumulation arithmetic the cohort's recurring ticks use
  // (next = fired + period) — phase + k*tau computed directly can miss
  // the cohort's instant by an ulp, which would fragment batches into
  // per-churn-tick singletons and serialize the plan phase under churn.
  while (tick <= now) tick += tau;
  return tick;
}

void Session::start_processes() {
  const double tau = config_.scheduling_period;
  const double emit_period = 1.0 / static_cast<double>(config_.playback_rate);

  emit_process_ = std::make_unique<sim::PeriodicProcess>(
      sim_, emit_period, [this] { on_source_emit(); });
  emit_process_->start(emit_period);

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    round_handles_.push_back(rounds_.add_at(round_phase(rng_), i));
  }

  // The metrics sampler and churn planner share the scheduling period;
  // they ride the same RoundScheduler under reserved tags.
  (void)rounds_.add(tau, kSampleTickUser);
  if (config_.churn_enabled) {
    (void)rounds_.add(kChurnPhase * tau, kChurnTickUser);
  }

  // Crash-stop events from the fault plan: plain serial simulator
  // events (victims leave the round scheduler inside kill_node).
  for (const auto& crash : config_.fault.crashes) {
    if (crash.time <= 0.0 || crash.fraction <= 0.0) continue;
    sim_.schedule_at(crash.time, [this, fraction = crash.fraction] {
      on_fault_crash(fraction);
    });
  }
}

void Session::on_round_tick(std::size_t user) {
  if (user == kSampleTickUser) {
    on_sample_tick();
  } else if (user == kChurnTickUser) {
    on_churn_tick();
  } else {
    on_node_round(user);
  }
}

void Session::on_round_batch(const std::vector<std::size_t>& users) {
  // Reserved ticks ride phases of their own (phase construction keeps
  // them out of node-round instants); if a config ever mixes them into
  // one batch, fall back to strict serial dispatch — still
  // deterministic, batch content does not depend on thread count. The
  // fallback forfeits BOTH forked phases, so mixing node rounds in is
  // counted: an accidental phase-layout change cannot quietly
  // serialize every round (a test pins the counter at zero).
  bool reserved = false;
  bool node_rounds = false;
  for (const std::size_t user : users) {
    if (user == kSampleTickUser || user == kChurnTickUser) {
      reserved = true;
    } else {
      node_rounds = true;
    }
  }
  if (reserved) {
    if (node_rounds) ++stats_.mixed_batch_fallbacks;
    for (const std::size_t user : users) on_round_tick(user);
    return;
  }
  run_round_batch(users);
}

void Session::run_round_batch(const std::vector<std::size_t>& users) {
  // Shard structure depends only on (batch size, kPlanGrain), so
  // per-shard buffers merge in an order no thread count can change.
  const std::size_t n = users.size();
  const std::size_t shards =
      sim::parallel::ParallelExecutor::shard_count(n, kPlanGrain);
  if (shard_emissions_.size() < shards) shard_emissions_.resize(shards);
  if (prepare_shards_.size() < shards) prepare_shards_.resize(shards);
  obs_ensure_shards(shards);
  obs::PhaseProfiler* const prof = profiler_.get();

  // Phase 1a — prepare-local: forked. Per-node own-state maintenance;
  // cross-node reads are limited to batch-frozen state (see the
  // data-ownership contract in session.hpp). Deferred records land in
  // the per-shard PrepareShard scratch.
  shard_stats_.assign(shards, SessionStats{});
  for (std::size_t s = 0; s < shards; ++s) prepare_shards_[s].reset();
  if (prof != nullptr) prof->begin_fork_phase(obs::Phase::kPrepareLocal, n);
  exec_.for_shards(n, kPlanGrain,
                   [this, &users](std::size_t s, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       round_prepare_local(users[i], shard_stats_[s],
                                           prepare_shards_[s], s);
                     }
                     if (obs_counters_ != nullptr) {
                       obs_counters_->add(s, ctr_prepare_nodes_, end - begin);
                     }
                   });
  // Join — settle in shard order: stats deltas, then each shard's
  // deferred rate decays / playback starts / wire charges.
  sim::parallel::reduce_in_order(shard_stats_, stats_);
  for (std::size_t s = 0; s < shards; ++s) apply_prepare_shard(prepare_shards_[s]);

  // Phase 1b — prepare-link: serial, batch (= add) order. Neighbor
  // repair mutates shared overlay link state reciprocally, so it can
  // never fork.
  const std::uint64_t link_t0 =
      prof != nullptr ? sim::parallel::monotonic_ns() : 0;
  for (const std::size_t user : users) round_prepare_link(user);
  if (prof != nullptr) {
    prof->record_serial(obs::Phase::kPrepareLink, link_t0,
                        sim::parallel::monotonic_ns());
  }

  // Phase 2 — plan: forked across shards.
  plans_.assign(n, RoundPlan{});
  shard_stats_.assign(shards, SessionStats{});
  if (prof != nullptr) prof->begin_fork_phase(obs::Phase::kPlan, n);
  exec_.for_shards(n, kPlanGrain,
                   [this, &users](std::size_t s, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       round_plan(users[i], plans_[i], shard_stats_[s],
                                  shard_emissions_[s]);
                     }
                     if (obs_counters_ != nullptr) {
                       obs_counters_->add(s, ctr_plan_nodes_, end - begin);
                     }
                   });

  // Join — ordered reduction: stats deltas, then deferred emissions
  // (event seq numbers come out exactly as serial execution's).
  sim::parallel::reduce_in_order(shard_stats_, stats_);
  for (std::size_t s = 0; s < shards; ++s) shard_emissions_[s].flush_into(sim_);

  // Phase 3 — commit: serial, batch order.
  const std::uint64_t commit_t0 =
      prof != nullptr ? sim::parallel::monotonic_ns() : 0;
  for (std::size_t i = 0; i < n; ++i) round_commit(users[i], plans_[i]);
  if (prof != nullptr) {
    prof->record_serial(obs::Phase::kCommit, commit_t0,
                        sim::parallel::monotonic_ns());
  }
}

void Session::run(SimTime duration) {
  if (profiler_ != nullptr) {
    // Bracket the run wall so the Amdahl estimate has its base: serial
    // time = run wall minus the executor's fork walls.
    const std::uint64_t t0 = sim::parallel::monotonic_ns();
    sim_.run_until(duration);
    profiler_->add_run_wall(sim::parallel::monotonic_ns() - t0);
    return;
  }
  sim_.run_until(duration);
}

std::size_t Session::alive_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node->alive()) ++count;
  }
  return count;
}

std::optional<std::size_t> Session::index_of(NodeId id) const {
  const auto it = index_of_.find(id);
  if (it == index_of_.end()) return std::nullopt;
  return it->second;
}

bool Session::alive_index(std::size_t index) const {
  return index < nodes_.size() && nodes_[index]->alive();
}

std::optional<std::size_t> Session::alive_node_by_id(NodeId id) const {
  const auto idx = index_of(id);
  if (!idx.has_value() || !nodes_[*idx]->alive()) return std::nullopt;
  return idx;
}

bool Session::in_time(const Node& node, SegmentId id, SimTime now) const {
  const auto& buffer = node.buffer();
  if (!buffer.started()) return true;  // no deadline yet
  if (id < buffer.window_head()) return false;
  return now <= buffer.deadline(id);
}

void Session::store_backup_if_responsible(Node& node, SegmentId id) {
  const auto arc_end = node.dht_peers().closest_clockwise_peer();
  if (!arc_end.has_value()) return;  // no DHT knowledge yet
  node.backup().offer(id, *arc_end);
}

// --------------------------------------------------------------------------
// Source emission
// --------------------------------------------------------------------------

void Session::on_source_emit() {
  Node& source = *nodes_.front();
  source.buffer().insert(emitted_);
  store_backup_if_responsible(source, emitted_);
  if (config_.scheduler == SchedulerKind::kGridMediaPushPull) {
    push_relay(source, emitted_);
  }
  ++emitted_;
  ++stats_.segments_emitted;
}

// --------------------------------------------------------------------------
// Node round
// --------------------------------------------------------------------------

void Session::on_node_round(std::size_t index) {
  // Serial fallback (mixed batches): the SAME four phases the batched
  // path runs, composed inline for one node; shard 0's scratch serves
  // as the (immediately settled) deferred-record buffer. One semantic
  // difference from the batched path, deliberate and thread-count
  // independent: deferred records settle per NODE, not per batch, so a
  // later node in the same mixed batch sees an earlier node's fresh
  // playback start (pre-split serial semantics) instead of the
  // batch-start snapshot. Mixed batches never form under the shipped
  // phase layout — mixed_batch_fallbacks is pinned at zero by test —
  // so the divergence is documentation, not behavior.
  if (prepare_shards_.empty()) prepare_shards_.resize(1);
  PrepareShard& scratch = prepare_shards_.front();
  scratch.reset();
  SessionStats prepare_delta;
  round_prepare_local(index, prepare_delta, scratch, /*obs_shard=*/0);
  stats_ += prepare_delta;
  apply_prepare_shard(scratch);
  round_prepare_link(index);
  RoundPlan plan;
  SessionStats delta;
  sim::parallel::EmissionBuffer emissions;
  round_plan(index, plan, delta, emissions);
  stats_ += delta;
  emissions.flush_into(sim_);
  round_commit(index, plan);
}

void Session::round_prepare_local(std::size_t index, SessionStats& stats,
                                  PrepareShard& shard, std::size_t obs_shard) {
  Node& node = *nodes_[index];
  if (!node.alive()) return;
  const SimTime now = sim_.now();
  const double tau = config_.scheduling_period;
  // Per-tick RNG stream: every draw a round makes comes from
  // (session seed, tick time, node id), never from the shared session
  // generator — rounds are RNG-independent of each other, which is what
  // lets the forked phases run without reproducing a shared draw order.
  util::Rng tick_rng = util::Rng::for_tick(config_.seed, now, node.id());

  node.neighbors().fold_supply();

  // Abandon transfers whose supplier went silent. The sweep erases only
  // this node's own tables; the decay of each silent supplier's rate
  // estimate is recorded per shard and applied at the join — the
  // deferred list keeps the forked sweep's write set own-state and
  // makes the decay application order explicit (shard order = batch
  // order), independent of the thread count.
  const auto cutoff = now - kTransferTimeoutPeriods * tau;
  const auto index32 = static_cast<std::uint32_t>(index);
  const auto on_failed = [&shard, index32](NodeId supplier) {
    shard.rate_decays.emplace_back(index32, supplier);
  };
  if (hardened_) {
    // The same one-pass sweep also records retry-backoff and
    // supplier-strike state — all own-node writes, so the fork-safety
    // argument is unchanged; the tallies ride the per-shard stats.
    Node::SweepHardening hard;
    stats.transfer_timeouts +=
        node.sweep_timeouts(cutoff, on_failed, &config_.retry, now, &hard);
    stats.retry_backoffs += hard.backoffs;
    stats.suppliers_blacklisted += hard.blacklists;
    if (trace_ != nullptr && (hard.backoffs > 0 || hard.blacklists > 0)) {
      obs::TraceEvent event;
      event.time = now;
      event.kind = obs::TraceEventKind::kRetryBackoff;
      event.node = index32;
      event.a = hard.backoffs;
      event.b = hard.blacklists;
      trace_->record(obs_shard, event);
    }
  } else {
    stats.transfer_timeouts += node.sweep_timeouts(cutoff, on_failed);
  }

  if (node.buffer().started()) {
    do_playback(node);
  } else if (!node.is_source()) {
    // The startup decision reads peers' started() flags, so it decides
    // from the batch-start state and the start itself applies at the
    // join — which is exactly what keeps those flags frozen while
    // other shards read them.
    if (const auto anchor = plan_playback_start(node)) {
      shard.playback_starts.emplace_back(index32, *anchor);
    }
  }

  // Compact bookkeeping at the round's in-flight LOW point (after the
  // timeout sweep, before this round books a new burst) so capacity
  // tracks the standing backlog, not the booking spike. The window head
  // bounds the hardening tables: retry records behind it are moot.
  node.compact_bookkeeping(now, node.buffer().window_head());

  exchange_buffer_maps(node, tick_rng, shard);
}

void Session::round_prepare_link(std::size_t index) {
  Node& node = *nodes_[index];
  if (!node.alive()) return;
  // Neighbor repair rewires the overlay reciprocally — the one prepare
  // step whose writes cross node boundaries, so it stays serial. It
  // runs after the prepare-local join: this round's playback misses
  // (the "struggling" signal) and piggybacked overhearing are already
  // in place, and the forked phase could not have observed a
  // half-repaired mesh.
  repair_neighbors(node);
}

void Session::apply_prepare_shard(PrepareShard& shard) {
  for (const auto& [index, supplier] : shard.rate_decays) {
    nodes_[index]->rates().on_transfer_failed(supplier);
  }
  const SimTime now = sim_.now();
  for (const auto& [index, anchor] : shard.playback_starts) {
    nodes_[index]->buffer().start_playback(anchor, now);
  }
  // The emission side of the exchange: wire costs tallied in the fork,
  // charged here in bulk — bit-identical to per-message charging
  // (TrafficAccount keeps per-class sums of bits and message counts).
  network_.charge_only_bulk(MessageType::kBufferMap,
                            buffer_map_bits(config_.buffer_capacity),
                            shard.buffer_map_messages);
  network_.charge_only_bulk(MessageType::kJoinNotify,
                            kPiggybackEntries * kMembershipEntryBits,
                            shard.membership_messages);
}

void Session::round_plan(std::size_t index, RoundPlan& plan, SessionStats& stats,
                         sim::parallel::EmissionBuffer& emissions) {
  Node& node = *nodes_[index];
  // Reads only state that is STABLE for the whole batch: this node's
  // own post-prepare state and other nodes' buffers/liveness (mutated
  // only by transfer deliveries and churn, which are separate events).
  // All writes go to the per-shard `stats`/`emissions` buffers and to
  // `plan`, which lives in a slot only this shard touches.
  if (!node.alive() || node.is_source()) return;

  std::uint64_t seen = 0;
  plan.scheduled = plan_scheduling(node, /*budget_fraction=*/1.0, plan.sched, seen);
  stats.candidates_seen += seen;
  if (plan.scheduled) {
    stats.candidates_unassigned += plan.sched.unassigned;
    stats.segments_booked += plan.sched.assignments.size();
  }

  if (config_.scheduler == SchedulerKind::kContinuStreaming) {
    PrefetchPlan prefetch =
        plan_prefetch(node, plan.scheduled ? &plan.sched : nullptr);
    if (prefetch.suppressed) ++stats.prefetch_suppressed;
    plan.prefetch = std::move(prefetch.launch);
  }

  // Mid-round top-up: re-book whatever was refused or newly became
  // available. (The scheduling PERIOD governs buffer-map exchange;
  // failed pulls retry as soon as the refusal is known, as any
  // TCP-based puller would.) Uses a reduced quota so the round's
  // total stays near I*tau. Deferred: the emission itself must not
  // touch the queue from a worker shard.
  emissions.defer_at(sim_.now() + 0.5 * config_.scheduling_period, [this, index] {
    Node& retry = *nodes_[index];
    if (retry.alive() && !retry.is_source()) {
      run_scheduling(retry, /*budget_fraction=*/0.4);
    }
  });
}

void Session::round_commit(std::size_t index, RoundPlan& plan) {
  Node& node = *nodes_[index];
  if (!node.alive()) return;

  if (!node.is_source()) {
    if (plan.scheduled) commit_scheduling(node, plan.sched);
    for (const SegmentId id : plan.prefetch) {
      launch_prefetch(index, id);
    }
  }

  refresh_dht_peers(node);

  // Garbage-collect state that can no longer matter. (Bookkeeping
  // compaction runs in round_prepare, at the in-flight low point.)
  if (emitted_ > static_cast<SegmentId>(config_.buffer_capacity)) {
    node.backup().expire_before(emitted_ - static_cast<SegmentId>(config_.buffer_capacity));
  }
  node.expire_tags(node.buffer().window_head());
}

void Session::repair_neighbors(Node& node) {
  const SimTime now = sim_.now();

  // Drop dead neighbors.
  for (const NodeId id : node.neighbors().ids()) {
    if (!alive_node_by_id(id).has_value()) {
      node.neighbors().remove(id);
      node.rates().forget(id);
      node.overheard().forget(id);
    }
  }

  auto excluded = node.neighbors().ids();
  excluded.push_back(node.id());

  // Refill toward M initiated links from the lowest-latency overheard
  // candidates; the new partnership is reciprocal.
  while (node.neighbors().size() < config_.connected_neighbors) {
    const auto candidate = node.overheard().best_candidate(excluded);
    if (!candidate.has_value()) break;
    const auto cidx = alive_node_by_id(candidate->id);
    if (!cidx.has_value()) {
      node.overheard().forget(candidate->id);
      continue;
    }
    node.neighbors().add(candidate->id, candidate->latency_ms, now);
    nodes_[*cidx]->neighbors().add(node.id(), candidate->latency_ms, now);
    excluded.push_back(candidate->id);
    ++stats_.neighbor_replacements;
  }

  // Replace at most one low-supply neighbor per round, and only when
  // this node is actually struggling (missed a deadline in the current
  // round) — a healthy node keeps its partnerships stable instead of
  // thrashing the mesh. Reciprocal add; the dropped side notices the
  // asymmetry and repairs independently.
  const bool struggling = node.round_stats().missed > 0;
  if (struggling && node.neighbors().size() >= config_.connected_neighbors) {
    const auto weakest = node.neighbors().weakest(now, config_.neighbor_min_age);
    if (weakest.has_value() && weakest->supply_rate < config_.low_supply_threshold) {
      const auto candidate = node.overheard().best_candidate(excluded);
      if (candidate.has_value()) {
        const auto cidx = alive_node_by_id(candidate->id);
        if (cidx.has_value()) {
          node.neighbors().remove(weakest->id);
          node.rates().forget(weakest->id);
          node.neighbors().add(candidate->id, candidate->latency_ms, now);
          nodes_[*cidx]->neighbors().add(node.id(), candidate->latency_ms, now);
          ++stats_.neighbor_replacements;
        }
      }
    }
  }
}

void Session::do_playback(Node& node) {
  const auto due = node.buffer().advance_playback(sim_.now());
  for (const auto& segment : due) {
    if (segment.present) {
      ++node.round_stats().played;
    } else {
      ++node.round_stats().missed;
    }
  }
}

std::optional<SegmentId> Session::plan_playback_start(const Node& node) const {
  // Two-tier startup.
  //
  // Follow rule (paper Section 5.2): a node whose neighbors already
  // play "starts its media playback by following its neighbors'
  // current steps". It anchors a startup cushion BEHIND the
  // neighborhood play point (those segments are still in every
  // partner's arrival-FIFO buffer, so they fill at full speed) and
  // starts after a one-round runway.
  //
  // Cold start: with no playing neighbor (the t=0 population), a node
  // accumulates the full startup window first, anchored at the oldest
  // segment it obtained — this self-selects a safe depth behind the
  // live edge.
  //
  // Runs inside the forked prepare-local phase: peers' started() flags
  // are read live but FROZEN for the batch (every start decided this
  // batch applies at the join), so a start propagates to followers one
  // round later regardless of batch position or thread count.
  const bool following = [&] {
    for (const auto& neighbor : node.neighbors().all()) {
      const auto idx = alive_node_by_id(neighbor.id);
      if (idx.has_value() && nodes_[*idx]->buffer().started()) return true;
    }
    return false;
  }();
  const std::size_t runway =
      following ? kJoinStartSegments : config_.startup_segments;
  if (!node.buffer().startup_ready(runway)) return std::nullopt;
  const auto newest = node.buffer().newest();
  if (!newest.has_value()) return std::nullopt;
  // Anchor so a FULL startup cushion lies ahead of the play point —
  // unconditionally. Anchoring at the oldest held segment is
  // luck-dependent (top-heavy early pulls put it near the live edge and
  // lock the node — and every follower downstream — into a
  // hand-to-mouth regime). Anchoring below the oldest held segment is
  // fine: partners still hold that recent history in their
  // arrival-FIFO buffers, and the urgency channel fetches it first.
  const SegmentId anchor =
      std::max({node.buffer().window_head(),
                *newest - static_cast<SegmentId>(config_.startup_segments),
                SegmentId{0}});
  return anchor;
}

void Session::exchange_buffer_maps(Node& node, util::Rng& tick_rng,
                                   PrepareShard& shard) {
  // One 620-bit buffer map to each alive neighbor per round. The
  // content travels as a charge-only message: the scheduler reads the
  // neighbor's availability directly (fresh map), which is equivalent
  // at tau >> latency and avoids one simulator event per map.
  //
  // This path runs once per (node, neighbor) pair per period — at 100k
  // nodes it is the densest loop in the session — so it runs inside
  // the FORKED prepare-local phase, allocation-free at steady state.
  // Own-state writes only: the materialized window comes from the
  // shard's arena, the piggyback writes this node's own overheard
  // list, and the wire costs are tallied into `shard` (the emission
  // side, bulk-charged serially at the join). The peer's neighbor
  // vector is read in place under the batch-frozen-membership
  // contract: repair runs in prepare-link, and the only concurrent
  // writes to those entries (a shard folding the PEER's supply rates)
  // touch the float rate fields, never the ids the piggyback reads.
  const SimTime now = sim_.now();
  for (const auto& neighbor : node.neighbors().all()) {
    const auto idx = alive_node_by_id(neighbor.id);
    if (!idx.has_value()) continue;
    ++shard.buffer_map_messages;
    // Receive side: materialize the advertised window as a real peer's
    // map table would. The snapshot is deliberately TRANSIENT — the
    // planner keeps reading live buffers (the fresh-map equivalence
    // above), so retaining it would only duplicate state; what this
    // models and measures is the exchange's memory traffic, which the
    // pooled arena keeps allocation-free at steady state (a session
    // test pins that). Cost: one ~10-word copy per exchange.
    {
      const auto received = shard.arena.checkout_copy(node.buffer().window());
      assert(received.window().count() == node.buffer().window().count());
      (void)received;
    }
    // Membership piggyback: each exchange also carries a couple of
    // peer-table entries (the membership gossip of Ganesh et al. that
    // CoolStreaming builds on). This keeps the Overheard list fresh so
    // the "supplied little data" replacement policy can actually find
    // better partners. Charged as maintenance — the paper's control
    // overhead counts only the 620 buffer-map bits.
    const Node& peer = *nodes_[*idx];
    ++shard.membership_messages;
    const auto& peer_neighbors = peer.neighbors().all();
    for (int pick = 0; pick < kPiggybackEntries && !peer_neighbors.empty();
         ++pick) {
      const NodeId heard =
          peer_neighbors[tick_rng.next_below(peer_neighbors.size())].id;
      if (heard == node.id()) continue;
      const auto hidx = alive_node_by_id(heard);
      if (!hidx.has_value()) continue;
      node.overheard().hear(
          heard, network_.latency().latency_ms(node.session_index(), *hidx), now);
    }
  }
}

bool Session::plan_scheduling(const Node& node, double budget_fraction,
                              ScheduleResult& out, std::uint64_t& seen) const {
  const SimTime now = sim_.now();
  const double tau = config_.scheduling_period;

  // Collect alive neighbor views.
  struct NeighborView {
    std::size_t index;
    NodeId id;
    double rate;
    SegmentId newest;
  };
  std::vector<NeighborView> views;
  for (const NodeId id : node.neighbors().ids()) {
    const auto idx = alive_node_by_id(id);
    if (!idx.has_value()) continue;
    // Supplier failover: a blacklisted neighbor's offers are ignored
    // until its window decays, so demand routes around a peer whose
    // transfers keep timing out (lossy link or silently dead).
    if (hardened_ && node.supplier_blacklisted(id, now, config_.retry)) continue;
    const Node& peer = *nodes_[*idx];
    const auto newest = peer.buffer().newest();
    if (!newest.has_value()) continue;
    views.push_back(NeighborView{*idx, id, node.rates().estimate(id), *newest});
  }
  if (views.empty()) return false;

  // Candidate range: from just past the play point (or the neighbors'
  // oldest coverage before playback starts) to the freshest segment any
  // neighbor holds.
  const bool started = node.buffer().started();
  SegmentId lo;
  if (started) {
    lo = node.buffer().play_point(now) + 1;
  } else {
    // Join rule: request "the data segments being played or will be
    // played by its neighbors" — anchor one startup cushion BEHIND the
    // most conservative started neighbor's play point (the partners
    // still hold that history, so the cushion fills at full speed).
    // Before anyone plays, fall back to the oldest content any
    // neighbor holds.
    SegmentId follow = kInvalidSegment;
    SegmentId oldest = views.front().newest;
    for (const auto& view : views) {
      const Node& peer = *nodes_[view.index];
      if (peer.buffer().started()) {
        const SegmentId p = peer.buffer().play_point(now) + 1;
        follow = (follow == kInvalidSegment) ? p : std::min(follow, p);
      }
      const auto low = peer.buffer().window().lowest();
      if (low.has_value()) oldest = std::min(oldest, *low);
    }
    if (follow != kInvalidSegment) {
      lo = std::max<SegmentId>(oldest,
                               follow - static_cast<SegmentId>(kJoinBackstep));
    } else {
      lo = oldest;
    }
  }
  lo = std::max<SegmentId>(lo, 0);
  SegmentId hi = lo;
  for (const auto& view : views) hi = std::max(hi, view.newest + 1);
  hi = std::min(hi, lo + static_cast<SegmentId>(config_.buffer_capacity));
  hi = std::min(hi, lo + kLookaheadSegments);

  // Build candidates: fresh segments = in some neighbor's buffer, not
  // ours, not in flight.
  ScheduleRequest request;
  request.period = tau;
  request.priority_inputs.play_point =
      started ? node.buffer().play_point(now) : kInvalidSegment;
  request.priority_inputs.playback_rate = config_.playback_rate;
  request.priority_inputs.buffer_capacity = config_.buffer_capacity;

  // Inbound quota (Algorithm 1 line 1): min(m, I*tau). The downlink
  // queue model enforces actual absorption; transfer_pending prevents
  // double-booking, so no further subtraction is needed here.
  const double budget_raw = node.inbound_rate() * tau * budget_fraction;
  if (budget_raw < 1.0) return false;
  request.inbound_budget = static_cast<std::size_t>(budget_raw);
  // No per-supplier cap: Algorithm 1's queue-time term is the paper's
  // own limiter, and the frontier (e.g. the source's neighbors pulling
  // the live edge) must be able to use a supplier's full rate.
  request.rank_jitter = 0.8;
  request.jitter_seed = node.id();

  for (SegmentId id = lo; id < hi; ++id) {
    if (node.buffer().has(id) || node.transfer_pending(id)) continue;
    // Bounded retry: a timed-out segment sits out its backoff window
    // before it may be re-requested.
    if (hardened_ && node.retry_blocked(id, now)) continue;
    Candidate candidate;
    candidate.id = id;
    for (const auto& view : views) {
      if (!nodes_[view.index]->buffer().has(id)) continue;
      SupplierOffer offer;
      offer.supplier = view.id;
      offer.rate = view.rate;
      const auto distance = static_cast<std::size_t>(
          std::max<SegmentId>(view.newest - id + 1, 1));
      offer.buffer_position = std::min(distance, config_.buffer_capacity);
      candidate.offers.push_back(offer);
    }
    if (!candidate.offers.empty()) {
      request.candidates.push_back(std::move(candidate));
    }
    if (request.candidates.size() >= kMaxCandidates) break;
  }
  if (request.candidates.empty()) return false;
  seen = request.candidates.size();

  // GridMedia's pull half uses the same rarest-first rule as the
  // CoolStreaming baseline; pushes handle the fresh edge.
  out = (config_.scheduler == SchedulerKind::kContinuStreaming)
            ? schedule_continu(request)
            : schedule_coolstreaming(request);
  return true;
}

void Session::run_scheduling(Node& node, double budget_fraction) {
  ScheduleResult result;
  std::uint64_t seen = 0;
  const bool planned = plan_scheduling(node, budget_fraction, result, seen);
  stats_.candidates_seen += seen;
  if (!planned) return;
  stats_.candidates_unassigned += result.unassigned;
  stats_.segments_booked += result.assignments.size();
  commit_scheduling(node, result);
}

void Session::commit_scheduling(Node& node, const ScheduleResult& result) {
  const SimTime now = sim_.now();
  // Group assignments per supplier into one pull request each. Flat
  // map: requests go out in deterministic slot order (a pure function
  // of the assignment list), where unordered_map order depended on
  // libstdc++ bucket internals.
  util::FlatMap<NodeId, std::vector<SegmentId>> per_supplier;
  for (const auto& assignment : result.assignments) {
    if (!node.begin_transfer(assignment.segment, TransferKind::kScheduled,
                             assignment.supplier, now)) {
      continue;
    }
    per_supplier[assignment.supplier].push_back(assignment.segment);
  }
  for (auto& [supplier_id, ids] : per_supplier) {
    const auto supplier_index = alive_node_by_id(supplier_id);
    if (!supplier_index.has_value()) continue;
    const auto bits =
        static_cast<Bits>(ids.size()) * WireCosts::kSegmentRequestPerIdBits;
    ++stats_.requests_sent;
    const std::size_t requester = node.session_index();
    const std::size_t supplier = *supplier_index;
    network_.send_sharded(
        requester, supplier, MessageType::kSegmentRequest, bits,
        [this, supplier, requester,
         ids = std::move(ids)](net::DeliveryContext& ctx) mutable {
          handle_segment_request(supplier, requester, std::move(ids), ctx);
        });
  }
}

// --------------------------------------------------------------------------
// Transfers
// --------------------------------------------------------------------------

void Session::handle_segment_request(std::size_t supplier, std::size_t requester,
                                     std::vector<SegmentId> ids,
                                     net::DeliveryContext& ctx) {
  Node& sup = *nodes_[supplier];
  if (!sup.alive()) return;
  auto& stats = *static_cast<SessionStats*>(ctx.scratch());
  const SimTime now = sim_.now();
  // Obs-owned writes only (counter lane + trace ring of this shard);
  // ctx.shard() is 0 on the serial/immediate path.
  if (obs_counters_ != nullptr) {
    obs_counters_->add(ctx.shard(), ctr_pull_requests_, 1);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.time = now;
    event.kind = obs::TraceEventKind::kPullRequest;
    event.node = static_cast<std::uint32_t>(requester);
    event.peer = static_cast<std::uint32_t>(supplier);
    event.a = ids.size();
    trace_->record(ctx.shard(), event);
  }
  const double horizon = kServeWithinPeriods * config_.scheduling_period;
  const double service_time = 1.0 / std::max(sup.outbound_rate(), 0.01);
  // Keep the urgent head of the request in priority order (the
  // requester ranked deadline-critical segments first), but serve the
  // elastic tail in RANDOM order: if every supplier served each
  // identically-ordered request front-to-back, all requesters would end
  // up with the same segments and gossip exchange would die out.
  //
  // The shuffle draws from a per-request stream keyed on (instant,
  // supplier, requester) — a handler running on a worker shard may not
  // touch the shared session RNG, and the derived stream makes the
  // serve order a pure function of the delivery schedule at every
  // thread count (the parallel engine's standard per-tick RNG recipe).
  if (ids.size() > kUrgentHead) {
    util::Rng request_rng = util::Rng::for_tick(
        config_.seed, now,
        (static_cast<std::uint64_t>(supplier) << 32) |
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(requester)));
    std::vector<SegmentId> tail(ids.begin() + kUrgentHead, ids.end());
    request_rng.shuffle(tail);
    std::copy(tail.begin(), tail.end(), ids.begin() + kUrgentHead);
  }
  // Per-id grant/refuse trace events share every field but kind and the
  // segment id; building the template once keeps the per-segment cost
  // of an enabled trace to a kind/id store and a ring push.
  obs::TraceSink* const trace = trace_.get();
  obs::TraceEvent serve_event;
  if (trace != nullptr) {
    serve_event.time = now;
    serve_event.node = static_cast<std::uint32_t>(requester);
    serve_event.peer = static_cast<std::uint32_t>(supplier);
  }
  std::vector<SegmentId> refused;
  for (const SegmentId id : ids) {
    // Accept only transfers that complete within the service horizon of
    // this request — the supplier keeps no standing backlog.
    const bool overloaded =
        std::max(sup.uplink_free_at(), now) + service_time - now > horizon;
    const bool gone = !sup.buffer().has(id) && !sup.backup().has(id);
    if (overloaded || gone) {
      // The paper's case 3 (no available bandwidth) or an eviction race:
      // refuse explicitly so the requester can reschedule immediately
      // instead of waiting out a timeout.
      ++stats.segments_refused;
      refused.push_back(id);
      if (trace != nullptr) {
        serve_event.kind = obs::TraceEventKind::kPullRefused;
        serve_event.a = id;
        trace->record(ctx.shard(), serve_event);
      }
      continue;
    }
    if (trace != nullptr) {
      serve_event.kind = obs::TraceEventKind::kPullGrant;
      serve_event.a = id;
      trace->record(ctx.shard(), serve_event);
    }
    start_fluid_transfer(supplier, requester, id, MessageType::kSegmentData,
                         TransferKind::kScheduled, &ctx);
  }
  if (!refused.empty()) {
    // The nack send mutates shared engine state (traffic account,
    // event queue), so it rides the context: inline in immediate mode,
    // settled at the join when forked.
    ctx.defer([this, supplier, requester, supplier_id = sup.id(),
               refused = std::move(refused)]() mutable {
      network_.send_sharded(
          supplier, requester, MessageType::kRequestNack,
          WireCosts::kSmallPacketBits,
          [this, requester, supplier_id,
           refused = std::move(refused)](net::DeliveryContext&) {
            // A refusal frees the in-flight slots for the next
            // round and mildly decays the supplier's estimate so
            // chronic saturation steers bookings elsewhere.
            // (Immediate rescheduling would retry the same
            // saturated supplier in a tight loop.) Requester-own
            // writes only — shard-safe.
            Node& req = *nodes_[requester];
            if (!req.alive()) return;
            for (const SegmentId id : refused) {
              req.end_transfer(id);
            }
            req.rates().on_transfer_refused(supplier_id);
          });
    });
  }
}

void Session::start_fluid_transfer(std::size_t supplier, std::size_t requester,
                                   SegmentId id, net::MessageType type,
                                   TransferKind kind, net::DeliveryContext* ctx) {
  Node& sup = *nodes_[supplier];
  const SimTime now = sim_.now();

  // Tandem-queue fluid model. Stage 1: the supplier's uplink serializes
  // departures at its outbound rate. Stage 2 (at arrival time): the
  // receiver's downlink serializes deliveries at its inbound rate. The
  // two queues pipeline — a wait at the uplink does not occupy the
  // receiver's downlink.
  //
  // The uplink booking happens HERE, inside the (possibly forked)
  // request handler — supplier-own state, and later segments of the
  // same request must see earlier bookings for the admission horizon
  // to mean anything. Only the wire send defers.
  const double up_rate = std::max(sup.outbound_rate(), 0.01);
  const SimTime departure = std::max(now, sup.uplink_free_at()) + 1.0 / up_rate;
  sup.set_uplink_free_at(departure);

  const NodeId supplier_id = sup.id();
  const double bottleneck =
      std::max(1.0 / up_rate, 1.0 / std::max(nodes_[requester]->inbound_rate(), 0.01));
  const SimTime uplink_wait = departure - now;
  const auto send_stage2 = [this, supplier = static_cast<std::uint32_t>(supplier),
                            requester = static_cast<std::uint32_t>(requester), id,
                            kind, supplier_id, bottleneck, type, uplink_wait] {
    network_.send_sharded(
        supplier, requester, type, WireCosts::kSegmentBits,
        [this, requester, id, kind, supplier_id,
         bottleneck](net::DeliveryContext& delivery_ctx) {
          // Stage 2: queue on the receiver's downlink. Receiver-own
          // writes only; same-bucket arrivals for one receiver chain
          // through downlink_free_at in schedule order — the shard
          // groups by receiver precisely so this serialization holds.
          Node& req = *nodes_[requester];
          if (!req.alive()) return;
          const SimTime arrival = sim_.now();
          const double down_rate = std::max(req.inbound_rate(), 0.01);
          const SimTime done =
              std::max(arrival, req.downlink_free_at()) + 1.0 / down_rate;
          req.set_downlink_free_at(done);
          // Stage 3 forks too: the completion is a sharded
          // continuation on the same receiver (an exact schedule_at in
          // continuous mode, the grid bucket at ceil(done) when
          // quantized).
          delivery_ctx.forward(
              requester, done,
              [this, requester, id, kind, supplier_id,
               bottleneck](net::DeliveryContext& done_ctx) {
                deliver_segment(requester, id, kind, supplier_id, bottleneck,
                                done_ctx);
              });
        },
        /*extra_delay=*/uplink_wait);
  };
  if (ctx != nullptr) {
    ctx->defer(send_stage2);
  } else {
    send_stage2();
  }
}

void Session::deliver_segment(std::size_t receiver, SegmentId id, TransferKind kind,
                              NodeId supplier, double transfer_duration,
                              net::DeliveryContext& ctx) {
  Node& node = *nodes_[receiver];
  if (!node.alive()) return;
  auto& stats = *static_cast<SessionStats*>(ctx.scratch());
  const SimTime now = sim_.now();

  const auto record = (kind == TransferKind::kScheduled)
                          ? node.end_transfer(id)
                          : std::optional<InflightTransfer>{};
  if (kind == TransferKind::kPrefetch) node.end_prefetch(id);
  const bool fresh = node.buffer().insert(id);
  ++stats.segments_delivered;
  if (!fresh) ++stats.duplicate_deliveries;
  if (obs_counters_ != nullptr) {
    obs_counters_->add(ctx.shard(), ctr_segments_delivered_, 1);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.time = now;
    event.kind = obs::TraceEventKind::kSegmentDelivery;
    event.node = static_cast<std::uint32_t>(receiver);
    event.a = id;
    event.b = supplier;  // NodeId, not a session index
    trace_->record(ctx.shard(), event);
  }

  // Hardening: a completed delivery clears the segment's retry streak
  // and wipes the supplier's strike record. Receiver-own writes only,
  // so this is safe inside a forked receiver shard.
  if (hardened_) {
    node.clear_retry(id);
    node.note_supplier_success(supplier);
  }

  // The push relay reads OTHER nodes' buffers and draws from the
  // shared session RNG, so it always runs serially: inline in
  // immediate mode, at the join (shard order) when forked. The alive
  // re-check is for the deferred case.
  const auto relay_via_ctx = [this, &ctx, receiver, id] {
    ctx.defer([this, receiver, id] {
      Node& relay_node = *nodes_[receiver];
      if (relay_node.alive()) push_relay(relay_node, id);
    });
  };

  if (kind == TransferKind::kPushed) {
    // Unsolicited relay: credit the supplier's supply score (it spent
    // uplink on us) but take no R_ij sample — we never requested it.
    node.neighbors().record_supply_event(supplier);
    store_backup_if_responsible(node, id);
    if (fresh && config_.scheduler == SchedulerKind::kGridMediaPushPull) {
      relay_via_ctx();
    }
    return;
  }

  if (kind == TransferKind::kScheduled) {
    // The receiver measures the connection's throughput over the
    // transfer itself (bytes/time while receiving) — propagation
    // latency does not dilute the R_ij estimate.
    (void)record;
    node.rates().on_transfer_complete(supplier, transfer_duration);
    node.neighbors().record_supply_event(supplier);
    // Repeated data (alpha case 2): gossip delivered a segment that
    // pre-fetch had already fetched, and in time.
    if (!fresh && node.prefetch_tagged(id) && in_time(node, id, now)) {
      node.urgent_line().on_repeated_prefetch();
    }
  } else {
    ++stats.prefetch_succeeded;
    node.tag_prefetched(id);
    if (fresh) {
      // Overdue data (alpha case 1): the pre-fetch landed too late.
      if (!in_time(node, id, now)) {
        node.urgent_line().on_overdue_prefetch();
      }
    } else if (in_time(node, id, now)) {
      // Gossip beat the pre-fetch and the deadline: repeated data.
      node.urgent_line().on_repeated_prefetch();
    }
  }

  store_backup_if_responsible(node, id);

  // GridMedia-style relay: "a pushing packet is relayed by a neighbor
  // as soon as it is received". Duplicates die out at receivers that
  // already hold the segment.
  if (fresh && config_.scheduler == SchedulerKind::kGridMediaPushPull) {
    relay_via_ctx();
  }
}

void Session::push_relay(Node& node, SegmentId id) {
  // Relay to partners that (per their current buffer map) lack the
  // segment. The source seeds with the full fan-out; relays forward to
  // one partner each — an unthrottled fan-out cascade floods every
  // uplink with duplicates (exactly the overhead the paper criticizes
  // GridMedia for), starving the pull plane. Respect the uplink
  // admission horizon so pushes cannot monopolize a saturated uplink.
  const std::size_t fanout =
      node.is_source() ? config_.push_fanout + 2 : std::size_t{1};
  auto partners = node.neighbors().ids();
  rng_.shuffle(partners);
  std::size_t pushed = 0;
  for (const NodeId partner : partners) {
    if (pushed >= fanout) break;
    const auto pidx = alive_node_by_id(partner);
    if (!pidx.has_value()) continue;
    Node& peer = *nodes_[*pidx];
    if (peer.buffer().has(id)) continue;
    const double horizon = kServeWithinPeriods * config_.scheduling_period;
    const double service = 1.0 / std::max(node.outbound_rate(), 0.01);
    if (std::max(node.uplink_free_at(), sim_.now()) + service - sim_.now() > horizon) {
      break;  // uplink saturated: pulls take precedence
    }
    start_fluid_transfer(node.session_index(), *pidx, id, MessageType::kSegmentData,
                         TransferKind::kPushed);
    ++stats_.segments_pushed;
    ++pushed;
  }
}

// --------------------------------------------------------------------------
// On-demand data retrieval (Algorithm 2)
// --------------------------------------------------------------------------

Session::PrefetchPlan Session::plan_prefetch(const Node& node,
                                             const ScheduleResult* planned) const {
  PrefetchPlan plan;
  const SimTime now = sim_.now();
  const auto& buffer = node.buffer();
  if (!buffer.started()) return plan;  // no deadlines to protect yet

  // The urgent region starts just past the play point (the "head" of
  // the unplayed buffer in Figure 4's sense).
  const SegmentId head =
      std::max(buffer.play_point(now) + 1, buffer.window_head());
  const SegmentId urgent = node.urgent_line().urgent_id(head);
  // Predicted-missed: white (absent) segments at or below the urgent
  // line that are not already on their way, and actually exist.
  const SegmentId limit = std::min(urgent + 1, emitted_);
  // Predicted-missed segments. For IMMINENT deadlines (within t_fetch
  // of the play point) the pre-fetch channel deliberately RACES any
  // pending gossip request — if gossip wins in time, that is exactly
  // the paper's "repeated data" case and alpha shrinks. Further out,
  // a segment already riding a gossip request is not yet "predicted
  // missed" and is left to the scheduler.
  const double t_fetch = analysis::expected_fetch_time_s(
      config_.expected_nodes, config_.t_hop_estimate);
  const SegmentId imminent =
      head + static_cast<SegmentId>(std::ceil(
                 static_cast<double>(config_.playback_rate) * t_fetch)) + 1;
  // A segment the SAME round's scheduling plan just booked is not yet
  // in transfer_pending (bookings commit after the plan join), so
  // consult the plan directly — reproducing the serial rule that a
  // freshly booked non-imminent segment is not "predicted missed".
  const auto booked_in_plan = [planned](SegmentId id) {
    if (planned == nullptr) return false;
    for (const auto& assignment : planned->assignments) {
      if (assignment.segment == id) return true;
    }
    return false;
  };
  std::vector<SegmentId> missed;
  for (const SegmentId id : buffer.missing_in(head, limit)) {
    if (node.prefetch_pending(id)) continue;
    if (id >= imminent && (node.transfer_pending(id) || booked_in_plan(id))) {
      continue;
    }
    // Hardening: a segment inside its backoff window is not retried —
    // neither by gossip (plan_scheduling skips it) nor by pre-fetch.
    if (hardened_ && node.retry_blocked(id, now)) continue;
    missed.push_back(id);
  }

  const std::size_t quota = prefetch_quota(missed.size(), config_.prefetch_limit);
  if (quota == 0 && !missed.empty()) plan.suppressed = true;
  // Pre-fetch shares the inbound rate with the scheduler: skip when the
  // downlink is already saturated with scheduled arrivals.
  const double backlog_s = std::max(0.0, node.downlink_free_at() - now);
  if (backlog_s > 0.5 * config_.scheduling_period) return plan;

  plan.launch.assign(missed.begin(), missed.begin() + quota);
  return plan;
}

void Session::launch_prefetch(std::size_t origin, SegmentId segment) {
  Node& node = *nodes_[origin];
  if (!node.begin_prefetch(segment, sim_.now())) {
    return;
  }
  ++stats_.prefetch_launched;

  auto op = std::make_shared<PrefetchOp>();
  op->origin = origin;
  op->segment = segment;
  op->pending_replies = config_.backup_replicas;

  for (unsigned replica = 1; replica <= config_.backup_replicas; ++replica) {
    const NodeId target = space_.backup_target(segment, replica);
    route_hop(origin, target, origin, op, 0);
  }
}

void Session::route_hop(std::size_t current, NodeId target, std::size_t origin,
                        const std::shared_ptr<PrefetchOp>& op, unsigned hops) {
  Node& node = *nodes_[current];
  const auto hop_cap = static_cast<unsigned>(std::ceil(space_.hop_upper_bound())) + 2;
  if (hops > hop_cap) {
    ++stats_.dht_route_failures;
    finish_locate(current, op);
    return;
  }

  for (;;) {
    const auto next = node.dht_peers().next_hop(target);
    if (!next.has_value()) {
      finish_locate(current, op);
      return;
    }
    const auto next_index = alive_node_by_id(*next);
    if (!next_index.has_value()) {
      node.dht_peers().evict(*next);  // stale entry: peer is gone
      continue;
    }
    ++stats_.dht_route_messages;
    // Indices packed to 32 bits so the whole capture (48 bytes) plus
    // the network delivery wrapper stays within the event action's
    // inline buffer — this is the engine's largest scheduled capture.
    const auto nidx32 = static_cast<std::uint32_t>(*next_index);
    const auto origin32 = static_cast<std::uint32_t>(origin);
    const auto current32 = static_cast<std::uint32_t>(current);
    network_.send(current, *next_index, MessageType::kDhtRoute,
                  WireCosts::kDhtRouteBits,
                  [this, target, op, nidx32, origin32, current32, hops] {
                    // Overhearing: the forwarding node learns about the
                    // query origin and the previous hop for free.
                    const std::size_t nidx = nidx32;
                    const std::size_t origin = origin32;
                    const std::size_t current = current32;
                    Node& here = *nodes_[nidx];
                    const Node& org = *nodes_[origin];
                    const Node& prev = *nodes_[current];
                    const SimTime now = sim_.now();
                    if (org.alive() && org.id() != here.id()) {
                      here.overheard().hear(
                          org.id(),
                          network_.latency().latency_ms(nidx, origin), now);
                    }
                    if (prev.alive() && prev.id() != here.id()) {
                      here.overheard().hear(
                          prev.id(),
                          network_.latency().latency_ms(nidx, current), now);
                    }
                    route_hop(nidx, target, origin, op, hops + 1);
                  });
    return;
  }
}

void Session::finish_locate(std::size_t terminal, const std::shared_ptr<PrefetchOp>& op) {
  Node& owner = *nodes_[terminal];
  const bool has =
      owner.backup().has(op->segment) || owner.buffer().has(op->segment);
  const double rate = owner.available_sending_rate(sim_.now());
  network_.send(terminal, op->origin, MessageType::kDhtReply, WireCosts::kDhtReplyBits,
                [this, op, terminal, has, rate] {
                  on_prefetch_reply(op, terminal, has, rate);
                });
}

void Session::on_prefetch_reply(const std::shared_ptr<PrefetchOp>& op, std::size_t owner,
                                bool has_segment, double rate) {
  if (has_segment && rate > op->best_rate) {
    op->best_rate = rate;
    op->best_owner = owner;
  }
  if (op->pending_replies == 0) return;  // defensive: already resolved
  if (--op->pending_replies > 0) return;

  Node& origin = *nodes_[op->origin];
  if (!origin.alive()) return;
  if (!op->best_owner.has_value()) {
    ++stats_.prefetch_no_replica;
    origin.end_prefetch(op->segment);
    return;
  }
  const std::size_t chosen = *op->best_owner;
  network_.send(op->origin, chosen, MessageType::kPrefetchRequest,
                WireCosts::kPrefetchRequestBits, [this, chosen, op] {
                  handle_prefetch_request(chosen, op->origin, op->segment);
                });
}

void Session::handle_prefetch_request(std::size_t owner, std::size_t origin,
                                      SegmentId segment) {
  Node& node = *nodes_[owner];
  if (!node.alive()) return;
  if (!node.backup().has(segment) && !node.buffer().has(segment)) return;
  // Pre-fetch transfers are deadline-critical: the origin picked this
  // owner for its available sending rate, so serve unless the uplink is
  // severely backed up (then the origin's timeout recovers).
  if (node.uplink_free_at() - sim_.now() >
      2.0 * kServeWithinPeriods * config_.scheduling_period) {
    return;
  }
  start_fluid_transfer(owner, origin, segment, MessageType::kPrefetchData,
                       TransferKind::kPrefetch);
}

// --------------------------------------------------------------------------
// DHT peer refresh (overhearing-driven maintenance)
// --------------------------------------------------------------------------

void Session::refresh_dht_peers(Node& node) {
  const SimTime now = sim_.now();
  for (const auto& heard : node.overheard().entries()) {
    node.dht_peers().offer(heard.id, heard.latency_ms, now);
  }
  // Evict any DHT peer we know to be dead (cheap liveness sweep).
  for (const auto& peer : node.dht_peers().peers()) {
    if (!alive_node_by_id(peer.id).has_value()) {
      node.dht_peers().evict(peer.id);
    }
  }
}

// --------------------------------------------------------------------------
// Churn
// --------------------------------------------------------------------------

void Session::on_churn_tick() {
  std::vector<std::size_t> alive;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {  // source never churns
    if (nodes_[i]->alive()) alive.push_back(i);
  }
  const overlay::ChurnBatch batch = churn_.plan(alive);

  std::vector<NodeId> dead_ids;
  for (const auto index : batch.graceful_leavers) {
    dead_ids.push_back(nodes_[index]->id());
    kill_node(index, /*graceful=*/true);
  }
  for (const auto index : batch.abrupt_leavers) {
    dead_ids.push_back(nodes_[index]->id());
    kill_node(index, /*graceful=*/false);
  }

  drop_transfers_from_dead(dead_ids);

  for (std::size_t j = 0; j < batch.joins; ++j) {
    do_join();
  }
}

void Session::drop_transfers_from_dead(const std::vector<NodeId>& dead_ids) {
  // Abandon in-flight transfers sourced from the departed. The sweep is
  // per-receiver-node independent (each node mutates only its own
  // in-flight table), so it shards across the executor — the serial
  // mass of a churn tick at 8000 nodes is this O(N) scan.
  if (dead_ids.empty()) return;
  if (profiler_ != nullptr) {
    profiler_->begin_fork_phase(obs::Phase::kChurnSweep, nodes_.size());
  }
  exec_.for_shards(nodes_.size(), kSweepGrain,
                   [this, &dead_ids](std::size_t, std::size_t begin,
                                     std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       Node& node = *nodes_[i];
                       if (!node.alive()) continue;
                       for (const NodeId dead : dead_ids) {
                         node.drop_transfers_from(dead);
                       }
                     }
                   });
}

void Session::on_fault_crash(double fraction) {
  // Crash-stop: victims vanish mid-protocol with no graceful handoff —
  // the abrupt-leave path of the churn machinery, driven by the fault
  // plan instead of the churn process. Victim selection draws from a
  // dedicated per-tick stream so a crash event never perturbs the
  // churn or scheduling RNG sequences.
  std::vector<std::size_t> alive;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {  // source never crashes
    if (nodes_[i]->alive()) alive.push_back(i);
  }
  if (alive.empty()) return;
  std::size_t count = static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(alive.size())));
  if (count == 0) count = 1;  // a scheduled crash always claims someone
  count = std::min(count, alive.size());

  constexpr std::uint64_t kCrashStream = 0x4352415348ull;  // "CRASH"
  util::Rng rng = util::Rng::for_tick(config_.seed ^ kCrashStream, sim_.now(),
                                      alive.size());
  rng.shuffle(alive);

  std::vector<NodeId> dead_ids;
  dead_ids.reserve(count);
  for (std::size_t v = 0; v < count; ++v) {
    dead_ids.push_back(nodes_[alive[v]]->id());
    kill_node(alive[v], /*graceful=*/false);
    ++stats_.fault_crashes;
  }
  drop_transfers_from_dead(dead_ids);
}

void Session::kill_node(std::size_t index, bool graceful) {
  Node& node = *nodes_[index];
  if (!node.alive() || node.is_source()) return;

  if (graceful) {
    ++stats_.graceful_leaves;
    // Hand the VoD backup to the counter-clockwise closest alive node.
    const auto heir_id = directory_.predecessor_of(node.id());
    if (heir_id.has_value()) {
      const auto heir_index = alive_node_by_id(*heir_id);
      if (heir_index.has_value()) {
        const auto contents = node.backup().take_all();
        const auto bits = WireCosts::kSmallPacketBits +
                          static_cast<Bits>(contents.size()) * WireCosts::kSegmentBits;
        Node& heir = *nodes_[*heir_index];
        network_.send(index, *heir_index, MessageType::kHandover, bits,
                      [&heir, contents] {
                        for (const SegmentId id : contents) heir.backup().store(id);
                      });
      }
    }
  } else {
    ++stats_.abrupt_leaves;
  }

  node.set_alive(false);
  directory_.erase(node.id());
  rp_.report_failure(node.id());
  index_of_.erase(node.id());
  rounds_.remove(round_handles_[index]);
}

void Session::do_join() {
  NodeId id;
  try {
    id = rp_.assign_id();
  } catch (const std::exception&) {
    return;  // ID space exhausted; skip this join
  }
  const double ping = sample_ping();
  const std::size_t index = network_.latency().add_node(ping);
  auto node = std::make_unique<Node>(
      id, index, config_, space_,
      sample_rate(config_.inbound_min, config_.inbound_max, /*skewed=*/true),
      sample_rate(config_.outbound_min, config_.outbound_max, /*skewed=*/false),
      ping);
  const SimTime now = sim_.now();
  ++stats_.joins;

  // RP bootstrap: probe the closest listed nodes, pick the nearest
  // alive one as the Peer Table base.
  const auto close = rp_.close_nodes(id, kJoinProbeCount);
  std::optional<std::size_t> base;
  double base_latency = 0.0;
  for (const NodeId candidate : close) {
    const auto cidx = alive_node_by_id(candidate);
    // PING + PONG (the probe happens whether or not the peer is alive).
    network_.charge_only(MessageType::kPing, WireCosts::kSmallPacketBits);
    if (!cidx.has_value()) {
      rp_.report_failure(candidate);
      continue;
    }
    network_.charge_only(MessageType::kPong, WireCosts::kSmallPacketBits);
    const double lat = network_.latency().latency_ms(index, *cidx);
    if (!base.has_value() || lat < base_latency) {
      base = cidx;
      base_latency = lat;
    }
  }

  if (base.has_value()) {
    const Node& base_node = *nodes_[*base];
    // Seed overheard from the base's Peer Table.
    node->overheard().hear(base_node.id(), base_latency, now);
    for (const auto& entry : base_node.overheard().entries()) {
      if (entry.id == id) continue;
      const auto eidx = index_of(entry.id);
      if (!eidx.has_value()) continue;
      node->overheard().hear(entry.id, network_.latency().latency_ms(index, *eidx), now);
    }
    for (const NodeId nb : base_node.neighbors().ids()) {
      const auto nidx = index_of(nb);
      if (!nidx.has_value() || nb == id) continue;
      node->overheard().hear(nb, network_.latency().latency_ms(index, *nidx), now);
    }
    // Seed DHT peers from the base's table (levels recompute for the
    // new owner inside offer()).
    for (const auto& peer : base_node.dht_peers().peers()) {
      node->dht_peers().offer(peer.id, peer.latency_ms, now);
    }
    node->dht_peers().offer(base_node.id(), base_latency, now);

    // Connect to up to M lowest-latency alive candidates (reciprocal).
    std::vector<NodeId> excluded{id};
    while (node->neighbors().size() < config_.connected_neighbors) {
      const auto candidate = node->overheard().best_candidate(excluded);
      if (!candidate.has_value()) break;
      excluded.push_back(candidate->id);
      const auto cidx = alive_node_by_id(candidate->id);
      if (!cidx.has_value()) continue;
      node->neighbors().add(candidate->id, candidate->latency_ms, now);
      nodes_[*cidx]->neighbors().add(id, candidate->latency_ms, now);
      network_.charge_only(MessageType::kJoinNotify, WireCosts::kSmallPacketBits);
    }
  }

  directory_.insert(id);
  rp_.register_node(id);
  index_of_[id] = index;
  nodes_.push_back(std::move(node));

  round_handles_.push_back(rounds_.add_at(round_phase(rng_), index));
}

// --------------------------------------------------------------------------
// Metrics sampling
// --------------------------------------------------------------------------

void Session::on_sample_tick() {
  const SimTime now = sim_.now();

  // Sharded ordered reduction over all nodes. Each shard accumulates
  // privately (the only cross-node write is resetting a node's OWN
  // round stats); partials merge in shard order, so the alpha_sum
  // floating-point chain is fixed by (node count, grain) alone and the
  // sample is bit-identical at every thread count.
  struct SampleAccum {
    std::uint64_t continuous = 0;
    std::uint64_t counted = 0;
    std::uint64_t played = 0;
    std::uint64_t due = 0;
    std::uint64_t alpha_count = 0;
    std::uint64_t alive = 0;
    std::uint64_t stall_rounds = 0;
    std::uint64_t stall_episodes = 0;
    double alpha_sum = 0.0;
    SampleAccum& operator+=(const SampleAccum& rhs) noexcept {
      continuous += rhs.continuous;
      counted += rhs.counted;
      played += rhs.played;
      due += rhs.due;
      alpha_count += rhs.alpha_count;
      alive += rhs.alive;
      stall_rounds += rhs.stall_rounds;
      stall_episodes += rhs.stall_episodes;
      alpha_sum += rhs.alpha_sum;
      return *this;
    }
  };
  const std::size_t n = nodes_.size();
  std::vector<SampleAccum> partials(
      sim::parallel::ParallelExecutor::shard_count(n, kSweepGrain));
  obs_ensure_shards(partials.size());
  if (profiler_ != nullptr) {
    profiler_->begin_fork_phase(obs::Phase::kSampleSweep, n);
  }
  exec_.for_shards(n, kSweepGrain,
                   [this, &partials, now](std::size_t s, std::size_t begin,
                                          std::size_t end) {
                     SampleAccum& acc = partials[s];
                     for (std::size_t i = begin; i < end; ++i) {
                       Node& node = *nodes_[i];
                       if (!node.alive()) continue;
                       ++acc.alive;
                       if (node.is_source()) continue;
                       ++acc.counted;
                       auto& rs = node.round_stats();
                       if (node.buffer().started() && rs.missed == 0 &&
                           rs.played > 0) {
                         ++acc.continuous;
                       }
                       // Stall-episode tracking: a round with a missed
                       // due segment is a stall round; entering one from
                       // a clean round opens an episode. Own-node writes
                       // only (the in_stall bit), so it shards safely.
                       if (node.buffer().started()) {
                         if (rs.missed > 0) {
                           ++acc.stall_rounds;
                           if (!node.in_stall()) {
                             ++acc.stall_episodes;
                             node.set_in_stall(true);
                             if (trace_ != nullptr) {
                               obs::TraceEvent event;
                               event.time = now;
                               event.kind = obs::TraceEventKind::kStallStart;
                               event.node = static_cast<std::uint32_t>(i);
                               trace_->record(s, event);
                             }
                             if (obs_counters_ != nullptr) {
                               obs_counters_->add(s, ctr_stall_transitions_, 1);
                             }
                           }
                         } else if (rs.played > 0) {
                           if (node.in_stall()) {
                             if (trace_ != nullptr) {
                               obs::TraceEvent event;
                               event.time = now;
                               event.kind = obs::TraceEventKind::kStallEnd;
                               event.node = static_cast<std::uint32_t>(i);
                               trace_->record(s, event);
                             }
                             if (obs_counters_ != nullptr) {
                               obs_counters_->add(s, ctr_stall_transitions_, 1);
                             }
                           }
                           node.set_in_stall(false);
                         }
                       }
                       acc.played += rs.played;
                       acc.due += rs.played + rs.missed;
                       rs = Node::RoundStats{};
                       acc.alpha_sum += node.urgent_line().alpha();
                       ++acc.alpha_count;
                     }
                   });
  SampleAccum total;
  sim::parallel::reduce_in_order(partials, total);

  const std::uint64_t continuous = total.continuous;
  const std::uint64_t counted = total.counted;
  continuity_.record_round(now, continuous, counted);
  collector_.record("continuity", now,
                    counted == 0 ? 0.0
                                 : static_cast<double>(continuous) /
                                       static_cast<double>(counted));
  // The per-SEGMENT "continuity index" other papers report (Section
  // 5.3): fraction of due segments that arrived in time this round.
  // Always >= the paper's strict node-level metric — recorded so the
  // two can be compared directly (see bench_fig5/6 and EXPERIMENTS.md).
  collector_.record("continuity_index", now,
                    total.due == 0 ? 0.0
                                   : static_cast<double>(total.played) /
                                         static_cast<double>(total.due));
  if (total.alpha_count > 0) {
    collector_.record("alpha_mean", now,
                      total.alpha_sum / static_cast<double>(total.alpha_count));
  }

  // Per-round overhead deltas and cumulative ratios.
  const auto& traffic = network_.traffic();
  const auto delta = traffic.since(last_traffic_snapshot_);
  collector_.record("control_overhead_round", now, delta.control_overhead());
  collector_.record("prefetch_overhead_round", now, delta.prefetch_overhead());
  collector_.record("control_overhead_cumulative", now, traffic.control_overhead());
  collector_.record("prefetch_overhead_cumulative", now, traffic.prefetch_overhead());
  collector_.record("alive_nodes", now, static_cast<double>(total.alive));
  stats_.stall_rounds += total.stall_rounds;
  stats_.stall_episodes += total.stall_episodes;
  // Stalled-node series: only recorded when faults or hardening are in
  // play, so the zero-fault collector output (and its fingerprint fold)
  // is unchanged.
  if (fault_injector_ != nullptr || hardened_) {
    collector_.record("stalled_nodes", now,
                      static_cast<double>(total.stall_rounds));
  }
  last_traffic_snapshot_ = traffic;
}

// --------------------------------------------------------------------------
// Memory footprint (sizing toward the 100k-node goal)
// --------------------------------------------------------------------------

util::BitWindowArena::Stats Session::window_arena_stats() const noexcept {
  util::BitWindowArena::Stats total;
  for (const auto& shard : prepare_shards_) {
    total.checkouts += shard.arena.stats().checkouts;
    total.allocations += shard.arena.stats().allocations;
  }
  return total;
}

MemoryFootprint Session::memory_footprint() const {
  MemoryFootprint fp;
  fp.nodes = nodes_.size();
  for (const auto& node : nodes_) {
    fp.buffer_bytes += sizeof(StreamBuffer) + node->buffer().window().approx_bytes();
    fp.neighbor_set_bytes += node->neighbors().approx_bytes();
    fp.overheard_bytes += node->overheard().approx_bytes();
    fp.peer_table_bytes += node->dht_peers().approx_bytes();
    fp.backup_bytes += node->backup().approx_bytes();
    fp.transfer_map_bytes += node->approx_transfer_map_bytes();
    fp.prefetch_map_bytes += node->approx_prefetch_map_bytes();
    fp.tag_set_bytes += node->approx_tag_set_bytes();
    fp.rate_table_bytes += node->rates().approx_bytes();
    fp.retry_map_bytes += node->approx_retry_map_bytes();
    fp.blacklist_bytes += node->approx_blacklist_bytes();
  }
  fp.neighbor_bytes = fp.neighbor_set_bytes + fp.overheard_bytes;
  fp.dht_bytes = fp.peer_table_bytes + fp.backup_bytes;
  fp.inflight_bytes = fp.transfer_map_bytes + fp.prefetch_map_bytes +
                      fp.tag_set_bytes + fp.rate_table_bytes +
                      fp.retry_map_bytes + fp.blacklist_bytes;
  return fp;
}

// --------------------------------------------------------------------------
// Observability
// --------------------------------------------------------------------------

void Session::obs_ensure_shards(std::size_t shards) {
  if (trace_ != nullptr) trace_->ensure_shards(shards);
  if (obs_counters_ != nullptr) obs_counters_->ensure_shards(shards);
}

std::shared_ptr<const obs::ObsReport> Session::obs_report() {
  if (profiler_ == nullptr && trace_ == nullptr && obs_counters_ == nullptr) {
    return nullptr;
  }
  auto report = std::make_shared<obs::ObsReport>();
  if (profiler_ != nullptr) {
    report->profile = true;
    report->prof = profiler_->report();
  } else {
    report->prof.threads = exec_.threads();
  }
  if (trace_ != nullptr) {
    report->trace = true;
    report->events = trace_->drained_events();
    report->spans = trace_->drained_spans();
    report->trace_recorded = trace_->recorded();
    report->trace_overwritten = trace_->overwritten();
  }
  if (obs_counters_ != nullptr) {
    report->counters = true;
    obs_counters_->settle();
    const auto& names = obs_counters_->names();
    for (std::size_t i = 0; i < names.size(); ++i) {
      report->counter_values.emplace_back(
          names[i], obs_counters_->value(static_cast<std::uint32_t>(i)));
    }
    // Snapshot-time mirrors: one registry dump carries what previously
    // lived scattered across SessionStats getters, the engine counters
    // and the bench JSON — the unified stats path.
    const SessionStats& s = stats();
    const auto put = [&report](const char* name, std::uint64_t value) {
      report->counter_values.emplace_back(name, value);
    };
    put("session.segments_emitted", s.segments_emitted);
    put("session.segments_delivered", s.segments_delivered);
    put("session.duplicate_deliveries", s.duplicate_deliveries);
    put("session.requests_sent", s.requests_sent);
    put("session.segments_booked", s.segments_booked);
    put("session.segments_refused", s.segments_refused);
    put("session.candidates_seen", s.candidates_seen);
    put("session.candidates_unassigned", s.candidates_unassigned);
    put("session.prefetch_launched", s.prefetch_launched);
    put("session.prefetch_succeeded", s.prefetch_succeeded);
    put("session.prefetch_no_replica", s.prefetch_no_replica);
    put("session.prefetch_suppressed", s.prefetch_suppressed);
    put("session.segments_pushed", s.segments_pushed);
    put("session.dht_route_messages", s.dht_route_messages);
    put("session.dht_route_failures", s.dht_route_failures);
    put("session.joins", s.joins);
    put("session.graceful_leaves", s.graceful_leaves);
    put("session.abrupt_leaves", s.abrupt_leaves);
    put("session.neighbor_replacements", s.neighbor_replacements);
    put("session.transfer_timeouts", s.transfer_timeouts);
    put("session.mixed_batch_fallbacks", s.mixed_batch_fallbacks);
    put("session.deliveries_dropped", s.deliveries_dropped);
    put("session.deliveries_lost", s.deliveries_lost);
    put("session.deliveries_partitioned", s.deliveries_partitioned);
    put("session.fault_crashes", s.fault_crashes);
    put("session.retry_backoffs", s.retry_backoffs);
    put("session.suppliers_blacklisted", s.suppliers_blacklisted);
    put("session.stall_episodes", s.stall_episodes);
    put("session.stall_rounds", s.stall_rounds);
    put("session.alive_at_end", alive_count());
    // No engine.threads mirror: the counter snapshot is defined to be
    // thread-count invariant (the obs tests diff it at widths 1..8);
    // the width lives in ProfileReport::threads instead.
    put("engine.events_executed", sim_.executed());
    put("engine.peak_queue_depth", sim_.peak_pending());
    put("net.delivery_batches", network_.delivery_batches());
    put("net.batched_deliveries", network_.batched_deliveries());
    // Sharded-engine frontier diagnostics: all zero on the single
    // queue, deterministic (thread-count invariant) on the sharded
    // one — the counter snapshot contract holds either way.
    if (const sim::ShardedEventQueue* squeue = sim_.sharded_queue()) {
      put("engine.queue_shards", squeue->shard_count());
      put("engine.frontier_advances", squeue->frontier_advances());
      put("engine.frontier_stalled_shards", squeue->frontier_stalled_shards());
      put("net.frontier_barriers", network_.frontier_barriers());
      put("net.frontier_stalled_lanes", network_.frontier_stalled_lanes());
      // Lax-mode diagnostics: skew-stall (shards/lanes a window could
      // not feed) vs the strict counters' frontier-stall, plus the
      // per-shard lead histogram — how far past each window's anchor
      // the collected events sat, in grid buckets. All deterministic
      // per skew setting; identically zero in strict mode.
      if (sim_.lax()) {
        put("engine.lax_windows", squeue->lax_windows());
        put("engine.lax_events_drained", squeue->lax_events_drained());
        put("engine.lax_stalled_shards", squeue->lax_stalled_shards());
        put("net.lax_handoff_windows", network_.lax_handoff_windows());
        const std::vector<std::uint64_t>& hist = squeue->lax_lead_histogram();
        for (std::size_t b = 0; b < hist.size(); ++b) {
          report->counter_values.emplace_back(
              "engine.lax_lead_bucket_" + std::to_string(b), hist[b]);
        }
      }
    }
  }
  return report;
}

}  // namespace continu::core
