#include "core/stream_buffer.hpp"

#include <stdexcept>

namespace continu::core {

StreamBuffer::StreamBuffer(std::size_t capacity, std::uint64_t playback_rate,
                           double stall_patience)
    : window_(capacity, /*head=*/0),
      playback_rate_(playback_rate),
      stall_patience_(stall_patience) {
  if (playback_rate == 0) {
    throw std::invalid_argument("StreamBuffer: playback rate must be positive");
  }
  if (stall_patience < 0.0) {
    throw std::invalid_argument("StreamBuffer: negative stall patience");
  }
}

bool StreamBuffer::insert(SegmentId id) {
  if (id < window_.head()) return false;  // stale: already played/evicted
  if (id >= window_.end()) {
    // A segment beyond the window means the stream ran far ahead of
    // this node (it was offline or starved). Slide forward so the
    // window again covers the live edge; dropped ids were unplayable.
    window_.slide_to(id - static_cast<SegmentId>(window_.capacity()) + 1);
  }
  if (window_.test(id)) return false;
  return window_.set(id);
}

std::optional<SegmentId> StreamBuffer::newest() const { return window_.highest(); }

std::optional<SegmentId> StreamBuffer::startup_position() const {
  return window_.lowest();
}

void StreamBuffer::start_playback(SegmentId segment, SimTime now) {
  if (started_) {
    throw std::logic_error("StreamBuffer: playback already started");
  }
  started_ = true;
  start_segment_ = segment;
  start_time_ = now;
  next_due_ = segment;
}

SegmentId StreamBuffer::play_point(SimTime now) const {
  if (!started_) return kInvalidSegment;
  const double elapsed = now - start_time_;
  if (elapsed < 0.0) return start_segment_ - 1;
  // Epsilon guards the floor against FP slop at exact deadlines
  // (e.g. 0.1 * 10 evaluating to 0.999...).
  const auto played = static_cast<SegmentId>(
      elapsed * static_cast<double>(playback_rate_) + 1e-9);
  return start_segment_ - 1 + played;
}

SimTime StreamBuffer::deadline(SegmentId id) const {
  if (!started_) {
    throw std::logic_error("StreamBuffer: deadline before playback start");
  }
  const auto offset = static_cast<double>(id - start_segment_ + 1);
  return start_time_ + offset / static_cast<double>(playback_rate_);
}

std::vector<DueSegment> StreamBuffer::advance_playback(SimTime now) {
  if (!started_) {
    throw std::logic_error("StreamBuffer: advance before playback start");
  }
  std::vector<DueSegment> due;
  while (deadline(next_due_) <= now) {
    DueSegment d;
    d.id = next_due_;
    d.deadline = deadline(next_due_);
    d.present = window_.test(next_due_);
    if (!d.present) {
      // Rebuffer on ANY missing due segment, bounded by the patience:
      // the first time this segment comes due we start waiting; once it
      // has kept us waiting for stall_patience seconds it is skipped as
      // a miss and playback moves on.
      if (pending_stall_segment_ != next_due_) {
        pending_stall_segment_ = next_due_;
        pending_stall_since_ = d.deadline;
      }
      if (now - pending_stall_since_ < stall_patience_) {
        ++stalls_;
        d.stalled = true;
        due.push_back(d);
        start_time_ += now + 1.0 / static_cast<double>(playback_rate_) - d.deadline;
        break;
      }
      // Patience exhausted: skip it as a miss.
      pending_stall_segment_ = kInvalidSegment;
      due.push_back(d);
      ++next_due_;
      continue;
    }
    if (pending_stall_segment_ == next_due_) {
      pending_stall_segment_ = kInvalidSegment;
    }
    due.push_back(d);
    ++next_due_;
  }
  // NOTE: playback does NOT evict. The buffer is FIFO over ARRIVAL with
  // capacity B (insert slides the window as fresh segments land), so a
  // played segment keeps serving neighbors for up to B/p seconds — the
  // paper's case 2 ("playbacked ... and removed from B's buffer") only
  // occurs once capacity pushes it out.
  return due;
}

}  // namespace continu::core
