#pragma once
// Full-session driver: owns the simulator, the network, every node and
// all protocol behaviour. One Session is one run of either system
// (ContinuStreaming or the CoolStreaming baseline — chosen by
// SystemConfig::scheduler) on one trace topology.
//
// The session wires together:
//   * source emission (segment s appears at t = s/p),
//   * per-node scheduling rounds (buffer-map charge, Algorithm 1 or
//     rarest-first, pull requests, fluid-model transfers),
//   * the DHT plane (routing chains with overhearing, VoD backups,
//     Algorithm 2 on-demand retrieval, alpha adaptation),
//   * churn (graceful handover / abrupt failure / RP-bootstrapped join),
//   * metrics (per-round playback continuity, overhead tracks).

#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/scheduler.hpp"
#include "dht/id_space.hpp"
#include "dht/ring_directory.hpp"
#include "metrics/collector.hpp"
#include "metrics/continuity.hpp"
#include "net/network.hpp"
#include "overlay/churn.hpp"
#include "overlay/rendezvous.hpp"
#include "sim/parallel/deferred.hpp"
#include "sim/parallel/executor.hpp"
#include "sim/round_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/bitwindow_arena.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace continu::core {

/// Aggregate event counters exposed for tests, benches and examples.
struct SessionStats {
  std::uint64_t segments_emitted = 0;
  std::uint64_t segments_delivered = 0;
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t segments_booked = 0;
  std::uint64_t segments_refused = 0;
  std::uint64_t candidates_seen = 0;
  std::uint64_t candidates_unassigned = 0;
  std::uint64_t prefetch_launched = 0;
  std::uint64_t prefetch_succeeded = 0;
  std::uint64_t prefetch_no_replica = 0;
  std::uint64_t prefetch_suppressed = 0;  ///< case 3: N_miss > l
  std::uint64_t segments_pushed = 0;      ///< GridMedia-style push relays
  std::uint64_t dht_route_messages = 0;
  std::uint64_t dht_route_failures = 0;
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t abrupt_leaves = 0;
  std::uint64_t neighbor_replacements = 0;
  std::uint64_t transfer_timeouts = 0;
};

/// Element-wise sum — merging counters across experiment replications
/// (and, inside a session, merging per-shard stats deltas in shard
/// order after a fork/join round batch).
SessionStats& operator+=(SessionStats& lhs, const SessionStats& rhs) noexcept;
[[nodiscard]] SessionStats operator+(SessionStats lhs, const SessionStats& rhs) noexcept;

/// Estimated per-node state footprint, for sizing large sessions (the
/// 100k-node goal): where the bytes live once buffers saturate.
/// Estimates count container capacity, not malloc overhead.
struct MemoryFootprint {
  std::size_t nodes = 0;           ///< nodes measured (alive and dead)
  std::size_t buffer_bytes = 0;    ///< stream buffers (BitWindow words)
  std::size_t neighbor_bytes = 0;  ///< neighbor sets + overheard lists
  std::size_t dht_bytes = 0;       ///< peer tables + VoD backup stores
  std::size_t inflight_bytes = 0;  ///< transfer/prefetch bookkeeping maps
  /// Per-container split of the section totals above (the README
  /// budget table and the footprint-regression triage read these).
  std::size_t neighbor_set_bytes = 0;  ///< of neighbor_bytes
  std::size_t overheard_bytes = 0;     ///< of neighbor_bytes
  std::size_t peer_table_bytes = 0;    ///< of dht_bytes
  std::size_t backup_bytes = 0;        ///< of dht_bytes
  std::size_t transfer_map_bytes = 0;  ///< of inflight_bytes
  std::size_t prefetch_map_bytes = 0;  ///< of inflight_bytes
  std::size_t tag_set_bytes = 0;       ///< of inflight_bytes
  std::size_t rate_table_bytes = 0;    ///< of inflight_bytes
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return buffer_bytes + neighbor_bytes + dht_bytes + inflight_bytes;
  }
  [[nodiscard]] double per_node_bytes() const noexcept {
    return nodes == 0 ? 0.0
                      : static_cast<double>(total_bytes()) /
                            static_cast<double>(nodes);
  }
};

class Session {
 public:
  Session(const SystemConfig& config, const trace::TraceSnapshot& snapshot);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  /// Runs the simulation until `duration` seconds of virtual time.
  void run(SimTime duration);

  // --- results ---------------------------------------------------------
  [[nodiscard]] const metrics::ContinuityTracker& continuity() const noexcept {
    return continuity_;
  }
  [[nodiscard]] const metrics::SeriesCollector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const net::TrafficAccount& traffic() const noexcept {
    return network_.traffic();
  }
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }
  /// Current per-node state footprint (see MemoryFootprint). For static
  /// scenarios the end-of-run value is the steady-state peak: buffers
  /// saturate within one capacity window and stay full.
  [[nodiscard]] MemoryFootprint memory_footprint() const;
  /// Resolved intra-session worker thread count.
  [[nodiscard]] unsigned threads() const noexcept { return exec_.threads(); }
  /// Pooled-window arena backing buffer-map materialization; its stats
  /// let tests assert the exchange path stops allocating at steady
  /// state.
  [[nodiscard]] const util::BitWindowArena& window_arena() const noexcept {
    return window_arena_;
  }

  // --- introspection -----------------------------------------------------
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const dht::IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] Node& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] const Node& node(std::size_t index) const { return *nodes_.at(index); }
  [[nodiscard]] SegmentId emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::optional<std::size_t> index_of(NodeId id) const;
  [[nodiscard]] const dht::RingDirectory& directory() const noexcept { return directory_; }

  /// Source node (session index 0).
  [[nodiscard]] const Node& source() const { return *nodes_.front(); }

 private:
  struct PrefetchOp {
    std::size_t origin = 0;
    SegmentId segment = kInvalidSegment;
    unsigned pending_replies = 0;
    double best_rate = -1.0;
    std::optional<std::size_t> best_owner;
  };

  // --- construction -----------------------------------------------------
  void build_nodes(const trace::TraceSnapshot& snapshot);
  void assign_initial_neighbors(const trace::TraceSnapshot& snapshot);
  void populate_initial_dht();
  void start_processes();
  [[nodiscard]] double sample_rate(double lo, double hi, bool skewed);
  [[nodiscard]] double sample_ping();

  // --- per-round behaviour ------------------------------------------------
  //
  // A node round is split into three phases at the RoundScheduler batch
  // boundary (all ticks due at one instant):
  //   prepare — mutation-heavy maintenance (neighbor repair, buffer-map
  //             exchange, playback); serial, batch order; draws from a
  //             per-tick RNG stream, never the shared session RNG;
  //   plan    — the expensive read-only half (candidate building,
  //             Algorithm 1 / rarest-first, prefetch target selection);
  //             forked across the executor's shards, stats deltas and
  //             event emissions buffered per shard;
  //   commit  — applies plans (transfer bookkeeping, network sends, DHT
  //             prefetch launches); serial, batch order, after the
  //             shard buffers merged in shard order.
  // The same three-phase path runs at every thread count, so results
  // are bit-identical for threads = 1, 2, 4, 8.
  void on_source_emit();
  /// RoundScheduler dispatch: `user` is a node index or a reserved tag.
  void on_round_tick(std::size_t user);
  void on_node_round(std::size_t index);
  /// Batch dispatch (RoundScheduler batch callback).
  void on_round_batch(const std::vector<std::size_t>& users);
  void run_round_batch(const std::vector<std::size_t>& users);

  /// Plan computed by the parallel phase of a round batch.
  struct RoundPlan {
    bool scheduled = false;  ///< sched holds a valid plan
    ScheduleResult sched;
    std::vector<SegmentId> prefetch;  ///< quota-capped launch list
  };
  struct PrefetchPlan {
    std::vector<SegmentId> launch;
    bool suppressed = false;  ///< case 3: N_miss > l
  };

  void round_prepare(std::size_t index);
  void round_plan(std::size_t index, RoundPlan& plan, SessionStats& stats,
                  sim::parallel::EmissionBuffer& emissions);
  void round_commit(std::size_t index, RoundPlan& plan);

  void repair_neighbors(Node& node);
  void do_playback(Node& node);
  void maybe_start_playback(Node& node);
  void exchange_buffer_maps(Node& node, util::Rng& tick_rng);
  /// Read-only planning half of a scheduling round. Returns false when
  /// nothing is schedulable; `seen` reports candidates considered.
  [[nodiscard]] bool plan_scheduling(const Node& node, double budget_fraction,
                                     ScheduleResult& out, std::uint64_t& seen) const;
  void commit_scheduling(Node& node, const ScheduleResult& result);
  /// Fused plan+commit, for the mid-round top-up retry (event context).
  void run_scheduling(Node& node, double budget_fraction = 1.0);
  /// Read-only prefetch target selection; `planned` is this round's
  /// scheduling plan (its bookings are not yet in transfer_pending).
  [[nodiscard]] PrefetchPlan plan_prefetch(const Node& node,
                                           const ScheduleResult* planned) const;
  void refresh_dht_peers(Node& node);
  /// Draws a round phase and returns the ABSOLUTE first-tick instant:
  /// the next occurrence of the drawn bucket's grid time (joiners merge
  /// bit-exactly into an existing cohort's batch). See
  /// SystemConfig::round_phase_buckets.
  [[nodiscard]] SimTime round_phase(util::Rng& rng) const;
  /// GridMedia-style relay: push a freshly received segment onward.
  void push_relay(Node& node, SegmentId id);

  // --- transfers -----------------------------------------------------------
  void handle_segment_request(std::size_t supplier, std::size_t requester,
                              std::vector<SegmentId> ids);
  void start_fluid_transfer(std::size_t supplier, std::size_t requester, SegmentId id,
                            net::MessageType type, TransferKind kind);
  void deliver_segment(std::size_t receiver, SegmentId id, TransferKind kind,
                       NodeId supplier, double transfer_duration);

  // --- DHT / prefetch -------------------------------------------------------
  void launch_prefetch(std::size_t origin, SegmentId segment);
  void route_hop(std::size_t current, NodeId target, std::size_t origin,
                 const std::shared_ptr<PrefetchOp>& op, unsigned hops);
  void finish_locate(std::size_t terminal, const std::shared_ptr<PrefetchOp>& op);
  void on_prefetch_reply(const std::shared_ptr<PrefetchOp>& op, std::size_t owner,
                         bool has_segment, double rate);
  void handle_prefetch_request(std::size_t owner, std::size_t origin, SegmentId segment);

  // --- churn ------------------------------------------------------------
  void on_churn_tick();
  void kill_node(std::size_t index, bool graceful);
  void do_join();

  // --- metrics -----------------------------------------------------------
  void on_sample_tick();

  // --- helpers -----------------------------------------------------------
  [[nodiscard]] bool alive_index(std::size_t index) const;
  [[nodiscard]] std::optional<std::size_t> alive_node_by_id(NodeId id) const;
  [[nodiscard]] bool in_time(const Node& node, SegmentId id, SimTime now) const;
  void store_backup_if_responsible(Node& node, SegmentId id);

  SystemConfig config_;
  dht::IdSpace space_;
  sim::Simulator sim_;
  net::Network network_;
  dht::RingDirectory directory_;
  overlay::RendezvousServer rp_;
  overlay::ChurnPlanner churn_;
  util::Rng rng_;
  /// Fork/join worker pool for round batches and per-period sweeps.
  sim::parallel::ParallelExecutor exec_;

  /// Reserved RoundScheduler tags for the session-wide per-period
  /// ticks batched alongside the node rounds.
  static constexpr std::size_t kSampleTickUser = static_cast<std::size_t>(-1);
  static constexpr std::size_t kChurnTickUser = static_cast<std::size_t>(-2);

  std::vector<std::unique_ptr<Node>> nodes_;
  /// All scheduling-period ticks — node rounds, metric sampling, churn
  /// — batched behind one pending simulator event. Handles are indexed
  /// by session index; join/leave is an O(1) add/remove.
  sim::RoundScheduler rounds_;
  std::vector<sim::RoundScheduler::Handle> round_handles_;
  std::unique_ptr<sim::PeriodicProcess> emit_process_;
  util::FlatMap<NodeId, std::size_t> index_of_;
  /// Pooled storage for the per-exchange buffer-map windows.
  util::BitWindowArena window_arena_;

  /// Fork/join scratch, reused across batches. plans_ is indexed by
  /// batch position (each shard writes a disjoint range); the shard-
  /// indexed buffers merge in shard order after the join.
  std::vector<RoundPlan> plans_;
  std::vector<SessionStats> shard_stats_;
  std::vector<sim::parallel::EmissionBuffer> shard_emissions_;

  SegmentId emitted_ = 0;
  SessionStats stats_;
  metrics::ContinuityTracker continuity_;
  metrics::SeriesCollector collector_;
  net::TrafficAccount last_traffic_snapshot_;
};

/// Computes the ID-space size a trace needs: at least the configured
/// size, doubled until initial occupancy stays below ~85%.
[[nodiscard]] std::uint64_t fit_id_space(std::uint64_t configured, std::size_t nodes);

}  // namespace continu::core
