#pragma once
// Full-session driver: owns the simulator, the network, every node and
// all protocol behaviour. One Session is one run of either system
// (ContinuStreaming or the CoolStreaming baseline — chosen by
// SystemConfig::scheduler) on one trace topology.
//
// The session wires together:
//   * source emission (segment s appears at t = s/p),
//   * per-node scheduling rounds (buffer-map charge, Algorithm 1 or
//     rarest-first, pull requests, fluid-model transfers),
//   * the DHT plane (routing chains with overhearing, VoD backups,
//     Algorithm 2 on-demand retrieval, alpha adaptation),
//   * churn (graceful handover / abrupt failure / RP-bootstrapped join),
//   * metrics (per-round playback continuity, overhead tracks).

#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/node.hpp"
#include "core/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "dht/id_space.hpp"
#include "dht/ring_directory.hpp"
#include "metrics/collector.hpp"
#include "metrics/continuity.hpp"
#include "net/network.hpp"
#include "overlay/churn.hpp"
#include "overlay/rendezvous.hpp"
#include "sim/parallel/deferred.hpp"
#include "sim/parallel/executor.hpp"
#include "sim/round_scheduler.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/bitwindow_arena.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace continu::obs {
class CounterRegistry;
class PhaseProfiler;
class TraceSink;
struct ObsReport;
}  // namespace continu::obs

namespace continu::core {

/// Aggregate event counters exposed for tests, benches and examples.
struct SessionStats {
  std::uint64_t segments_emitted = 0;
  std::uint64_t segments_delivered = 0;
  std::uint64_t duplicate_deliveries = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t segments_booked = 0;
  std::uint64_t segments_refused = 0;
  std::uint64_t candidates_seen = 0;
  std::uint64_t candidates_unassigned = 0;
  std::uint64_t prefetch_launched = 0;
  std::uint64_t prefetch_succeeded = 0;
  std::uint64_t prefetch_no_replica = 0;
  std::uint64_t prefetch_suppressed = 0;  ///< case 3: N_miss > l
  std::uint64_t segments_pushed = 0;      ///< GridMedia-style push relays
  std::uint64_t dht_route_messages = 0;
  std::uint64_t dht_route_failures = 0;
  std::uint64_t joins = 0;
  std::uint64_t graceful_leaves = 0;
  std::uint64_t abrupt_leaves = 0;
  std::uint64_t neighbor_replacements = 0;
  std::uint64_t transfer_timeouts = 0;
  /// Round batches that mixed reserved ticks (sample/churn) with node
  /// rounds and therefore fell back to fully serial per-node dispatch.
  /// Zero by construction (reserved ticks ride phases of their own);
  /// a config change that accidentally lands them on node-round
  /// instants would silently forfeit every forked phase, so the
  /// degradation is counted and a test pins it at zero.
  std::uint64_t mixed_batch_fallbacks = 0;
  /// Deliveries dropped by the network's liveness filter (the receiver
  /// died while the message was in flight). Mirrored from
  /// Network::dropped() so the counter reaches the fingerprint oracle —
  /// a filter regression can't pass CI as "fewer deliveries, still
  /// deterministic".
  std::uint64_t deliveries_dropped = 0;
  /// Wire messages eaten by injected link loss (FaultPlan iid/burst
  /// loss). Cause-tagged separately from the liveness drops above so
  /// fault runs stay auditable by the determinism oracle; mirrored
  /// from Network::fault_lost().
  std::uint64_t deliveries_lost = 0;
  /// Wire messages dropped for crossing an active partition's region
  /// boundary; mirrored from Network::fault_partitioned().
  std::uint64_t deliveries_partitioned = 0;
  /// Crash-stop victims executed from the FaultPlan (each is also an
  /// abrupt_leave — this counts how many came from the fault schedule).
  std::uint64_t fault_crashes = 0;
  /// Timed-out transfers/prefetches that entered or escalated a
  /// retry-backoff window (hardening active only).
  std::uint64_t retry_backoffs = 0;
  /// Supplier blacklist activations after repeated failures
  /// (hardening active only).
  std::uint64_t suppliers_blacklisted = 0;
  /// Stall episodes: a started node transitioning from clean playback
  /// into a run of rounds with missed segments.
  std::uint64_t stall_episodes = 0;
  /// Node-rounds spent inside stall episodes (episode length mass —
  /// stall_rounds / stall_episodes is the mean recovery time in
  /// periods).
  std::uint64_t stall_rounds = 0;
};

/// Element-wise sum — merging counters across experiment replications
/// (and, inside a session, merging per-shard stats deltas in shard
/// order after a fork/join round batch).
SessionStats& operator+=(SessionStats& lhs, const SessionStats& rhs) noexcept;
[[nodiscard]] SessionStats operator+(SessionStats lhs, const SessionStats& rhs) noexcept;

/// Estimated per-node state footprint, for sizing large sessions (the
/// 100k-node goal): where the bytes live once buffers saturate.
/// Estimates count container capacity, not malloc overhead.
struct MemoryFootprint {
  std::size_t nodes = 0;           ///< nodes measured (alive and dead)
  std::size_t buffer_bytes = 0;    ///< stream buffers (BitWindow words)
  std::size_t neighbor_bytes = 0;  ///< neighbor sets + overheard lists
  std::size_t dht_bytes = 0;       ///< peer tables + VoD backup stores
  std::size_t inflight_bytes = 0;  ///< transfer/prefetch bookkeeping maps
  /// Per-container split of the section totals above (the README
  /// budget table and the footprint-regression triage read these).
  std::size_t neighbor_set_bytes = 0;  ///< of neighbor_bytes
  std::size_t overheard_bytes = 0;     ///< of neighbor_bytes
  std::size_t peer_table_bytes = 0;    ///< of dht_bytes
  std::size_t backup_bytes = 0;        ///< of dht_bytes
  std::size_t transfer_map_bytes = 0;  ///< of inflight_bytes
  std::size_t prefetch_map_bytes = 0;  ///< of inflight_bytes
  std::size_t tag_set_bytes = 0;       ///< of inflight_bytes
  std::size_t rate_table_bytes = 0;    ///< of inflight_bytes
  std::size_t retry_map_bytes = 0;     ///< of inflight_bytes (hardening)
  std::size_t blacklist_bytes = 0;     ///< of inflight_bytes (hardening)
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return buffer_bytes + neighbor_bytes + dht_bytes + inflight_bytes;
  }
  [[nodiscard]] double per_node_bytes() const noexcept {
    return nodes == 0 ? 0.0
                      : static_cast<double>(total_bytes()) /
                            static_cast<double>(nodes);
  }
};

class Session {
 public:
  Session(const SystemConfig& config, const trace::TraceSnapshot& snapshot);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  /// Runs the simulation until `duration` seconds of virtual time.
  void run(SimTime duration);

  // --- results ---------------------------------------------------------
  [[nodiscard]] const metrics::ContinuityTracker& continuity() const noexcept {
    return continuity_;
  }
  [[nodiscard]] const metrics::SeriesCollector& collector() const noexcept {
    return collector_;
  }
  [[nodiscard]] const net::TrafficAccount& traffic() const noexcept {
    return network_.traffic();
  }
  /// Aggregate counters. The drop counters' source of truth is the
  /// Network (filters run inside delivery dispatch, including worker
  /// shards; the fault injector sits on the send path); they are
  /// mirrored here lazily so the delivery hot path carries no extra
  /// write.
  [[nodiscard]] const SessionStats& stats() const noexcept {
    stats_.deliveries_dropped = network_.dropped();
    stats_.deliveries_lost = network_.fault_lost();
    stats_.deliveries_partitioned = network_.fault_partitioned();
    return stats_;
  }
  /// Current per-node state footprint (see MemoryFootprint). For static
  /// scenarios the end-of-run value is the steady-state peak: buffers
  /// saturate within one capacity window and stay full.
  [[nodiscard]] MemoryFootprint memory_footprint() const;
  /// Resolved intra-session worker thread count.
  [[nodiscard]] unsigned threads() const noexcept { return exec_.threads(); }
  /// Aggregate stats of the per-shard pooled-window arenas backing
  /// buffer-map materialization (the forked prepare-local phase gives
  /// each shard its own arena); lets tests assert the exchange path
  /// stops allocating at steady state at every thread count.
  [[nodiscard]] util::BitWindowArena::Stats window_arena_stats() const noexcept;
  /// Materializes the observability snapshot (profiler totals, drained
  /// trace, settled counters plus session/engine/network mirrors).
  /// Returns nullptr when SystemConfig::obs left every pillar off.
  /// Settling drains the counter lanes, so call once, after run().
  [[nodiscard]] std::shared_ptr<const obs::ObsReport> obs_report();

  // --- introspection -----------------------------------------------------
  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] const dht::IdSpace& space() const noexcept { return space_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] Node& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] const Node& node(std::size_t index) const { return *nodes_.at(index); }
  [[nodiscard]] SegmentId emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::optional<std::size_t> index_of(NodeId id) const;
  [[nodiscard]] const dht::RingDirectory& directory() const noexcept { return directory_; }

  /// Source node (session index 0).
  [[nodiscard]] const Node& source() const { return *nodes_.front(); }

 private:
  struct PrefetchOp {
    std::size_t origin = 0;
    SegmentId segment = kInvalidSegment;
    unsigned pending_replies = 0;
    double best_rate = -1.0;
    std::optional<std::size_t> best_owner;
  };

  // --- construction -----------------------------------------------------
  void build_nodes(const trace::TraceSnapshot& snapshot);
  void assign_initial_neighbors(const trace::TraceSnapshot& snapshot);
  void populate_initial_dht();
  void start_processes();
  [[nodiscard]] double sample_rate(double lo, double hi, bool skewed);
  [[nodiscard]] double sample_ping();

  // --- per-round behaviour ------------------------------------------------
  //
  // A node round is split into four phases at the RoundScheduler batch
  // boundary (all ticks due at one instant):
  //   prepare-local — per-node maintenance that touches ONLY the node's
  //             own state (supply folding, transfer/prefetch timeout
  //             sweep, playback, bookkeeping compaction, the receive
  //             side of the buffer-map exchange); FORKED across the
  //             executor's shards. Anything it may not apply from a
  //             worker — stats deltas, rate decays, playback starts,
  //             wire-cost tallies — is recorded in a per-shard
  //             PrepareShard and settled at the join, in shard order.
  //             Draws come from per-tick RNG streams, never the shared
  //             session RNG.
  //   prepare-link — overlay link maintenance (neighbor repair), which
  //             mutates SHARED link state reciprocally; serial, batch
  //             order, after the prepare-local join.
  //   plan    — the expensive read-only half (candidate building,
  //             Algorithm 1 / rarest-first, prefetch target selection);
  //             forked, stats deltas and event emissions buffered per
  //             shard.
  //   commit  — applies plans (transfer bookkeeping, network sends, DHT
  //             prefetch launches); serial, batch order, after the
  //             shard buffers merged in shard order.
  // The same four-phase path runs at every thread count, so results
  // are bit-identical for threads = 1, 2, 4, 8.
  //
  // Data-ownership contract of the forked prepare-local phase: a shard
  // writes only the states of its own nodes (buffers, round stats,
  // in-flight tables, neighbor supply fields, overheard lists) plus its
  // private PrepareShard. Cross-node reads are limited to state FROZEN
  // for the whole batch: liveness flags and the id→index map (mutated
  // only by churn ticks, which batch alone), neighbor-set MEMBERSHIP
  // (repair runs serially afterwards), other nodes' buffer windows
  // (mutated only by delivery events) and started() flags (playback
  // starts are deferred to the join precisely so these stay frozen).
  void on_source_emit();
  /// RoundScheduler dispatch: `user` is a node index or a reserved tag.
  void on_round_tick(std::size_t user);
  void on_node_round(std::size_t index);
  /// Batch dispatch (RoundScheduler batch callback).
  void on_round_batch(const std::vector<std::size_t>& users);
  void run_round_batch(const std::vector<std::size_t>& users);

  /// Plan computed by the parallel phase of a round batch.
  struct RoundPlan {
    bool scheduled = false;  ///< sched holds a valid plan
    ScheduleResult sched;
    std::vector<SegmentId> prefetch;  ///< quota-capped launch list
  };
  struct PrefetchPlan {
    std::vector<SegmentId> launch;
    bool suppressed = false;  ///< case 3: N_miss > l
  };

  /// Per-shard scratch for the forked prepare-local sub-phase:
  /// everything a worker shard may not apply to shared state is
  /// recorded here and settled by apply_prepare_shard() at the join,
  /// in shard order — so the applied sequence is a pure function of
  /// (batch, shard structure), never of the thread count.
  struct PrepareShard {
    /// (node index, supplier) whose rate estimate decays after a
    /// transfer timeout, in sweep order.
    std::vector<std::pair<std::uint32_t, NodeId>> rate_decays;
    /// (node index, anchor segment) playback starts decided this
    /// batch. Deferred so every shard reads batch-start started()
    /// flags — the read-only snapshot contract of prepare-local.
    std::vector<std::pair<std::uint32_t, SegmentId>> playback_starts;
    /// Wire tallies for the exchange's emission side; bulk-charged at
    /// the join (bit-identical to per-message charging).
    std::uint64_t buffer_map_messages = 0;
    std::uint64_t membership_messages = 0;
    /// Pooled windows for this shard's buffer-map materializations
    /// (arenas are per shard so checkouts never contend or race).
    util::BitWindowArena arena;
    void reset() noexcept {
      rate_decays.clear();
      playback_starts.clear();
      buffer_map_messages = 0;
      membership_messages = 0;
    }
  };

  /// `obs_shard` routes trace events to the recording worker's ring
  /// (0 on the serial fallback path); unused when tracing is off.
  void round_prepare_local(std::size_t index, SessionStats& stats,
                           PrepareShard& shard, std::size_t obs_shard);
  void round_prepare_link(std::size_t index);
  /// Settles one shard's deferred prepare records: rate decays, then
  /// playback starts (record order), then the bulk wire charges.
  void apply_prepare_shard(PrepareShard& shard);
  void round_plan(std::size_t index, RoundPlan& plan, SessionStats& stats,
                  sim::parallel::EmissionBuffer& emissions);
  void round_commit(std::size_t index, RoundPlan& plan);

  void repair_neighbors(Node& node);
  void do_playback(Node& node);
  /// Read-only startup decision (forked): returns the anchor segment
  /// when the node should start playback this round. The start itself
  /// is applied at the join.
  [[nodiscard]] std::optional<SegmentId> plan_playback_start(const Node& node) const;
  /// Forked receive half of the per-round buffer-map exchange:
  /// window materialization from the shard arena plus the membership
  /// piggyback (own-state writes only); wire costs are tallied into
  /// `shard` and charged at the join.
  void exchange_buffer_maps(Node& node, util::Rng& tick_rng, PrepareShard& shard);
  /// Read-only planning half of a scheduling round. Returns false when
  /// nothing is schedulable; `seen` reports candidates considered.
  [[nodiscard]] bool plan_scheduling(const Node& node, double budget_fraction,
                                     ScheduleResult& out, std::uint64_t& seen) const;
  void commit_scheduling(Node& node, const ScheduleResult& result);
  /// Fused plan+commit, for the mid-round top-up retry (event context).
  void run_scheduling(Node& node, double budget_fraction = 1.0);
  /// Read-only prefetch target selection; `planned` is this round's
  /// scheduling plan (its bookings are not yet in transfer_pending).
  [[nodiscard]] PrefetchPlan plan_prefetch(const Node& node,
                                           const ScheduleResult* planned) const;
  void refresh_dht_peers(Node& node);
  /// Draws a round phase and returns the ABSOLUTE first-tick instant:
  /// the next occurrence of the drawn bucket's grid time (joiners merge
  /// bit-exactly into an existing cohort's batch). See
  /// SystemConfig::round_phase_buckets.
  [[nodiscard]] SimTime round_phase(util::Rng& rng) const;
  /// GridMedia-style relay: push a freshly received segment onward.
  void push_relay(Node& node, SegmentId id);

  // --- transfers -----------------------------------------------------------
  //
  // The transfer-plane handlers run through the network's sharded
  // delivery path: in quantized mode they may execute on a worker
  // shard (receiver-shard ownership contract — own-node writes plus
  // the per-shard stats scratch behind ctx.scratch(); sends, relays
  // and shared-RNG work deferred through the context), in continuous
  // mode the context is immediate and they execute exactly as the
  // serial forms did. The DHT/prefetch chain and churn handover stay
  // on the serial send path this PR.
  void handle_segment_request(std::size_t supplier, std::size_t requester,
                              std::vector<SegmentId> ids, net::DeliveryContext& ctx);
  /// Books the supplier's uplink inline (supplier-own state) and
  /// defers the wire send through `ctx` when given (worker shards must
  /// not touch the queue); ctx == nullptr sends directly (serial
  /// callers: push relays at the join, the DHT prefetch path).
  void start_fluid_transfer(std::size_t supplier, std::size_t requester, SegmentId id,
                            net::MessageType type, TransferKind kind,
                            net::DeliveryContext* ctx = nullptr);
  void deliver_segment(std::size_t receiver, SegmentId id, TransferKind kind,
                       NodeId supplier, double transfer_duration,
                       net::DeliveryContext& ctx);

  // --- DHT / prefetch -------------------------------------------------------
  void launch_prefetch(std::size_t origin, SegmentId segment);
  void route_hop(std::size_t current, NodeId target, std::size_t origin,
                 const std::shared_ptr<PrefetchOp>& op, unsigned hops);
  void finish_locate(std::size_t terminal, const std::shared_ptr<PrefetchOp>& op);
  void on_prefetch_reply(const std::shared_ptr<PrefetchOp>& op, std::size_t owner,
                         bool has_segment, double rate);
  void handle_prefetch_request(std::size_t owner, std::size_t origin, SegmentId segment);

  // --- churn / faults -----------------------------------------------------
  void on_churn_tick();
  void kill_node(std::size_t index, bool graceful);
  void do_join();
  /// Crash-stop event from the FaultPlan: `fraction` of the alive
  /// non-source population fails abruptly (no DHT handover — the
  /// ChurnPlan::abrupt_leavers path), victims drawn from a for_tick
  /// stream keyed on the event instant.
  void on_fault_crash(double fraction);
  /// Sharded in-flight abandon sweep after a batch of deaths (shared
  /// between churn ticks and crash-stop events).
  void drop_transfers_from_dead(const std::vector<NodeId>& dead_ids);

  // --- metrics -----------------------------------------------------------
  void on_sample_tick();

  // --- observability -------------------------------------------------------
  /// Serially grows the obs layer's per-shard structures (trace rings,
  /// counter lanes) before a fork whose workers will record. No-op
  /// when the corresponding pillar is off.
  void obs_ensure_shards(std::size_t shards);

  // --- helpers -----------------------------------------------------------
  [[nodiscard]] bool alive_index(std::size_t index) const;
  [[nodiscard]] std::optional<std::size_t> alive_node_by_id(NodeId id) const;
  [[nodiscard]] bool in_time(const Node& node, SegmentId id, SimTime now) const;
  void store_backup_if_responsible(Node& node, SegmentId id);

  SystemConfig config_;
  dht::IdSpace space_;
  sim::Simulator sim_;
  net::Network network_;
  /// Compiled FaultPlan (null when the plan is inert — the network
  /// then never consults it and the send path is bit-identical to a
  /// fault-free build).
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  /// Cached config_.retry.enabled: hardening consults ride hot
  /// scheduling loops, and the zero-fault path must stay branch-cheap.
  bool hardened_ = false;
  dht::RingDirectory directory_;
  overlay::RendezvousServer rp_;
  overlay::ChurnPlanner churn_;
  util::Rng rng_;
  /// Fork/join worker pool for round batches and per-period sweeps.
  sim::parallel::ParallelExecutor exec_;

  /// Reserved RoundScheduler tags for the session-wide per-period
  /// ticks batched alongside the node rounds.
  static constexpr std::size_t kSampleTickUser = static_cast<std::size_t>(-1);
  static constexpr std::size_t kChurnTickUser = static_cast<std::size_t>(-2);

  std::vector<std::unique_ptr<Node>> nodes_;
  /// All scheduling-period ticks — node rounds, metric sampling, churn
  /// — batched behind one pending simulator event. Handles are indexed
  /// by session index; join/leave is an O(1) add/remove.
  sim::RoundScheduler rounds_;
  std::vector<sim::RoundScheduler::Handle> round_handles_;
  std::unique_ptr<sim::PeriodicProcess> emit_process_;
  util::FlatMap<NodeId, std::size_t> index_of_;

  /// Fork/join scratch, reused across batches. plans_ is indexed by
  /// batch position (each shard writes a disjoint range); the shard-
  /// indexed buffers merge in shard order after the join. The prepare
  /// shards persist across batches so their arena pools stay warm
  /// (steady state allocates nothing); shard 0 doubles as the scratch
  /// for the serial mixed-batch fallback path.
  std::vector<RoundPlan> plans_;
  std::vector<SessionStats> shard_stats_;
  std::vector<sim::parallel::EmissionBuffer> shard_emissions_;
  std::vector<PrepareShard> prepare_shards_;
  /// Per-shard stats deltas for forked delivery-bucket dispatches
  /// (quantized mode). Separate from shard_stats_ on purpose: a bucket
  /// proxy is an ordinary event and never overlaps a round batch, but
  /// sharing the buffer would couple two unrelated fork/join sites.
  std::vector<SessionStats> delivery_shard_stats_;

  /// Deterministic observability (null = the pillar is disabled, which
  /// leaves only pointer checks on the hot paths). Obs-owned state is
  /// the ONLY state these ever write — no RNG draws, no node or queue
  /// mutations — so enabling them cannot move a fingerprint; CI diffs
  /// scenario fingerprints obs-on vs obs-off at threads 1 and 4.
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::CounterRegistry> obs_counters_;
  /// Registry ids for the session's per-shard counters (valid only
  /// when obs_counters_ is set).
  std::uint32_t ctr_prepare_nodes_ = 0;
  std::uint32_t ctr_plan_nodes_ = 0;
  std::uint32_t ctr_pull_requests_ = 0;
  std::uint32_t ctr_segments_delivered_ = 0;
  std::uint32_t ctr_stall_transitions_ = 0;

  SegmentId emitted_ = 0;
  /// Mutable: stats() lazily mirrors Network::dropped() (see stats()).
  mutable SessionStats stats_;
  metrics::ContinuityTracker continuity_;
  metrics::SeriesCollector collector_;
  net::TrafficAccount last_traffic_snapshot_;
};

/// Computes the ID-space size a trace needs: at least the configured
/// size, doubled until initial occupancy stays below ~85%.
[[nodiscard]] std::uint64_t fit_id_space(std::uint64_t configured, std::size_t nodes);

}  // namespace continu::core
