#pragma once
// Urgent Line (paper Section 4.3, Figure 4 and equations 4, 8-9).
//
// The buffer region [id_head, id_head + alpha*B] is "urgent": any
// segment still missing there is predicted to be missed by the gossip
// scheduler and becomes a pre-fetch candidate. alpha adapts online:
//   * initial / lower bound: alpha = (p/B) * max(tau, t_fetch)  (eq. 9)
//   * a pre-fetched segment that arrives after its deadline means the
//     line is too short  -> alpha += p*t_hop/B   (case 1, overdue)
//   * a pre-fetched segment that gossip also delivers in time means the
//     line is too long   -> alpha -= p*t_hop/B   (case 2, repeated)

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace continu::core {

struct UrgentLineConfig {
  std::uint64_t playback_rate = 10;   ///< p
  std::size_t buffer_capacity = 600;  ///< B
  double scheduling_period = 1.0;     ///< tau (s)
  double t_fetch = 0.4;               ///< expected on-demand fetch time (s)
  double t_hop = 0.05;                ///< average one-hop latency (s)
};

class UrgentLine {
 public:
  explicit UrgentLine(const UrgentLineConfig& config);

  /// Current urgent ratio alpha in [lower_bound, 1].
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// The eq. 9 lower bound (also the initial value).
  [[nodiscard]] double lower_bound() const noexcept { return lower_bound_; }

  /// id_urgent = id_head + alpha * B (eq. 4).
  [[nodiscard]] SegmentId urgent_id(SegmentId id_head) const noexcept;

  /// Case 1: a pre-fetched segment arrived past its deadline.
  void on_overdue_prefetch() noexcept;

  /// Case 2: gossip delivered a pre-fetch-tagged segment in time.
  void on_repeated_prefetch() noexcept;

  /// Adaptation step p * t_hop / B.
  [[nodiscard]] double step() const noexcept { return step_; }

  [[nodiscard]] std::uint64_t overdue_events() const noexcept { return overdue_; }
  [[nodiscard]] std::uint64_t repeated_events() const noexcept { return repeated_; }

 private:
  void clamp() noexcept;

  double alpha_;
  double lower_bound_;
  double step_;
  std::size_t capacity_;
  std::uint64_t overdue_ = 0;
  std::uint64_t repeated_ = 0;
};

/// Pre-fetch trigger decision (Section 4.3 cases): given the number of
/// predicted-missed segments and the per-invocation cap l, returns how
/// many to fetch — 0 when n_miss == 0 (case 1) or n_miss > l (case 3,
/// to avoid pre-fetch storms), n_miss otherwise (case 2).
[[nodiscard]] std::size_t prefetch_quota(std::size_t n_miss, std::size_t limit) noexcept;

}  // namespace continu::core
