#include "core/priority.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::core {

namespace {
[[nodiscard]] double best_rate(const Candidate& candidate) {
  double best = 0.0;
  for (const auto& offer : candidate.offers) {
    best = std::max(best, offer.rate);
  }
  return best;
}
}  // namespace

double expected_slack(const Candidate& candidate, const PriorityInputs& in) {
  if (candidate.offers.empty()) {
    throw std::invalid_argument("expected_slack: candidate without suppliers");
  }
  const double r = best_rate(candidate);
  if (r <= 0.0) return -1.0;
  const double distance =
      static_cast<double>(candidate.id - in.play_point) / static_cast<double>(in.playback_rate);
  return distance - 1.0 / r;
}

double urgency(const Candidate& candidate, const PriorityInputs& in, double max_urgency) {
  if (in.play_point == kInvalidSegment) return 0.0;  // playback not started
  const double t = expected_slack(candidate, in);
  if (t <= 0.0) return max_urgency;
  return std::min(1.0 / t, max_urgency);
}

double rarity(const Candidate& candidate, const PriorityInputs& in) {
  if (candidate.offers.empty()) {
    throw std::invalid_argument("rarity: candidate without suppliers");
  }
  if (in.buffer_capacity == 0) {
    throw std::invalid_argument("rarity: zero buffer capacity");
  }
  double product = 1.0;
  for (const auto& offer : candidate.offers) {
    const auto pos = std::clamp<std::size_t>(offer.buffer_position, 1, in.buffer_capacity);
    product *= static_cast<double>(pos) / static_cast<double>(in.buffer_capacity);
  }
  return product;
}

double priority(const Candidate& candidate, const PriorityInputs& in) {
  double score = std::max(urgency(candidate, in), rarity(candidate, in));
  if (in.rarest_weight > 0.0) {
    score = std::max(score, in.rarest_weight * rarest_first_score(candidate));
  }
  return score;
}

double rarest_first_score(const Candidate& candidate) {
  if (candidate.offers.empty()) {
    throw std::invalid_argument("rarest_first_score: candidate without suppliers");
  }
  return 1.0 / static_cast<double>(candidate.offers.size());
}

}  // namespace continu::core
