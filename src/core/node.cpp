#include "core/node.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "analysis/continuity_model.hpp"

namespace continu::core {

namespace {
[[nodiscard]] UrgentLineConfig urgent_config(const SystemConfig& config) {
  UrgentLineConfig ul;
  ul.playback_rate = config.playback_rate;
  ul.buffer_capacity = config.buffer_capacity;
  ul.scheduling_period = config.scheduling_period;
  ul.t_hop = config.t_hop_estimate;
  ul.t_fetch =
      analysis::expected_fetch_time_s(config.expected_nodes, config.t_hop_estimate);
  return ul;
}
}  // namespace

Node::Node(NodeId id, std::size_t session_index, const SystemConfig& config,
           const dht::IdSpace& space, double inbound_rate, double outbound_rate,
           double ping_ms)
    : id_(id),
      session_index_(session_index),
      ping_ms_(ping_ms),
      inbound_rate_(inbound_rate),
      outbound_rate_(outbound_rate),
      buffer_(config.buffer_capacity, config.playback_rate, config.stall_patience),
      // Partnerships are bidirectional TCP connections over the overlay's
      // undirected edges: a node initiates M but also accepts incoming
      // links, so the set is sized with headroom (degree ~ M on average,
      // bounded by 2M).
      neighbors_(2 * config.connected_neighbors),
      dht_peers_(space, id),
      overheard_(config.overheard_capacity),
      backup_(space, id, config.backup_replicas),
      rates_(/*initial_rate=*/static_cast<double>(config.playback_rate)),
      urgent_line_(urgent_config(config)) {}

double Node::available_sending_rate(SimTime now) const noexcept {
  const double backlog_s = std::max(0.0, uplink_free_at_ - now);
  return outbound_rate_ / (1.0 + backlog_s);
}

std::uint32_t Node::seg_key(SegmentId id) noexcept {
  assert(id >= 0 && id <= static_cast<SegmentId>(0xffffffffu));
  return static_cast<std::uint32_t>(id);
}

bool Node::begin_transfer(SegmentId id, TransferKind kind, NodeId supplier, SimTime now) {
  const auto [it, inserted] = inflight_.try_emplace(
      seg_key(id),
      detail::PackedTransfer{static_cast<float>(now), supplier, kind});
  (void)it;
  return inserted;
}

std::optional<InflightTransfer> Node::end_transfer(SegmentId id) {
  const auto it = inflight_.find(seg_key(id));
  if (it == inflight_.end()) return std::nullopt;
  const InflightTransfer record{it->second.kind, it->second.supplier,
                                static_cast<SimTime>(it->second.requested_at)};
  inflight_.erase(it);
  return record;
}

bool Node::transfer_pending(SegmentId id) const {
  return inflight_.contains(seg_key(id));
}

bool Node::begin_prefetch(SegmentId id, SimTime now) {
  return prefetch_pending_.try_emplace(seg_key(id), static_cast<float>(now)).second;
}

void Node::end_prefetch(SegmentId id) { prefetch_pending_.erase(seg_key(id)); }

bool Node::prefetch_pending(SegmentId id) const {
  return prefetch_pending_.contains(seg_key(id));
}

bool Node::prefetch_tagged(SegmentId id) const {
  return prefetch_tags_.contains(seg_key(id));
}

void Node::tag_prefetched(SegmentId id) { prefetch_tags_.insert(seg_key(id)); }

void Node::expire_tags(SegmentId horizon) {
  // Safe under the FlatSet erase-during-iteration contract: the
  // predicate is idempotent, so a wrap-displaced revisit is harmless.
  const std::uint32_t bound =
      horizon <= 0 ? 0u : seg_key(horizon);
  for (auto it = prefetch_tags_.begin(); it != prefetch_tags_.end();) {
    if (*it < bound) {
      it = prefetch_tags_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<SegmentId> Node::drop_transfers_from(NodeId supplier) {
  std::vector<SegmentId> dropped;
  for (const auto& [key, record] : inflight_) {
    if (record.supplier == supplier) dropped.push_back(static_cast<SegmentId>(key));
  }
  for (const SegmentId id : dropped) inflight_.erase(seg_key(id));
  return dropped;
}

namespace {
/// An expired retry record linger: once a backoff window has been over
/// this long, the consecutive-failure streak is considered broken and
/// the attempt counter resets (the record is swept). Keeps the table
/// bounded by recent failures instead of stream history.
constexpr SimTime kRetryRecordLinger = 10.0;

[[nodiscard]] float saturating_backoff(double base, double cap, unsigned step) {
  // base * 2^step without overflow drama; step is small (<= 32).
  double window = base;
  for (unsigned i = 0; i < step && window < cap; ++i) window *= 2.0;
  return static_cast<float>(std::min(window, cap));
}
}  // namespace

void Node::note_retry_failure(std::uint32_t key, SimTime now,
                              const fault::RetryPolicy& policy) {
  auto [it, inserted] = retry_state_.try_emplace(key, detail::PackedRetry{});
  auto& record = it->second;
  if (record.attempts < policy.max_attempts &&
      record.attempts < std::numeric_limits<std::uint8_t>::max()) {
    ++record.attempts;
  }
  record.eligible_at = static_cast<float>(now) +
                       saturating_backoff(policy.backoff_base, policy.backoff_cap,
                                          record.attempts - 1u);
  (void)inserted;
}

bool Node::retry_blocked(SegmentId id, SimTime now) const {
  const auto it = retry_state_.find(seg_key(id));
  return it != retry_state_.end() &&
         now < static_cast<SimTime>(it->second.eligible_at);
}

void Node::clear_retry(SegmentId id) { retry_state_.erase(seg_key(id)); }

bool Node::note_supplier_failure(NodeId supplier, SimTime now,
                                 const fault::RetryPolicy& policy) {
  auto [it, inserted] = supplier_strikes_.try_emplace(supplier,
                                                      detail::PackedStrike{});
  auto& record = it->second;
  (void)inserted;
  // Evaluated BEFORE the increment: below threshold `until` is only a
  // freshness stamp, not a blacklist window, so the threshold-crossing
  // strike must still report "newly blacklisted".
  const bool was_blacklisted = record.strikes >= policy.blacklist_strikes &&
                               now < static_cast<SimTime>(record.until);
  if (record.strikes < std::numeric_limits<std::uint8_t>::max()) ++record.strikes;
  if (record.strikes < policy.blacklist_strikes) {
    // Sub-threshold: `until` is the freshness stamp — the slate is
    // wiped (record swept) once the window passes without new strikes.
    record.until = static_cast<float>(now + policy.blacklist_base);
    return false;
  }
  record.until = static_cast<float>(now) +
                 saturating_backoff(policy.blacklist_base, policy.blacklist_cap,
                                    record.strikes - policy.blacklist_strikes);
  return !was_blacklisted;
}

void Node::note_supplier_success(NodeId supplier) {
  supplier_strikes_.erase(supplier);
}

bool Node::supplier_blacklisted(NodeId supplier, SimTime now,
                                const fault::RetryPolicy& policy) const {
  const auto it = supplier_strikes_.find(supplier);
  return it != supplier_strikes_.end() &&
         it->second.strikes >= policy.blacklist_strikes &&
         now < static_cast<SimTime>(it->second.until);
}

void Node::compact_bookkeeping(SimTime now, SegmentId horizon) {
  const std::uint32_t bound = horizon <= 0 ? 0u : seg_key(horizon);
  // Both sweeps are within the FlatMap erase-during-iteration contract:
  // the predicates are idempotent and carry no side effects.
  for (auto it = retry_state_.begin(); it != retry_state_.end();) {
    const bool behind_window = it->first < bound;
    const bool streak_broken =
        static_cast<SimTime>(it->second.eligible_at) + kRetryRecordLinger < now;
    it = behind_window || streak_broken ? retry_state_.erase(it) : ++it;
  }
  for (auto it = supplier_strikes_.begin(); it != supplier_strikes_.end();) {
    it = static_cast<SimTime>(it->second.until) < now ? supplier_strikes_.erase(it)
                                                      : ++it;
  }
  inflight_.maybe_shrink();
  prefetch_pending_.maybe_shrink();
  prefetch_tags_.maybe_shrink();
  retry_state_.maybe_shrink();
  supplier_strikes_.maybe_shrink();
}

}  // namespace continu::core
