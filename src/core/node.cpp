#include "core/node.hpp"

#include <algorithm>
#include <cassert>

#include "analysis/continuity_model.hpp"

namespace continu::core {

namespace {
[[nodiscard]] UrgentLineConfig urgent_config(const SystemConfig& config) {
  UrgentLineConfig ul;
  ul.playback_rate = config.playback_rate;
  ul.buffer_capacity = config.buffer_capacity;
  ul.scheduling_period = config.scheduling_period;
  ul.t_hop = config.t_hop_estimate;
  ul.t_fetch =
      analysis::expected_fetch_time_s(config.expected_nodes, config.t_hop_estimate);
  return ul;
}
}  // namespace

Node::Node(NodeId id, std::size_t session_index, const SystemConfig& config,
           const dht::IdSpace& space, double inbound_rate, double outbound_rate,
           double ping_ms)
    : id_(id),
      session_index_(session_index),
      ping_ms_(ping_ms),
      inbound_rate_(inbound_rate),
      outbound_rate_(outbound_rate),
      buffer_(config.buffer_capacity, config.playback_rate, config.stall_patience),
      // Partnerships are bidirectional TCP connections over the overlay's
      // undirected edges: a node initiates M but also accepts incoming
      // links, so the set is sized with headroom (degree ~ M on average,
      // bounded by 2M).
      neighbors_(2 * config.connected_neighbors),
      dht_peers_(space, id),
      overheard_(config.overheard_capacity),
      backup_(space, id, config.backup_replicas),
      rates_(/*initial_rate=*/static_cast<double>(config.playback_rate)),
      urgent_line_(urgent_config(config)) {}

double Node::available_sending_rate(SimTime now) const noexcept {
  const double backlog_s = std::max(0.0, uplink_free_at_ - now);
  return outbound_rate_ / (1.0 + backlog_s);
}

std::uint32_t Node::seg_key(SegmentId id) noexcept {
  assert(id >= 0 && id <= static_cast<SegmentId>(0xffffffffu));
  return static_cast<std::uint32_t>(id);
}

bool Node::begin_transfer(SegmentId id, TransferKind kind, NodeId supplier, SimTime now) {
  const auto [it, inserted] = inflight_.try_emplace(
      seg_key(id),
      detail::PackedTransfer{static_cast<float>(now), supplier, kind});
  (void)it;
  return inserted;
}

std::optional<InflightTransfer> Node::end_transfer(SegmentId id) {
  const auto it = inflight_.find(seg_key(id));
  if (it == inflight_.end()) return std::nullopt;
  const InflightTransfer record{it->second.kind, it->second.supplier,
                                static_cast<SimTime>(it->second.requested_at)};
  inflight_.erase(it);
  return record;
}

bool Node::transfer_pending(SegmentId id) const {
  return inflight_.contains(seg_key(id));
}

bool Node::begin_prefetch(SegmentId id, SimTime now) {
  return prefetch_pending_.try_emplace(seg_key(id), static_cast<float>(now)).second;
}

void Node::end_prefetch(SegmentId id) { prefetch_pending_.erase(seg_key(id)); }

bool Node::prefetch_pending(SegmentId id) const {
  return prefetch_pending_.contains(seg_key(id));
}

bool Node::prefetch_tagged(SegmentId id) const {
  return prefetch_tags_.contains(seg_key(id));
}

void Node::tag_prefetched(SegmentId id) { prefetch_tags_.insert(seg_key(id)); }

void Node::expire_tags(SegmentId horizon) {
  // Safe under the FlatSet erase-during-iteration contract: the
  // predicate is idempotent, so a wrap-displaced revisit is harmless.
  const std::uint32_t bound =
      horizon <= 0 ? 0u : seg_key(horizon);
  for (auto it = prefetch_tags_.begin(); it != prefetch_tags_.end();) {
    if (*it < bound) {
      it = prefetch_tags_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<SegmentId> Node::drop_transfers_from(NodeId supplier) {
  std::vector<SegmentId> dropped;
  for (const auto& [key, record] : inflight_) {
    if (record.supplier == supplier) dropped.push_back(static_cast<SegmentId>(key));
  }
  for (const SegmentId id : dropped) inflight_.erase(seg_key(id));
  return dropped;
}

}  // namespace continu::core
