#pragma once
// Overlay topology derived from a trace snapshot.
//
// Streaming needs more connectivity than the crawled edge set provides,
// so — exactly as the paper does — random edges are added until every
// node has at least M connected neighbors. The topology also exposes the
// latency estimator the paper uses: the physical latency between two
// overlay nodes is the difference of their central-crawler ping times.

#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace continu::trace {

class Topology {
 public:
  /// Builds adjacency from the snapshot and augments with random edges
  /// until min_degree(M) holds everywhere (or the graph is complete).
  Topology(const TraceSnapshot& snapshot, std::size_t min_degree, util::Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }

  /// Neighbor trace-ids of `node` (sorted ascending).
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::uint32_t node) const;

  [[nodiscard]] double average_degree() const noexcept;
  [[nodiscard]] std::size_t min_degree() const noexcept;
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Latency estimate between two overlay nodes (paper Section 5.2):
  /// |ping_a - ping_b| clamped below by `floor_ms`. Symmetric.
  [[nodiscard]] double latency_ms(std::uint32_t a, std::uint32_t b) const;

  /// Ping time of one node (used when a latency to "anywhere" is needed,
  /// e.g. the RP server).
  [[nodiscard]] double ping_ms(std::uint32_t node) const;

  /// True iff the undirected edge exists.
  [[nodiscard]] bool has_edge(std::uint32_t a, std::uint32_t b) const;

  /// Default latency floor: two hosts behind the same modem still need
  /// a few milliseconds.
  static constexpr double kLatencyFloorMs = 5.0;

 private:
  void add_edge(std::uint32_t a, std::uint32_t b);

  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<double> ping_ms_;
};

}  // namespace continu::trace
