#pragma once
// Overlay trace snapshots in the style of the clip2.com Gnutella crawls
// the paper evaluated on (Dec 2000 - Jun 2001; the site is long gone).
//
// The paper consumes only each node's ID, IP and ping time (measured
// from a central crawler) plus the overlay edge set, and then adds
// random edges until every node has M connected neighbors because the
// crawled average degree (< 1 to 3.5) is too small for streaming. The
// substitution we make (synthetic snapshots with matching shape) is
// documented in DESIGN.md section 2.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace continu::trace {

/// One crawled host record.
struct TraceNode {
  std::uint32_t trace_id = 0;   ///< crawl-assigned id (dense, 0-based)
  std::uint32_t ipv4 = 0;       ///< host address (opaque; kept for realism)
  double ping_ms = 0.0;         ///< ping time from the central crawler
  double speed_kbps = 0.0;      ///< advertised link speed from the crawl
};

/// Undirected overlay edge between trace ids.
using TraceEdge = std::pair<std::uint32_t, std::uint32_t>;

/// A full crawl snapshot: hosts + overlay edges.
class TraceSnapshot {
 public:
  TraceSnapshot() = default;
  TraceSnapshot(std::vector<TraceNode> nodes, std::vector<TraceEdge> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<TraceNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<TraceEdge>& edges() const noexcept { return edges_; }

  /// Average undirected degree 2|E|/|V| (the crawls report < 1 to 3.5).
  [[nodiscard]] double average_degree() const noexcept;

  /// Serializes as a line-oriented text format:
  ///   "node <id> <ipv4> <ping_ms> <speed_kbps>" / "edge <a> <b>".
  void save(std::ostream& out) const;
  [[nodiscard]] static TraceSnapshot load(std::istream& in);

  /// Convenience file wrappers.
  void save_file(const std::string& path) const;
  [[nodiscard]] static TraceSnapshot load_file(const std::string& path);

 private:
  void validate() const;

  std::vector<TraceNode> nodes_;
  std::vector<TraceEdge> edges_;
};

/// Formats an IPv4 address for display ("a.b.c.d").
[[nodiscard]] std::string format_ipv4(std::uint32_t ip);

}  // namespace continu::trace
