#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace continu::trace {

namespace {

constexpr double kMaxAverageDegree = 3.5;

/// Advertised modem/DSL speeds seen in era crawls.
constexpr double kSpeedTable[] = {28.8, 33.6, 56.0, 128.0, 384.0, 768.0, 1544.0};

[[nodiscard]] double sample_ping_ms(util::Rng& rng, bool broadband) {
  // Calibrated so the paper's latency estimator (|ping_a - ping_b|)
  // yields an average one-hop latency t_hop ~ 50-70 ms, matching the
  // paper's own measurement on its traces.
  if (broadband) {
    // Cable/DSL/university hosts.
    return std::min(15.0 + rng.next_exponential(1.0 / 20.0), 100.0);
  }
  // Modem hosts.
  return std::min(100.0 + rng.next_exponential(1.0 / 50.0), 300.0);
}

[[nodiscard]] std::uint32_t sample_ipv4(util::Rng& rng) {
  // Avoid 0.x and 255.x for cosmetic realism; addresses are opaque.
  const auto a = static_cast<std::uint32_t>(rng.next_int(1, 223));
  const auto b = static_cast<std::uint32_t>(rng.next_int(0, 255));
  const auto c = static_cast<std::uint32_t>(rng.next_int(0, 255));
  const auto d = static_cast<std::uint32_t>(rng.next_int(1, 254));
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace

TraceSnapshot generate_snapshot(const GeneratorConfig& config) {
  if (config.node_count < 2) {
    throw std::invalid_argument("generate_snapshot: need at least 2 nodes");
  }
  util::Rng rng(config.seed);
  const std::size_t n = config.node_count;

  std::vector<TraceNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceNode node;
    node.trace_id = static_cast<std::uint32_t>(i);
    node.ipv4 = sample_ipv4(rng);
    const bool broadband = rng.next_bool(config.broadband_fraction);
    node.ping_ms = sample_ping_ms(rng, broadband);
    if (broadband) {
      node.speed_kbps = kSpeedTable[rng.next_int(3, 6)];
    } else {
      node.speed_kbps = kSpeedTable[rng.next_int(0, 2)];
    }
    nodes.push_back(node);
  }

  // Heavy-tailed stub counts scaled to hit the target average degree,
  // paired off chemistry-model style (configuration model without
  // self-loops or multi-edges).
  const double avg_degree = std::clamp(config.average_degree, 0.0, kMaxAverageDegree);
  std::vector<double> raw(n);
  double raw_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    raw[i] = rng.next_pareto(1.0, config.degree_pareto_shape);
    raw_sum += raw[i];
  }
  const double target_stubs = avg_degree * static_cast<double>(n);
  std::vector<std::uint32_t> stubs;
  stubs.reserve(static_cast<std::size_t>(target_stubs) + n);
  for (std::size_t i = 0; i < n; ++i) {
    const double share = raw[i] / raw_sum * target_stubs;
    const auto count = static_cast<std::size_t>(share + rng.next_double());
    for (std::size_t s = 0; s < count; ++s) {
      stubs.push_back(static_cast<std::uint32_t>(i));
    }
  }
  rng.shuffle(stubs);

  std::set<TraceEdge> edge_set;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    std::uint32_t a = stubs[i];
    std::uint32_t b = stubs[i + 1];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edge_set.insert({a, b});
  }

  std::vector<TraceEdge> edges(edge_set.begin(), edge_set.end());
  return TraceSnapshot(std::move(nodes), std::move(edges));
}

std::vector<TraceSnapshot> generate_corpus(std::size_t count, std::size_t min_nodes,
                                           std::size_t max_nodes, std::uint64_t seed) {
  if (count == 0 || min_nodes < 2 || max_nodes < min_nodes) {
    throw std::invalid_argument("generate_corpus: bad parameters");
  }
  util::Rng rng(seed);
  std::vector<TraceSnapshot> corpus;
  corpus.reserve(count);
  const double log_min = std::log(static_cast<double>(min_nodes));
  const double log_max = std::log(static_cast<double>(max_nodes));
  for (std::size_t i = 0; i < count; ++i) {
    const double t = (count == 1) ? 0.0 : static_cast<double>(i) / static_cast<double>(count - 1);
    GeneratorConfig config;
    config.node_count =
        static_cast<std::size_t>(std::lround(std::exp(log_min + t * (log_max - log_min))));
    config.average_degree = rng.next_range(0.8, kMaxAverageDegree);
    config.broadband_fraction = rng.next_range(0.3, 0.6);
    config.seed = rng.next_u64();
    corpus.push_back(generate_snapshot(config));
  }
  return corpus;
}

}  // namespace continu::trace
