#pragma once
// Synthetic clip2-style trace generator.
//
// Empirical targets (matching what the paper reports about its traces
// and what 2000-2001 Gnutella crawls looked like):
//   * snapshot sizes from 100 to 10000 hosts;
//   * average degree between ~0.8 and 3.5 with a heavy-tailed
//     distribution (most hosts have 0-2 crawled links, a few hubs);
//   * ping times from a central crawler spanning dial-up and broadband
//     populations, calibrated so the paper's |ping_a - ping_b| latency
//     estimator averages ~50-70 ms per overlay hop (the t_hop the paper
//     reports from its traces);
//   * advertised speeds in {28.8, 33.6, 56, 128, 384, 768, 1544} kbps.

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace continu::trace {

struct GeneratorConfig {
  std::size_t node_count = 1000;
  /// Target mean undirected degree of the crawled edge set (before the
  /// streaming layer adds random edges). Clamped to [0, 3.5] per the
  /// paper's description of its traces.
  double average_degree = 2.5;
  /// Fraction of broadband hosts (the rest are dial-up, with the
  /// correspondingly larger ping times).
  double broadband_fraction = 0.6;
  /// Pareto shape for the hub-iness of the degree distribution; smaller
  /// is heavier-tailed.
  double degree_pareto_shape = 2.2;
  std::uint64_t seed = 1;
};

/// Generates one synthetic snapshot. Deterministic in the config.
[[nodiscard]] TraceSnapshot generate_snapshot(const GeneratorConfig& config);

/// Generates the paper's 30-snapshot corpus: sizes log-spaced between
/// `min_nodes` and `max_nodes`, per-snapshot degree sampled in
/// [0.8, 3.5], seeds derived from `seed`.
[[nodiscard]] std::vector<TraceSnapshot> generate_corpus(std::size_t count,
                                                         std::size_t min_nodes,
                                                         std::size_t max_nodes,
                                                         std::uint64_t seed);

}  // namespace continu::trace
