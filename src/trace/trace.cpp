#include "trace/trace.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace continu::trace {

TraceSnapshot::TraceSnapshot(std::vector<TraceNode> nodes, std::vector<TraceEdge> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  validate();
}

void TraceSnapshot::validate() const {
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].trace_id != static_cast<std::uint32_t>(i)) {
      throw std::invalid_argument("TraceSnapshot: node ids must be dense and 0-based");
    }
  }
  for (const auto& [a, b] : edges_) {
    if (a >= n || b >= n || a == b) {
      throw std::invalid_argument("TraceSnapshot: edge endpoint out of range or self-loop");
    }
  }
}

double TraceSnapshot::average_degree() const noexcept {
  if (nodes_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edges_.size()) / static_cast<double>(nodes_.size());
}

void TraceSnapshot::save(std::ostream& out) const {
  out.precision(17);  // lossless double roundtrip
  out << "continu-trace 1 " << nodes_.size() << ' ' << edges_.size() << '\n';
  for (const auto& node : nodes_) {
    out << "node " << node.trace_id << ' ' << node.ipv4 << ' ' << node.ping_ms << ' '
        << node.speed_kbps << '\n';
  }
  for (const auto& [a, b] : edges_) {
    out << "edge " << a << ' ' << b << '\n';
  }
}

TraceSnapshot TraceSnapshot::load(std::istream& in) {
  std::string magic;
  int version = 0;
  std::size_t n = 0;
  std::size_t m = 0;
  if (!(in >> magic >> version >> n >> m) || magic != "continu-trace" || version != 1) {
    throw std::runtime_error("TraceSnapshot::load: bad header");
  }
  std::vector<TraceNode> nodes;
  nodes.reserve(n);
  std::vector<TraceEdge> edges;
  edges.reserve(m);
  std::string kind;
  while (in >> kind) {
    if (kind == "node") {
      TraceNode node;
      if (!(in >> node.trace_id >> node.ipv4 >> node.ping_ms >> node.speed_kbps)) {
        throw std::runtime_error("TraceSnapshot::load: bad node record");
      }
      nodes.push_back(node);
    } else if (kind == "edge") {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      if (!(in >> a >> b)) {
        throw std::runtime_error("TraceSnapshot::load: bad edge record");
      }
      edges.emplace_back(a, b);
    } else {
      throw std::runtime_error("TraceSnapshot::load: unknown record '" + kind + "'");
    }
  }
  if (nodes.size() != n || edges.size() != m) {
    throw std::runtime_error("TraceSnapshot::load: record counts disagree with header");
  }
  return TraceSnapshot(std::move(nodes), std::move(edges));
}

void TraceSnapshot::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("TraceSnapshot::save_file: cannot open " + path);
  save(out);
}

TraceSnapshot TraceSnapshot::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("TraceSnapshot::load_file: cannot open " + path);
  return load(in);
}

std::string format_ipv4(std::uint32_t ip) {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.' << ((ip >> 8) & 0xff)
     << '.' << (ip & 0xff);
  return os.str();
}

}  // namespace continu::trace
