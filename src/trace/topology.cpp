#include "trace/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace continu::trace {

Topology::Topology(const TraceSnapshot& snapshot, std::size_t min_degree, util::Rng& rng)
    : adjacency_(snapshot.node_count()), ping_ms_(snapshot.node_count()) {
  const std::size_t n = snapshot.node_count();
  if (n < 2) throw std::invalid_argument("Topology: need at least 2 nodes");
  for (std::size_t i = 0; i < n; ++i) {
    ping_ms_[i] = snapshot.nodes()[i].ping_ms;
  }
  for (const auto& [a, b] : snapshot.edges()) {
    if (!has_edge(a, b)) add_edge(a, b);
  }

  // Random-edge augmentation: for each deficient node draw random
  // partners until it reaches min_degree. Mirrors the paper's "we add
  // random edges into the overlay to let every node hold M connected
  // neighbors".
  const std::size_t effective_min = std::min(min_degree, n - 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::size_t guard = 0;
    while (adjacency_[v].size() < effective_min && guard < 100 * n) {
      const auto u = static_cast<std::uint32_t>(rng.next_below(n));
      ++guard;
      if (u == v || has_edge(v, u)) continue;
      add_edge(v, u);
    }
  }
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
  }
}

void Topology::add_edge(std::uint32_t a, std::uint32_t b) {
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

const std::vector<std::uint32_t>& Topology::neighbors(std::uint32_t node) const {
  return adjacency_.at(node);
}

double Topology::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return static_cast<double>(total) / static_cast<double>(adjacency_.size());
}

std::size_t Topology::min_degree() const noexcept {
  std::size_t best = adjacency_.empty() ? 0 : adjacency_.front().size();
  for (const auto& list : adjacency_) best = std::min(best, list.size());
  return best;
}

std::size_t Topology::max_degree() const noexcept {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

double Topology::latency_ms(std::uint32_t a, std::uint32_t b) const {
  const double diff = std::abs(ping_ms_.at(a) - ping_ms_.at(b));
  return std::max(diff, kLatencyFloorMs);
}

double Topology::ping_ms(std::uint32_t node) const { return ping_ms_.at(node); }

bool Topology::has_edge(std::uint32_t a, std::uint32_t b) const {
  const auto& list = adjacency_.at(a);
  return std::find(list.begin(), list.end(), b) != list.end();
}

}  // namespace continu::trace
