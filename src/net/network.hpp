#pragma once
// Message delivery engine: charges traffic, applies pairwise latency,
// and hands the payload callback to the simulator. Node-level protocol
// logic lives above this layer (overlay/, core/); the network knows
// nothing about segments or DHT semantics.

#include <functional>

#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/traffic.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace continu::net {

class Network {
 public:
  Network(sim::Simulator& sim, LatencyModel latency);

  /// Sends a message of `type` and `bits` from `from` to `to`; runs
  /// `on_delivery` after the one-way latency (+ extra_delay, e.g. the
  /// payload transfer time computed by the sender's rate controller).
  /// Dropped silently if a drop filter rejects the destination (dead
  /// node) — exactly like a UDP packet into the void.
  void send(std::size_t from, std::size_t to, MessageType type, Bits bits,
            std::function<void()> on_delivery, SimTime extra_delay = 0.0);

  /// Charges traffic for a message without scheduling delivery (used
  /// for locally-absorbed costs like the last routing hop's reply).
  void charge_only(MessageType type, Bits bits);

  /// Installs the liveness filter; return false to drop deliveries.
  void set_delivery_filter(std::function<bool(std::size_t to)> filter);

  [[nodiscard]] const TrafficAccount& traffic() const noexcept { return traffic_; }
  [[nodiscard]] TrafficAccount& traffic() noexcept { return traffic_; }
  [[nodiscard]] const LatencyModel& latency() const noexcept { return latency_; }
  [[nodiscard]] LatencyModel& latency() noexcept { return latency_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Count of messages dropped by the liveness filter.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  sim::Simulator& sim_;
  LatencyModel latency_;
  TrafficAccount traffic_;
  std::function<bool(std::size_t)> filter_;
  std::uint64_t dropped_ = 0;
};

}  // namespace continu::net
