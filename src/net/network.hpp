#pragma once
// Message delivery engine: charges traffic, applies pairwise latency,
// and hands the payload callback to the simulator. Node-level protocol
// logic lives above this layer (overlay/, core/); the network knows
// nothing about segments or DHT semantics.

#include <functional>
#include <type_traits>
#include <utility>

#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/traffic.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace continu::net {

class Network {
 public:
  Network(sim::Simulator& sim, LatencyModel latency);

  /// Sends a message of `type` and `bits` from `from` to `to`; runs
  /// `on_delivery` after the one-way latency (+ extra_delay, e.g. the
  /// payload transfer time computed by the sender's rate controller).
  /// Dropped silently if a drop filter rejects the destination (dead
  /// node) — exactly like a UDP packet into the void.
  ///
  /// Templated so the delivery capture is stored FLAT inside the
  /// scheduled event (callback + 16 bytes of filter state), keeping
  /// the whole send path allocation-free for inline-sized callbacks.
  template <typename F>
  void send(std::size_t from, std::size_t to, MessageType type, Bits bits,
            F&& on_delivery, SimTime extra_delay = 0.0) {
    static_assert(sizeof(Delivery<std::decay_t<F>>) <=
                      sim::EventAction::kInlineCapacity,
                  "delivery capture exceeds the inline event-action buffer; "
                  "shrink the capture (pack indices) or bump kInlineCapacity");
    // Traffic is charged at send time: the bits hit the wire whether or
    // not the destination is still alive.
    traffic_.charge(traffic_class_of(type), bits);
    const SimTime delay = latency_.latency_s(from, to) + extra_delay;
    sim_.schedule_in(
        delay, Delivery<std::decay_t<F>>{this, to, std::forward<F>(on_delivery)});
  }

  /// Charges traffic for a message without scheduling delivery (used
  /// for locally-absorbed costs like the last routing hop's reply).
  void charge_only(MessageType type, Bits bits);

  /// Bulk variant: charges `messages` same-typed messages of
  /// `bits_each` in one call. Bit-equivalent to `messages` single
  /// charges — this is how the forked prepare-local phase settles its
  /// per-shard buffer-map wire tallies at the join without touching the
  /// shared account from worker threads.
  void charge_only_bulk(MessageType type, Bits bits_each, std::uint64_t messages);

  /// Installs the liveness filter; return false to drop deliveries.
  void set_delivery_filter(std::function<bool(std::size_t to)> filter);

  [[nodiscard]] const TrafficAccount& traffic() const noexcept { return traffic_; }
  [[nodiscard]] TrafficAccount& traffic() noexcept { return traffic_; }
  [[nodiscard]] const LatencyModel& latency() const noexcept { return latency_; }
  [[nodiscard]] LatencyModel& latency() noexcept { return latency_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Count of messages dropped by the liveness filter.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  template <typename F>
  struct Delivery {
    Network* net;
    std::size_t to;
    F fn;
    void operator()() {
      if (net->filter_ && !net->filter_(to)) {
        ++net->dropped_;
        return;
      }
      fn();
    }
  };

  sim::Simulator& sim_;
  LatencyModel latency_;
  TrafficAccount traffic_;
  std::function<bool(std::size_t)> filter_;
  std::uint64_t dropped_ = 0;
};

}  // namespace continu::net
