#pragma once
// Message delivery engine: charges traffic, applies pairwise latency,
// and hands the payload callback to the simulator. Node-level protocol
// logic lives above this layer (overlay/, core/); the network knows
// nothing about segments or DHT semantics.
//
// Two delivery modes, selected by the LatencyModel's grid:
//
//   continuous (grid 0, the paper's model) — every send schedules its
//   own simulator event at the exact latency instant. No two
//   deliveries share an instant, so delivery handlers run serially.
//
//   quantized (grid > 0) — delivery instants snap UP to the latency
//   grid, so all deliveries landing on one grid point form a batch.
//   The batch hides behind ONE proxy event; when it fires, sharded
//   deliveries are grouped by receiver and forked across the session's
//   ParallelExecutor. Workers run their receivers' handlers in
//   schedule order (per-pair FIFO is preserved — a receiver's
//   deliveries never split across shards) and buffer everything they
//   may not do from a worker thread; the join settles those buffers in
//   shard order, so the result is bit-identical at every thread count.
//
// send() keeps the serial handler contract in both modes (quantized
// mode merely snaps its instant); send_sharded()/post_sharded() carry
// the handlers that fork, and hand them a DeliveryContext in either
// mode — immediate in continuous mode, per-shard in quantized mode.

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/delivery.hpp"
#include "net/handoff.hpp"
#include "net/latency_model.hpp"
#include "net/message.hpp"
#include "net/traffic.hpp"
#include "sim/parallel/executor.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace continu::fault {
class FaultInjector;
}

namespace continu::obs {
class PhaseProfiler;
class TraceSink;
}  // namespace continu::obs

namespace continu::net {

class Network {
 public:
  /// Session-installed callbacks bracketing a forked bucket dispatch.
  /// The network cannot know the session's stats type, so the session
  /// provides per-shard scratch pointers and the reduction points.
  struct ShardHooks {
    /// Called before the fork with the shard count (resize scratch).
    std::function<void(std::size_t shards)> on_fork;
    /// Per-shard scratch pointer, valid between on_fork and on_join.
    std::function<void*(std::size_t shard)> scratch;
    /// Called at the join, before deferred work runs: reduce the
    /// per-shard scratch into shared state, in shard order.
    std::function<void(std::size_t shards)> on_join;
    /// Scratch handed to immediate-mode contexts (continuous-mode
    /// deliveries): typically the live stats object itself.
    void* serial_scratch = nullptr;
  };

  Network(sim::Simulator& sim, LatencyModel latency);

  /// Sends a message of `type` and `bits` from `from` to `to`; runs
  /// `on_delivery` after the one-way latency (+ extra_delay, e.g. the
  /// payload transfer time computed by the sender's rate controller).
  /// Dropped silently if a drop filter rejects the destination (dead
  /// node) — exactly like a UDP packet into the void. The handler runs
  /// SERIALLY in both modes (quantized mode only snaps the instant);
  /// use send_sharded for handlers that obey the receiver-shard
  /// ownership contract.
  ///
  /// Templated so the delivery capture is stored FLAT inside the
  /// scheduled event (callback + 16 bytes of filter state), keeping
  /// the whole send path allocation-free for inline-sized callbacks.
  template <typename F>
  void send(std::size_t from, std::size_t to, MessageType type, Bits bits,
            F&& on_delivery, SimTime extra_delay = 0.0) {
    static_assert(sizeof(Delivery<std::decay_t<F>>) <=
                      sim::EventAction::kInlineCapacity,
                  "delivery capture exceeds the inline event-action buffer; "
                  "shrink the capture (pack indices) or bump kInlineCapacity");
    // Traffic is charged at send time: the bits hit the wire whether or
    // not the destination is still alive (and whether or not the fault
    // injector eats it — a lost message still cost its sender).
    traffic_.charge(traffic_class_of(type), bits);
    SimTime delay = latency_.latency_s(from, to) + extra_delay;
    if (fault_ != nullptr && !apply_faults(from, to, delay)) return;
    if (grid_s_ > 0.0) {
      sim_.schedule_at(
          quantize_up_s(sim_.now() + delay),
          Delivery<std::decay_t<F>>{this, to, std::forward<F>(on_delivery)});
    } else {
      sim_.schedule_in(
          delay, Delivery<std::decay_t<F>>{this, to, std::forward<F>(on_delivery)});
    }
  }

  /// Like send(), but the handler takes a DeliveryContext& and obeys
  /// the receiver-shard ownership contract (see delivery.hpp). In
  /// quantized mode the delivery joins its grid bucket and may run on
  /// a worker shard; in continuous mode it runs serially with an
  /// immediate context — bit-identical to a send() of the same logic.
  template <typename F>
  void send_sharded(std::size_t from, std::size_t to, MessageType type, Bits bits,
                    F&& on_delivery, SimTime extra_delay = 0.0) {
    traffic_.charge(traffic_class_of(type), bits);
    SimTime delay = latency_.latency_s(from, to) + extra_delay;
    if (fault_ != nullptr && !apply_faults(from, to, delay)) return;
    if (grid_s_ > 0.0) {
      enqueue_sharded(static_cast<std::uint32_t>(to),
                      quantize_up_s(sim_.now() + delay),
                      DeliveryAction(std::forward<F>(on_delivery)),
                      /*filtered=*/true);
    } else {
      static_assert(sizeof(ShardedDelivery<std::decay_t<F>>) <=
                        sim::EventAction::kInlineCapacity,
                    "sharded delivery capture exceeds the inline event-action "
                    "buffer; shrink the capture (pack indices)");
      sim_.schedule_in(delay,
                       ShardedDelivery<std::decay_t<F>>{
                           this, static_cast<std::uint32_t>(to),
                           std::forward<F>(on_delivery)});
    }
  }

  /// Schedules a LOCAL sharded continuation on receiver `to` at
  /// absolute time `when` — no wire charge, no liveness filter (the
  /// handler guards its own aliveness, like any local event). Stage 3
  /// of the fluid transfer model (downlink completion) rides this, so
  /// delivery completions fork alongside arrivals in quantized mode.
  template <typename F>
  void post_sharded(std::size_t to, SimTime when, F&& handler) {
    if (grid_s_ > 0.0) {
      enqueue_sharded(static_cast<std::uint32_t>(to), quantize_up_s(when),
                      DeliveryAction(std::forward<F>(handler)),
                      /*filtered=*/false);
    } else {
      static_assert(sizeof(ImmediateInvoke<std::decay_t<F>>) <=
                        sim::EventAction::kInlineCapacity,
                    "sharded continuation capture exceeds the inline "
                    "event-action buffer; shrink the capture");
      sim_.schedule_at(when, ImmediateInvoke<std::decay_t<F>>{
                                 this, std::forward<F>(handler)});
    }
  }

  /// Charges traffic for a message without scheduling delivery (used
  /// for locally-absorbed costs like the last routing hop's reply).
  void charge_only(MessageType type, Bits bits);

  /// Bulk variant: charges `messages` same-typed messages of
  /// `bits_each` in one call. Bit-equivalent to `messages` single
  /// charges — this is how the forked prepare-local phase settles its
  /// per-shard buffer-map wire tallies at the join without touching the
  /// shared account from worker threads.
  void charge_only_bulk(MessageType type, Bits bits_each, std::uint64_t messages);

  /// Installs the liveness filter; return false to drop deliveries.
  /// Called from worker shards during a forked bucket dispatch, so it
  /// must only read state frozen for the bucket (liveness flags).
  void set_delivery_filter(std::function<bool(std::size_t to)> filter);

  /// Installs the executor forked bucket dispatches run on. Without
  /// one, quantized buckets dispatch inline through the IDENTICAL
  /// shard structure (grouping, contexts, join order), so results
  /// match a pooled run bit for bit.
  void set_executor(sim::parallel::ParallelExecutor* exec) noexcept { exec_ = exec; }

  /// Installs the session's fork/join scratch hooks (see ShardHooks).
  void set_shard_hooks(ShardHooks hooks);

  /// Installs the fault injector (nullptr = fault-free). Every wire
  /// send — both network modes, sharded or not — consults it after the
  /// traffic charge and before scheduling: injected loss and partition
  /// drops never reach the event queue, and active latency-spike
  /// episodes stretch the delay before any grid snap. With no injector
  /// installed the send path is bit-identical to a fault-free build.
  void set_fault_injector(fault::FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Installs the session's observability sinks (either may be null =
  /// that pillar is off). The network only ever WRITES obs-owned state
  /// through these — bucket-fire phase brackets into the profiler,
  /// fault-classification events into the trace — so installing them
  /// cannot move a delivery schedule or a fingerprint.
  void set_observability(obs::PhaseProfiler* profiler,
                         obs::TraceSink* trace) noexcept {
    obs_profiler_ = profiler;
    obs_trace_ = trace;
  }

  [[nodiscard]] const TrafficAccount& traffic() const noexcept { return traffic_; }
  [[nodiscard]] TrafficAccount& traffic() noexcept { return traffic_; }
  [[nodiscard]] const LatencyModel& latency() const noexcept { return latency_; }
  [[nodiscard]] LatencyModel& latency() noexcept { return latency_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// True when the latency model carries a quantization grid.
  [[nodiscard]] bool quantized() const noexcept { return grid_s_ > 0.0; }
  /// The delivery grid in seconds (0 in continuous mode).
  [[nodiscard]] SimTime grid_s() const noexcept { return grid_s_; }

  /// Count of messages dropped by the liveness filter (surfaced as
  /// SessionStats::deliveries_dropped — a filter regression is visible
  /// to the fingerprint oracle, not silently swallowed).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Messages eaten by injected iid/burst link loss.
  [[nodiscard]] std::uint64_t fault_lost() const noexcept { return fault_lost_; }
  /// Messages eaten because sender and receiver sat in different
  /// regions of an active partition.
  [[nodiscard]] std::uint64_t fault_partitioned() const noexcept {
    return fault_partitioned_;
  }
  /// Buckets fired in quantized mode (0 in continuous mode).
  [[nodiscard]] std::uint64_t delivery_batches() const noexcept {
    return delivery_batches_;
  }
  /// Deliveries dispatched through bucket batches.
  [[nodiscard]] std::uint64_t batched_deliveries() const noexcept {
    return batched_deliveries_;
  }
  /// True when hand-offs route through sharded-engine delivery lanes
  /// (quantized mode on a sharded simulator).
  [[nodiscard]] bool laned() const noexcept { return lanes_ != nullptr; }
  /// Frontier barriers drained through the lanes (0 off the sharded
  /// engine; equals delivery_batches() on it).
  [[nodiscard]] std::uint64_t frontier_barriers() const noexcept {
    return frontier_barriers_;
  }
  /// Cumulative lanes that held NO due hand-off at a barrier — the
  /// shard_drain imbalance signal, deterministic at every thread count.
  /// Under lax windows, sampled once per window instead of per instant
  /// (the skew-stall signal: lanes the whole window could not feed).
  [[nodiscard]] std::uint64_t frontier_stalled_lanes() const noexcept {
    return frontier_stalled_lanes_;
  }
  /// Lax hand-off windows swept (0 in strict mode).
  [[nodiscard]] std::uint64_t lax_handoff_windows() const noexcept {
    return lax_handoff_windows_;
  }

 private:
  friend class DeliveryContext;

  template <typename F>
  struct Delivery {
    Network* net;
    std::size_t to;
    F fn;
    void operator()() {
      if (net->filter_ && !net->filter_(to)) {
        ++net->dropped_;
        return;
      }
      fn();
    }
  };

  /// Continuous-mode wrapper for a sharded handler: filter check, then
  /// invoke with an immediate context.
  template <typename F>
  struct ShardedDelivery {
    Network* net;
    std::uint32_t to;
    F fn;
    void operator()() {
      if (net->filter_ && !net->filter_(to)) {
        ++net->dropped_;
        return;
      }
      DeliveryContext ctx(net, 0, net->hooks_.serial_scratch, nullptr);
      fn(ctx);
    }
  };

  /// Continuous-mode wrapper for a local sharded continuation (no
  /// filter — mirrors a plain scheduled event).
  template <typename F>
  struct ImmediateInvoke {
    Network* net;
    F fn;
    void operator()() {
      DeliveryContext ctx(net, 0, net->hooks_.serial_scratch, nullptr);
      fn(ctx);
    }
  };

  /// One delivery awaiting its grid bucket (hoisted to handoff.hpp so
  /// the sharded engine's lanes can park the same records).
  using ShardedEntry = HandoffEntry;
  struct Bucket {
    std::vector<ShardedEntry> entries;
  };
  /// Receiver group: indices into the bucket's entry list, in schedule
  /// order, for one receiver.
  struct ReceiverGroup {
    std::uint32_t to = 0;
    std::vector<std::uint32_t> entry_indices;
  };

  [[nodiscard]] SimTime quantize_up_s(SimTime t) const {
    return std::ceil(t / grid_s_) * grid_s_;
  }

  /// Consults the installed fault injector for one wire send. Returns
  /// false when the message is eaten (loss or partition — counted by
  /// cause); otherwise adds any active spike latency to `delay`.
  /// Out-of-line so the templated send paths need only the injector's
  /// forward declaration.
  bool apply_faults(std::size_t from, std::size_t to, SimTime& delay);

  /// Appends a delivery to its grid bucket, creating the bucket (and
  /// its proxy event) on first use. On the sharded engine this parks
  /// the delivery in its hand-off lane instead, ranked by a sequence
  /// from the simulator's global stream.
  void enqueue_sharded(std::uint32_t to, SimTime when, DeliveryAction action,
                       bool filtered);
  /// Proxy-event body: detaches the bucket at `time` and dispatches it.
  void fire_bucket(SimTime time);
  /// Frontier-hook body (sharded engine): drains every lane's hand-offs
  /// at `time` — per-lane pops forked under the shard_drain phase, then
  /// a serial merge by sequence — and dispatches the merged batch.
  void fire_frontier(SimTime time);
  /// Lax-window frontier-hook body: drains EVERY pending hand-off
  /// instant <= limit in one sweep — per-lane pops forked once for the
  /// whole window under the lax_drain phase, merged by (time, seq),
  /// then each instant's batch dispatched in time order behind a
  /// begin_instant(t) clock stamp. Returns instants dispatched.
  std::size_t fire_frontier_window(
      SimTime limit, const std::function<void(SimTime)>& begin_instant);
  /// Groups by receiver, forks across shards, settles the join.
  void dispatch_bucket(std::vector<ShardedEntry>& entries);

  sim::Simulator& sim_;
  LatencyModel latency_;
  TrafficAccount traffic_;
  std::function<bool(std::size_t)> filter_;
  std::uint64_t dropped_ = 0;

  // --- fault injection ---------------------------------------------------
  fault::FaultInjector* fault_ = nullptr;
  std::uint64_t fault_lost_ = 0;
  std::uint64_t fault_partitioned_ = 0;

  // --- observability (null = off) -----------------------------------------
  obs::PhaseProfiler* obs_profiler_ = nullptr;
  obs::TraceSink* obs_trace_ = nullptr;

  // --- quantized mode ----------------------------------------------------
  /// Receivers per shard of a bucket dispatch. Small on purpose: a
  /// 1 ms bucket of a static_8k session carries on the order of a
  /// hundred receivers, and the grain bounds both the shard count and
  /// the per-shard imbalance.
  static constexpr std::size_t kReceiverGrain = 8;
  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

  SimTime grid_s_ = 0.0;
  sim::parallel::ParallelExecutor* exec_ = nullptr;
  ShardHooks hooks_;
  /// Pending buckets by fire time. std::map: iteration order never
  /// matters (each bucket owns a proxy event), but deterministic
  /// structure keeps debugging sane; the handful of in-flight buckets
  /// makes the log-factor irrelevant.
  std::map<SimTime, Bucket> buckets_;
  /// Recycled entry vectors (buckets churn every grid step).
  std::vector<std::vector<ShardedEntry>> spare_entry_vecs_;
  /// Dispatch scratch, reused across buckets.
  std::vector<ReceiverGroup> groups_;
  std::size_t groups_used_ = 0;
  std::vector<std::uint32_t> group_slot_;
  std::vector<DeliveryShardScratch> shard_scratch_;
  std::uint64_t delivery_batches_ = 0;
  std::uint64_t batched_deliveries_ = 0;

  // --- sharded-engine hand-off lanes (null on the single queue) ----------
  std::unique_ptr<DeliveryLanes> lanes_;
  /// Merged-batch scratch, reused across barriers.
  std::vector<ShardedEntry> frontier_entries_;
  /// Per-entry instants parallel to frontier_entries_ (lax windows
  /// only — strict barriers are single-instant).
  std::vector<SimTime> frontier_times_;
  std::uint64_t frontier_barriers_ = 0;
  std::uint64_t frontier_stalled_lanes_ = 0;
  std::uint64_t lax_handoff_windows_ = 0;
};

/// Immediate-mode forward: defined here (not in delivery.hpp) because
/// it needs the full Network type. In quantized-fork mode the context
/// buffers instead, so this template only instantiates the
/// continuous-mode path.
template <typename F>
void DeliveryContext::forward(std::size_t to, SimTime when, F&& handler) {
  if (scratch_buf_ != nullptr) {
    scratch_buf_->forwards.push_back(LocalForward{
        static_cast<std::uint32_t>(to), when,
        DeliveryAction(std::forward<F>(handler))});
  } else {
    net_->post_sharded(to, when, std::forward<F>(handler));
  }
}

}  // namespace continu::net
