#include "net/traffic.hpp"

namespace continu::net {

namespace {
[[nodiscard]] constexpr std::size_t index_of(TrafficClass c) noexcept {
  return static_cast<std::size_t>(c);
}
}  // namespace

void TrafficAccount::charge(TrafficClass c, Bits bits, std::uint64_t messages) noexcept {
  bits_[index_of(c)] += bits;
  messages_[index_of(c)] += messages;
}

Bits TrafficAccount::bits(TrafficClass c) const noexcept { return bits_[index_of(c)]; }

std::uint64_t TrafficAccount::messages(TrafficClass c) const noexcept {
  return messages_[index_of(c)];
}

double TrafficAccount::control_overhead() const noexcept {
  const Bits data = bits(TrafficClass::kData);
  if (data == 0) return 0.0;
  return static_cast<double>(bits(TrafficClass::kControl)) / static_cast<double>(data);
}

double TrafficAccount::prefetch_overhead() const noexcept {
  const Bits data = bits(TrafficClass::kData);
  if (data == 0) return 0.0;
  return static_cast<double>(bits(TrafficClass::kPrefetch)) / static_cast<double>(data);
}

TrafficAccount TrafficAccount::since(const TrafficAccount& baseline) const noexcept {
  TrafficAccount delta;
  for (std::size_t i = 0; i < kTrafficClassCount; ++i) {
    delta.bits_[i] = bits_[i] - baseline.bits_[i];
    delta.messages_[i] = messages_[i] - baseline.messages_[i];
  }
  return delta;
}

void TrafficAccount::clear() noexcept {
  bits_.fill(0);
  messages_.fill(0);
}

}  // namespace continu::net
