#include "net/network.hpp"

#include <utility>

namespace continu::net {

Network::Network(sim::Simulator& sim, LatencyModel latency)
    : sim_(sim), latency_(std::move(latency)) {}

void Network::send(std::size_t from, std::size_t to, MessageType type, Bits bits,
                   std::function<void()> on_delivery, SimTime extra_delay) {
  // Traffic is charged at send time: the bits hit the wire whether or
  // not the destination is still alive.
  traffic_.charge(traffic_class_of(type), bits);
  const SimTime delay = latency_.latency_s(from, to) + extra_delay;
  sim_.schedule_in(delay, [this, to, cb = std::move(on_delivery)] {
    if (filter_ && !filter_(to)) {
      ++dropped_;
      return;
    }
    if (cb) cb();
  });
}

void Network::charge_only(MessageType type, Bits bits) {
  traffic_.charge(traffic_class_of(type), bits);
}

void Network::set_delivery_filter(std::function<bool(std::size_t)> filter) {
  filter_ = std::move(filter);
}

}  // namespace continu::net
