#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "fault/fault_injector.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/trace_sink.hpp"

namespace continu::net {

Network::Network(sim::Simulator& sim, LatencyModel latency)
    : sim_(sim),
      latency_(std::move(latency)),
      grid_s_(latency_.grid_ms() / 1000.0) {
  // Quantized mode on the sharded engine: hand-offs park in per-lane
  // heaps instead of proxy-evented buckets, and the simulator's
  // frontier loop calls back at each barrier instant. One lane per
  // queue shard keeps the drain fork aligned with the engine's shard
  // count.
  if (grid_s_ > 0.0 && sim_.sharded()) {
    lanes_ = std::make_unique<DeliveryLanes>(sim_.queue_shards());
    sim::Simulator::FrontierHook hook;
    hook.next_key = [this](SimTime& time, std::uint64_t& seq) {
      return lanes_->next_key(time, seq);
    };
    hook.dispatch = [this](SimTime time) { fire_frontier(time); };
    hook.dispatch_window = [this](SimTime limit,
                                  const std::function<void(SimTime)>& begin) {
      return fire_frontier_window(limit, begin);
    };
    sim_.set_frontier_hook(std::move(hook));
  }
}

void Network::charge_only(MessageType type, Bits bits) {
  traffic_.charge(traffic_class_of(type), bits);
}

void Network::charge_only_bulk(MessageType type, Bits bits_each,
                               std::uint64_t messages) {
  if (messages == 0) return;
  traffic_.charge(traffic_class_of(type), bits_each * messages, messages);
}

void Network::set_delivery_filter(std::function<bool(std::size_t)> filter) {
  filter_ = std::move(filter);
}

void Network::set_shard_hooks(ShardHooks hooks) { hooks_ = std::move(hooks); }

bool Network::apply_faults(std::size_t from, std::size_t to, SimTime& delay) {
  // Fault classification happens on the serial send path, so the trace
  // records ride ring 0. Obs-owned writes only — recording an eaten
  // message does not change that it is eaten.
  switch (fault_->classify(from, to, sim_.now())) {
    case fault::FaultInjector::Fate::kLoss:
      ++fault_lost_;
      if (obs_trace_ != nullptr) {
        obs::TraceEvent event;
        event.time = sim_.now();
        event.kind = obs::TraceEventKind::kFaultLoss;
        event.node = static_cast<std::uint32_t>(to);
        event.peer = static_cast<std::uint32_t>(from);
        obs_trace_->record_serial(event);
      }
      return false;
    case fault::FaultInjector::Fate::kPartition:
      ++fault_partitioned_;
      if (obs_trace_ != nullptr) {
        obs::TraceEvent event;
        event.time = sim_.now();
        event.kind = obs::TraceEventKind::kFaultPartition;
        event.node = static_cast<std::uint32_t>(to);
        event.peer = static_cast<std::uint32_t>(from);
        obs_trace_->record_serial(event);
      }
      return false;
    case fault::FaultInjector::Fate::kDeliver:
      break;
  }
  delay += fault_->extra_latency_s(sim_.now());
  return true;
}

void Network::enqueue_sharded(std::uint32_t to, SimTime when,
                              DeliveryAction action, bool filtered) {
  // A bucket entirely in the past would never fire (its proxy clamps
  // to now, which is fine); entries targeting the current instant land
  // in a bucket whose proxy fires later within this instant.
  if (when < sim_.now()) when = sim_.now();
  if (lanes_ != nullptr) {
    // Sharded engine: rank the hand-off with a sequence from the
    // global stream. The FIRST hand-off targeting an instant holds
    // the same rank the single-queue engine's bucket proxy would
    // (both are assigned at first enqueue), so the barrier dispatch
    // lands at the identical point of the global event order.
    lanes_->enqueue(to, filtered, when, sim_.allocate_seq(), std::move(action));
    return;
  }
  auto [it, inserted] = buckets_.try_emplace(when);
  if (inserted) {
    if (!spare_entry_vecs_.empty()) {
      it->second.entries = std::move(spare_entry_vecs_.back());
      spare_entry_vecs_.pop_back();
    }
    // One proxy event per bucket, scheduled at bucket creation — its
    // sequence number (and thus its order among same-instant events)
    // is a pure function of the delivery schedule.
    const SimTime time = when;
    sim_.schedule_at(time, [this, time] { fire_bucket(time); });
  }
  it->second.entries.push_back(ShardedEntry{to, filtered, std::move(action)});
}

void Network::fire_bucket(SimTime time) {
  const auto it = buckets_.find(time);
  if (it == buckets_.end()) return;  // defensive: bucket map out of sync
  std::vector<ShardedEntry> entries = std::move(it->second.entries);
  buckets_.erase(it);
  dispatch_bucket(entries);
  entries.clear();
  spare_entry_vecs_.push_back(std::move(entries));
}

void Network::fire_frontier(SimTime time) {
  ++frontier_barriers_;
  const unsigned nlanes = lanes_->lane_count();
  // Phase A: per-lane pops of this instant's hand-offs. Each lane
  // touches only its own heap and due list, so the pops fork across
  // the session executor (shard boundaries are one lane per shard —
  // thread-count independent by construction). The inline fallback
  // walks the identical decomposition.
  if (obs_profiler_ != nullptr) {
    obs_profiler_->begin_fork_phase(obs::Phase::kShardDrain, nlanes);
  }
  const auto body = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t lane = begin; lane < end; ++lane) {
      lanes_->collect_due(static_cast<unsigned>(lane), time);
    }
  };
  if (exec_ != nullptr) {
    exec_->for_shards(nlanes, /*grain=*/1, body);
  } else {
    for (unsigned lane = 0; lane < nlanes; ++lane) {
      lanes_->collect_due(lane, time);
    }
  }
  // Phase B: serial merge by global sequence reconstructs the exact
  // entry order the single-queue engine's bucket vector would hold;
  // the unchanged dispatch path does the rest, byte for byte.
  frontier_entries_.clear();
  const std::size_t active = lanes_->merge_due(frontier_entries_);
  frontier_stalled_lanes_ += nlanes - active;
  dispatch_bucket(frontier_entries_);
  frontier_entries_.clear();
}

std::size_t Network::fire_frontier_window(
    SimTime limit, const std::function<void(SimTime)>& begin_instant) {
  SimTime head_time = 0.0;
  std::uint64_t head_seq = 0;
  if (!lanes_->next_key(head_time, head_seq) || head_time > limit) return 0;
  ++lax_handoff_windows_;
  const unsigned nlanes = lanes_->lane_count();
  // Phase A: per-lane pops of EVERY instant in the window — the same
  // lane-local ownership as fire_frontier, with k+1 instants' worth of
  // entries amortizing one fork instead of one per barrier.
  if (obs_profiler_ != nullptr) {
    obs_profiler_->begin_fork_phase(obs::Phase::kLaxDrain, nlanes);
  }
  const auto body = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t lane = begin; lane < end; ++lane) {
      lanes_->collect_due_window(static_cast<unsigned>(lane), limit);
    }
  };
  if (exec_ != nullptr) {
    exec_->for_shards(nlanes, /*grain=*/1, body);
  } else {
    for (unsigned lane = 0; lane < nlanes; ++lane) {
      lanes_->collect_due_window(lane, limit);
    }
  }
  // Phase B: one serial merge by (time, seq) for the whole window,
  // then each instant's run dispatches through the unchanged bucket
  // path at its own clock — within an instant the entry order is
  // exactly the strict barrier's.
  frontier_entries_.clear();
  frontier_times_.clear();
  const std::size_t active = lanes_->merge_due_window(frontier_entries_,
                                                      frontier_times_);
  frontier_stalled_lanes_ += nlanes - active;
  std::size_t instants = 0;
  std::size_t begin = 0;
  std::vector<ShardedEntry> batch;
  while (begin < frontier_entries_.size()) {
    const SimTime instant = frontier_times_[begin];
    std::size_t end = begin;
    while (end < frontier_entries_.size() && frontier_times_[end] == instant) {
      ++end;
    }
    begin_instant(instant);
    ++frontier_barriers_;
    ++instants;
    batch.clear();
    batch.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      batch.push_back(std::move(frontier_entries_[i]));
    }
    dispatch_bucket(batch);
    begin = end;
  }
  frontier_entries_.clear();
  frontier_times_.clear();
  return instants;
}

void Network::dispatch_bucket(std::vector<ShardedEntry>& entries) {
  ++delivery_batches_;
  batched_deliveries_ += entries.size();

  // Group by receiver, first-appearance order: the group list (and so
  // the shard boundaries) is a pure function of the delivery schedule.
  // Within a group, entries keep schedule order — per-pair FIFO holds.
  if (group_slot_.size() < latency_.node_count()) {
    group_slot_.resize(latency_.node_count(), kNoGroup);
  }
  groups_used_ = 0;
  for (std::uint32_t i = 0; i < entries.size(); ++i) {
    const std::uint32_t to = entries[i].to;
    std::uint32_t slot = group_slot_[to];
    if (slot == kNoGroup) {
      slot = static_cast<std::uint32_t>(groups_used_);
      if (groups_used_ == groups_.size()) groups_.emplace_back();
      groups_[groups_used_].to = to;
      groups_[groups_used_].entry_indices.clear();
      ++groups_used_;
      group_slot_[to] = slot;
    }
    groups_[slot].entry_indices.push_back(i);
  }
  for (std::size_t g = 0; g < groups_used_; ++g) group_slot_[groups_[g].to] = kNoGroup;

  const std::size_t count = groups_used_;
  const std::size_t shards =
      sim::parallel::ParallelExecutor::shard_count(count, kReceiverGrain);
  if (shards == 0) return;
  if (shard_scratch_.size() < shards) shard_scratch_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) shard_scratch_[s].reset();
  if (obs_trace_ != nullptr) {
    obs::TraceEvent event;
    event.time = sim_.now();
    event.kind = obs::TraceEventKind::kBucketFire;
    event.a = entries.size();
    event.b = count;
    obs_trace_->record_serial(event);
  }
  if (obs_profiler_ != nullptr) {
    obs_profiler_->begin_fork_phase(obs::Phase::kDeliveryBucket, entries.size());
  }
  if (hooks_.on_fork) hooks_.on_fork(shards);

  // Fork. A worker owns a contiguous run of receiver groups; every
  // write it performs lands either in its receivers' own node state
  // (the handler contract) or in its private DeliveryShardScratch.
  const auto body = [&](std::size_t s, std::size_t begin, std::size_t end) {
    DeliveryShardScratch& scratch = shard_scratch_[s];
    void* user = hooks_.scratch ? hooks_.scratch(s) : hooks_.serial_scratch;
    DeliveryContext ctx(this, s, user, &scratch);
    for (std::size_t g = begin; g < end; ++g) {
      const ReceiverGroup& group = groups_[g];
      for (const std::uint32_t index : group.entry_indices) {
        ShardedEntry& entry = entries[index];
        if (entry.filtered && filter_ && !filter_(entry.to)) {
          ++scratch.dropped;
          entry.action.reset();
          continue;
        }
        entry.action.consume(ctx);
      }
    }
  };
  if (exec_ != nullptr) {
    exec_->for_shards(count, kReceiverGrain, body);
  } else {
    // Inline fallback with the executor's exact shard decomposition,
    // so a Network used without a pool is still bit-identical to one
    // forked at any width.
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * kReceiverGrain;
      body(s, begin, std::min(count, begin + kReceiverGrain));
    }
  }

  // Join, in shard order. Drops first (pure sums), then the session
  // reduces its stats scratch, then each shard's buffered work runs
  // serially: forwards (stage-3 continuations into future buckets)
  // before deferred operations (sends, relays) — a fixed, thread-count
  // independent replay order.
  for (std::size_t s = 0; s < shards; ++s) dropped_ += shard_scratch_[s].dropped;
  if (hooks_.on_join) hooks_.on_join(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    DeliveryShardScratch& scratch = shard_scratch_[s];
    for (LocalForward& forward : scratch.forwards) {
      enqueue_sharded(forward.to, quantize_up_s(forward.when),
                      std::move(forward.action), /*filtered=*/false);
    }
    for (sim::EventAction& op : scratch.deferred) op.consume();
    scratch.reset();
  }
}

}  // namespace continu::net
