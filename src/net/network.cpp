#include "net/network.hpp"

#include <utility>

namespace continu::net {

Network::Network(sim::Simulator& sim, LatencyModel latency)
    : sim_(sim), latency_(std::move(latency)) {}

void Network::charge_only(MessageType type, Bits bits) {
  traffic_.charge(traffic_class_of(type), bits);
}

void Network::charge_only_bulk(MessageType type, Bits bits_each,
                               std::uint64_t messages) {
  if (messages == 0) return;
  traffic_.charge(traffic_class_of(type), bits_each * messages, messages);
}

void Network::set_delivery_filter(std::function<bool(std::size_t)> filter) {
  filter_ = std::move(filter);
}

}  // namespace continu::net
