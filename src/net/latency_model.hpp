#pragma once
// Pairwise latency model (paper Section 5.2): the physical latency
// between two overlay nodes is the difference between their real-trace
// ping times from a central node, clamped below by a small floor.
//
// Quantized mode: a positive grid (1-5 ms in practice) snaps every
// one-way latency UP to the next grid point. Co-instant deliveries
// then exist by construction — the Network batches every delivery
// landing on one grid point and shards the batch by receiver — whereas
// the continuous model guarantees no two deliveries ever share an
// instant (so per-event delivery cannot fork). Snapping up, never
// down, keeps every quantized latency >= its continuous value: the
// grid adds delay, it never invents capacity.

#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace continu::net {

class LatencyModel {
 public:
  /// Builds from per-node ping times (milliseconds). grid_ms == 0
  /// selects the paper's continuous model; grid_ms > 0 quantizes.
  explicit LatencyModel(std::vector<double> ping_ms, double floor_ms = 5.0,
                        double grid_ms = 0.0);

  /// Builds directly from a trace snapshot.
  [[nodiscard]] static LatencyModel from_trace(const trace::TraceSnapshot& snapshot,
                                               double floor_ms = 5.0,
                                               double grid_ms = 0.0);

  /// One-way latency in seconds between two nodes (by dense index).
  [[nodiscard]] SimTime latency_s(std::size_t a, std::size_t b) const;

  /// One-way latency in milliseconds (grid-snapped in quantized mode).
  [[nodiscard]] double latency_ms(std::size_t a, std::size_t b) const;

  /// Round-trip time in seconds (2x one-way; the join probe estimates
  /// latency as RTT/2, which by construction recovers latency_s — and
  /// in quantized mode 2x an on-grid value stays on-grid).
  [[nodiscard]] SimTime rtt_s(std::size_t a, std::size_t b) const;

  /// Average one-way latency over distinct pairs — the t_hop estimate
  /// used to seed the urgent ratio alpha (eq. 7). Exact for n <= 512;
  /// beyond that a fixed-size deterministic pair sample (SplitMix64-
  /// seeded, reseeded per n) keeps it O(1). The sample visits pairs
  /// uniformly — unlike the old stride-lattice sweep, whose estimate
  /// collapsed onto a single index-residue class and was badly biased
  /// whenever ping times correlated with node index.
  [[nodiscard]] double average_latency_ms() const;

  [[nodiscard]] std::size_t node_count() const noexcept { return ping_ms_.size(); }
  [[nodiscard]] double floor_ms() const noexcept { return floor_ms_; }
  /// Quantization grid in milliseconds; 0 = continuous.
  [[nodiscard]] double grid_ms() const noexcept { return grid_ms_; }
  [[nodiscard]] bool quantized() const noexcept { return grid_ms_ > 0.0; }

  /// Snaps a millisecond value UP to the next grid point (values
  /// already on the grid stay put). Identity in continuous mode.
  [[nodiscard]] double quantize_up_ms(double ms) const;

  /// Appends a node (joins during churn) with the given ping time;
  /// returns its index.
  std::size_t add_node(double ping_ms);

 private:
  std::vector<double> ping_ms_;
  double floor_ms_;
  double grid_ms_;
};

}  // namespace continu::net
