#pragma once
// Pairwise latency model (paper Section 5.2): the physical latency
// between two overlay nodes is the difference between their real-trace
// ping times from a central node, clamped below by a small floor.

#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace continu::net {

class LatencyModel {
 public:
  /// Builds from per-node ping times (milliseconds).
  explicit LatencyModel(std::vector<double> ping_ms, double floor_ms = 5.0);

  /// Builds directly from a trace snapshot.
  [[nodiscard]] static LatencyModel from_trace(const trace::TraceSnapshot& snapshot,
                                               double floor_ms = 5.0);

  /// One-way latency in seconds between two nodes (by dense index).
  [[nodiscard]] SimTime latency_s(std::size_t a, std::size_t b) const;

  /// One-way latency in milliseconds.
  [[nodiscard]] double latency_ms(std::size_t a, std::size_t b) const;

  /// Round-trip time in seconds (2x one-way; the join probe estimates
  /// latency as RTT/2, which by construction recovers latency_s).
  [[nodiscard]] SimTime rtt_s(std::size_t a, std::size_t b) const;

  /// Average one-way latency over all distinct pairs — the t_hop
  /// estimate used to seed the urgent ratio alpha (eq. 7). Computed by
  /// sampling for large n.
  [[nodiscard]] double average_latency_ms() const;

  [[nodiscard]] std::size_t node_count() const noexcept { return ping_ms_.size(); }
  [[nodiscard]] double floor_ms() const noexcept { return floor_ms_; }

  /// Appends a node (joins during churn) with the given ping time;
  /// returns its index.
  std::size_t add_node(double ping_ms);

 private:
  std::vector<double> ping_ms_;
  double floor_ms_;
};

}  // namespace continu::net
