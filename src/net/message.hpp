#pragma once
// Message taxonomy and bit-exact wire costs.
//
// The paper accounts overhead in bits (Section 5.4.2 / 5.4.3):
//   * buffer-map exchange: 600 availability bits + 20-bit head id = 620;
//   * DHT routing message: 10 bytes = 80 bits;
//   * data segment: 30 Kb of media per segment (p = 10 segments/s for a
//     300 Kbps stream).
// We keep those constants here so every module charges identical costs.

#include <cstdint>
#include <string_view>

#include "util/types.hpp"

namespace continu::net {

/// Every distinct protocol message the two systems exchange.
enum class MessageType : std::uint8_t {
  kBufferMap,         ///< periodic availability bitmap (gossip control)
  kSegmentRequest,    ///< pull request for scheduled segments
  kRequestNack,       ///< supplier refusal (no bandwidth / segment gone)
  kSegmentData,       ///< media payload from a connected neighbor
  kDhtRoute,          ///< greedy routing hop (locate backup nodes)
  kDhtReply,          ///< backup node's have/rate answer
  kPrefetchRequest,   ///< direct pull from the chosen backup supplier
  kPrefetchData,      ///< media payload delivered by pre-fetch (UDP)
  kPing,              ///< join-time latency probe
  kPong,              ///< probe answer
  kJoinNotify,        ///< "I joined" notification to close nodes
  kHandover,          ///< graceful-leave VoD backup transfer
};

[[nodiscard]] std::string_view message_type_name(MessageType type) noexcept;

/// Traffic classes used by the overhead metrics. The paper's control
/// overhead counts ONLY buffer-map exchange bits (Section 5.4.2), so
/// pull requests get their own class and are reported separately.
enum class TrafficClass : std::uint8_t {
  kControl,        ///< buffer-map exchange (control overhead numerator)
  kRequest,        ///< segment pull requests (reported separately)
  kData,           ///< scheduled segment payloads (denominator)
  kPrefetch,       ///< DHT routing + prefetch payloads (pre-fetch numerator)
  kMaintenance,    ///< join/leave/ping bookkeeping (reported, tiny)
};
inline constexpr std::size_t kTrafficClassCount = 5;

[[nodiscard]] std::string_view traffic_class_name(TrafficClass c) noexcept;

/// Maps each message type to the traffic class it is charged to.
[[nodiscard]] TrafficClass traffic_class_of(MessageType type) noexcept;

/// Wire-size constants (bits), straight from the paper.
struct WireCosts {
  /// Availability window bits in one buffer map (= buffer capacity B).
  static constexpr Bits kBufferMapWindowBits = 600;
  /// Head segment id: the source emits < 2^20 segments per hour.
  static constexpr Bits kBufferMapHeadBits = 20;
  static constexpr Bits kBufferMapBits = kBufferMapWindowBits + kBufferMapHeadBits;
  /// One DHT routing message: 10 bytes.
  static constexpr Bits kDhtRouteBits = 80;
  /// DHT reply / prefetch request ride in the same small packets.
  static constexpr Bits kDhtReplyBits = 80;
  static constexpr Bits kPrefetchRequestBits = 80;
  /// One media segment: 30 Kb (the paper writes "30 Kbp" per segment,
  /// 1024-based in its overhead arithmetic: 30 * 1024 bits).
  static constexpr Bits kSegmentBits = 30 * 1024;
  /// Per-segment-id cost inside a pull request.
  static constexpr Bits kSegmentRequestPerIdBits = 20;
  /// Ping/pong/join bookkeeping packets.
  static constexpr Bits kSmallPacketBits = 80;
};

/// Default size in bits of a message of the given type (a request
/// carrying q segment ids costs q * kSegmentRequestPerIdBits; callers
/// pass the multiple explicitly).
[[nodiscard]] Bits default_message_bits(MessageType type) noexcept;

}  // namespace continu::net
