#include "net/handoff.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace continu::net {

namespace {

std::uint32_t round_up_pow2(unsigned lanes) {
  if (lanes < 2) lanes = 2;
  if (lanes > 64) {
    throw std::invalid_argument("DeliveryLanes: lane count too large");
  }
  std::uint32_t n = 2;
  while (n < lanes) n <<= 1;
  return n;
}

}  // namespace

DeliveryLanes::DeliveryLanes(unsigned lanes)
    : lanes_(round_up_pow2(lanes)),
      lane_mask_(static_cast<std::uint32_t>(lanes_.size()) - 1),
      meta_(static_cast<std::uint32_t>(lanes_.size())) {}

std::uint32_t DeliveryLanes::Lane::acquire_slot() {
  if (free_head != kNoFree) {
    const std::uint32_t index = free_head;
    free_head = slot(index).next_free;
    return index;
  }
  if (slot_count > kSlotMask) {
    throw std::length_error("DeliveryLanes: hand-off slot pool exhausted");
  }
  if ((slot_count & (kBlockSize - 1)) == 0) {
    blocks.push_back(std::make_unique<Slot[]>(kBlockSize));
  }
  return slot_count++;
}

void DeliveryLanes::Lane::release_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  s.entry.action.reset();
  s.next_free = free_head;
  free_head = index;
}

void DeliveryLanes::enqueue(std::uint32_t to, bool filtered, SimTime when,
                            std::uint64_t seq, DeliveryAction action) {
  const std::uint32_t lane_index = to & lane_mask_;
  Lane& lane = lanes_[lane_index];
  const std::uint32_t index = lane.acquire_slot();
  Slot& s = lane.slot(index);
  s.entry.to = to;
  s.entry.filtered = filtered;
  s.entry.action = std::move(action);
  const std::uint64_t key = (seq << kSlotBits) | index;
  lane.heap.push_back(HeapEntry{when, key});
  std::push_heap(lane.heap.begin(), lane.heap.end(),
                 [](const HeapEntry& a, const HeapEntry& b) noexcept {
                   if (a.time != b.time) return a.time > b.time;
                   return a.key > b.key;
                 });
  ++size_;
  refresh_meta(lane_index);
}

void DeliveryLanes::refresh_meta(std::uint32_t lane_index) {
  const Lane& lane = lanes_[lane_index];
  if (lane.heap.empty()) {
    meta_.clear(lane_index);
  } else {
    meta_.update(lane_index, lane.heap.front().time,
                 lane.heap.front().key >> kSlotBits);
  }
}

bool DeliveryLanes::next_key(SimTime& time, std::uint64_t& seq) const {
  if (meta_.empty()) return false;
  const sim::MetaHeap::Top top = meta_.top();
  time = top.time;
  seq = top.key;
  return true;
}

void DeliveryLanes::collect_due(unsigned lane_index, SimTime time) {
  Lane& lane = lanes_[lane_index];
  const auto later = [](const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  };
  // `time` is the global barrier instant (the meta-heap minimum), so
  // no lane can hold anything earlier; pops surface this instant's
  // entries in ascending key = ascending sequence order.
  while (!lane.heap.empty() && lane.heap.front().time == time) {
    const HeapEntry top = lane.heap.front();
    std::pop_heap(lane.heap.begin(), lane.heap.end(), later);
    lane.heap.pop_back();
    lane.due.push_back(DueRef{top.time, top.key >> kSlotBits,
                             static_cast<std::uint32_t>(top.key & kSlotMask)});
  }
  assert(lane.heap.empty() || lane.heap.front().time > time);
}

void DeliveryLanes::collect_due_window(unsigned lane_index, SimTime limit) {
  Lane& lane = lanes_[lane_index];
  const auto later = [](const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  };
  // Heap pops surface (time, key) ascending, so the due list comes out
  // (time, seq)-sorted — ready for the windowed k-way merge.
  while (!lane.heap.empty() && lane.heap.front().time <= limit) {
    const HeapEntry top = lane.heap.front();
    std::pop_heap(lane.heap.begin(), lane.heap.end(), later);
    lane.heap.pop_back();
    lane.due.push_back(DueRef{top.time, top.key >> kSlotBits,
                             static_cast<std::uint32_t>(top.key & kSlotMask)});
  }
}

std::size_t DeliveryLanes::merge_due_window(std::vector<HandoffEntry>& out,
                                            std::vector<SimTime>& times) {
  std::size_t active = 0;
  std::size_t total = 0;
  for (Lane& lane : lanes_) {
    if (!lane.due.empty()) {
      ++active;
      total += lane.due.size();
    }
  }
  if (active == 0) return 0;
  out.reserve(out.size() + total);
  times.reserve(times.size() + total);
  // K-way merge by (time, seq) over the (time, seq)-sorted per-lane
  // due lists. Entries at one instant come out in global sequence
  // order — identical to the strict barrier's merge at that instant.
  std::vector<std::size_t> cursor(lanes_.size(), 0);
  for (std::size_t produced = 0; produced < total; ++produced) {
    std::size_t best_lane = lanes_.size();
    SimTime best_time = 0.0;
    std::uint64_t best_seq = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      const Lane& lane = lanes_[l];
      if (cursor[l] >= lane.due.size()) continue;
      const DueRef& ref = lane.due[cursor[l]];
      if (best_lane == lanes_.size() || ref.time < best_time ||
          (ref.time == best_time && ref.seq < best_seq)) {
        best_lane = l;
        best_time = ref.time;
        best_seq = ref.seq;
      }
    }
    Lane& lane = lanes_[best_lane];
    const DueRef ref = lane.due[cursor[best_lane]++];
    out.push_back(std::move(lane.slot(ref.slot).entry));
    times.push_back(ref.time);
    lane.release_slot(ref.slot);
  }
  size_ -= total;
  for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
    if (!lanes_[l].due.empty()) {
      lanes_[l].due.clear();
      refresh_meta(l);
    }
  }
  return active;
}

std::size_t DeliveryLanes::merge_due(std::vector<HandoffEntry>& out) {
  std::size_t active = 0;
  std::size_t total = 0;
  for (Lane& lane : lanes_) {
    if (!lane.due.empty()) {
      ++active;
      total += lane.due.size();
    }
  }
  if (active == 0) return 0;
  out.reserve(out.size() + total);
  // K-way merge by global sequence over the (already seq-sorted)
  // per-lane due lists: a linear scan over <= 64 lane heads per item.
  // The merged order IS the single-queue bucket's entry order —
  // sequences were assigned at enqueue, in schedule order.
  std::vector<std::size_t> cursor(lanes_.size(), 0);
  for (std::size_t produced = 0; produced < total; ++produced) {
    std::size_t best_lane = lanes_.size();
    std::uint64_t best_seq = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      const Lane& lane = lanes_[l];
      if (cursor[l] >= lane.due.size()) continue;
      const std::uint64_t seq = lane.due[cursor[l]].seq;
      if (best_lane == lanes_.size() || seq < best_seq) {
        best_lane = l;
        best_seq = seq;
      }
    }
    Lane& lane = lanes_[best_lane];
    const DueRef ref = lane.due[cursor[best_lane]++];
    out.push_back(std::move(lane.slot(ref.slot).entry));
    lane.release_slot(ref.slot);
  }
  size_ -= total;
  for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
    if (!lanes_[l].due.empty()) {
      lanes_[l].due.clear();
      refresh_meta(l);
    }
  }
  return active;
}

}  // namespace continu::net
