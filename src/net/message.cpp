#include "net/message.hpp"

namespace continu::net {

std::string_view message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::kBufferMap: return "buffer-map";
    case MessageType::kSegmentRequest: return "segment-request";
    case MessageType::kRequestNack: return "request-nack";
    case MessageType::kSegmentData: return "segment-data";
    case MessageType::kDhtRoute: return "dht-route";
    case MessageType::kDhtReply: return "dht-reply";
    case MessageType::kPrefetchRequest: return "prefetch-request";
    case MessageType::kPrefetchData: return "prefetch-data";
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kJoinNotify: return "join-notify";
    case MessageType::kHandover: return "handover";
  }
  return "unknown";
}

std::string_view traffic_class_name(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kControl: return "control";
    case TrafficClass::kRequest: return "request";
    case TrafficClass::kData: return "data";
    case TrafficClass::kPrefetch: return "prefetch";
    case TrafficClass::kMaintenance: return "maintenance";
  }
  return "unknown";
}

TrafficClass traffic_class_of(MessageType type) noexcept {
  switch (type) {
    case MessageType::kBufferMap:
      return TrafficClass::kControl;
    case MessageType::kSegmentRequest:
    case MessageType::kRequestNack:
      return TrafficClass::kRequest;
    case MessageType::kSegmentData:
      return TrafficClass::kData;
    case MessageType::kDhtRoute:
    case MessageType::kDhtReply:
    case MessageType::kPrefetchRequest:
    case MessageType::kPrefetchData:
      return TrafficClass::kPrefetch;
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kJoinNotify:
    case MessageType::kHandover:
      return TrafficClass::kMaintenance;
  }
  return TrafficClass::kMaintenance;
}

Bits default_message_bits(MessageType type) noexcept {
  switch (type) {
    case MessageType::kBufferMap: return WireCosts::kBufferMapBits;
    case MessageType::kSegmentRequest: return WireCosts::kSegmentRequestPerIdBits;
    case MessageType::kRequestNack: return WireCosts::kSmallPacketBits;
    case MessageType::kSegmentData: return WireCosts::kSegmentBits;
    case MessageType::kDhtRoute: return WireCosts::kDhtRouteBits;
    case MessageType::kDhtReply: return WireCosts::kDhtReplyBits;
    case MessageType::kPrefetchRequest: return WireCosts::kPrefetchRequestBits;
    case MessageType::kPrefetchData: return WireCosts::kSegmentBits;
    case MessageType::kPing:
    case MessageType::kPong:
    case MessageType::kJoinNotify:
    case MessageType::kHandover:
      return WireCosts::kSmallPacketBits;
  }
  return 0;
}

}  // namespace continu::net
