#pragma once
// Sharded delivery plumbing for the quantized network mode.
//
// In quantized mode the Network collects every delivery landing on one
// latency-grid point into a bucket and, at the bucket boundary, forks
// the batch across receiver shards. A handler that participates takes
// a DeliveryContext& instead of running bare: the context tells it
// which shard it is on, hands it the session-installed per-shard stats
// scratch, and buffers everything the handler may NOT do from a worker
// thread (event scheduling, network sends, cross-node writes) for the
// join to settle in shard order — the same deferred-emission contract
// the forked prepare-local and plan phases follow.
//
// DeliveryAction is the storage for such handlers: a move-only,
// small-buffer-optimized callable invoked as void(DeliveryContext&),
// mirroring sim::EventAction so buffering a delivery allocates nothing
// for inline-sized captures.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "util/types.hpp"

namespace continu::net {

class Network;
class DeliveryContext;

class DeliveryAction {
 public:
  /// Matches sim::EventAction::kInlineCapacity: the delivery handlers
  /// the session schedules top out at 48 capture bytes.
  static constexpr std::size_t kInlineCapacity = sim::EventAction::kInlineCapacity;

  DeliveryAction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, DeliveryAction> &&
                std::is_invocable_v<std::decay_t<F>&, DeliveryContext&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirroring EventAction at the send call sites.
  DeliveryAction(F&& f) {
    emplace(std::forward<F>(f));
  }

  DeliveryAction(DeliveryAction&& other) noexcept { move_from(other); }
  DeliveryAction& operator=(DeliveryAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  DeliveryAction(const DeliveryAction&) = delete;
  DeliveryAction& operator=(const DeliveryAction&) = delete;
  ~DeliveryAction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &OpsFor<D, /*Inline=*/true>::ops;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) = new D(std::forward<F>(f));
      ops_ = &OpsFor<D, /*Inline=*/false>::ops;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the held handler. Requires non-empty.
  void operator()(DeliveryContext& ctx) { ops_->invoke(buf_, ctx); }

  /// Invokes once and destroys (fused fire-and-free) — the bucket
  /// dispatch path. Requires non-empty.
  void consume(DeliveryContext& ctx) {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->consume(buf_, ctx);
  }

  [[nodiscard]] bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage, DeliveryContext& ctx);
    void (*consume)(void* storage, DeliveryContext& ctx);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inline_stored;
  };

  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D, bool Inline>
  struct OpsFor;

  template <typename D>
  struct OpsFor<D, true> {
    static D* self(void* p) noexcept { return std::launder(reinterpret_cast<D*>(p)); }
    static void invoke(void* p, DeliveryContext& ctx) { (*self(p))(ctx); }
    static void consume(void* p, DeliveryContext& ctx) {
      D* s = self(p);
      struct Guard {
        D* d;
        ~Guard() { d->~D(); }
      } guard{s};
      (*s)(ctx);
    }
    static void relocate(void* dst, void* src) noexcept {
      D* s = self(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr Ops ops = {&invoke, &consume, &relocate, &destroy, true};
  };

  template <typename D>
  struct OpsFor<D, false> {
    static D* held(void* p) noexcept {
      return *std::launder(reinterpret_cast<D**>(p));
    }
    static void invoke(void* p, DeliveryContext& ctx) { (*held(p))(ctx); }
    static void consume(void* p, DeliveryContext& ctx) {
      struct Guard {
        D* h;
        ~Guard() { delete h; }
      } guard{held(p)};
      (*guard.h)(ctx);
    }
    static void relocate(void* dst, void* src) noexcept {
      std::memcpy(dst, src, sizeof(D*));
    }
    static void destroy(void* p) noexcept { delete held(p); }
    static constexpr Ops ops = {&invoke, &consume, &relocate, &destroy, false};
  };

  void move_from(DeliveryAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// A sharded continuation recorded by DeliveryContext::forward — a
/// local (no wire charge, no liveness filter) delivery to run at
/// `when` on receiver `to`'s shard.
struct LocalForward {
  std::uint32_t to = 0;
  SimTime when = 0.0;
  DeliveryAction action;
};

/// Per-shard buffers a worker fills during a forked bucket dispatch;
/// the join drains them in shard order.
struct DeliveryShardScratch {
  /// Join-deferred operations: network sends, push relays — anything
  /// that touches shared engine state. Run directly (not scheduled) at
  /// the join, so the immediate-mode equivalent is an inline call.
  std::vector<sim::EventAction> deferred;
  /// Sharded continuations (stage-3 fluid-model deliveries).
  std::vector<LocalForward> forwards;
  /// Liveness-filter drops observed by this shard.
  std::uint64_t dropped = 0;
  void reset() noexcept {
    deferred.clear();
    forwards.clear();
    dropped = 0;
  }
};

/// Execution context handed to a sharded delivery handler.
///
/// Receiver-shard ownership contract: a handler invoked with a
/// parallel() context runs on a worker thread and may write ONLY the
/// receiving node's own state (buffers, in-flight tables, link-rate
/// estimators, neighbor supply fields, up/downlink bookings) plus the
/// per-shard scratch behind scratch(). Cross-node reads are limited to
/// state frozen for the whole bucket (liveness flags, inbound rates,
/// other nodes' buffer windows). Everything else — event scheduling,
/// network sends, cross-node writes, shared-RNG draws — goes through
/// defer()/forward(), which the join settles serially in shard order.
///
/// In continuous mode (and for the serial entries of a bucket) the
/// context is "immediate": defer() runs its argument inline and
/// forward() schedules directly, so a handler written against this API
/// executes bit-identically to its pre-context serial form.
class DeliveryContext {
 public:
  /// Shard index (0 in immediate mode).
  [[nodiscard]] std::size_t shard() const noexcept { return shard_; }

  /// True when running forked on a worker shard.
  [[nodiscard]] bool parallel() const noexcept { return scratch_buf_ != nullptr; }

  /// Session-installed per-shard stats scratch (the live SessionStats
  /// in immediate mode). Never null once hooks are installed.
  [[nodiscard]] void* scratch() const noexcept { return user_scratch_; }

  /// Defers `f` to the join (shard order, record order within the
  /// shard); runs it inline in immediate mode.
  template <typename F>
  void defer(F&& f) {
    if (scratch_buf_ != nullptr) {
      scratch_buf_->deferred.emplace_back(std::forward<F>(f));
    } else {
      f();
    }
  }

  /// Schedules a local sharded continuation for receiver `to` at
  /// absolute time `when` (snapped to the latency grid in quantized
  /// mode). No wire charge, no liveness filter — the handler guards
  /// its own aliveness like any local event. Defined in network.hpp
  /// (the immediate-mode path needs the full Network type).
  template <typename F>
  void forward(std::size_t to, SimTime when, F&& handler);

 private:
  friend class Network;
  DeliveryContext(Network* net, std::size_t shard, void* user_scratch,
                  DeliveryShardScratch* buf) noexcept
      : net_(net), shard_(shard), user_scratch_(user_scratch), scratch_buf_(buf) {}

  Network* net_;
  std::size_t shard_;
  void* user_scratch_;
  DeliveryShardScratch* scratch_buf_;
};

}  // namespace continu::net
