#pragma once
// Cross-shard delivery hand-off lanes for the sharded-queue engine.
//
// In quantized mode on the single-queue engine, deliveries landing on
// one grid instant collect in a bucket behind a proxy event. On the
// sharded engine there are no proxies: every hand-off is ranked by a
// sequence drawn from the simulator's global stream and parked in a
// per-lane slot-pool heap (lane = receiver & mask, so a receiver's
// deliveries never split across lanes and per-pair FIFO holds within
// a lane by sequence order). A MetaHeap over lane heads exposes the
// earliest pending (time, seq) — the barrier key the simulator's
// frontier loop interleaves with ordinary events.
//
// At a barrier the drain runs in two phases:
//   A (forkable) — each lane pops its due entries into a private,
//     seq-sorted list; lanes touch only their own heap/scratch, so the
//     pops run on the session executor under the shard_drain phase.
//   B (serial) — the per-lane lists merge by global sequence, which
//     reconstructs the EXACT entry order the single-queue engine's
//     bucket vector would hold (sequences are assigned at enqueue, in
//     schedule order). The merged batch feeds the unchanged
//     Network::dispatch_bucket, so everything downstream — receiver
//     grouping, shard decomposition, join settlement — is the same
//     code and the same bytes as the oracle engine.
//
// The lane heaps reuse the EventQueue pattern: 16-byte (time, key)
// heap entries over stable slot blocks, key = (seq << 24) | slot.
// Hand-offs are never cancelled, so there is no generation check.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/delivery.hpp"
#include "sim/sharded_queue.hpp"
#include "util/types.hpp"

namespace continu::net {

/// One delivery awaiting its grid instant: receiver, liveness-filter
/// class, and the handler. (Also the element of the single-queue
/// engine's buckets — hoisted out of Network so lanes can store it.)
struct HandoffEntry {
  std::uint32_t to = 0;
  bool filtered = true;  ///< wire message (liveness-checked) vs local
  DeliveryAction action;
};

class DeliveryLanes {
 public:
  /// Lane count rounds up to a power of two in [2, 64].
  explicit DeliveryLanes(unsigned lanes);
  DeliveryLanes(const DeliveryLanes&) = delete;
  DeliveryLanes& operator=(const DeliveryLanes&) = delete;

  [[nodiscard]] unsigned lane_count() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Parks a hand-off for receiver `to` at instant `when`, ranked by
  /// the caller-allocated global sequence. Serial only.
  void enqueue(std::uint32_t to, bool filtered, SimTime when, std::uint64_t seq,
               DeliveryAction action);

  /// Earliest pending (time, seq) across all lanes; false when empty.
  [[nodiscard]] bool next_key(SimTime& time, std::uint64_t& seq) const;

  /// Phase A: pops lane `lane`'s entries due exactly at `time` into its
  /// private due list. Touches only lane-local state — safe to fork
  /// one lane per executor shard.
  void collect_due(unsigned lane, SimTime time);

  /// Phase B (serial): merges every lane's due list by global sequence
  /// into `out` (appended in order), releases the slots, and refreshes
  /// the lane frontiers. Returns the number of lanes that contributed
  /// at least one entry (the barrier's active-lane count).
  std::size_t merge_due(std::vector<HandoffEntry>& out);

  /// Lax-window phase A: pops lane `lane`'s entries due at or BEFORE
  /// `limit` (possibly spanning several grid instants) into its due
  /// list, in (time, seq) order. Lane-local, forkable like
  /// collect_due.
  void collect_due_window(unsigned lane, SimTime limit);

  /// Lax-window phase B (serial): merges every lane's due list by
  /// (time, seq) into `out`, recording each entry's instant in `times`
  /// (parallel arrays). Within one instant the merged order is global
  /// sequence order — exactly the strict barrier's entry order — so a
  /// caller dispatching `out` instant-run by instant-run reproduces
  /// the strict per-instant batches, just collected in one windowed
  /// sweep. Returns the active-lane count for the whole window.
  std::size_t merge_due_window(std::vector<HandoffEntry>& out,
                               std::vector<SimTime>& times);

  /// Hand-offs currently parked.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  static constexpr unsigned kSlotBits = sim::EventQueue::kSlotBits;
  static constexpr std::uint32_t kSlotMask = sim::EventQueue::kSlotMask;
  static constexpr std::uint32_t kNoFree = 0xFFFFFFFFu;
  static constexpr std::size_t kBlockShift = 7;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;

  /// 16 bytes, min-heap on (time, key); key order at equal times is
  /// sequence order because the sequence occupies the high bits.
  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  ///< (seq << kSlotBits) | slot
  };

  struct Slot {
    HandoffEntry entry;
    std::uint32_t next_free = kNoFree;
  };

  /// Due reference produced by phase A: enough to merge and to find
  /// the record without touching another lane's state. `time` only
  /// matters to the windowed merge (strict barriers pop one instant).
  struct DueRef {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Lane {
    std::vector<std::unique_ptr<Slot[]>> blocks;
    std::vector<HeapEntry> heap;
    std::uint32_t free_head = kNoFree;
    std::uint32_t slot_count = 0;
    std::vector<DueRef> due;  ///< phase-A scratch, consumed by merge_due

    [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
      return blocks[index >> kBlockShift][index & (kBlockSize - 1)];
    }
    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t index) noexcept;
  };

  std::vector<Lane> lanes_;
  std::uint32_t lane_mask_ = 0;
  sim::MetaHeap meta_;
  std::size_t size_ = 0;

  void refresh_meta(std::uint32_t lane);
};

}  // namespace continu::net
