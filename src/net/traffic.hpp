#pragma once
// Global traffic accounting by class — feeds the control-overhead and
// pre-fetch-overhead metrics (paper Section 5.3 definitions 2 and 3).

#include <array>
#include <cstdint>

#include "net/message.hpp"
#include "util/types.hpp"

namespace continu::net {

class TrafficAccount {
 public:
  void charge(TrafficClass c, Bits bits, std::uint64_t messages = 1) noexcept;

  [[nodiscard]] Bits bits(TrafficClass c) const noexcept;
  [[nodiscard]] std::uint64_t messages(TrafficClass c) const noexcept;

  /// Control overhead: control bits / data bits (0 when no data yet).
  [[nodiscard]] double control_overhead() const noexcept;

  /// Pre-fetch overhead: (DHT routing + prefetch payload bits) / data bits.
  [[nodiscard]] double prefetch_overhead() const noexcept;

  /// Snapshot difference helper: *this - baseline (per class), used for
  /// per-round overhead tracks.
  [[nodiscard]] TrafficAccount since(const TrafficAccount& baseline) const noexcept;

  void clear() noexcept;

 private:
  std::array<Bits, kTrafficClassCount> bits_{};
  std::array<std::uint64_t, kTrafficClassCount> messages_{};
};

}  // namespace continu::net
