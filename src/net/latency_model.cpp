#include "net/latency_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace continu::net {

LatencyModel::LatencyModel(std::vector<double> ping_ms, double floor_ms,
                           double grid_ms)
    : ping_ms_(std::move(ping_ms)), floor_ms_(floor_ms), grid_ms_(grid_ms) {
  if (ping_ms_.empty()) {
    throw std::invalid_argument("LatencyModel: need at least one node");
  }
  if (floor_ms_ < 0.0) {
    throw std::invalid_argument("LatencyModel: floor must be non-negative");
  }
  if (grid_ms_ < 0.0) {
    throw std::invalid_argument("LatencyModel: grid must be non-negative");
  }
}

LatencyModel LatencyModel::from_trace(const trace::TraceSnapshot& snapshot,
                                      double floor_ms, double grid_ms) {
  std::vector<double> pings;
  pings.reserve(snapshot.node_count());
  for (const auto& node : snapshot.nodes()) {
    pings.push_back(node.ping_ms);
  }
  return LatencyModel(std::move(pings), floor_ms, grid_ms);
}

double LatencyModel::quantize_up_ms(double ms) const {
  if (grid_ms_ <= 0.0) return ms;
  // ceil snaps strictly-between values to the NEXT point and leaves
  // exact grid points alone (ms/grid is integral there).
  return std::ceil(ms / grid_ms_) * grid_ms_;
}

double LatencyModel::latency_ms(std::size_t a, std::size_t b) const {
  const double diff = std::abs(ping_ms_.at(a) - ping_ms_.at(b));
  return quantize_up_ms(std::max(diff, floor_ms_));
}

SimTime LatencyModel::latency_s(std::size_t a, std::size_t b) const {
  return latency_ms(a, b) / 1000.0;
}

SimTime LatencyModel::rtt_s(std::size_t a, std::size_t b) const {
  return 2.0 * latency_s(a, b);
}

double LatencyModel::average_latency_ms() const {
  const std::size_t n = ping_ms_.size();
  if (n < 2) return quantize_up_ms(floor_ms_);
  double total = 0.0;
  std::size_t pairs = 0;
  if (n <= 512) {
    // Exact for small n.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        total += latency_ms(i, j);
        ++pairs;
      }
    }
  } else {
    // Fixed-size uniform pair sample, deterministically seeded from n
    // alone: the estimate is a pure function of the ping vector, and
    // the sample size no longer cliffs at the n = 513 stride jump the
    // old lattice sweep had. The tiny modulo bias (n << 2^64) is the
    // same for every platform and run.
    constexpr std::size_t kSamplePairs = 4096;
    std::uint64_t seed =
        0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(n) * 0xbf58476d1ce4e5b9ULL);
    for (std::size_t k = 0; k < kSamplePairs; ++k) {
      const std::size_t i =
          static_cast<std::size_t>(util::splitmix64(seed) % n);
      std::size_t j =
          static_cast<std::size_t>(util::splitmix64(seed) % (n - 1));
      if (j >= i) ++j;  // uniform over j != i
      total += latency_ms(i, j);
      ++pairs;
    }
  }
  return pairs == 0 ? quantize_up_ms(floor_ms_) : total / static_cast<double>(pairs);
}

std::size_t LatencyModel::add_node(double ping_ms) {
  ping_ms_.push_back(ping_ms);
  return ping_ms_.size() - 1;
}

}  // namespace continu::net
