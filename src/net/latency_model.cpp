#include "net/latency_model.hpp"

#include <cmath>
#include <stdexcept>

namespace continu::net {

LatencyModel::LatencyModel(std::vector<double> ping_ms, double floor_ms)
    : ping_ms_(std::move(ping_ms)), floor_ms_(floor_ms) {
  if (ping_ms_.empty()) {
    throw std::invalid_argument("LatencyModel: need at least one node");
  }
  if (floor_ms_ < 0.0) {
    throw std::invalid_argument("LatencyModel: floor must be non-negative");
  }
}

LatencyModel LatencyModel::from_trace(const trace::TraceSnapshot& snapshot, double floor_ms) {
  std::vector<double> pings;
  pings.reserve(snapshot.node_count());
  for (const auto& node : snapshot.nodes()) {
    pings.push_back(node.ping_ms);
  }
  return LatencyModel(std::move(pings), floor_ms);
}

double LatencyModel::latency_ms(std::size_t a, std::size_t b) const {
  const double diff = std::abs(ping_ms_.at(a) - ping_ms_.at(b));
  return std::max(diff, floor_ms_);
}

SimTime LatencyModel::latency_s(std::size_t a, std::size_t b) const {
  return latency_ms(a, b) / 1000.0;
}

SimTime LatencyModel::rtt_s(std::size_t a, std::size_t b) const {
  return 2.0 * latency_s(a, b);
}

double LatencyModel::average_latency_ms() const {
  const std::size_t n = ping_ms_.size();
  if (n < 2) return floor_ms_;
  // Exact for small n; strided sampling beyond that keeps this O(n).
  double total = 0.0;
  std::size_t pairs = 0;
  if (n <= 512) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        total += latency_ms(i, j);
        ++pairs;
      }
    }
  } else {
    const std::size_t stride = n / 512 + 1;
    for (std::size_t i = 0; i < n; i += stride) {
      for (std::size_t j = i + 1; j < n; j += stride) {
        total += latency_ms(i, j);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? floor_ms_ : total / static_cast<double>(pairs);
}

std::size_t LatencyModel::add_node(double ping_ms) {
  ping_ms_.push_back(ping_ms);
  return ping_ms_.size() - 1;
}

}  // namespace continu::net
