#include "dht/peer_table.hpp"

#include <stdexcept>

namespace continu::dht {

PeerTable::PeerTable(const IdSpace& space, NodeId owner)
    : space_(&space), owner_(owner), slots_(space.levels()) {
  if (static_cast<std::uint64_t>(owner) >= space.size()) {
    throw std::invalid_argument("PeerTable: owner outside ID space");
  }
}

unsigned PeerTable::levels() const noexcept {
  return static_cast<unsigned>(slots_.size());
}

std::optional<DhtPeer> PeerTable::peer_at(unsigned level) const {
  if (level == 0 || level > slots_.size()) return std::nullopt;
  const DhtPeer& slot = slots_[level - 1];
  if (!occupied(slot)) return std::nullopt;
  return slot;
}

std::vector<DhtPeer> PeerTable::peers() const {
  std::vector<DhtPeer> out;
  for (const auto& slot : slots_) {
    if (occupied(slot)) out.push_back(slot);
  }
  return out;
}

bool PeerTable::offer(NodeId candidate, double latency_ms, SimTime now) {
  if (candidate == owner_) return false;
  const unsigned level = space_->level_of(owner_, candidate);
  if (level == 0 || level > slots_.size()) return false;
  DhtPeer& slot = slots_[level - 1];
  const auto lat = static_cast<float>(latency_ms);
  const auto at = static_cast<float>(now);
  if (!occupied(slot)) {
    slot = DhtPeer{candidate, lat, at};
    return true;
  }
  if (slot.id == candidate) {
    slot.latency_ms = lat;
    slot.refreshed_at = at;
    return false;
  }
  // Replacement policy: strictly fresher information wins; at equal
  // freshness prefer the lower-latency peer. This keeps the table
  // converging toward live, nearby peers purely from overhearing.
  // Compared in float space so same-instant offers still tie exactly.
  const bool fresher = at > slot.refreshed_at;
  const bool closer = lat < slot.latency_ms;
  if (fresher || (at == slot.refreshed_at && closer)) {
    slot = DhtPeer{candidate, lat, at};
    return true;
  }
  return false;
}

void PeerTable::evict(NodeId node) {
  for (auto& slot : slots_) {
    if (slot.id == node) {
      slot = DhtPeer{};
    }
  }
}

std::optional<NodeId> PeerTable::next_hop(NodeId target) const {
  // Greedy rule from the paper: choose the populated peer clockwise
  // closest to the target, provided it improves on the owner — i.e. its
  // clockwise distance TO the target is strictly smaller than ours.
  const std::uint64_t own_dist = space_->distance(owner_, target);
  std::optional<NodeId> best;
  std::uint64_t best_dist = own_dist;
  for (const auto& slot : slots_) {
    if (!occupied(slot)) continue;
    const std::uint64_t d = space_->distance(slot.id, target);
    if (d < best_dist) {
      best_dist = d;
      best = slot.id;
    }
  }
  return best;
}

std::optional<NodeId> PeerTable::closest_clockwise_peer() const {
  std::optional<NodeId> best;
  std::uint64_t best_dist = space_->size();
  for (const auto& slot : slots_) {
    if (!occupied(slot)) continue;
    const std::uint64_t d = space_->distance(owner_, slot.id);
    if (d != 0 && d < best_dist) {
      best_dist = d;
      best = slot.id;
    }
  }
  return best;
}

bool PeerTable::invariants_hold() const {
  for (unsigned level = 1; level <= slots_.size(); ++level) {
    const DhtPeer& slot = slots_[level - 1];
    if (!occupied(slot)) continue;
    if (space_->level_of(owner_, slot.id) != level) return false;
  }
  return true;
}

}  // namespace continu::dht
