#include "dht/id_space.hpp"

#include <cmath>
#include <stdexcept>

namespace continu::dht {

IdSpace::IdSpace(std::uint64_t size) : size_(size), levels_(util::dht_levels(size)) {
  if (!util::is_power_of_two(size) || size < 2) {
    throw std::invalid_argument("IdSpace: size must be a power of two >= 2");
  }
}

unsigned IdSpace::level_of(NodeId node, NodeId peer) const noexcept {
  const std::uint64_t d = distance(node, peer);
  if (d == 0) return 0;
  // d in [2^(i-1), 2^i)  =>  i = floor(log2(d)) + 1.
  return util::floor_log2(d) + 1;
}

std::pair<NodeId, NodeId> IdSpace::level_arc(NodeId node, unsigned level) const noexcept {
  const std::uint64_t lo_off = 1ULL << (level - 1);
  const std::uint64_t hi_off = 1ULL << level;
  const auto lo = static_cast<NodeId>(util::ring_add(node, lo_off, size_));
  const auto hi = static_cast<NodeId>(util::ring_add(node, hi_off % size_, size_));
  return {lo, hi};
}

double IdSpace::hop_upper_bound() const noexcept {
  return std::log(static_cast<double>(size_)) / std::log(4.0 / 3.0);
}

}  // namespace continu::dht
