#pragma once
// Standalone DHT routing experiment (paper Figure 3): build a ring of n
// joined nodes inside an ID space of size N, give each node a peer table
// populated the way a real run would (one random suitable node per
// level, when one exists), then measure average greedy-routing hops and
// query success rate over random lookups.
//
// "Success" means the query reaches the true owner (counter-clockwise
// closest node) of the target. Failures happen on sparse rings when a
// node has no populated peer that improves on its own distance yet is
// not the owner itself.

#include <cstdint>
#include <vector>

#include "dht/id_space.hpp"
#include "dht/peer_table.hpp"
#include "dht/ring_directory.hpp"
#include "util/rng.hpp"

namespace continu::dht {

struct RoutingStats {
  double average_hops = 0.0;
  double success_rate = 0.0;
  std::uint64_t max_hops = 0;
  std::uint64_t queries = 0;
};

struct RouteResult {
  bool success = false;
  std::uint64_t hops = 0;
  NodeId terminal = kInvalidNode;
  /// All nodes the message visited (including start and terminal).
  std::vector<NodeId> path;
};

class RoutingExperiment {
 public:
  /// Creates a ring of `node_count` distinct random IDs within `space`.
  /// Each node's peer table gets, per level, a uniformly random member
  /// of that level's arc when at least one exists. `fill_probability`
  /// (default 1) lets tests model partially-filled tables.
  RoutingExperiment(const IdSpace& space, std::size_t node_count, util::Rng& rng,
                    double fill_probability = 1.0);

  /// Routes greedily from `start` toward `target`; hop cap is the
  /// appendix bound rounded up (a correct greedy walk never exceeds it).
  [[nodiscard]] RouteResult route(NodeId start, NodeId target) const;

  /// Runs `queries` random (start, target) lookups.
  [[nodiscard]] RoutingStats run(std::size_t queries, util::Rng& rng) const;

  [[nodiscard]] const RingDirectory& directory() const noexcept { return directory_; }
  [[nodiscard]] const std::vector<NodeId>& node_ids() const noexcept { return ids_; }
  [[nodiscard]] const PeerTable& table_of(NodeId id) const;

 private:
  const IdSpace* space_;
  RingDirectory directory_;
  std::vector<NodeId> ids_;
  // Peer table per member, indexed by position in ids_.
  std::vector<PeerTable> tables_;
  std::vector<std::size_t> index_of_;  // NodeId -> position (or npos)
};

}  // namespace continu::dht
