#include "dht/ring_directory.hpp"

#include <stdexcept>

namespace continu::dht {

RingDirectory::RingDirectory(const IdSpace& space) : space_(&space) {}

void RingDirectory::insert(NodeId id) {
  if (static_cast<std::uint64_t>(id) >= space_->size()) {
    throw std::invalid_argument("RingDirectory: id outside ID space");
  }
  if (!members_.insert(id).second) {
    throw std::invalid_argument("RingDirectory: id already occupied");
  }
}

void RingDirectory::erase(NodeId id) { members_.erase(id); }

bool RingDirectory::contains(NodeId id) const { return members_.count(id) != 0; }

std::optional<NodeId> RingDirectory::owner_of(NodeId target) const {
  if (members_.empty()) return std::nullopt;
  // Counter-clockwise closest: the largest member <= target, wrapping
  // to the overall largest member when none is <= target.
  auto it = members_.upper_bound(target);
  if (it == members_.begin()) {
    return *members_.rbegin();
  }
  --it;
  return *it;
}

std::optional<NodeId> RingDirectory::successor_of(NodeId id) const {
  if (members_.empty()) return std::nullopt;
  if (members_.size() == 1 && members_.count(id) != 0) return std::nullopt;
  auto it = members_.upper_bound(id);
  if (it == members_.end()) it = members_.begin();
  if (*it == id) return std::nullopt;
  return *it;
}

std::optional<NodeId> RingDirectory::predecessor_of(NodeId id) const {
  if (members_.empty()) return std::nullopt;
  if (members_.size() == 1 && members_.count(id) != 0) return std::nullopt;
  auto it = members_.lower_bound(id);
  if (it == members_.begin()) {
    const NodeId last = *members_.rbegin();
    return (last == id) ? std::nullopt : std::optional<NodeId>(last);
  }
  --it;
  return *it;
}

std::vector<NodeId> RingDirectory::members() const {
  return {members_.begin(), members_.end()};
}

}  // namespace continu::dht
