#pragma once
// Level-structured DHT peer table (the "DHT Peers" third of the paper's
// Peer Table, Figure 2).
//
// Node n keeps up to log N peers, one per level; the level-i slot may
// hold ANY node in [n + 2^(i-1), n + 2^i) — this freedom is what makes
// the DHT "loosely organized". Slots are refreshed opportunistically
// from overheard nodes; an empty slot simply means no suitable node has
// been overheard yet (possible when the ring is sparse).

#include <optional>
#include <vector>

#include "dht/id_space.hpp"
#include "util/types.hpp"

namespace continu::dht {

/// Float-packed (12 bytes; a slot used to cost 32 as
/// std::optional<struct-of-doubles>). With ~log N slots per node this
/// is a first-order term of the per-node DHT budget.
struct DhtPeer {
  NodeId id = kInvalidNode;
  float latency_ms = 0.0f;
  /// Simulated time the entry was last confirmed; stale entries lose
  /// replacement fights. Narrowed SimTime — freshness comparisons run
  /// in float space so same-instant offers still tie.
  float refreshed_at = 0.0f;
};

class PeerTable {
 public:
  PeerTable(const IdSpace& space, NodeId owner);

  [[nodiscard]] NodeId owner() const noexcept { return owner_; }
  [[nodiscard]] unsigned levels() const noexcept;

  /// The peer at `level` (1-based), if any.
  [[nodiscard]] std::optional<DhtPeer> peer_at(unsigned level) const;

  /// All populated peers, ascending by level.
  [[nodiscard]] std::vector<DhtPeer> peers() const;

  /// Offers a candidate (typically an overheard node). It is installed
  /// if its level slot is empty, or refreshes/replaces the incumbent
  /// (newer information wins; on equal freshness lower latency wins).
  /// Returns true if the table changed.
  bool offer(NodeId candidate, double latency_ms, SimTime now);

  /// Drops `node` from whatever slot holds it (failure handling).
  void evict(NodeId node);

  /// Clockwise-closest populated peer to `target` that is strictly
  /// closer (clockwise) than the owner itself — the greedy next hop.
  /// Empty when no peer improves on the owner, i.e. routing terminates.
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId target) const;

  /// Closest clockwise peer (the level-1-upwards nearest populated
  /// slot); defines the owner's backup responsibility arc [owner, n1).
  [[nodiscard]] std::optional<NodeId> closest_clockwise_peer() const;

  /// Invariant check: every populated slot's peer lies in its level arc.
  [[nodiscard]] bool invariants_hold() const;

  /// Estimated footprint (slot capacity) — memory sizing.
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + slots_.capacity() * sizeof(DhtPeer);
  }

 private:
  [[nodiscard]] static bool occupied(const DhtPeer& slot) noexcept {
    return slot.id != kInvalidNode;
  }

  const IdSpace* space_;
  NodeId owner_;
  /// index = level - 1; id == kInvalidNode marks an empty slot (leaner
  /// than optional, which pads each 12-byte entry to 16+).
  std::vector<DhtPeer> slots_;
};

}  // namespace continu::dht
