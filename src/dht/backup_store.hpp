#pragma once
// VoD Data Backup (paper Section 4.3, eq. 5 and Figure 1).
//
// Node n, whose closest clockwise DHT peer is n1, must keep every
// received segment whose hash(id * i) mod N falls in [n, n1) for some
// replica index i in 1..k. With k replicas per segment scattered by the
// multiplicative hash, each segment is expected on k distinct nodes.
// Old segments are garbage-collected once they fall behind the stream's
// trailing edge (they can no longer help anyone meet a deadline).

#include <optional>
#include <vector>

#include "dht/id_space.hpp"
#include "util/flat_map.hpp"
#include "util/ring_math.hpp"
#include "util/types.hpp"

namespace continu::dht {

class BackupStore {
 public:
  /// `replicas` is the paper's k (default 4).
  BackupStore(const IdSpace& space, NodeId owner, unsigned replicas);

  [[nodiscard]] NodeId owner() const noexcept { return owner_; }
  [[nodiscard]] unsigned replicas() const noexcept { return replicas_; }

  /// True iff this node is responsible for segment `id` given its
  /// current responsibility arc [owner, arc_end) — i.e. some replica
  /// target lands in the arc. arc_end == owner means "whole ring"
  /// (paper: node is its own closest peer; degenerate 1-node overlay).
  [[nodiscard]] bool responsible_for(SegmentId id, NodeId arc_end) const noexcept;

  /// Offers a received segment: stores it iff responsible. Returns
  /// whether it was stored.
  bool offer(SegmentId id, NodeId arc_end);

  /// Force-stores a segment regardless of responsibility (handover from
  /// a leaving predecessor).
  void store(SegmentId id);

  [[nodiscard]] bool has(SegmentId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }

  /// Drops every segment with id < `horizon` (stale for playback).
  /// Returns how many were dropped.
  std::size_t expire_before(SegmentId horizon);

  /// Extracts the full contents, ascending (graceful-leave handover —
  /// sorted so the heir stores in the same order the old std::set
  /// yielded).
  [[nodiscard]] std::vector<SegmentId> take_all();

  /// Contents ascending.
  [[nodiscard]] std::vector<SegmentId> contents() const;

  /// Estimated footprint — memory sizing. The flat set charges 9 bytes
  /// per slot at capacity (a red-black tree node cost 40 per element).
  [[nodiscard]] std::size_t approx_bytes() const noexcept {
    return sizeof(*this) + segments_.approx_bytes();
  }

 private:
  const IdSpace* space_;
  NodeId owner_;
  unsigned replicas_;
  util::FlatSet<SegmentId> segments_;
};

}  // namespace continu::dht
