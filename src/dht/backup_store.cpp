#include "dht/backup_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace continu::dht {

BackupStore::BackupStore(const IdSpace& space, NodeId owner, unsigned replicas)
    : space_(&space), owner_(owner), replicas_(replicas) {
  if (replicas == 0) {
    throw std::invalid_argument("BackupStore: need at least one replica");
  }
}

bool BackupStore::responsible_for(SegmentId id, NodeId arc_end) const noexcept {
  for (unsigned i = 1; i <= replicas_; ++i) {
    const NodeId target = space_->backup_target(id, i);
    if (util::in_clockwise_arc(target, owner_, arc_end, space_->size())) {
      return true;
    }
  }
  return false;
}

bool BackupStore::offer(SegmentId id, NodeId arc_end) {
  if (!responsible_for(id, arc_end)) return false;
  segments_.insert(id);
  return true;
}

void BackupStore::store(SegmentId id) { segments_.insert(id); }

bool BackupStore::has(SegmentId id) const noexcept { return segments_.count(id) != 0; }

std::size_t BackupStore::expire_before(SegmentId horizon) {
  // Unordered sweep (idempotent predicate — safe under the FlatSet
  // erase-during-iteration contract). The store holds a handful of live
  // segments, so scanning capacity beats keeping a tree ordered.
  std::size_t dropped = 0;
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (*it < horizon) {
      it = segments_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  segments_.maybe_shrink();
  return dropped;
}

std::vector<SegmentId> BackupStore::take_all() {
  std::vector<SegmentId> out(segments_.begin(), segments_.end());
  std::sort(out.begin(), out.end());
  segments_.clear();
  segments_.shrink_to_fit();
  return out;
}

std::vector<SegmentId> BackupStore::contents() const {
  std::vector<SegmentId> out(segments_.begin(), segments_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace continu::dht
