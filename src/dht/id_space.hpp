#pragma once
// DHT identifier space: a clockwise ring of size N (power of two).
//
// Terminology follows the paper (Section 4.1): node n's level-i DHT peer
// may be any node whose ID lies in [n + 2^(i-1), n + 2^i) mod N, for
// i = 1..log N. Responsibility for a target t falls on the node
// counter-clockwise closest to t (i.e. t's "predecessor", inclusive).

#include <cstdint>
#include <utility>

#include "util/hash.hpp"
#include "util/ring_math.hpp"
#include "util/types.hpp"

namespace continu::dht {

class IdSpace {
 public:
  /// N must be a power of two >= 2 (the paper uses N = 8192).
  explicit IdSpace(std::uint64_t size);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] unsigned levels() const noexcept { return levels_; }

  /// Clockwise distance from a to b.
  [[nodiscard]] std::uint64_t distance(NodeId a, NodeId b) const noexcept {
    return util::clockwise_distance(a, b, size_);
  }

  /// Level of peer `peer` relative to `node`: the i such that
  /// peer in [node + 2^(i-1), node + 2^i). Returns 0 for peer == node.
  [[nodiscard]] unsigned level_of(NodeId node, NodeId peer) const noexcept;

  /// Half-open clockwise arc [lo, hi) of level i relative to `node`.
  [[nodiscard]] std::pair<NodeId, NodeId> level_arc(NodeId node, unsigned level) const noexcept;

  /// DHT target of replica `replica` (1-based) for segment `id`:
  /// hash(id * replica) mod N (paper eq. 5).
  [[nodiscard]] NodeId backup_target(SegmentId id, unsigned replica) const noexcept {
    return static_cast<NodeId>(util::backup_target(id, replica, size_));
  }

  /// Theoretical routing-hop upper bound from the paper's appendix:
  /// log2(N) / log2(4/3) ~= 2.41 * log2(N).
  [[nodiscard]] double hop_upper_bound() const noexcept;

 private:
  std::uint64_t size_;
  unsigned levels_;
};

}  // namespace continu::dht
