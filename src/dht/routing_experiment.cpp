#include "dht/routing_experiment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace continu::dht {

namespace {
constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();
}

RoutingExperiment::RoutingExperiment(const IdSpace& space, std::size_t node_count,
                                     util::Rng& rng, double fill_probability)
    : space_(&space), directory_(space) {
  if (node_count == 0 || node_count > space.size()) {
    throw std::invalid_argument("RoutingExperiment: node_count out of range");
  }
  // Sample node_count distinct IDs uniformly from [0, N).
  std::vector<std::size_t> picks = rng.sample_indices(space.size(), node_count);
  ids_.reserve(node_count);
  for (const auto p : picks) {
    ids_.push_back(static_cast<NodeId>(p));
  }
  std::sort(ids_.begin(), ids_.end());
  index_of_.assign(space.size(), kNoIndex);
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    directory_.insert(ids_[i]);
    index_of_[ids_[i]] = i;
  }

  // Populate peer tables: per level, pick a uniformly random member of
  // the level arc (if any). The sorted id array makes arc membership a
  // pair of binary searches.
  tables_.reserve(node_count);
  auto members_in_arc = [&](NodeId lo, NodeId hi) {
    // Collect member ids in clockwise arc [lo, hi); may wrap.
    std::vector<NodeId> out;
    auto push_range = [&](NodeId a, NodeId b) {
      // [a, b) with a <= b in plain integer order.
      auto first = std::lower_bound(ids_.begin(), ids_.end(), a);
      auto last = std::lower_bound(ids_.begin(), ids_.end(), b);
      out.insert(out.end(), first, last);
    };
    if (lo <= hi) {
      push_range(lo, hi);
    } else {
      push_range(lo, static_cast<NodeId>(space_->size()));
      push_range(0, hi);
    }
    return out;
  };

  for (const NodeId id : ids_) {
    PeerTable table(*space_, id);
    for (unsigned level = 1; level <= space_->levels(); ++level) {
      if (fill_probability < 1.0 && !rng.next_bool(fill_probability)) continue;
      const auto [lo, hi] = space_->level_arc(id, level);
      auto candidates = members_in_arc(lo, hi);
      // The owner cannot be its own peer (matters only for tiny rings).
      candidates.erase(std::remove(candidates.begin(), candidates.end(), id),
                       candidates.end());
      if (candidates.empty()) continue;
      const NodeId pick = candidates[rng.next_below(candidates.size())];
      table.offer(pick, /*latency_ms=*/1.0, /*now=*/0.0);
    }
    tables_.push_back(std::move(table));
  }
}

const PeerTable& RoutingExperiment::table_of(NodeId id) const {
  const std::size_t idx = index_of_.at(id);
  if (idx == kNoIndex) {
    throw std::invalid_argument("RoutingExperiment: unknown node id");
  }
  return tables_[idx];
}

RouteResult RoutingExperiment::route(NodeId start, NodeId target) const {
  RouteResult result;
  const auto truth = directory_.owner_of(target);
  if (!truth.has_value()) return result;

  const auto hop_cap = static_cast<std::uint64_t>(std::ceil(space_->hop_upper_bound())) + 2;
  NodeId current = start;
  result.path.push_back(current);
  while (result.hops <= hop_cap) {
    if (current == *truth) {
      result.success = true;
      result.terminal = current;
      return result;
    }
    const auto& table = tables_[index_of_[current]];
    const auto next = table.next_hop(target);
    if (!next.has_value()) {
      // Greedy termination: no populated peer is closer. The walk ends
      // here; it succeeded only if this IS the owner (checked above).
      result.terminal = current;
      return result;
    }
    current = *next;
    result.path.push_back(current);
    ++result.hops;
  }
  // Hop cap exceeded — counts as failure (cannot happen with correct
  // greedy progress; kept as a safety net and asserted in tests).
  result.terminal = current;
  return result;
}

RoutingStats RoutingExperiment::run(std::size_t queries, util::Rng& rng) const {
  RoutingStats stats;
  if (ids_.empty() || queries == 0) return stats;
  std::uint64_t total_hops = 0;
  std::uint64_t successes = 0;
  for (std::size_t q = 0; q < queries; ++q) {
    const NodeId start = ids_[rng.next_below(ids_.size())];
    const auto target = static_cast<NodeId>(rng.next_below(space_->size()));
    const RouteResult r = route(start, target);
    total_hops += r.hops;
    stats.max_hops = std::max(stats.max_hops, r.hops);
    if (r.success) ++successes;
  }
  stats.queries = queries;
  stats.average_hops = static_cast<double>(total_hops) / static_cast<double>(queries);
  stats.success_rate = static_cast<double>(successes) / static_cast<double>(queries);
  return stats;
}

}  // namespace continu::dht
