#pragma once
// Global view of which IDs are occupied — the simulation's omniscient
// directory. Protocol code never consults it for routing decisions; it
// exists to (a) assign unique IDs at join, (b) define ground truth for
// "the node counter-clockwise closest to a target" when verifying
// routing outcomes, and (c) drive handover on graceful leave.

#include <optional>
#include <set>
#include <vector>

#include "dht/id_space.hpp"
#include "util/types.hpp"

namespace continu::dht {

class RingDirectory {
 public:
  explicit RingDirectory(const IdSpace& space);

  /// Registers an occupied ID. Throws if already occupied.
  void insert(NodeId id);

  /// Removes an ID (leave/failure). No-op when absent.
  void erase(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// The node responsible for `target`: counter-clockwise closest member
  /// (a member exactly at `target` owns it). nullopt when empty.
  [[nodiscard]] std::optional<NodeId> owner_of(NodeId target) const;

  /// Clockwise successor of `id` among members, excluding `id` itself.
  [[nodiscard]] std::optional<NodeId> successor_of(NodeId id) const;

  /// Counter-clockwise predecessor of `id` among members, excluding
  /// `id` itself — the handover destination on graceful leave.
  [[nodiscard]] std::optional<NodeId> predecessor_of(NodeId id) const;

  /// All members ascending by ID.
  [[nodiscard]] std::vector<NodeId> members() const;

  [[nodiscard]] const IdSpace& space() const noexcept { return *space_; }

 private:
  const IdSpace* space_;
  std::set<NodeId> members_;
};

}  // namespace continu::dht
