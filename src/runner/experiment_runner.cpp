#include "runner/experiment_runner.hpp"

#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/hash.hpp"

namespace continu::runner {

std::uint64_t replication_seed(std::uint64_t base, std::size_t index) {
  // Two mix rounds decorrelate (base, index) pairs; +1 keeps index 0 from
  // collapsing to mix64(mix64(base)) == replication 0 of a shifted base.
  return util::mix64(util::mix64(base) ^ (static_cast<std::uint64_t>(index) + 1));
}

std::vector<ReplicationSpec> replicate(const ReplicationSpec& base, std::size_t count,
                                       ReplicateOptions options) {
  if (options.vary_trace_seed && base.snapshot) {
    throw std::invalid_argument(
        "replicate: vary_trace_seed is meaningless with a pre-built snapshot "
        "(the snapshot pins the topology)");
  }
  std::vector<ReplicationSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ReplicationSpec spec = base;
    spec.config.seed = replication_seed(base.config.seed, i);
    if (options.vary_trace_seed) {
      spec.trace.seed = replication_seed(base.trace.seed, i);
    }
    spec.label = base.label.empty() ? ("#" + std::to_string(i))
                                    : (base.label + " #" + std::to_string(i));
    specs.push_back(std::move(spec));
  }
  return specs;
}

ReplicationSpec spec_for(const Scenario& scenario, std::uint64_t seed) {
  ReplicationSpec spec;
  spec.label = scenario.name;
  spec.config = scenario.make_config(seed);
  spec.trace = scenario.make_trace();
  spec.duration = scenario.duration;
  spec.stable_from = scenario.stable_from;
  return spec;
}

ExperimentRunner::ExperimentRunner(unsigned jobs, unsigned session_threads)
    : jobs_(jobs), session_threads_(session_threads) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  const unsigned per_session = std::max(1u, session_threads_);
  if (per_session > 1) {
    // Arbitrate: replication workers multiply the intra-session pool,
    // so cap jobs at hw / threads (the explicit intra-session width
    // keeps what it asked for; replication sharding absorbs the cut).
    const unsigned fit = std::max(1u, hw / per_session);
    jobs_ = jobs_ == 0 ? fit : std::min(jobs_, fit);
  } else if (jobs_ == 0) {
    jobs_ = hw;
  }
}

ReplicationResult ExperimentRunner::run_one(const ReplicationSpec& spec) {
  const trace::TraceSnapshot generated =
      spec.snapshot ? trace::TraceSnapshot{} : trace::generate_snapshot(spec.trace);
  const trace::TraceSnapshot& snapshot = spec.snapshot ? *spec.snapshot : generated;
  core::Session session(spec.config, snapshot);
  session.run(spec.duration);

  ReplicationResult out;
  out.label = spec.label;
  out.seed = spec.config.seed;
  out.stable_continuity = session.continuity().stable_mean(spec.stable_from);
  out.stabilization_time =
      session.continuity().stabilization_time(0.9 * out.stable_continuity);
  out.continuity_index =
      session.collector().has("continuity_index")
          ? session.collector().mean_from("continuity_index", spec.stable_from)
          : 0.0;
  out.control_overhead = session.traffic().control_overhead();
  out.prefetch_overhead = session.traffic().prefetch_overhead();
  out.alive_at_end = session.alive_count();
  out.stats = session.stats();
  out.continuity = session.continuity();
  out.collector = session.collector();
  out.obs = session.obs_report();  // null unless config.obs enabled a pillar
  return out;
}

std::vector<ReplicationResult> ExperimentRunner::run_all(
    const std::vector<ReplicationSpec>& specs) const {
  std::vector<ReplicationResult> results(specs.size());
  if (specs.empty()) return results;

  // Intra-session width override (0 = each spec keeps its own). The
  // threads value never changes results, only which cores execute a
  // session's round batches.
  const unsigned session_threads = session_threads_;
  const auto run_spec = [session_threads](const ReplicationSpec& spec) {
    if (session_threads == 0) return run_one(spec);
    ReplicationSpec overridden = spec;  // snapshot ptr copy is cheap
    overridden.config.threads = session_threads;
    return run_one(overridden);
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, specs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) results[i] = run_spec(specs[i]);
    return results;
  }

  // Static strided shard: worker w owns indices w, w+J, w+2J, ... Each
  // slot is written by exactly one worker, so no synchronization is
  // needed beyond the joins.
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&specs, &results, &errors, &run_spec, w, workers] {
      try {
        for (std::size_t i = w; i < specs.size(); i += workers) {
          results[i] = run_spec(specs[i]);
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

ExperimentResult ExperimentRunner::run_experiment(
    const std::vector<ReplicationSpec>& specs) const {
  return aggregate(run_all(specs));
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t result_fingerprint(const ReplicationResult& run) {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, &run.stats, sizeof(run.stats));
  fnv_mix(hash, &run.stable_continuity, sizeof(run.stable_continuity));
  fnv_mix(hash, &run.continuity_index, sizeof(run.continuity_index));
  fnv_mix(hash, &run.control_overhead, sizeof(run.control_overhead));
  fnv_mix(hash, &run.prefetch_overhead, sizeof(run.prefetch_overhead));
  fnv_mix(hash, &run.alive_at_end, sizeof(run.alive_at_end));
  for (const auto& round : run.continuity.rounds()) {
    fnv_mix(hash, &round.time, sizeof(round.time));
    fnv_mix(hash, &round.continuous_nodes, sizeof(round.continuous_nodes));
    fnv_mix(hash, &round.counted_nodes, sizeof(round.counted_nodes));
  }
  for (const auto& name : run.collector.names()) {
    fnv_mix(hash, name.data(), name.size());
    for (const auto& sample : run.collector.series(name)) {
      fnv_mix(hash, &sample.time, sizeof(sample.time));
      fnv_mix(hash, &sample.value, sizeof(sample.value));
    }
  }
  return hash;
}

ExperimentResult ExperimentRunner::aggregate(std::vector<ReplicationResult> runs) {
  ExperimentResult out;
  out.replications = runs.size();
  for (const auto& run : runs) {
    out.continuity.add(run.stable_continuity);
    out.continuity_index.add(run.continuity_index);
    if (run.stabilization_time >= 0.0) out.stabilization_time.add(run.stabilization_time);
    out.control_overhead.add(run.control_overhead);
    out.prefetch_overhead.add(run.prefetch_overhead);
    out.total += run.stats;
  }
  out.runs = std::move(runs);
  return out;
}

}  // namespace continu::runner
