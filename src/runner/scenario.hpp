#pragma once
// Named workload scenarios — the shared matrix of (environment x node
// count x scheduler x DHT setting) configurations the paper's
// evaluation sweeps over. Benches, examples, tools and tests all
// enumerate the same named workloads through this header so "fig5's
// static 1000-node run" means exactly one thing everywhere.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "trace/generator.hpp"

namespace continu::runner {

/// One named workload: everything needed to build a SystemConfig and a
/// trace snapshot except the simulation seed (which the experiment
/// layer varies per replication).
struct Scenario {
  std::string name;
  std::string description;

  // --- workload shape ----------------------------------------------------
  std::size_t node_count = 1000;
  core::SchedulerKind scheduler = core::SchedulerKind::kContinuStreaming;
  bool churn = false;
  double churn_fraction = 0.05;     ///< leave AND join fraction per period
  double graceful_fraction = 0.5;   ///< of departures, when churning

  // --- DHT / pre-fetch knobs ("alpha settings") ---------------------------
  unsigned backup_replicas = 4;
  unsigned prefetch_limit = 5;
  std::size_t connected_neighbors = 5;
  bool heterogeneous_bandwidth = true;

  // --- stream -------------------------------------------------------------
  /// Playback rate p in segments/second (the paper's 300 Kbps stream).
  std::uint64_t playback_rate = 10;

  // --- network ------------------------------------------------------------
  /// Latency quantization grid in ms (0 = continuous pairwise model).
  /// Positive values select the quantized network mode: delivery
  /// instants snap UP to the grid and co-instant deliveries dispatch as
  /// receiver-sharded batches.
  double latency_grid_ms = 0.0;

  // --- faults / hardening --------------------------------------------------
  /// Deterministic fault schedule (link loss, crash events, partitions,
  /// latency spikes). Inert by default: no injector is installed and
  /// the run is bit-identical to a fault-free build.
  fault::FaultPlan fault{};
  /// Retry/backoff + supplier-blacklist hardening. The f*_ families
  /// switch it on; everything else runs the untouched hot path.
  bool harden = false;

  // --- trace --------------------------------------------------------------
  std::uint64_t trace_seed = 1;
  double average_degree = 2.5;

  // --- horizons ------------------------------------------------------------
  double duration = 45.0;
  double stable_from = 20.0;

  /// SystemConfig for this workload at the given simulation seed.
  [[nodiscard]] core::SystemConfig make_config(std::uint64_t seed) const;

  /// Trace generator configuration (deterministic in trace_seed).
  [[nodiscard]] trace::GeneratorConfig make_trace() const;

  /// Derived scenario: this one with `overrides` applied and renamed.
  /// The building block of parameterized scenario families.
  [[nodiscard]] Scenario with(const struct ScenarioOverrides& overrides,
                              std::string derived_name) const;
};

/// Field-level override set for deriving a family member from a base
/// scenario: every field that the figure sweeps vary (node count, churn
/// rate, stream rate, fan-out, trace seed, ...). Unset fields keep the
/// base value.
struct ScenarioOverrides {
  std::optional<std::size_t> node_count;
  std::optional<bool> churn;
  std::optional<double> churn_fraction;
  std::optional<double> graceful_fraction;
  std::optional<std::uint64_t> playback_rate;  ///< stream rate
  std::optional<std::size_t> connected_neighbors;
  std::optional<unsigned> backup_replicas;
  std::optional<unsigned> prefetch_limit;
  std::optional<core::SchedulerKind> scheduler;
  std::optional<double> latency_grid_ms;  ///< network quantization grid
  std::optional<fault::FaultPlan> fault;  ///< deterministic fault schedule
  std::optional<bool> harden;             ///< retry/backoff + blacklist
  std::optional<std::uint64_t> trace_seed;
  std::optional<double> duration;
  std::optional<double> stable_from;
};

/// The canonical scenario matrix. Stable names; append-only across PRs.
[[nodiscard]] const std::vector<Scenario>& scenario_matrix();

/// Parameterized scenario FAMILIES: the fig7/8/9/11 sweep grids as
/// named scenarios ("fig7_static_2000", "fig9_m5_500", ...), derived
/// from matrix bases via ScenarioOverrides. Kept separate from the
/// matrix so full-matrix sweeps (the fingerprint oracle, smoke tests)
/// stay bounded; find_scenario() resolves both.
[[nodiscard]] const std::vector<Scenario>& scenario_families();

/// Lookup by name across the matrix AND the families; std::nullopt
/// when unknown.
[[nodiscard]] std::optional<Scenario> find_scenario(const std::string& name);

/// All scenario names, matrix order (for --list-scenarios style output).
[[nodiscard]] std::vector<std::string> scenario_names();

/// Every resolvable name: matrix order, then family order (for
/// diagnostics and exhaustive sweeps).
[[nodiscard]] std::vector<std::string> all_scenario_names();

/// One family of parameterized scenarios, keyed by the shared name
/// prefix up to the first underscore ("fig7", "q1", "f5", ...).
struct ScenarioFamilyGroup {
  std::string prefix;
  std::string description;  ///< one line, for --list-scenarios
  std::vector<std::string> members;
};

/// The families grouped by name prefix, first-appearance order — the
/// structure `continu_sim --list-scenarios` renders.
[[nodiscard]] const std::vector<ScenarioFamilyGroup>& scenario_family_groups();

/// Resolves one --only style selector: an exact scenario name yields
/// that scenario alone; otherwise the selector is treated as a name
/// PREFIX ("q1_", "fig7", "f5_q1_...") and expands to every matrix and
/// family scenario it prefixes, registry order. Empty result = the
/// selector matched nothing (callers should treat that as an unknown
/// scenario, never as a vacuously-empty sweep).
[[nodiscard]] std::vector<Scenario> expand_scenario_selector(
    const std::string& selector);

}  // namespace continu::runner
