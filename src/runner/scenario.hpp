#pragma once
// Named workload scenarios — the shared matrix of (environment x node
// count x scheduler x DHT setting) configurations the paper's
// evaluation sweeps over. Benches, examples, tools and tests all
// enumerate the same named workloads through this header so "fig5's
// static 1000-node run" means exactly one thing everywhere.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "trace/generator.hpp"

namespace continu::runner {

/// One named workload: everything needed to build a SystemConfig and a
/// trace snapshot except the simulation seed (which the experiment
/// layer varies per replication).
struct Scenario {
  std::string name;
  std::string description;

  // --- workload shape ----------------------------------------------------
  std::size_t node_count = 1000;
  core::SchedulerKind scheduler = core::SchedulerKind::kContinuStreaming;
  bool churn = false;
  double churn_fraction = 0.05;     ///< leave AND join fraction per period
  double graceful_fraction = 0.5;   ///< of departures, when churning

  // --- DHT / pre-fetch knobs ("alpha settings") ---------------------------
  unsigned backup_replicas = 4;
  unsigned prefetch_limit = 5;
  std::size_t connected_neighbors = 5;
  bool heterogeneous_bandwidth = true;

  // --- trace --------------------------------------------------------------
  std::uint64_t trace_seed = 1;
  double average_degree = 2.5;

  // --- horizons ------------------------------------------------------------
  double duration = 45.0;
  double stable_from = 20.0;

  /// SystemConfig for this workload at the given simulation seed.
  [[nodiscard]] core::SystemConfig make_config(std::uint64_t seed) const;

  /// Trace generator configuration (deterministic in trace_seed).
  [[nodiscard]] trace::GeneratorConfig make_trace() const;
};

/// The canonical scenario matrix. Stable names; append-only across PRs.
[[nodiscard]] const std::vector<Scenario>& scenario_matrix();

/// Lookup by name; std::nullopt when unknown.
[[nodiscard]] std::optional<Scenario> find_scenario(const std::string& name);

/// All scenario names, matrix order (for --list-scenarios style output).
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace continu::runner
