#include "runner/scenario.hpp"

#include <algorithm>

namespace continu::runner {

core::SystemConfig Scenario::make_config(std::uint64_t seed) const {
  core::SystemConfig config;
  config.seed = seed;
  config.scheduler = scheduler;
  config.expected_nodes = static_cast<double>(node_count);
  config.backup_replicas = backup_replicas;
  config.prefetch_limit = prefetch_limit;
  config.connected_neighbors = connected_neighbors;
  config.heterogeneous_bandwidth = heterogeneous_bandwidth;
  if (churn) {
    config.churn_enabled = true;
    config.churn.leave_fraction = churn_fraction;
    config.churn.join_fraction = churn_fraction;
    config.churn.graceful_fraction = graceful_fraction;
  }
  return config;
}

trace::GeneratorConfig Scenario::make_trace() const {
  trace::GeneratorConfig tc;
  tc.node_count = node_count;
  tc.average_degree = average_degree;
  tc.seed = trace_seed;
  return tc;
}

namespace {

[[nodiscard]] std::vector<Scenario> build_matrix() {
  std::vector<Scenario> m;

  auto add = [&m](Scenario s) { m.push_back(std::move(s)); };

  // --- headline environments (figures 5-8) -------------------------------
  {
    Scenario s;
    s.name = "static_small";
    s.description = "200 nodes, static, ContinuStreaming (smoke-scale fig5)";
    s.node_count = 200;
    s.trace_seed = 21;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_1k";
    s.description = "1000 nodes, static, ContinuStreaming (fig5 environment)";
    s.node_count = 1000;
    s.trace_seed = 55;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_1k";
    s.description = "1000 nodes, 5% churn per period (fig6 environment)";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_4k";
    s.description = "4000 nodes, static (fig7 upper range)";
    s.node_count = 4000;
    s.trace_seed = 4300;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_abrupt";
    s.description = "500 nodes, 5% churn, all departures abrupt (worst case)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.graceful_fraction = 0.0;
    add(s);
  }

  {
    Scenario s;
    s.name = "static_8k";
    s.description = "8000 nodes, static (engine-scaling workload, fig7 extension)";
    s.node_count = 8000;
    s.trace_seed = 8700;
    add(s);
  }

  // --- baselines on the same substrate ------------------------------------
  {
    Scenario s;
    s.name = "cool_static_1k";
    s.description = "1000 nodes, static, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "cool_dynamic_1k";
    s.description = "1000 nodes, 5% churn, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "gridmedia_static_1k";
    s.description = "1000 nodes, static, GridMedia push-pull baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kGridMediaPushPull;
    add(s);
  }

  // --- DHT / pre-fetch ablation points ("alpha settings") ------------------
  {
    Scenario s;
    s.name = "no_prefetch";
    s.description = "500 nodes, static, prefetch disabled (l = 0): gossip-only";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 0;
    add(s);
  }
  {
    Scenario s;
    s.name = "heavy_prefetch";
    s.description = "500 nodes, static, aggressive prefetch (l = 10, k = 6)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 10;
    s.backup_replicas = 6;
    add(s);
  }
  {
    Scenario s;
    s.name = "thin_replicas";
    s.description = "500 nodes, 5% churn, single backup replica (k = 1)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.backup_replicas = 1;
    add(s);
  }

  return m;
}

}  // namespace

const std::vector<Scenario>& scenario_matrix() {
  static const std::vector<Scenario> matrix = build_matrix();
  return matrix;
}

std::optional<Scenario> find_scenario(const std::string& name) {
  const auto& m = scenario_matrix();
  const auto it = std::find_if(m.begin(), m.end(),
                               [&name](const Scenario& s) { return s.name == name; });
  if (it == m.end()) return std::nullopt;
  return *it;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_matrix().size());
  for (const auto& s : scenario_matrix()) names.push_back(s.name);
  return names;
}

}  // namespace continu::runner
