#include "runner/scenario.hpp"

#include <algorithm>

namespace continu::runner {

core::SystemConfig Scenario::make_config(std::uint64_t seed) const {
  core::SystemConfig config;
  config.seed = seed;
  config.scheduler = scheduler;
  config.expected_nodes = static_cast<double>(node_count);
  config.backup_replicas = backup_replicas;
  config.prefetch_limit = prefetch_limit;
  config.connected_neighbors = connected_neighbors;
  config.heterogeneous_bandwidth = heterogeneous_bandwidth;
  config.playback_rate = playback_rate;
  config.latency_grid_ms = latency_grid_ms;
  config.fault = fault;
  config.retry.enabled = harden;
  if (churn) {
    config.churn_enabled = true;
    config.churn.leave_fraction = churn_fraction;
    config.churn.join_fraction = churn_fraction;
    config.churn.graceful_fraction = graceful_fraction;
  }
  return config;
}

Scenario Scenario::with(const ScenarioOverrides& o, std::string derived_name) const {
  Scenario s = *this;
  s.name = std::move(derived_name);
  if (o.node_count) s.node_count = *o.node_count;
  if (o.churn) s.churn = *o.churn;
  if (o.churn_fraction) {
    s.churn_fraction = *o.churn_fraction;
    s.churn = *o.churn_fraction > 0.0;  // rate implies the toggle
  }
  if (o.graceful_fraction) s.graceful_fraction = *o.graceful_fraction;
  if (o.playback_rate) s.playback_rate = *o.playback_rate;
  if (o.connected_neighbors) s.connected_neighbors = *o.connected_neighbors;
  if (o.backup_replicas) s.backup_replicas = *o.backup_replicas;
  if (o.prefetch_limit) s.prefetch_limit = *o.prefetch_limit;
  if (o.scheduler) s.scheduler = *o.scheduler;
  if (o.latency_grid_ms) s.latency_grid_ms = *o.latency_grid_ms;
  if (o.fault) s.fault = *o.fault;
  if (o.harden) s.harden = *o.harden;
  if (o.trace_seed) s.trace_seed = *o.trace_seed;
  if (o.duration) s.duration = *o.duration;
  if (o.stable_from) s.stable_from = *o.stable_from;
  return s;
}

trace::GeneratorConfig Scenario::make_trace() const {
  trace::GeneratorConfig tc;
  tc.node_count = node_count;
  tc.average_degree = average_degree;
  tc.seed = trace_seed;
  return tc;
}

namespace {

[[nodiscard]] std::vector<Scenario> build_matrix() {
  std::vector<Scenario> m;

  auto add = [&m](Scenario s) { m.push_back(std::move(s)); };

  // --- headline environments (figures 5-8) -------------------------------
  {
    Scenario s;
    s.name = "static_small";
    s.description = "200 nodes, static, ContinuStreaming (smoke-scale fig5)";
    s.node_count = 200;
    s.trace_seed = 21;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_1k";
    s.description = "1000 nodes, static, ContinuStreaming (fig5 environment)";
    s.node_count = 1000;
    s.trace_seed = 55;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_1k";
    s.description = "1000 nodes, 5% churn per period (fig6 environment)";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_4k";
    s.description = "4000 nodes, static (fig7 upper range)";
    s.node_count = 4000;
    s.trace_seed = 4300;
    add(s);
  }
  {
    Scenario s;
    s.name = "dynamic_abrupt";
    s.description = "500 nodes, 5% churn, all departures abrupt (worst case)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.graceful_fraction = 0.0;
    add(s);
  }

  {
    Scenario s;
    s.name = "static_8k";
    s.description = "8000 nodes, static (engine-scaling workload, fig7 extension)";
    s.node_count = 8000;
    s.trace_seed = 8700;
    add(s);
  }
  {
    Scenario s;
    s.name = "static_100k";
    s.description =
        "100000 nodes, static (production-scale milestone; memory-budget "
        "workload — expect minutes of wall clock per run)";
    s.node_count = 100000;
    s.trace_seed = 100700;
    add(s);
  }

  // --- baselines on the same substrate ------------------------------------
  {
    Scenario s;
    s.name = "cool_static_1k";
    s.description = "1000 nodes, static, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "cool_dynamic_1k";
    s.description = "1000 nodes, 5% churn, CoolStreaming baseline";
    s.node_count = 1000;
    s.trace_seed = 56;
    s.churn = true;
    s.scheduler = core::SchedulerKind::kCoolStreaming;
    add(s);
  }
  {
    Scenario s;
    s.name = "gridmedia_static_1k";
    s.description = "1000 nodes, static, GridMedia push-pull baseline";
    s.node_count = 1000;
    s.trace_seed = 55;
    s.scheduler = core::SchedulerKind::kGridMediaPushPull;
    add(s);
  }

  // --- DHT / pre-fetch ablation points ("alpha settings") ------------------
  {
    Scenario s;
    s.name = "no_prefetch";
    s.description = "500 nodes, static, prefetch disabled (l = 0): gossip-only";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 0;
    add(s);
  }
  {
    Scenario s;
    s.name = "heavy_prefetch";
    s.description = "500 nodes, static, aggressive prefetch (l = 10, k = 6)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.prefetch_limit = 10;
    s.backup_replicas = 6;
    add(s);
  }
  {
    Scenario s;
    s.name = "thin_replicas";
    s.description = "500 nodes, 5% churn, single backup replica (k = 1)";
    s.node_count = 500;
    s.trace_seed = 700;
    s.churn = true;
    s.backup_replicas = 1;
    add(s);
  }

  return m;
}

/// The fig7/8/9/11 sweep grids as named family members, derived from a
/// neutral base via ScenarioOverrides. Trace seeds reproduce the grids
/// the benches used to build inline (300/400/500/600 + n [+ m]), so
/// folding the benches onto the families changed no workload.
[[nodiscard]] std::vector<Scenario> build_families() {
  std::vector<Scenario> families;
  Scenario base;  // paper-standard defaults

  const std::vector<std::size_t> sizes = {100, 500, 1000, 2000, 4000, 8000};

  base.description = "fig7 family: static continuity vs overlay size";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.trace_seed = 300 + n;
    families.push_back(base.with(o, "fig7_static_" + std::to_string(n)));
  }

  base.description = "fig8 family: dynamic continuity vs overlay size (5% churn)";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.churn = true;
    o.trace_seed = 400 + n;
    families.push_back(base.with(o, "fig8_dynamic_" + std::to_string(n)));
  }

  base.description = "fig9 family: control overhead vs overlay size, M in {4,5,6}";
  for (const std::size_t n : {std::size_t{100}, std::size_t{500}, std::size_t{1000},
                              std::size_t{2000}, std::size_t{4000}}) {
    for (const std::size_t m : {std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
      ScenarioOverrides o;
      o.node_count = n;
      o.connected_neighbors = m;
      o.trace_seed = 500 + n + m;
      families.push_back(base.with(
          o, "fig9_m" + std::to_string(m) + "_" + std::to_string(n)));
    }
  }

  base.description = "fig11 family: pre-fetch overhead vs overlay size";
  for (const std::size_t n : sizes) {
    ScenarioOverrides o;
    o.node_count = n;
    o.trace_seed = 600 + n;
    families.push_back(base.with(o, "fig11_static_" + std::to_string(n)));
    o.churn = true;
    families.push_back(base.with(o, "fig11_dynamic_" + std::to_string(n)));
  }

  // --- quantized-network family -------------------------------------------
  // Matrix bases re-run under the quantized latency mode at 1/2/5 ms
  // grids: "q1_static_1k" is static_1k — same trace, same seeds — with
  // deliveries snapped to a 1 ms grid and dispatched as receiver-sharded
  // batches. The continuous/quantized pairs are what the committed
  // divergence study (bench_quantized_divergence) sweeps.
  {
    const std::vector<Scenario> matrix = build_matrix();
    const auto matrix_base = [&matrix](const std::string& name) {
      return *std::find_if(matrix.begin(), matrix.end(),
                           [&name](const Scenario& s) { return s.name == name; });
    };
    for (const double grid : {1.0, 2.0, 5.0}) {
      const std::string prefix = "q" + std::to_string(static_cast<int>(grid)) + "_";
      for (const char* name :
           {"static_small", "static_1k", "dynamic_1k", "static_8k", "thin_replicas"}) {
        Scenario b = matrix_base(name);
        ScenarioOverrides o;
        o.latency_grid_ms = grid;
        Scenario s = b.with(o, prefix + b.name);
        s.description = b.description + " [quantized " +
                        std::to_string(static_cast<int>(grid)) + " ms latency grid]";
        families.push_back(std::move(s));
      }
    }

    // --- fault families -----------------------------------------------------
    // Matrix bases re-run under deterministic fault plans with the
    // retry/backoff + blacklist hardening switched on. Same trace, same
    // seeds as the base; the only delta is the injected fault schedule.
    // f1_: light iid link loss. f5_: a hostile mix — heavy loss with
    // burst episodes, a 10% crash-stop event and a latency spike. fp_: a
    // two-region partition that heals. f5_q1_*: the f5_ plan over the
    // quantized network mode, proving injection covers both modes.
    const auto faulted = [&families, &matrix_base](
                             const char* base_name, const std::string& prefix,
                             const fault::FaultPlan& plan, const char* what,
                             double grid_ms = 0.0) {
      Scenario b = matrix_base(base_name);
      ScenarioOverrides o;
      o.fault = plan;
      o.harden = true;
      if (grid_ms > 0.0) o.latency_grid_ms = grid_ms;
      Scenario s = b.with(o, prefix + b.name);
      s.description = b.description + " [" + what + "]";
      families.push_back(std::move(s));
    };

    fault::FaultPlan light;
    light.loss_rate = 0.01;
    for (const char* name : {"static_small", "static_1k", "dynamic_1k"}) {
      faulted(name, "f1_", light, "1% iid link loss, hardened");
    }

    fault::FaultPlan hostile;
    hostile.loss_rate = 0.05;
    hostile.burst_rate = 0.25;
    hostile.burst_period = 10.0;
    hostile.burst_duration = 2.0;
    hostile.crashes.push_back({/*time=*/25.0, /*fraction=*/0.10});
    hostile.spikes.push_back({/*start=*/15.0, /*duration=*/5.0, /*extra_ms=*/100.0});
    for (const char* name : {"static_small", "static_1k", "dynamic_1k"}) {
      faulted(name, "f5_",  hostile,
              "5% loss + bursts + 10% crash @25s + 100ms spike, hardened");
    }
    faulted("static_small", "f5_q1_", hostile,
            "f5 fault mix over the 1 ms quantized grid, hardened",
            /*grid_ms=*/1.0);
    faulted("static_1k", "f5_q1_", hostile,
            "f5 fault mix over the 1 ms quantized grid, hardened",
            /*grid_ms=*/1.0);

    fault::FaultPlan split;
    split.partitions.push_back({/*start=*/20.0, /*heal=*/30.0, /*regions=*/2});
    for (const char* name : {"static_small", "static_1k"}) {
      faulted(name, "fp_", split, "2-region partition [20s,30s), hardened");
    }
  }

  return families;
}

/// One-line description per family prefix for --list-scenarios.
[[nodiscard]] std::string family_description(const std::string& prefix) {
  if (prefix == "fig7") return "static continuity vs overlay size";
  if (prefix == "fig8") return "dynamic continuity vs overlay size (5% churn)";
  if (prefix == "fig9") return "control overhead vs overlay size, M in {4,5,6}";
  if (prefix == "fig11") return "pre-fetch overhead vs overlay size";
  if (prefix == "q1" || prefix == "q2" || prefix == "q5") {
    return "matrix bases under the quantized latency grid (" +
           prefix.substr(1) + " ms)";
  }
  if (prefix == "f1") return "fault family: 1% iid link loss, hardening on";
  if (prefix == "f5") {
    return "fault family: 5% loss + burst episodes + crash + latency "
           "spike, hardening on (f5_q1_* = same plan, quantized grid)";
  }
  if (prefix == "fp") {
    return "fault family: 2-region partition with scheduled heal, "
           "hardening on";
  }
  return "parameterized scenario family";
}

[[nodiscard]] std::vector<ScenarioFamilyGroup> build_family_groups() {
  std::vector<ScenarioFamilyGroup> groups;
  for (const Scenario& s : scenario_families()) {
    const std::string prefix = s.name.substr(0, s.name.find('_'));
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&prefix](const ScenarioFamilyGroup& g) {
                             return g.prefix == prefix;
                           });
    if (it == groups.end()) {
      groups.push_back({prefix, family_description(prefix), {}});
      it = groups.end() - 1;
    }
    it->members.push_back(s.name);
  }
  return groups;
}

}  // namespace

const std::vector<Scenario>& scenario_matrix() {
  static const std::vector<Scenario> matrix = build_matrix();
  return matrix;
}

const std::vector<Scenario>& scenario_families() {
  static const std::vector<Scenario> families = build_families();
  return families;
}

std::optional<Scenario> find_scenario(const std::string& name) {
  const auto by_name = [&name](const Scenario& s) { return s.name == name; };
  const auto& m = scenario_matrix();
  const auto it = std::find_if(m.begin(), m.end(), by_name);
  if (it != m.end()) return *it;
  const auto& f = scenario_families();
  const auto fit = std::find_if(f.begin(), f.end(), by_name);
  if (fit != f.end()) return *fit;
  return std::nullopt;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_matrix().size());
  for (const auto& s : scenario_matrix()) names.push_back(s.name);
  return names;
}

std::vector<std::string> all_scenario_names() {
  std::vector<std::string> names = scenario_names();
  names.reserve(names.size() + scenario_families().size());
  for (const auto& s : scenario_families()) names.push_back(s.name);
  return names;
}

const std::vector<ScenarioFamilyGroup>& scenario_family_groups() {
  static const std::vector<ScenarioFamilyGroup> groups = build_family_groups();
  return groups;
}

std::vector<Scenario> expand_scenario_selector(const std::string& selector) {
  std::vector<Scenario> expanded;
  if (selector.empty()) return expanded;
  // Exact names win outright — a scenario literally named like a
  // prefix can always be addressed unambiguously.
  if (auto exact = find_scenario(selector)) {
    expanded.push_back(std::move(*exact));
    return expanded;
  }
  const auto is_prefix_of = [&selector](const std::string& name) {
    return name.size() > selector.size() &&
           name.compare(0, selector.size(), selector) == 0;
  };
  for (const auto& s : scenario_matrix()) {
    if (is_prefix_of(s.name)) expanded.push_back(s);
  }
  for (const auto& s : scenario_families()) {
    if (is_prefix_of(s.name)) expanded.push_back(s);
  }
  return expanded;
}

}  // namespace continu::runner
